"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network access,
so PEP 660 editable installs (which build a wheel) are unavailable.  This
shim lets ``pip install -e .`` fall back to ``setup.py develop``.
Metadata lives in ``pyproject.toml``.
"""
from setuptools import setup

setup()
