#!/usr/bin/env python
"""AVFS design-space exploration — the paper's headline application.

Sweeps a design over the full supply-voltage range, derives its
voltage-frequency operating table, and then plays a runtime scenario:
an AVFS controller serving a bursty performance-demand trace while the
silicon ages.

Run:  python examples/avfs_exploration.py
"""

import numpy as np

from repro import (
    AvfsController,
    DesignSpaceExplorer,
    make_nangate15_library,
    characterize_library,
    random_circuit,
    random_pattern_set,
)
from repro.units import si_format


def main() -> None:
    library = make_nangate15_library()
    kernels = characterize_library(library, n=3).compile()
    circuit = random_circuit("soc_block", num_inputs=40, num_gates=3000,
                             seed=11)
    patterns = random_pattern_set(circuit, 32, seed=12)

    # -- exploration: 8 operating points, one parallel simulation ----------
    explorer = DesignSpaceExplorer(circuit, library, kernels,
                                   record_activity=True)
    voltages = [round(float(v), 3) for v in np.linspace(0.55, 1.10, 8)]
    points = explorer.sweep(patterns.pairs, voltages)
    print(f"explored {len(voltages)} operating points in "
          f"{explorer.last_runtime:.2f}s\n")
    print("V_DD    t_arrival   f_max     E/pattern  glitch share")
    for p in points:
        print(f"{p.voltage:.2f} V  {si_format(p.latest_arrival, unit='s'):>9}"
              f"  {p.max_frequency / 1e9:5.2f} GHz"
              f"  {si_format(p.energy_per_pattern, unit='J'):>9}"
              f"  {p.glitch_ratio:6.1%}")

    # -- operating table with a 10 % guardband ------------------------------
    table = explorer.voltage_frequency_table(patterns.pairs, voltages,
                                             guardband=0.10)
    print("\nvoltage-frequency table (10% guardband):")
    print(table.summary())

    # -- runtime: bursty workload served at minimum energy ------------------
    controller = AvfsController(table)
    top = table.points[-1].max_frequency
    demand_trace = [0.3 * top, 0.3 * top, 0.9 * top, 0.5 * top,
                    0.2 * top, 0.95 * top, 0.3 * top, 0.3 * top]
    print("\nAVFS runtime decisions:")
    for demand in demand_trace:
        decision = controller.set_performance(demand)
        print(f"  demand {demand/1e9:5.2f} GHz -> {decision.voltage:.2f} V "
              f"({decision.frequency/1e9:5.2f} GHz available, "
              f"{decision.relative_energy:5.1%} relative energy/cycle)")
    print(f"average energy saving vs always-max: "
          f"{controller.energy_saving():.1%}")

    # -- self-adaptation: silicon ages 8 %, decisions shift up --------------
    controller.apply_aging(0.08)
    aged = controller.set_performance(0.9 * top)
    print(f"\nafter 8% aging, 90%-of-peak demand now needs "
          f"{aged.voltage:.2f} V "
          f"(max sustainable {controller.max_frequency()/1e9:.2f} GHz)")


if __name__ == "__main__":
    main()
