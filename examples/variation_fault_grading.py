#!/usr/bin/env python
"""Variation-aware small-delay fault grading — the paper's test use case.

Combines three capabilities the paper motivates its simulator with, on a
16-bit ripple-carry adder (a design with a real, sensitizable critical
path — the carry chain):

1. **Monte-Carlo process variation** — the slot plane is laid out as
   dies × patterns; every die sample sees the whole pattern set under
   its own random per-gate delay factors, in one parallel run,
2. **small-delay fault grading** — which delay defects on the critical
   path does the test set catch at a given capture clock,
3. **faster-than-at-speed testing (FAST)** — tightening the capture
   clock (or lowering V_DD) exposes smaller delay defects.

Run:  python examples/variation_fault_grading.py
"""

import numpy as np

from repro import (
    GpuWaveSim,
    ProcessVariation,
    SlotPlan,
    characterize_library,
    generate_path_patterns,
    generate_transition_patterns,
    k_longest_paths,
    make_nangate15_library,
)
from repro.atpg import SmallDelayFault, SmallDelayFaultSimulator
from repro.netlist.generate import ripple_carry_adder
from repro.units import si_format


def main() -> None:
    library = make_nangate15_library()
    kernels = characterize_library(library, n=3).compile()
    circuit = ripple_carry_adder(16)

    patterns, coverage = generate_transition_patterns(
        circuit, library, max_pairs=48)
    path_result = generate_path_patterns(circuit, library, k=24)
    patterns.extend(path_result.patterns)
    print(f"DUT: 16-bit adder, {circuit.num_nodes} nodes; "
          f"{len(patterns)} pairs ({coverage:.0%} TF coverage, "
          f"{len(path_result.tested_paths)} longest paths tested)")

    # -- 1. Monte-Carlo: 64 dies x full pattern set in one run ----------------
    sim = GpuWaveSim(circuit, library)
    dies = 64
    num_patterns = len(patterns)
    plan = SlotPlan.zip(
        np.tile(np.arange(num_patterns), dies),
        np.full(dies * num_patterns, 0.8),
    )
    variation = ProcessVariation(sigma=0.05, seed=1, group_size=num_patterns)
    mc = sim.run(patterns.pairs, plan=plan, kernel_table=kernels,
                 variation=variation)
    per_die = np.asarray([
        max(mc.latest_arrival(die * num_patterns + p, circuit.outputs)
            for p in range(num_patterns))
        for die in range(dies)
    ])
    print(f"\nMonte-Carlo (sigma=5%/gate, {dies} dies x "
          f"{num_patterns} patterns):")
    print(f"  worst-path arrival: mean {si_format(per_die.mean(), unit='s')}, "
          f"sigma {si_format(per_die.std(), unit='s')} "
          f"({per_die.std()/per_die.mean():.1%}), "
          f"slowest die {si_format(per_die.max(), unit='s')}")

    # Capture clock with margin above the slowest sampled die.
    capture = float(per_die.max()) * 1.06
    print(f"  chosen capture clock: {si_format(capture, unit='s')}")

    # -- 2. grade delay defects on the carry chain -----------------------------
    top_path = k_longest_paths(circuit, library, k=1)[0]
    victims = [top_path.gates[len(top_path.gates) // 3],
               top_path.gates[len(top_path.gates) // 2],
               top_path.gates[2 * len(top_path.gates) // 3]]
    grader = SmallDelayFaultSimulator(circuit, library)
    print(f"\ncritical path: {len(top_path)} stages, "
          f"{si_format(top_path.delay, unit='s')} (STA); victims: {victims}")
    for delta in (10e-12, 40e-12, 120e-12):
        faults = [SmallDelayFault(g, delta) for g in victims]
        verdicts = grader.simulate(faults, patterns.pairs, capture,
                                   voltage=0.8, kernel_table=kernels)
        caught = sum(1 for v in verdicts.values() if v is not None)
        print(f"  {si_format(delta, unit='s'):>8} defects: "
              f"{caught}/{len(victims)} detected")

    # -- 3. the FAST effect ------------------------------------------------------
    victim = victims[1]
    print(f"\nminimum detectable extra delay at {victim}:")
    for factor, label in ((1.0, "at-speed"), (0.9, "10% faster"),
                          (0.8, "20% faster")):
        threshold = grader.minimum_detectable_delay(
            victim, patterns.pairs, capture * factor,
            voltage=0.8, kernel_table=kernels, upper=2e-9, iterations=10)
        text = si_format(threshold, unit="s") if threshold else "undetectable"
        print(f"  {label:12s} capture: {text}")

    low_v = grader.minimum_detectable_delay(
        victim, patterns.pairs, capture, voltage=0.65,
        kernel_table=kernels, upper=2e-9, iterations=10)
    print(f"\nsame clock, V_DD lowered to 0.65 V: "
          f"{si_format(low_v, unit='s') if low_v else 'undetectable'} "
          f"(longer path delays eat the slack, smaller defects surface)")


if __name__ == "__main__":
    main()
