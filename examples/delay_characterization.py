#!/usr/bin/env python
"""Cell delay characterization walkthrough (paper Sec. III, Fig. 1/4/5).

Characterizes one cell step by step — SPICE sweep, normalization,
sub-sampling, regression — then reproduces the Fig. 5 surface comparison
and a miniature Fig. 4 order study, and finally saves a compiled kernel
table to disk for reuse.

Run:  python examples/delay_characterization.py
"""

import tempfile
from pathlib import Path

from repro import DrivePolarity, make_nangate15_library
from repro.core.characterization import characterize_library, characterize_pin
from repro.core.delay_kernel import DelayKernelTable
from repro.core.parameters import ParameterSpace
from repro.electrical.spice import AnalyticalSpice
from repro.units import FF, si_format


def main() -> None:
    library = make_nangate15_library()
    space = ParameterSpace.paper_default()
    spice = AnalyticalSpice()
    cell = library["NOR2_X2"]
    pin = cell.pin("A1")

    # -- the Fig. 1 flow for one entry ---------------------------------------
    print(f"characterizing {cell.name}/{pin.name} rising edge "
          f"over V in [{space.v_min}, {space.v_max}] V, "
          f"C in [{space.c_min/FF:.1f}, {space.c_max/FF:.0f}] fF")
    entry = characterize_pin(spice, cell, pin, DrivePolarity.RISE,
                             space=space, n=3)
    fit = entry.fit
    print(f"  sweep: {spice.transient_runs} transient analyses")
    print(f"  regression: {fit.sample_count} samples -> "
          f"{fit.polynomial.num_coefficients} coefficients "
          f"({fit.method}, {fit.solve_seconds*1e3:.1f} ms, "
          f"R^2 = {fit.r_squared:.6f})")

    mean, std, maximum = entry.evaluation_error(64)
    print(f"  Fig. 5 error vs linear SPICE reference: "
          f"avg {mean:.2%}, max {maximum:.2%} "
          f"(paper: avg 0.38%, max 2.41%)")

    # -- what the kernel predicts --------------------------------------------
    print("\n  voltage ->  deviation  ->  delay at 4 fF")
    for voltage in (0.55, 0.7, 0.8, 0.9, 1.1):
        deviation = float(entry.deviation(voltage, 4 * FF))
        delay = float(entry.delay(voltage, 4 * FF))
        print(f"   {voltage:.2f} V    {deviation:+7.1%}      "
              f"{si_format(delay, unit='s')}")

    # -- mini Fig. 4: error vs polynomial order -------------------------------
    print("\norder study (same entry):")
    print("  2N  coeffs  mean err   max err")
    for n in (1, 2, 3, 4):
        run = characterize_pin(spice, cell, pin, DrivePolarity.RISE,
                               space=space, n=n)
        mean, _std, maximum = run.evaluation_error(64)
        print(f"  2*{n}  {run.fit.polynomial.num_coefficients:5d}  "
              f"{mean:8.3%}  {maximum:8.3%}")

    # -- full library -> compiled kernel table -> disk ------------------------
    print("\ncharacterizing the full library ...")
    table = characterize_library(library, spice, n=3).compile()
    out = Path(tempfile.gettempdir()) / "nangate15_kernels.npz"
    table.save(str(out))
    restored = DelayKernelTable.load(str(out))
    print(f"  {table.num_types} cell types, "
          f"{table.memory_bytes/1024:.0f} KiB of coefficients "
          f"-> saved to {out} (round-trip ok: "
          f"{restored.type_names == table.type_names})")


if __name__ == "__main__":
    main()
