#!/usr/bin/env python
"""Glitch-accurate switching activity and power across voltages.

The paper motivates glitch-accurate simulation with small-delay fault
testing and power estimation: zero-delay models miss hazard activity
entirely.  This example quantifies that miss on an arithmetic block and
shows how supply voltage shifts the energy/performance balance.

Run:  python examples/glitch_power_analysis.py
"""

from repro import (
    GpuWaveSim,
    SimulationConfig,
    SlotPlan,
    characterize_library,
    make_nangate15_library,
    random_pattern_set,
)
from repro.analysis import dynamic_power, switching_activity
from repro.netlist.generate import array_multiplier
from repro.units import si_format


def main() -> None:
    library = make_nangate15_library()
    kernels = characterize_library(library, n=3).compile()

    # Array multipliers are glitch machines: long reconvergent carry-save
    # chains produce hazards on almost every net.
    circuit = array_multiplier(8)
    patterns = random_pattern_set(circuit, 64, seed=5)
    loads = circuit.net_loads(library)
    print(f"8x8 array multiplier: {circuit.num_nodes} nodes, "
          f"depth {circuit.depth}")

    simulator = GpuWaveSim(circuit, library,
                           config=SimulationConfig(record_all_nets=True))
    voltages = [0.55, 0.8, 1.1]
    plan = SlotPlan.cross(len(patterns), voltages)
    result = simulator.run(patterns.pairs, plan=plan, kernel_table=kernels)

    print("\nV_DD    toggles  glitches  glitch%   E/pattern  glitch energy")
    for voltage in voltages:
        slots = plan.slots_for_voltage(voltage).tolist()
        activity = switching_activity(result, slots=slots)
        power = dynamic_power(activity, loads, voltage)
        print(f"{voltage:.2f} V  {activity.total_toggles:7d}  "
              f"{activity.total_glitches:8d}  "
              f"{activity.glitch_ratio:6.1%}  "
              f"{si_format(power.energy_per_pattern, unit='J'):>9}  "
              f"{power.glitch_fraction:6.1%}")

    # Where do the glitches live?
    nominal = switching_activity(
        result, slots=plan.slots_for_voltage(0.8).tolist())
    print("\nworst glitch hotspots at 0.8 V:")
    for net in nominal.hotspots(5):
        print(f"  {net}: {nominal.glitches[net]} glitch transitions over "
              f"{nominal.num_slots} patterns")

    # The zero-delay blind spot, quantified.
    functional = sum(nominal.functional.values())
    print(f"\na zero-delay model sees {functional} transitions; "
          f"time simulation sees {nominal.total_toggles} "
          f"(+{nominal.total_toggles / max(functional, 1) - 1:.0%}) — "
          f"that difference is invisible without glitch-accurate waveforms.")


if __name__ == "__main__":
    main()
