#!/usr/bin/env python
"""Quickstart: characterize a library, simulate a circuit across voltages.

This is the 60-second tour of the public API:

1. build the NanGate-15nm-like standard-cell library,
2. run the offline characterization (Fig. 1 of the paper) and compile
   the polynomial delay kernels,
3. generate a circuit and a set of transition test pattern pairs,
4. simulate every pattern under three supply voltages *in one parallel
   run* (the slot plane of Fig. 3),
5. read out per-voltage latest transition arrival times.

Run:  python examples/quickstart.py
"""

from repro import (
    GpuWaveSim,
    SlotPlan,
    characterize_library,
    make_nangate15_library,
    random_circuit,
    random_pattern_set,
)
from repro.analysis import latest_arrivals
from repro.units import si_format


def main() -> None:
    # 1. The standard-cell library (21 families x drive strengths).
    library = make_nangate15_library()
    print(f"library: {len(library)} cells, {len(library.families())} families")

    # 2. Offline characterization: SPICE sweeps -> normalization ->
    #    regression -> compiled kernel table.  Runs once per library.
    kernels = characterize_library(library, n=3).compile()
    print(f"delay kernels: order 2*{kernels.n}, "
          f"{kernels.memory_bytes / 1024:.0f} KiB of coefficients")

    # 3. A synthetic 2000-gate netlist plus 48 random transition pairs.
    circuit = random_circuit("quickstart", num_inputs=32, num_gates=2000,
                             seed=1)
    patterns = random_pattern_set(circuit, 48, seed=2)
    print(f"circuit: {circuit.num_nodes} nodes, depth {circuit.depth}")

    # 4. One parallel run over the full (patterns x voltages) slot plane.
    voltages = [0.55, 0.8, 1.1]
    simulator = GpuWaveSim(circuit, library)
    plan = SlotPlan.cross(len(patterns), voltages)
    result = simulator.run(patterns.pairs, plan=plan, kernel_table=kernels)
    print(f"simulated {plan.num_slots} slots "
          f"({len(patterns)} patterns x {len(voltages)} voltages) "
          f"in {result.runtime_seconds:.3f}s")

    # 5. Latest transition arrival per operating point (Table II metric).
    report = latest_arrivals(result, circuit, plan=plan)
    print("\nV_DD    latest transition arrival")
    for voltage in voltages:
        print(f"{voltage:.2f} V  {si_format(report.at(voltage), unit='s')}")


if __name__ == "__main__":
    main()
