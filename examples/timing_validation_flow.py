#!/usr/bin/env python
"""A full sign-off-style timing validation flow (paper Fig. 2).

Covers the interchange-file path a real project would use:

1. write the design out as structural Verilog + SDF + SPEF,
2. read everything back (tool-to-tool handoff),
3. STA for the pessimistic bound, timing-aware ATPG for the longest
   paths (with false-path detection, the paper's '*' phenomenon),
4. glitch-accurate simulation of the pattern set across voltages,
5. compare simulated responses against zero-delay golden values.

Run:  python examples/timing_validation_flow.py
"""

import tempfile
from pathlib import Path

from repro import (
    GpuWaveSim,
    SlotPlan,
    StaticTimingAnalysis,
    ZeroDelaySimulator,
    characterize_library,
    generate_path_patterns,
    generate_transition_patterns,
    make_nangate15_library,
    parse_sdf,
    parse_spef,
    parse_verilog,
    random_circuit,
    write_sdf,
    write_spef,
    write_verilog,
)
from repro.analysis import capture_responses, compare_responses, latest_arrivals
from repro.netlist.sdf import annotate_nominal
from repro.simulation.compiled import compile_circuit
from repro.timing import k_longest_paths
from repro.timing.report import format_timing_report
from repro.units import si_format


def main() -> None:
    library = make_nangate15_library()
    kernels = characterize_library(library, n=3).compile()
    workdir = Path(tempfile.mkdtemp(prefix="repro_flow_"))

    # -- 1. design hand-off files --------------------------------------------
    design = random_circuit("block", num_inputs=20, num_gates=800, seed=33)
    loads = design.net_loads(library)
    annotation = annotate_nominal(design, library, loads=loads)
    (workdir / "block.v").write_text(write_verilog(design, library))
    (workdir / "block.sdf").write_text(write_sdf(design, library, annotation))
    (workdir / "block.spef").write_text(write_spef(design, loads))
    print(f"wrote Verilog/SDF/SPEF to {workdir}")

    # -- 2. read back, compile -------------------------------------------------
    circuit = parse_verilog((workdir / "block.v").read_text(), library)
    sdf = parse_sdf((workdir / "block.sdf").read_text(), library)
    spef = parse_spef((workdir / "block.spef").read_text())
    compiled = compile_circuit(circuit, library, annotation=sdf, loads=spef)

    # -- 3. STA + timing-aware ATPG ---------------------------------------------
    sta = StaticTimingAnalysis(circuit, library, compiled=compiled)
    arrivals = sta.analyze()
    paths = k_longest_paths(circuit, library, k=5, compiled=compiled)
    print("\n" + format_timing_report(arrivals, circuit.name, paths))

    base_patterns, coverage = generate_transition_patterns(
        circuit, library, max_pairs=64, fault_sample=1000)
    print(f"transition-fault ATPG: {len(base_patterns)} pairs, "
          f"{coverage:.0%} coverage of sampled faults")
    path_result = generate_path_patterns(circuit, library, k=40,
                                         compiled=compiled)
    print(f"timing-aware ATPG over 40 longest paths: "
          f"{len(path_result.tested_paths)} testable, "
          f"{len(path_result.false_paths)} false paths"
          + ("  <- all false: the paper's '*' case"
             if path_result.all_false else ""))
    base_patterns.extend(path_result.patterns)

    # -- 4. voltage-sweep simulation ----------------------------------------------
    voltages = [0.55, 0.8, 1.1]
    simulator = GpuWaveSim(circuit, library, compiled=compiled)
    plan = SlotPlan.cross(len(base_patterns), voltages)
    result = simulator.run(base_patterns.pairs, plan=plan,
                           kernel_table=kernels)
    report = latest_arrivals(result, circuit, plan=plan)
    print("\nlatest transition arrivals (STA bound: "
          f"{si_format(arrivals.longest_path, unit='s')}):")
    for voltage in voltages:
        print(f"  {voltage:.2f} V: {si_format(report.at(voltage), unit='s')}")

    # -- 5. response check against golden zero-delay values -------------------------
    golden = ZeroDelaySimulator(circuit, library).responses(
        base_patterns.v2_matrix())
    nominal_slots = plan.slots_for_voltage(0.8).tolist()
    check = compare_responses(
        result, circuit,
        golden[[int(plan.pattern_indices[s]) for s in nominal_slots]],
        slots=nominal_slots)
    print(f"\nresponse comparison at 0.8 V: "
          f"{'PASS' if check.passed else 'FAIL'} "
          f"({check.num_slots} slots x {check.num_outputs} outputs)")


if __name__ == "__main__":
    main()
