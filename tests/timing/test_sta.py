"""Tests for static timing analysis."""

import numpy as np
import pytest

from repro.errors import TimingError
from repro.netlist.circuit import Circuit
from repro.netlist.generate import random_circuit
from repro.netlist.sdf import SdfAnnotation
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.compiled import compile_circuit
from repro.simulation.gpu import GpuWaveSim
from repro.timing.sta import StaticTimingAnalysis


def chain_with_known_delays(library):
    """INV -> INV chain with hand-set rise/fall delays."""
    circuit = Circuit("chain")
    circuit.add_input("a")
    circuit.add_gate("g0", "INV_X1", ["a"], "n0")
    circuit.add_gate("g1", "INV_X1", ["n0"], "n1")
    circuit.add_output("n1")
    annotation = SdfAnnotation(design="chain")
    annotation.delays["g0"] = ((2e-12, 3e-12),)  # rise, fall
    annotation.delays["g1"] = ((5e-12, 7e-12),)
    compiled = compile_circuit(circuit, library, annotation=annotation)
    return circuit, compiled


class TestHandComputed:
    def test_inverting_chain_arrivals(self, library):
        circuit, compiled = chain_with_known_delays(library)
        sta = StaticTimingAnalysis(circuit, library, compiled=compiled)
        arrivals = sta.analyze()
        # n0 rise comes from a falling (negative unate): 0 + 2ps
        assert arrivals.rise["n0"] == pytest.approx(2e-12)
        assert arrivals.fall["n0"] == pytest.approx(3e-12)
        # n1 rise <- n0 fall + 5ps = 8ps ; n1 fall <- n0 rise + 7ps = 9ps
        assert arrivals.rise["n1"] == pytest.approx(8e-12)
        assert arrivals.fall["n1"] == pytest.approx(9e-12)
        assert arrivals.longest_path == pytest.approx(9e-12)
        assert arrivals.critical_output == "n1"
        assert arrivals.worst("n1") == pytest.approx(9e-12)

    def test_binate_uses_worst_input(self, library):
        circuit = Circuit("binate")
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("g0", "XOR2_X1", ["a", "b"], "y")
        circuit.add_output("y")
        annotation = SdfAnnotation(design="binate")
        annotation.delays["g0"] = ((1e-12, 2e-12), (3e-12, 4e-12))
        compiled = compile_circuit(circuit, library, annotation=annotation)
        arrivals = StaticTimingAnalysis(circuit, library,
                                        compiled=compiled).analyze()
        assert arrivals.rise["y"] == pytest.approx(3e-12)
        assert arrivals.fall["y"] == pytest.approx(4e-12)


class TestBoundsSimulation:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_sta_bounds_transport_simulation(self, library, seed, rng):
        circuit = random_circuit(f"sta{seed}", 10, 150, seed=seed)
        compiled = compile_circuit(circuit, library)
        sta = StaticTimingAnalysis(circuit, library, compiled=compiled)
        longest = sta.longest_path_delay()
        sim = GpuWaveSim(circuit, library, compiled=compiled,
                         config=SimulationConfig(pulse_filtering="transport"))
        pairs = [PatternPair.random(10, rng) for _ in range(30)]
        result = sim.run(pairs)
        worst = max(result.latest_arrival(s, circuit.outputs)
                    for s in range(30))
        assert worst <= longest + 1e-18

    def test_sta_pessimism_gap(self, library, medium_circuit, rng):
        """Table II shape: simulation arrives earlier than STA predicts."""
        compiled = compile_circuit(medium_circuit, library)
        longest = StaticTimingAnalysis(medium_circuit, library,
                                       compiled=compiled).longest_path_delay()
        sim = GpuWaveSim(medium_circuit, library, compiled=compiled)
        pairs = [PatternPair.random(len(medium_circuit.inputs), rng)
                 for _ in range(30)]
        worst = max(sim.run(pairs).latest_arrival(s, medium_circuit.outputs)
                    for s in range(30))
        assert worst < longest


class TestParametric:
    def test_voltage_derating_monotone(self, library, small_circuit,
                                       kernel_table):
        sta = StaticTimingAnalysis(small_circuit, library)
        delays = [sta.longest_path_delay(v, kernel_table)
                  for v in (0.55, 0.7, 0.9, 1.1)]
        assert delays == sorted(delays, reverse=True)

    def test_nominal_parametric_close_to_static(self, library, small_circuit,
                                                kernel_table):
        sta = StaticTimingAnalysis(small_circuit, library)
        static = sta.longest_path_delay()
        parametric = sta.longest_path_delay(0.8, kernel_table)
        assert parametric == pytest.approx(static, rel=0.02)

    def test_parametric_needs_voltage(self, library, small_circuit,
                                      kernel_table):
        sta = StaticTimingAnalysis(small_circuit, library)
        with pytest.raises(TimingError, match="voltage"):
            sta.analyze(kernel_table=kernel_table)
