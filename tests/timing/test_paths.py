"""Tests for polarity-aware K-longest path enumeration."""

import pytest

from repro.cells.cell import DrivePolarity
from repro.netlist.generate import random_circuit, ripple_carry_adder
from repro.simulation.compiled import compile_circuit
from repro.timing.paths import k_longest_paths
from repro.timing.sta import StaticTimingAnalysis


class TestRanking:
    @pytest.mark.parametrize("seed", [5, 9, 13])
    def test_top_path_equals_sta(self, library, seed):
        circuit = random_circuit(f"p{seed}", 12, 250, seed=seed)
        compiled = compile_circuit(circuit, library)
        paths = k_longest_paths(circuit, library, k=5, compiled=compiled)
        longest = StaticTimingAnalysis(circuit, library,
                                       compiled=compiled).longest_path_delay()
        assert paths[0].delay == pytest.approx(longest, rel=1e-12)

    def test_descending_order(self, library, medium_circuit):
        paths = k_longest_paths(medium_circuit, library, k=50)
        delays = [p.delay for p in paths]
        assert delays == sorted(delays, reverse=True)

    def test_k_larger_than_path_count(self, library):
        circuit = ripple_carry_adder(1)
        paths = k_longest_paths(circuit, library, k=10_000)
        assert 0 < len(paths) < 10_000

    def test_k_validation(self, library, small_circuit):
        with pytest.raises(ValueError):
            k_longest_paths(small_circuit, library, k=0)

    def test_expansion_limit(self, library, medium_circuit):
        from repro.errors import TimingError
        with pytest.raises(TimingError, match="expansions"):
            k_longest_paths(medium_circuit, library, k=10_000,
                            max_expansions=10)


class TestPathStructure:
    def test_paths_are_connected(self, library, small_circuit):
        compiled = compile_circuit(small_circuit, library)
        for path in k_longest_paths(small_circuit, library, k=10,
                                    compiled=compiled):
            assert path.start in small_circuit.inputs
            assert path.end in small_circuit.outputs
            assert len(path.nets) == len(path.gates) + 1
            assert len(path.polarities) == len(path.nets)
            for hop, gate_name in enumerate(path.gates):
                gate = small_circuit.gate(gate_name)
                assert gate.inputs[path.pins[hop]] == path.nets[hop]
                assert gate.output == path.nets[hop + 1]

    def test_delay_sums_edge_delays(self, library, small_circuit):
        compiled = compile_circuit(small_circuit, library)
        gate_index = {g.name: i for i, g in enumerate(small_circuit.gates)}
        for path in k_longest_paths(small_circuit, library, k=5,
                                    compiled=compiled):
            total = 0.0
            for hop, gate_name in enumerate(path.gates):
                out_pol = int(path.polarities[hop + 1])
                total += compiled.nominal_delays[
                    gate_index[gate_name], path.pins[hop], out_pol]
            assert path.delay == pytest.approx(total, rel=1e-12)

    def test_polarity_chain_consistent(self, library, small_circuit):
        """Polarity flips at negative-unate pins, stays at positive ones."""
        for path in k_longest_paths(small_circuit, library, k=10):
            for hop, gate_name in enumerate(path.gates):
                gate = small_circuit.gate(gate_name)
                cell = library[gate.cell]
                sense = cell.function.unateness(path.pins[hop])
                pol_in = path.polarities[hop]
                pol_out = path.polarities[hop + 1]
                if sense == "positive":
                    assert pol_out == pol_in
                elif sense == "negative":
                    assert pol_out != pol_in

    def test_launch_polarity_exposed(self, library, small_circuit):
        path = k_longest_paths(small_circuit, library, k=1)[0]
        assert path.launch_polarity in (DrivePolarity.RISE, DrivePolarity.FALL)
        assert len(path) == len(path.gates)
