"""Smoke tests for timing-report formatting."""

from repro.netlist.generate import random_circuit
from repro.timing.paths import k_longest_paths
from repro.timing.report import format_path, format_timing_report
from repro.timing.sta import StaticTimingAnalysis


class TestFormatting:
    def test_report_contains_key_facts(self, library):
        circuit = random_circuit("rep", 8, 60, seed=1)
        sta = StaticTimingAnalysis(circuit, library)
        arrivals = sta.analyze()
        paths = k_longest_paths(circuit, library, k=3)
        text = format_timing_report(arrivals, "rep", paths, voltage=0.8)
        assert "rep" in text
        assert "0.80 V" in text
        assert "Longest path delay" in text
        assert "#1" in text and "#3" in text

    def test_nominal_label(self, library):
        circuit = random_circuit("rep", 8, 60, seed=1)
        arrivals = StaticTimingAnalysis(circuit, library).analyze()
        assert "(nominal)" in format_timing_report(arrivals, "rep")

    def test_format_path_truncates_long_chains(self, library):
        circuit = random_circuit("rep", 8, 200, seed=2)
        path = k_longest_paths(circuit, library, k=1)[0]
        line = format_path(path, 1)
        assert line.startswith("#1 ")
        assert path.start in line
        assert path.end in line
