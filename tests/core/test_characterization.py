"""Tests for the Fig. 1 characterization flow A→D."""

import numpy as np
import pytest

from repro.cells.cell import DrivePolarity
from repro.core.characterization import (
    FIXED_GRID_EVALUATIONS,
    AdaptiveConfig,
    characterize_cell,
    characterize_library,
    characterize_pin,
)
from repro.core.parameters import ParameterSpace
from repro.electrical.spice import AnalyticalSpice
from repro.errors import CharacterizationError
from repro.units import FF


class TestPinCharacterization:
    @pytest.fixture(scope="class")
    def nor_rise(self, spice, library, space):
        cell = library["NOR2_X2"]
        return characterize_pin(spice, cell, cell.pins[0], DrivePolarity.RISE,
                                space=space, n=3)

    def test_zero_deviation_at_nominal(self, nor_rise, space):
        # f(v_nom, c) must be ~0 for every load: the deviation is defined
        # relative to the same-load nominal delay.
        for c in (0.5 * FF, 4 * FF, 64 * FF):
            assert abs(nor_rise.deviation(space.v_nom, c)) < 0.02

    def test_deviation_sign(self, nor_rise):
        assert nor_rise.deviation(0.55, 4 * FF) > 0.2   # slower at low V
        assert nor_rise.deviation(1.10, 4 * FF) < -0.1  # faster at high V

    def test_delay_matches_spice_within_percent(self, nor_rise, spice, library):
        cell = library["NOR2_X2"]
        for v in (0.6, 0.8, 1.0):
            for c in (1 * FF, 16 * FF):
                predicted = nor_rise.delay(v, c)
                actual = spice.model.pin_delay(cell, cell.pins[0],
                                               DrivePolarity.RISE, v, c)
                assert predicted == pytest.approx(actual, rel=0.03)

    def test_nominal_delay_interpolation(self, nor_rise):
        d2 = nor_rise.nominal_delay(2 * FF)
        d4 = nor_rise.nominal_delay(4 * FF)
        assert d2 < d4
        between = nor_rise.nominal_delay(np.sqrt(8.0) * FF)
        assert d2 < between < d4

    def test_evaluation_error_structure(self, nor_rise):
        mean, std, maximum = nor_rise.evaluation_error(32)
        assert 0 <= mean <= maximum
        assert std >= 0
        assert maximum < 0.05  # N=3 stays well under 5 %

    def test_paper_fig5_magnitudes(self, nor_rise):
        mean, _std, maximum = nor_rise.evaluation_error(64)
        # Paper: avg 0.38 %, max 2.41 % — same order of magnitude expected.
        assert mean < 0.01
        assert maximum < 0.03


class TestOrderTrend:
    def test_error_decreases_with_order(self, spice, library, space):
        cell = library["NAND2_X1"]
        maxima = []
        for n in (1, 2, 3):
            pc = characterize_pin(spice, cell, cell.pins[0],
                                  DrivePolarity.FALL, space=space, n=n)
            maxima.append(pc.evaluation_error(32)[2])
        assert maxima[0] > maxima[1] > maxima[2]

    def test_subsampling_changes_sample_count(self, spice, library, space):
        cell = library["INV_X1"]
        few = characterize_pin(spice, cell, cell.pins[0], DrivePolarity.RISE,
                               space=space, n=2, subsample_factor=1)
        many = characterize_pin(spice, cell, cell.pins[0], DrivePolarity.RISE,
                                space=space, n=2, subsample_factor=4)
        assert many.fit.sample_count > few.fit.sample_count


class TestCellAndLibrary:
    def test_cell_covers_all_pins_and_polarities(self, spice, library, space):
        cell = library["NAND3_X1"]
        result = characterize_cell(spice, cell, space=space, n=2)
        assert len(result.pins) == 6
        assert result.entry("A2", DrivePolarity.FALL).pin_index == 1
        with pytest.raises(KeyError):
            result.entry("B9", DrivePolarity.RISE)
        assert result.worst_fit_error() >= 0
        assert result.elapsed_seconds > 0

    def test_library_characterization(self, characterization, library):
        assert set(characterization.cells) == set(library.names())
        entries = list(characterization.all_entries())
        expected = sum(2 * cell.num_inputs for cell in library)
        assert len(entries) == expected

    def test_compile_produces_table(self, characterization, library):
        table = characterization.compile()
        assert table.num_types == len(library)
        assert table.n == characterization.n


@pytest.fixture(scope="module")
def adaptive_result(library):
    """Full-library adaptive characterization plus its SPICE eval count."""
    spice = AnalyticalSpice()
    result = characterize_library(library, spice, adaptive=AdaptiveConfig())
    return result, spice.delay_evaluations


class TestAdaptiveCharacterization:
    def test_accuracy_parity_matrix(self, adaptive_result, characterization):
        """Every Nangate15 entry stays at fixed-grid accuracy parity.

        Yardstick per entry: max |fit − reference| on the 64×64
        normalized probe, where the reference is the *fixed* grid's
        bilinear interpolation (the Fig. 4/5 error definition).  The
        adaptive fit may not be worse than 1.1× the fixed fit's own
        error (floored at 2 % of d_nom so near-exact fixed fits do not
        make the bound degenerate).
        """
        adaptive, _ = adaptive_result
        nv = np.linspace(0.0, 1.0, 64)[:, None]
        nc = np.linspace(0.0, 1.0, 64)[None, :]
        offenders = []
        for fixed_cell in characterization.cells.values():
            for fixed_entry in fixed_cell.pins:
                reference = fixed_entry.reference(nv, nc)
                fixed_error = float(np.abs(
                    fixed_entry.fit.polynomial.evaluate(nv, nc)
                    - reference).max())
                entry = adaptive.entry(fixed_entry.cell_name,
                                       fixed_entry.pin_name,
                                       fixed_entry.polarity)
                error = float(np.abs(
                    entry.fit.polynomial.evaluate(nv, nc) - reference).max())
                if error > max(1.1 * fixed_error, 0.02):
                    offenders.append((fixed_entry.cell_name,
                                      fixed_entry.pin_name,
                                      fixed_entry.polarity.name,
                                      error, fixed_error))
        assert not offenders, f"{len(offenders)} entries: {offenders[:5]}"

    def test_library_error_within_paper_thresholds(self, adaptive_result):
        # The Fig. 4 headline bounds (avg max < 2.7 %, worst < 5.35 %)
        # must hold for the adaptive fits against their own references.
        adaptive, _ = adaptive_result
        maxima = [entry.evaluation_error(64)[2]
                  for entry in adaptive.all_entries()]
        assert float(np.mean(maxima)) < 0.027
        assert float(np.max(maxima)) < 0.0535

    def test_at_least_3x_fewer_evaluations(self, adaptive_result):
        adaptive, performed = adaptive_result
        entries = list(adaptive.all_entries())
        fixed_total = FIXED_GRID_EVALUATIONS * len(entries)
        assert performed == adaptive.total_evaluations()
        assert fixed_total >= 3 * performed

    def test_budget_respected_per_entry(self, adaptive_result):
        adaptive, _ = adaptive_result
        config = AdaptiveConfig()
        seed = (len(config.seed_voltage_fractions) + 1) * \
            len(config.seed_load_fractions)
        for entry in adaptive.all_entries():
            assert seed <= entry.evaluations <= config.budget

    def test_auto_order_selection_varies(self, adaptive_result):
        adaptive, _ = adaptive_result
        orders = {entry.fit.polynomial.n for entry in adaptive.all_entries()}
        assert orders <= {1, 2, 3, 4}
        assert adaptive.n == max(orders)

    def test_fixed_order_override(self, library):
        subset = library.select(["INV"])
        result = characterize_library(
            subset, AnalyticalSpice(), adaptive=AdaptiveConfig(order=2))
        assert {entry.fit.polynomial.n
                for entry in result.all_entries()} == {2}

    def test_mixed_order_compile_pads_coefficients(self, adaptive_result):
        adaptive, _ = adaptive_result
        table = adaptive.compile()
        assert table.n == adaptive.n
        side = table.n + 1
        # A lower-order entry's coefficients land zero-padded at the
        # high-power end; Horner evaluation is then bit-identical.
        for entry in adaptive.all_entries():
            coeffs = entry.fit.polynomial.coefficients
            if coeffs.shape[0] < side:
                break
        else:
            pytest.skip("library selected one order everywhere")
        nv = np.linspace(0.0, 1.0, 7)
        padded = np.zeros((side, side))
        padded[:coeffs.shape[0], :coeffs.shape[1]] = coeffs
        from repro.core.polynomial import SurfacePolynomial
        np.testing.assert_array_equal(
            SurfacePolynomial(padded).evaluate(nv[:, None], nv[None, :]),
            entry.fit.polynomial.evaluate(nv[:, None], nv[None, :]))

    def test_config_validation(self):
        with pytest.raises(CharacterizationError):
            AdaptiveConfig(target_error=0.0)
        with pytest.raises(CharacterizationError):
            AdaptiveConfig(budget=10)  # smaller than the seed grid
        with pytest.raises(CharacterizationError):
            AdaptiveConfig(order=7)

    def test_tighter_target_spends_more(self, library, space):
        spice = AnalyticalSpice()
        cell = library["NOR2_X2"]
        loose = characterize_pin(
            spice, cell, cell.pins[0], DrivePolarity.RISE, space=space,
            adaptive=AdaptiveConfig(target_error=0.05, budget=80))
        tight = characterize_pin(
            spice, cell, cell.pins[0], DrivePolarity.RISE, space=space,
            adaptive=AdaptiveConfig(target_error=0.005, budget=80))
        assert tight.evaluations >= loose.evaluations


class TestParallelCharacterization:
    def test_pooled_matches_inline(self, library):
        subset = library.select(["INV", "NAND2", "NOR2"])
        inline = characterize_library(subset, AnalyticalSpice(),
                                      adaptive=AdaptiveConfig())
        pooled = characterize_library(subset, AnalyticalSpice(),
                                      adaptive=AdaptiveConfig(), workers=4)
        assert set(pooled.cells) == set(inline.cells)
        for name, cell_char in inline.cells.items():
            for a, b in zip(cell_char.pins, pooled.cells[name].pins):
                np.testing.assert_array_equal(
                    a.fit.polynomial.coefficients,
                    b.fit.polynomial.coefficients)

    def test_injected_fit_failure_surfaces(self, library):
        from repro import faults
        subset = library.select(["INV"])
        with faults.injected("charz.fit:raise@n=1"):
            with pytest.raises(Exception) as info:
                characterize_library(subset, AnalyticalSpice())
        assert "charz.fit" in str(info.value)

    def test_pool_survives_worker_death(self, library):
        from repro import faults
        subset = library.select(["INV", "NAND2"])
        with faults.injected("charz.fit:die@n=1"):
            result = characterize_library(subset, AnalyticalSpice(),
                                          workers=2)
        assert set(result.cells) == {cell.name for cell in subset}
