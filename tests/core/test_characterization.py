"""Tests for the Fig. 1 characterization flow A→D."""

import numpy as np
import pytest

from repro.cells.cell import DrivePolarity
from repro.core.characterization import (
    characterize_cell,
    characterize_library,
    characterize_pin,
)
from repro.core.parameters import ParameterSpace
from repro.units import FF


class TestPinCharacterization:
    @pytest.fixture(scope="class")
    def nor_rise(self, spice, library, space):
        cell = library["NOR2_X2"]
        return characterize_pin(spice, cell, cell.pins[0], DrivePolarity.RISE,
                                space=space, n=3)

    def test_zero_deviation_at_nominal(self, nor_rise, space):
        # f(v_nom, c) must be ~0 for every load: the deviation is defined
        # relative to the same-load nominal delay.
        for c in (0.5 * FF, 4 * FF, 64 * FF):
            assert abs(nor_rise.deviation(space.v_nom, c)) < 0.02

    def test_deviation_sign(self, nor_rise):
        assert nor_rise.deviation(0.55, 4 * FF) > 0.2   # slower at low V
        assert nor_rise.deviation(1.10, 4 * FF) < -0.1  # faster at high V

    def test_delay_matches_spice_within_percent(self, nor_rise, spice, library):
        cell = library["NOR2_X2"]
        for v in (0.6, 0.8, 1.0):
            for c in (1 * FF, 16 * FF):
                predicted = nor_rise.delay(v, c)
                actual = spice.model.pin_delay(cell, cell.pins[0],
                                               DrivePolarity.RISE, v, c)
                assert predicted == pytest.approx(actual, rel=0.03)

    def test_nominal_delay_interpolation(self, nor_rise):
        d2 = nor_rise.nominal_delay(2 * FF)
        d4 = nor_rise.nominal_delay(4 * FF)
        assert d2 < d4
        between = nor_rise.nominal_delay(np.sqrt(8.0) * FF)
        assert d2 < between < d4

    def test_evaluation_error_structure(self, nor_rise):
        mean, std, maximum = nor_rise.evaluation_error(32)
        assert 0 <= mean <= maximum
        assert std >= 0
        assert maximum < 0.05  # N=3 stays well under 5 %

    def test_paper_fig5_magnitudes(self, nor_rise):
        mean, _std, maximum = nor_rise.evaluation_error(64)
        # Paper: avg 0.38 %, max 2.41 % — same order of magnitude expected.
        assert mean < 0.01
        assert maximum < 0.03


class TestOrderTrend:
    def test_error_decreases_with_order(self, spice, library, space):
        cell = library["NAND2_X1"]
        maxima = []
        for n in (1, 2, 3):
            pc = characterize_pin(spice, cell, cell.pins[0],
                                  DrivePolarity.FALL, space=space, n=n)
            maxima.append(pc.evaluation_error(32)[2])
        assert maxima[0] > maxima[1] > maxima[2]

    def test_subsampling_changes_sample_count(self, spice, library, space):
        cell = library["INV_X1"]
        few = characterize_pin(spice, cell, cell.pins[0], DrivePolarity.RISE,
                               space=space, n=2, subsample_factor=1)
        many = characterize_pin(spice, cell, cell.pins[0], DrivePolarity.RISE,
                                space=space, n=2, subsample_factor=4)
        assert many.fit.sample_count > few.fit.sample_count


class TestCellAndLibrary:
    def test_cell_covers_all_pins_and_polarities(self, spice, library, space):
        cell = library["NAND3_X1"]
        result = characterize_cell(spice, cell, space=space, n=2)
        assert len(result.pins) == 6
        assert result.entry("A2", DrivePolarity.FALL).pin_index == 1
        with pytest.raises(KeyError):
            result.entry("B9", DrivePolarity.RISE)
        assert result.worst_fit_error() >= 0
        assert result.elapsed_seconds > 0

    def test_library_characterization(self, characterization, library):
        assert set(characterization.cells) == set(library.names())
        entries = list(characterization.all_entries())
        expected = sum(2 * cell.num_inputs for cell in library)
        assert len(entries) == expected

    def test_compile_produces_table(self, characterization, library):
        table = characterization.compile()
        assert table.num_types == len(library)
        assert table.n == characterization.n
