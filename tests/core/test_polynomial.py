"""Tests for surface polynomials (Eq. 4) and Horner evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.polynomial import SurfacePolynomial, design_matrix, term_exponents


class TestStructure:
    def test_orders(self):
        poly = SurfacePolynomial(np.zeros((4, 4)))
        assert poly.n == 3
        assert poly.order == 6
        assert poly.num_coefficients == 16

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            SurfacePolynomial(np.zeros((2, 3)))

    def test_vector_round_trip(self):
        coeffs = np.arange(9, dtype=float).reshape(3, 3)
        poly = SurfacePolynomial(coeffs)
        restored = SurfacePolynomial.from_vector(poly.to_vector())
        assert np.array_equal(restored.coefficients, coeffs)

    def test_bad_vector_length(self):
        with pytest.raises(ValueError, match="not square"):
            SurfacePolynomial.from_vector([1.0, 2.0, 3.0])

    def test_term_exponents_order(self):
        assert term_exponents(1) == ((0, 0), (0, 1), (1, 0), (1, 1))
        with pytest.raises(ValueError):
            term_exponents(-1)


class TestEvaluation:
    def test_constant(self):
        poly = SurfacePolynomial([[2.5]])
        assert poly.evaluate(0.3, 0.7) == pytest.approx(2.5)

    def test_known_bilinear(self):
        # f(v, c) = 1 + 2c + 3v + 4vc
        poly = SurfacePolynomial([[1.0, 2.0], [3.0, 4.0]])
        assert poly.evaluate(0.5, 0.25) == pytest.approx(1 + 0.5 + 1.5 + 0.5)

    def test_horner_equals_naive_random(self, rng):
        for n in (1, 2, 3, 4, 5):
            coeffs = rng.normal(size=(n + 1, n + 1))
            poly = SurfacePolynomial(coeffs)
            v = rng.uniform(0, 1, size=40)
            c = rng.uniform(0, 1, size=40)
            np.testing.assert_allclose(
                poly.evaluate(v, c), poly.evaluate_naive(v, c), rtol=1e-11
            )

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=4),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_horner_equals_naive_property(self, n, v, c, seed):
        coeffs = np.random.default_rng(seed).uniform(-2, 2, size=(n + 1, n + 1))
        poly = SurfacePolynomial(coeffs)
        assert poly.evaluate(v, c) == pytest.approx(
            poly.evaluate_naive(v, c), rel=1e-9, abs=1e-12
        )

    def test_broadcasting(self):
        poly = SurfacePolynomial([[0.0, 1.0], [1.0, 0.0]])  # c + v
        v = np.asarray([[0.1], [0.2]])
        c = np.asarray([[0.3, 0.4]])
        result = poly.evaluate(v, c)
        assert result.shape == (2, 2)
        assert result[1, 0] == pytest.approx(0.5)

    def test_callable(self):
        poly = SurfacePolynomial([[1.0]])
        assert poly(0.0, 0.0) == 1.0

    def test_scalar_returns_float(self):
        poly = SurfacePolynomial([[1.0, 1.0], [1.0, 1.0]])
        assert isinstance(poly.evaluate(0.5, 0.5), float)


class TestDesignMatrix:
    def test_first_column_all_ones(self, rng):
        v = rng.uniform(0, 1, 10)
        c = rng.uniform(0, 1, 10)
        matrix = design_matrix(v, c, 3)
        assert matrix.shape == (10, 16)
        assert np.allclose(matrix[:, 0], 1.0)

    def test_entries_match_exponents(self, rng):
        v = rng.uniform(0, 1, 5)
        c = rng.uniform(0, 1, 5)
        n = 2
        matrix = design_matrix(v, c, n)
        for column, (i, j) in enumerate(term_exponents(n)):
            np.testing.assert_allclose(matrix[:, column], v**i * c**j)

    def test_matrix_times_beta_equals_eval(self, rng):
        n = 3
        coeffs = rng.normal(size=(n + 1, n + 1))
        poly = SurfacePolynomial(coeffs)
        v = rng.uniform(0, 1, 20)
        c = rng.uniform(0, 1, 20)
        matrix = design_matrix(v, c, n)
        np.testing.assert_allclose(
            matrix @ poly.to_vector(), poly.evaluate(v, c), rtol=1e-10
        )

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="same length"):
            design_matrix(np.zeros(3), np.zeros(4), 1)


class TestCalculus:
    def test_partial_v(self):
        # f = v^2 c  -> df/dv = 2 v c
        coeffs = np.zeros((3, 3))
        coeffs[2, 1] = 1.0
        dv = SurfacePolynomial(coeffs).partial_v()
        assert dv.evaluate(0.5, 0.4) == pytest.approx(2 * 0.5 * 0.4)

    def test_partial_c(self):
        coeffs = np.zeros((3, 3))
        coeffs[1, 2] = 3.0  # f = 3 v c^2 -> df/dc = 6 v c
        dc = SurfacePolynomial(coeffs).partial_c()
        assert dc.evaluate(0.5, 0.5) == pytest.approx(6 * 0.25)

    def test_addition(self):
        a = SurfacePolynomial([[1.0]])
        b = SurfacePolynomial([[0.0, 1.0], [0.0, 0.0]])
        total = a + b
        assert total.evaluate(0.0, 0.5) == pytest.approx(1.5)
