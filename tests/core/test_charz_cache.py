"""Tests for the fingerprint-keyed persistent coefficient cache."""

import os

import numpy as np
import pytest

from repro.core.characterization import (
    AdaptiveConfig,
    characterize_cell,
    characterize_cell_cached,
    characterize_library,
)
from repro.core.charz_cache import CACHE_ENV, CoefficientCache, default_cache_dir
from repro.electrical.model import TransistorCorner
from repro.electrical.spice import AnalyticalSpice
from repro.runtime.fingerprint import characterization_fingerprint


@pytest.fixture(autouse=True)
def fresh_memo():
    """Isolate the process-wide memo per test."""
    CoefficientCache.clear_memo()
    yield
    CoefficientCache.clear_memo()


@pytest.fixture
def cache(tmp_path):
    return CoefficientCache(str(tmp_path / "charz"))


FLOW = {"mode": "fixed", "n": 2, "subsample_factor": 4, "method": "auto"}


class TestFingerprint:
    def test_deterministic(self, library, space):
        corner = TransistorCorner.typical()
        cell = library["INV_X1"]
        a = characterization_fingerprint(cell, corner, space, FLOW)
        b = characterization_fingerprint(cell, corner, space, FLOW)
        assert a == b
        assert len(a) == 64  # sha-256 hex

    def test_sensitive_to_every_input(self, library, space):
        corner = TransistorCorner.typical()
        cell = library["INV_X1"]
        base = characterization_fingerprint(cell, corner, space, FLOW)
        assert characterization_fingerprint(
            library["INV_X2"], corner, space, FLOW) != base
        assert characterization_fingerprint(
            cell, TransistorCorner.slow(), space, FLOW) != base
        assert characterization_fingerprint(
            cell, corner.at_temperature(125.0), space, FLOW) != base
        assert characterization_fingerprint(
            cell, corner, space, dict(FLOW, n=3)) != base

    def test_adaptive_flow_distinct_from_fixed(self, library, space):
        corner = TransistorCorner.typical()
        cell = library["INV_X1"]
        adaptive_flow = dict(FLOW, mode="adaptive", budget=36)
        assert characterization_fingerprint(
            cell, corner, space, adaptive_flow) != \
            characterization_fingerprint(cell, corner, space, FLOW)


class TestRoundTrip:
    def test_disk_round_trip_is_exact(self, library, space, cache):
        cell = library["NAND2_X1"]
        spice = AnalyticalSpice()
        original = characterize_cell(spice, cell, space=space, n=2)
        cache.put("k" * 64, original)
        CoefficientCache.clear_memo()  # force the disk path
        loaded = cache.get("k" * 64, cell, space)
        assert loaded is not None
        assert cache.stats()["disk_hits"] == 1
        for a, b in zip(original.pins, loaded.pins):
            assert a.pin_name == b.pin_name
            assert a.polarity == b.polarity
            assert a.evaluations == b.evaluations
            np.testing.assert_array_equal(
                a.fit.polynomial.coefficients, b.fit.polynomial.coefficients)
            np.testing.assert_array_equal(a.sweep.delays, b.sweep.delays)
            # The rebuilt bilinear reference answers identically.
            assert a.reference(0.3, 0.7) == pytest.approx(b.reference(0.3, 0.7))

    def test_memo_returns_same_object(self, library, space, cache):
        cell = library["INV_X1"]
        original = characterize_cell(AnalyticalSpice(), cell, space=space, n=1)
        cache.put("m" * 64, original)
        assert cache.get("m" * 64, cell, space) is original
        assert cache.stats()["memo_hits"] == 1

    def test_miss_and_corrupt_file(self, library, space, cache):
        cell = library["INV_X1"]
        assert cache.get("a" * 64, cell, space) is None
        assert cache.stats()["misses"] == 1
        original = characterize_cell(AnalyticalSpice(), cell, space=space, n=1)
        cache.put("a" * 64, original)
        CoefficientCache.clear_memo()
        path = cache._path("a" * 64)
        with open(path, "wb") as stream:
            stream.write(b"not an npz archive")
        assert cache.get("a" * 64, cell, space) is None
        assert not os.path.exists(path)  # corrupt entries are dropped

    def test_unwritable_directory_degrades_to_memo(self, library, space, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("file where the directory should be")
        cache = CoefficientCache(str(blocker / "sub"))
        cell = library["INV_X1"]
        original = characterize_cell(AnalyticalSpice(), cell, space=space, n=1)
        cache.put("b" * 64, original)  # must not raise
        assert cache.get("b" * 64, cell, space) is original


class TestWarmLibrary:
    def test_warm_cache_performs_zero_evaluations(self, library, cache):
        subset = library.select(["INV", "NAND2"])
        config = AdaptiveConfig()
        characterize_library(subset, AnalyticalSpice(), adaptive=config,
                             cache=cache)
        CoefficientCache.clear_memo()  # fresh-process equivalent
        spice = AnalyticalSpice()
        warm = characterize_library(subset, spice, adaptive=config,
                                    cache=cache)
        assert spice.delay_evaluations == 0
        assert spice.transient_runs == 0
        # Charged evaluations survive the round trip for reporting.
        assert warm.total_evaluations() > 0

    def test_flow_change_invalidates(self, library, cache):
        subset = library.select(["INV"])
        characterize_library(subset, AnalyticalSpice(), n=2, cache=cache)
        spice = AnalyticalSpice()
        characterize_library(subset, spice, n=3, cache=cache)
        assert spice.delay_evaluations > 0

    def test_path_like_cache_argument(self, library, tmp_path):
        subset = library.select(["INV"])
        characterize_library(subset, AnalyticalSpice(),
                             cache=str(tmp_path / "d"))
        CoefficientCache.clear_memo()
        spice = AnalyticalSpice()
        characterize_library(subset, spice, cache=str(tmp_path / "d"))
        assert spice.delay_evaluations == 0


class TestCellCached:
    def test_fills_then_hits(self, library, space, cache):
        cell = library["NOR2_X1"]
        spice = AnalyticalSpice()
        first = characterize_cell_cached(spice, cell, cache, space=space, n=2)
        evals = spice.delay_evaluations
        assert evals > 0
        second = characterize_cell_cached(spice, cell, cache, space=space, n=2)
        assert spice.delay_evaluations == evals
        assert second is first  # memo layer returns the same object

    def test_no_cache_recomputes(self, library, space):
        cell = library["INV_X1"]
        spice = AnalyticalSpice()
        characterize_cell_cached(spice, cell, None, space=space, n=1)
        evals = spice.delay_evaluations
        characterize_cell_cached(spice, cell, None, space=space, n=1)
        assert spice.delay_evaluations == 2 * evals


class TestDefaultDir:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, "/tmp/somewhere")
        assert default_cache_dir() == "/tmp/somewhere"
        monkeypatch.delenv(CACHE_ENV)
        assert default_cache_dir().endswith(os.path.join("repro", "charz"))
