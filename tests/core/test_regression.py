"""Tests for the OLS regression (Eq. 5–8)."""

import numpy as np
import pytest

from repro.core.polynomial import SurfacePolynomial
from repro.core.regression import fit_polynomial, select_half_order
from repro.errors import RegressionError


def grid_samples(count=12):
    v, c = np.meshgrid(np.linspace(0, 1, count), np.linspace(0, 1, count),
                       indexing="ij")
    return v.ravel(), c.ravel()


class TestExactRecovery:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_recovers_exact_polynomial(self, n, rng):
        truth = SurfacePolynomial(rng.normal(size=(n + 1, n + 1)))
        v, c = grid_samples()
        y = truth.evaluate(v, c)
        fit = fit_polynomial(v, c, y, n=n)
        np.testing.assert_allclose(
            fit.polynomial.coefficients, truth.coefficients, rtol=1e-7, atol=1e-9
        )
        assert fit.max_abs_error < 1e-9
        assert fit.r_squared == pytest.approx(1.0)

    def test_overfit_order_still_exact(self, rng):
        truth = SurfacePolynomial(rng.normal(size=(2, 2)))
        v, c = grid_samples()
        y = truth.evaluate(v, c)
        fit = fit_polynomial(v, c, y, n=3, method="auto")
        assert fit.max_abs_error < 1e-8

    def test_methods_agree(self, rng):
        v, c = grid_samples()
        y = np.sin(3 * v) * np.exp(c)  # non-polynomial target
        normal = fit_polynomial(v, c, y, n=3, method="normal")
        lstsq = fit_polynomial(v, c, y, n=3, method="lstsq")
        np.testing.assert_allclose(
            normal.polynomial.coefficients, lstsq.polynomial.coefficients,
            rtol=1e-6, atol=1e-9,
        )


class TestDiagnostics:
    def test_error_decreases_with_order(self):
        v, c = grid_samples(16)
        y = 1.0 / (1.2 - v) + 0.1 * c  # rational, like the alpha-power law
        errors = [fit_polynomial(v, c, y, n=n).rms_error for n in (1, 2, 3, 4)]
        assert errors == sorted(errors, reverse=True)

    def test_residual_statistics_consistent(self, rng):
        v, c = grid_samples()
        y = v**2 + 0.5 * c + rng.normal(scale=1e-3, size=v.size)
        fit = fit_polynomial(v, c, y, n=2)
        assert fit.mean_abs_error <= fit.max_abs_error
        assert fit.rms_error <= fit.max_abs_error
        assert 0.99 < fit.r_squared <= 1.0
        assert fit.sample_count == v.size
        assert fit.solve_seconds >= 0.0

    def test_regression_runtime_is_milliseconds(self):
        # The paper reports 1-40 ms per entry; ours must stay in that class.
        v, c = grid_samples(45)  # 2025 samples, like a 4x-subsampled grid
        y = 1.0 / (1.3 - v) + 0.2 * c
        fit = fit_polynomial(v, c, y, n=3)
        assert fit.solve_seconds < 0.5

    def test_ridge_shrinks_coefficients(self):
        v, c = grid_samples()
        y = 5 * v * c
        plain = fit_polynomial(v, c, y, n=2, ridge=0.0)
        ridged = fit_polynomial(v, c, y, n=2, ridge=10.0)
        assert np.abs(ridged.polynomial.coefficients).sum() < \
            np.abs(plain.polynomial.coefficients).sum()


class TestOrderSelection:
    @pytest.mark.parametrize("true_n", [1, 2, 3])
    def test_recovers_true_order(self, true_n, rng):
        truth = SurfacePolynomial(rng.normal(size=(true_n + 1, true_n + 1)))
        v, c = grid_samples(16)
        y = truth.evaluate(v, c)
        selection = select_half_order(v, c, y)
        # Higher orders fit an exact polynomial equally well (within the
        # tolerance), so the tie-break must pick the smallest.
        assert selection.n == true_n

    def test_noise_prevents_overfit(self, rng):
        truth = SurfacePolynomial(rng.normal(size=(2, 2)))
        v, c = grid_samples(8)
        y = truth.evaluate(v, c) + rng.normal(scale=0.05, size=v.size)
        selection = select_half_order(v, c, y)
        assert selection.n <= 2

    def test_cv_errors_reported_per_candidate(self, rng):
        v, c = grid_samples(12)
        y = v**2 + c
        selection = select_half_order(v, c, y, candidates=(1, 2, 3))
        assert set(selection.cv_errors) == {1, 2, 3}
        assert all(err >= 0 for err in selection.cv_errors.values())
        # A rational target keeps improving with order; the selected
        # candidate must be within tolerance of the best CV error.
        best = min(selection.cv_errors.values())
        assert selection.cv_errors[selection.n] <= best * 1.05 + 1e-12

    def test_infeasible_candidates_skipped(self):
        # 12 samples cannot train a fold for n=4 ((4+1)^2 = 25 > fold
        # size); the selection must fall back to the feasible orders.
        v, c = grid_samples(4)  # 16 samples, 12 per training fold
        y = v + c
        selection = select_half_order(v, c, y, candidates=(1, 4))
        assert selection.n == 1
        assert 4 not in selection.cv_errors

    def test_no_feasible_candidate_raises(self):
        v = np.linspace(0, 1, 6)
        c = np.linspace(0, 1, 6)
        with pytest.raises(RegressionError, match="feasible"):
            select_half_order(v, c, v + c, candidates=(4,))


class TestValidation:
    def test_too_few_samples(self):
        with pytest.raises(RegressionError, match="at least"):
            fit_polynomial(np.zeros(3), np.zeros(3), np.zeros(3), n=2)

    def test_length_mismatch(self):
        with pytest.raises(RegressionError, match="equal sample counts"):
            fit_polynomial(np.zeros(5), np.zeros(5), np.zeros(4), n=1)

    def test_unknown_method(self):
        v, c = grid_samples(4)
        with pytest.raises(RegressionError, match="unknown regression method"):
            fit_polynomial(v, c, np.zeros_like(v), n=1, method="magic")

    def test_singular_normal_equations_fallback(self):
        # All samples at one point -> singular X^T X; 'auto' must fall back.
        v = np.full(16, 0.5)
        c = np.full(16, 0.5)
        y = np.ones(16)
        fit = fit_polynomial(v, c, y, n=1, method="auto")
        assert fit.method == "lstsq"
        with pytest.raises(RegressionError, match="singular"):
            fit_polynomial(v, c, y, n=1, method="normal")
