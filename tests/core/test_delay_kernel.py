"""Tests for compiled delay-kernel tables (Sec. III-D / IV-A)."""

import numpy as np
import pytest

from repro.cells.cell import DrivePolarity
from repro.core.delay_kernel import MIN_DELAY, DelayKernelTable, horner2d
from repro.core.polynomial import SurfacePolynomial
from repro.units import FF


class TestHorner2d:
    def test_matches_surface_polynomial(self, rng):
        coeffs = rng.normal(size=(4, 4))
        poly = SurfacePolynomial(coeffs)
        v = rng.uniform(0, 1, 10)
        c = rng.uniform(0, 1, 10)
        np.testing.assert_allclose(horner2d(coeffs, v, c), poly.evaluate(v, c),
                                   rtol=1e-12)

    def test_batched_coefficients(self, rng):
        coeffs = rng.normal(size=(5, 3, 3))  # five polynomials
        v = 0.4
        c = 0.6
        batched = horner2d(coeffs, v, c)
        assert batched.shape == (5,)
        for k in range(5):
            expected = SurfacePolynomial(coeffs[k]).evaluate(v, c)
            assert batched[k] == pytest.approx(expected)


class TestTableStructure:
    def test_indexing(self, kernel_table, library):
        assert kernel_table.num_types == len(library)
        assert kernel_table.max_pins == 4
        assert kernel_table.n == 3
        assert kernel_table.order == 6
        type_id = kernel_table.type_id("NAND2_X1")
        assert type_id == library.type_id("NAND2_X1")
        assert kernel_table.pin_counts[type_id] == 2

    def test_unknown_cell(self, kernel_table):
        from repro.errors import CharacterizationError
        with pytest.raises(CharacterizationError):
            kernel_table.type_id("NAND9_X9")

    def test_memory_footprint_is_small(self, kernel_table):
        # The paper: coefficient memory is negligible vs waveforms.
        assert kernel_table.memory_bytes < 1_000_000  # < 1 MB for 69 cells


class TestKernelEvaluation:
    def test_deviation_matches_characterization(self, kernel_table,
                                                characterization, library):
        cell = library["NOR2_X2"]
        type_id = kernel_table.type_id(cell.name)
        entry = characterization.entry(cell.name, "A1", DrivePolarity.RISE)
        for v in (0.6, 0.8, 1.05):
            table_dev = kernel_table.deviation(type_id, 0, DrivePolarity.RISE,
                                               v, 4 * FF)
            char_dev = entry.deviation(v, 4 * FF)
            assert float(table_dev) == pytest.approx(float(char_dev), rel=1e-10)

    def test_delay_eq9(self, kernel_table):
        type_id = kernel_table.type_id("INV_X1")
        d_nom = 5e-12
        deviation = float(kernel_table.deviation(type_id, 0, DrivePolarity.FALL,
                                                 0.6, 2 * FF))
        delay = float(kernel_table.delay(d_nom, type_id, 0, DrivePolarity.FALL,
                                         0.6, 2 * FF))
        assert delay == pytest.approx(d_nom * (1 + deviation))

    def test_delay_clipped_at_floor(self, kernel_table):
        type_id = kernel_table.type_id("INV_X1")
        # A tiny nominal delay cannot go to zero or negative.
        delay = float(kernel_table.delay(1e-18, type_id, 0, DrivePolarity.RISE,
                                         1.1, 0.5 * FF))
        assert delay >= MIN_DELAY

    def test_batch_matches_scalar(self, kernel_table, rng):
        gates = 7
        type_ids = rng.integers(0, kernel_table.num_types, size=gates)
        loads = rng.uniform(1, 100, size=gates) * FF
        nominal = rng.uniform(1, 20, size=(gates, kernel_table.max_pins, 2)) * 1e-12
        voltages = np.asarray([0.6, 0.8, 1.0])
        batch = kernel_table.delays_for_gates(type_ids, loads, nominal, voltages)
        assert batch.shape == (gates, kernel_table.max_pins, 2, 3)
        for g in rng.choice(gates, size=3, replace=False):
            pins = int(kernel_table.pin_counts[type_ids[g]])
            for pin in range(pins):
                for pol in (DrivePolarity.RISE, DrivePolarity.FALL):
                    for s, v in enumerate(voltages):
                        scalar = kernel_table.delay(
                            nominal[g, pin, int(pol)], int(type_ids[g]),
                            pin, pol, v, loads[g])
                        assert batch[g, pin, int(pol), s] == pytest.approx(
                            float(scalar), rel=1e-12)


class TestPersistence:
    def test_save_load_round_trip(self, kernel_table, tmp_path):
        path = str(tmp_path / "kernels.npz")
        kernel_table.save(path)
        restored = DelayKernelTable.load(path)
        np.testing.assert_array_equal(restored.coefficients,
                                      kernel_table.coefficients)
        assert restored.type_names == kernel_table.type_names
        assert restored.space == kernel_table.space

    def test_invalid_shape_rejected(self, kernel_table):
        from repro.errors import CharacterizationError
        with pytest.raises(CharacterizationError):
            DelayKernelTable(
                coefficients=np.zeros((2, 4, 3, 4, 4)),  # polarity dim != 2
                pin_counts=np.asarray([1, 2]),
                type_names=("A", "B"),
                space=kernel_table.space,
            )
