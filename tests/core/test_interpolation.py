"""Tests for grid interpolation, sub-sampling and the LUT delay model."""

import numpy as np
import pytest

from repro.core.interpolation import GridInterpolator, LutDelayModel, subsample
from repro.units import FF


def simple_grid():
    x = np.asarray([0.0, 1.0, 2.0])
    y = np.asarray([0.0, 2.0])
    values = np.asarray([[0.0, 2.0], [1.0, 3.0], [2.0, 4.0]])  # x + y
    return GridInterpolator(x, y, values)


class TestGridInterpolator:
    def test_exact_at_samples(self):
        interp = simple_grid()
        assert interp(1.0, 2.0) == pytest.approx(3.0)
        assert interp(0.0, 0.0) == pytest.approx(0.0)

    def test_bilinear_midpoints(self):
        interp = simple_grid()
        assert interp(0.5, 1.0) == pytest.approx(1.5)

    def test_linear_function_reproduced_everywhere(self, rng):
        interp = simple_grid()
        xs = rng.uniform(0, 2, 50)
        ys = rng.uniform(0, 2, 50)
        np.testing.assert_allclose(interp(xs, ys), xs + ys, rtol=1e-12)

    def test_clamped_extrapolation(self):
        interp = simple_grid()
        assert interp(-1.0, 0.0) == pytest.approx(0.0)
        assert interp(5.0, 5.0) == pytest.approx(4.0)

    def test_broadcasting(self):
        interp = simple_grid()
        result = interp(np.asarray([[0.0], [1.0]]), np.asarray([[0.0, 2.0]]))
        assert result.shape == (2, 2)

    @pytest.mark.parametrize("x, y, z", [
        (np.asarray([]), np.asarray([0.0, 1.0]), np.zeros((0, 2))),
        (np.asarray([0.0, 1.0]), np.asarray([0.0, 1.0]), np.zeros((3, 2))),
        (np.asarray([1.0, 0.0]), np.asarray([0.0, 1.0]), np.zeros((2, 2))),
    ])
    def test_invalid_grids(self, x, y, z):
        with pytest.raises(ValueError):
            GridInterpolator(x, y, z)

    def test_single_row_grid_is_flat_along_x(self):
        # The adaptive sampler starts from partial grids; a lone voltage
        # line must interpolate as a constant along the missing axis.
        interp = GridInterpolator(np.asarray([0.5]), np.asarray([0.0, 1.0]),
                                  np.asarray([[1.0, 3.0]]))
        for x in (-1.0, 0.0, 0.5, 2.0):
            assert interp(x, 0.5) == pytest.approx(2.0)
        np.testing.assert_allclose(
            interp(np.asarray([0.0, 1.0]), np.asarray([0.0, 1.0])),
            [1.0, 3.0])

    def test_single_column_grid_is_flat_along_y(self):
        interp = GridInterpolator(np.asarray([0.0, 2.0]), np.asarray([0.7]),
                                  np.asarray([[1.0], [5.0]]))
        assert interp(1.0, -3.0) == pytest.approx(3.0)
        assert interp(1.0, 9.0) == pytest.approx(3.0)

    def test_single_point_grid(self):
        interp = GridInterpolator(np.asarray([0.3]), np.asarray([0.7]),
                                  np.asarray([[4.2]]))
        assert interp(0.0, 0.0) == pytest.approx(4.2)
        assert interp(1.0, 1.0) == pytest.approx(4.2)


class TestSubsample:
    def test_preserves_original_samples(self):
        interp = simple_grid()
        x, y, values = subsample(interp, 4)
        for i, xv in enumerate(interp.x_axis):
            for j, yv in enumerate(interp.y_axis):
                xi = int(np.argmin(np.abs(x - xv)))
                yi = int(np.argmin(np.abs(y - yv)))
                assert values[xi, yi] == pytest.approx(interp.values[i, j])

    def test_density(self):
        interp = simple_grid()
        x, y, values = subsample(interp, 4)
        assert len(x) == (len(interp.x_axis) - 1) * 4 + 1
        assert len(y) == (len(interp.y_axis) - 1) * 4 + 1
        assert values.shape == (len(x), len(y))

    def test_factor_one_is_identity(self):
        interp = simple_grid()
        x, y, values = subsample(interp, 1)
        np.testing.assert_array_equal(x, interp.x_axis)
        np.testing.assert_allclose(values, interp.values)

    def test_bad_factor(self):
        with pytest.raises(ValueError):
            subsample(simple_grid(), 0)

    def test_linear_surface_interpolated_exactly(self):
        interp = simple_grid()
        x, y, values = subsample(interp, 3)
        expected = x[:, None] + y[None, :]
        np.testing.assert_allclose(values, expected, rtol=1e-12)

    def test_round_trip_through_densified_grid(self):
        # Subsampling, re-wrapping, and querying at the original nodes
        # must reproduce the original values exactly: the densified grid
        # contains the original samples as knots.
        interp = simple_grid()
        dense = GridInterpolator(*subsample(interp, 4))
        queried = dense(interp.x_axis[:, None], interp.y_axis[None, :])
        np.testing.assert_allclose(queried, interp.values, rtol=1e-12)

    def test_single_row_grid_subsamples(self):
        interp = GridInterpolator(np.asarray([0.5]), np.asarray([0.0, 1.0]),
                                  np.asarray([[1.0, 3.0]]))
        x, y, values = subsample(interp, 4)
        assert len(x) == 1
        assert len(y) == 5
        np.testing.assert_allclose(values[0], [1.0, 1.5, 2.0, 2.5, 3.0])


class TestLutDelayModel:
    def test_matches_grid_samples(self, spice, library):
        from repro.cells.cell import DrivePolarity
        cell = library["NAND2_X1"]
        grid = spice.sweep(cell, cell.pins[0], DrivePolarity.RISE)
        lut = LutDelayModel(grid.voltages, grid.loads, grid.delays)
        assert lut.delay(0.8, 2 * FF) == pytest.approx(grid.delay_at(0.8, 2 * FF))
        assert lut.table_entries == grid.delays.size

    def test_interpolates_between_loads_logarithmically(self, spice, library):
        from repro.cells.cell import DrivePolarity
        cell = library["INV_X1"]
        grid = spice.sweep(cell, cell.pins[0], DrivePolarity.FALL)
        lut = LutDelayModel(grid.voltages, grid.loads, grid.delays)
        between = lut.delay(0.8, np.sqrt(2.0 * 4.0) * FF)  # log-midpoint of 2,4 fF
        bounds = sorted([grid.delay_at(0.8, 2 * FF), grid.delay_at(0.8, 4 * FF)])
        assert bounds[0] <= between <= bounds[1]
        mid = 0.5 * (bounds[0] + bounds[1])
        assert between == pytest.approx(mid, rel=1e-6)
