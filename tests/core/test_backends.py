"""Tests for the alternative delay-model backends."""

import numpy as np
import pytest

from repro.cells.cell import DrivePolarity
from repro.core.backends import AnalyticalDelayBackend, LutDelayBackend
from repro.electrical.model import TransistorCorner
from repro.netlist.generate import random_circuit
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.compiled import compile_circuit
from repro.simulation.gpu import GpuWaveSim
from repro.units import FF


@pytest.fixture(scope="module")
def lut_backend(characterization):
    return LutDelayBackend.from_characterization(characterization)


@pytest.fixture(scope="module")
def analytical_backend(characterization):
    return AnalyticalDelayBackend.from_corner(
        TransistorCorner.typical(), characterization.space)


def batch_query(backend, kernel_table, rng, voltages):
    gates = 12
    type_ids = rng.integers(0, kernel_table.num_types, size=gates)
    loads = rng.uniform(1, 100, size=gates) * FF
    nominal = rng.uniform(1, 20, size=(gates, kernel_table.max_pins, 2)) * 1e-12
    return backend.delays_for_gates(type_ids, loads, nominal,
                                    np.asarray(voltages))


class TestLutBackend:
    def test_shape_contract(self, lut_backend, kernel_table, rng):
        result = batch_query(lut_backend, kernel_table, rng, [0.6, 0.8, 1.0])
        assert result.shape == (12, kernel_table.max_pins, 2, 3)
        assert np.all(result > 0)

    def test_matches_reference_at_grid_points(self, lut_backend,
                                              characterization):
        """On sweep grid points the LUT reproduces the reference exactly."""
        entry = characterization.entry("NOR2_X2", "A1", DrivePolarity.RISE)
        type_id = lut_backend.type_names.index("NOR2_X2")
        d_nom = 7e-12
        for v in (0.6, 0.8, 1.05):
            for c in (2 * FF, 32 * FF):
                got = lut_backend.delays_for_gates(
                    np.asarray([type_id]), np.asarray([c]),
                    np.full((1, 4, 2), d_nom), np.asarray([v]))[0, 0, 0, 0]
                reference = d_nom * (1.0 + entry.reference(
                    float(characterization.space.normalize_voltage(v)),
                    float(characterization.space.normalize_load(c))))
                assert got == pytest.approx(reference, rel=1e-9)

    def test_agrees_with_polynomial_kernels(self, lut_backend, kernel_table,
                                            rng):
        poly = batch_query(kernel_table, kernel_table, rng, [0.6, 0.9])
        rng2 = np.random.default_rng(12345)
        lut = batch_query(lut_backend, kernel_table, rng2, [0.6, 0.9])
        relative = np.abs(poly / lut - 1.0)
        assert np.median(relative) < 0.01
        assert relative.max() < 0.1

    def test_memory_cost_exceeds_kernels(self, lut_backend, kernel_table):
        """The Sec. II trade-off: LUT storage dwarfs the coefficients."""
        assert lut_backend.memory_bytes > 5 * kernel_table.memory_bytes

    def test_drop_in_for_simulation(self, lut_backend, kernel_table, library):
        """The parallel engine accepts the LUT backend unchanged, and its
        waveforms match the polynomial kernels to sub-picosecond shifts."""
        from repro.analysis.compare import compare_results
        circuit = random_circuit("lutsim", 8, 80, seed=41)
        compiled = compile_circuit(circuit, library)
        rng = np.random.default_rng(41)
        pairs = [PatternPair.random(8, rng) for _ in range(5)]
        config = SimulationConfig(record_all_nets=True)
        sim = GpuWaveSim(circuit, library, config=config, compiled=compiled)
        with_poly = sim.run(pairs, voltage=0.65, kernel_table=kernel_table)
        with_lut = sim.run(pairs, voltage=0.65, kernel_table=lut_backend)
        report = compare_results(with_poly, with_lut, time_tolerance=2e-12)
        assert report.shape_clean or not report.mismatches


class TestAnalyticalBackend:
    def test_shape_contract(self, analytical_backend, kernel_table, rng):
        result = batch_query(analytical_backend, kernel_table, rng,
                             [0.55, 0.8, 1.1])
        assert result.shape == (12, kernel_table.max_pins, 2, 3)

    def test_zero_deviation_at_nominal(self, analytical_backend, rng,
                                       kernel_table):
        nominal = rng.uniform(1, 20, size=(3, 4, 2)) * 1e-12
        result = analytical_backend.delays_for_gates(
            np.arange(3), np.full(3, 4 * FF), nominal, np.asarray([0.8]))
        np.testing.assert_allclose(result[..., 0], nominal, rtol=1e-12)

    def test_monotone_in_voltage(self, analytical_backend, kernel_table, rng):
        result = batch_query(analytical_backend, kernel_table, rng,
                             [0.55, 0.7, 0.9, 1.1])
        assert np.all(np.diff(result, axis=-1) < 0)

    def test_coarser_than_polynomial(self, analytical_backend, kernel_table,
                                     lut_backend, rng):
        """The analytical model ignores load dependence, so it deviates
        more from the LUT reference than the learned polynomials do —
        the accuracy gap the paper's approach closes."""
        seeds = np.random.default_rng(7)
        gates = 40
        type_ids = seeds.integers(0, kernel_table.num_types, size=gates)
        loads = seeds.uniform(1, 120, size=gates) * FF
        nominal = np.full((gates, kernel_table.max_pins, 2), 5e-12)
        voltages = np.asarray([0.55, 1.1])
        reference = lut_backend.delays_for_gates(type_ids, loads, nominal,
                                                 voltages)
        poly = kernel_table.delays_for_gates(type_ids, loads, nominal,
                                             voltages)
        analytic = analytical_backend.delays_for_gates(type_ids, loads,
                                                       nominal, voltages)
        err_poly = np.abs(poly / reference - 1.0).mean()
        err_analytic = np.abs(analytic / reference - 1.0).mean()
        assert err_poly < err_analytic
