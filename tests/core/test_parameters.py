"""Tests for operating points, parameter space and normalizations."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.parameters import OperatingPoint, ParameterSpace
from repro.errors import ParameterError
from repro.units import FF


class TestOperatingPoint:
    def test_valid(self):
        point = OperatingPoint(voltage=0.8, load=2 * FF)
        assert "0.800 V" in str(point)

    @pytest.mark.parametrize("v, c", [(0.0, 1e-15), (-0.5, 1e-15), (0.8, 0.0)])
    def test_invalid(self, v, c):
        with pytest.raises(ParameterError):
            OperatingPoint(voltage=v, load=c)

    def test_ordering(self):
        assert OperatingPoint(0.6, 1e-15) < OperatingPoint(0.8, 1e-15)


class TestParameterSpace:
    def test_paper_default(self, space):
        assert space.v_min == 0.55
        assert space.v_max == 1.10
        assert space.v_nom == 0.80
        assert space.c_min == pytest.approx(0.5 * FF)
        assert space.c_max == pytest.approx(128 * FF)

    @pytest.mark.parametrize("kwargs", [
        {"v_min": 0.9, "v_max": 0.8},
        {"c_min": 2e-15, "c_max": 1e-15},
        {"v_nom": 1.5},
    ])
    def test_invalid_spaces(self, kwargs):
        with pytest.raises(ParameterError):
            ParameterSpace(**kwargs)

    def test_contains_and_require(self, space):
        inside = OperatingPoint(0.8, 4 * FF)
        outside = OperatingPoint(1.3, 4 * FF)
        assert space.contains(inside)
        assert not space.contains(outside)
        assert space.require(inside) is inside
        with pytest.raises(ParameterError, match="outside"):
            space.require(outside)


class TestNormalizations:
    def test_voltage_endpoints(self, space):
        assert space.normalize_voltage(0.55) == pytest.approx(0.0)
        assert space.normalize_voltage(1.10) == pytest.approx(1.0)

    def test_load_endpoints_logarithmic(self, space):
        assert space.normalize_load(0.5 * FF) == pytest.approx(0.0)
        assert space.normalize_load(128 * FF) == pytest.approx(1.0)
        # geometric midpoint 8 fF maps to the middle of [0, 1]
        assert space.normalize_load(8 * FF) == pytest.approx(0.5)

    @given(st.floats(min_value=0.55, max_value=1.10))
    def test_voltage_round_trip(self, v):
        space = ParameterSpace.paper_default()
        assert float(space.denormalize_voltage(space.normalize_voltage(v))) == \
            pytest.approx(v, rel=1e-12)

    @given(st.floats(min_value=0.5e-15, max_value=128e-15))
    def test_load_round_trip(self, c):
        space = ParameterSpace.paper_default()
        assert float(space.denormalize_load(space.normalize_load(c))) == \
            pytest.approx(c, rel=1e-9)

    def test_delay_deviation(self, space):
        assert space.normalize_delay(1.2e-12, 1.0e-12) == pytest.approx(0.2)
        assert space.normalize_delay(1.0e-12, 1.0e-12) == pytest.approx(0.0)

    def test_delay_round_trip_is_eq9(self, space):
        d_nom = 3.3e-12
        deviation = space.normalize_delay(4.0e-12, d_nom)
        assert float(space.denormalize_delay(deviation, d_nom)) == \
            pytest.approx(4.0e-12)

    def test_normalize_point(self, space):
        nv, nc = space.normalize_point(OperatingPoint(0.8, 8 * FF))
        assert 0.0 <= nv <= 1.0
        assert nc == pytest.approx(0.5)


class TestGrids:
    def test_voltage_grid(self, space):
        grid = space.voltage_grid(12)
        assert len(grid) == 12
        assert grid[0] == pytest.approx(0.55)
        assert grid[-1] == pytest.approx(1.10)

    def test_load_grid_log_spaced(self, space):
        grid = space.load_grid(9)
        ratios = grid[1:] / grid[:-1]
        assert np.allclose(ratios, ratios[0])

    def test_evaluation_grid_shapes(self, space):
        voltages, loads = space.evaluation_grid(64)
        assert len(voltages) == 64
        assert len(loads) == 64

    def test_tiny_grid_rejected(self, space):
        with pytest.raises(ParameterError):
            space.voltage_grid(1)
