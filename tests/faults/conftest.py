"""Fault-suite isolation: every test starts with injection disarmed.

The fault plan is process-wide state (deliberately — seams must be one
global load on the hot path), so each test here clears any activation
stack it left behind and shields itself from an ambient ``REPRO_FAULTS``
(the chaos CI job sets one for the *service* suite; the deterministic
assertions in this suite need full control of the plan).
"""

import pytest

from repro import faults


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.reset()
    yield
    faults.reset()
