"""Fault-plan unit tests: spec grammar, triggers, determinism, activation."""

import numpy as np
import pytest

from repro import faults
from repro.errors import InjectedFaultError, ReproError
from repro.faults.plan import FaultPlan, FaultRule, WorkerDeathError
from repro.service.cache import waveform_checksum
from repro.waveform.waveform import Waveform


def make_waveforms(slots=2, nets=2):
    return [
        {f"n{j}": Waveform.trusted(0, np.array([1e-9 * (i + j + 1), 2e-9],
                                               dtype=np.float64))
         for j in range(nets)}
        for i in range(slots)
    ]


class TestSpecGrammar:
    def test_round_trip(self):
        spec = ("seed=11; backend.run_levels:raise@n=3; "
                "cache.get:corrupt@p=0.25; service.demux:delay@p=0.1,ms=5")
        plan = FaultPlan.from_spec(spec)
        assert plan.seed == 11
        assert len(plan.rules) == 3
        assert FaultPlan.from_spec(plan.to_spec()).to_spec() == plan.to_spec()

    def test_empty_spec_is_empty_plan(self):
        plan = FaultPlan.from_spec("")
        assert plan.rules == ()
        assert plan.enact("cache.get") is None

    def test_count_and_ms_round_trip(self):
        rule = FaultRule(site="service.demux", kind="delay", nth=2, count=3,
                         ms=7.5)
        again = FaultPlan.from_spec(rule.to_spec()).rules[0]
        assert again == rule

    @pytest.mark.parametrize("bad", [
        "nonsense",                          # no site:kind shape
        "bogus.site:raise@n=1",              # unknown site
        "cache.get:explode@n=1",             # unknown kind
        "cache.get:raise@n=1,zz=2",          # unknown parameter
        "cache.get:raise",                   # no trigger at all
        "cache.get:raise@n=1,p=0.5",         # two triggers
        "cache.get:raise@p=0",               # probability out of range
        "cache.get:raise@n=0",               # nth is 1-based
    ])
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ReproError):
            FaultPlan.from_spec(bad)


class TestTriggers:
    def test_nth_call_is_exact(self):
        plan = FaultPlan.from_spec("service.demux:raise@n=3")
        assert plan.enact("service.demux") is None
        assert plan.enact("service.demux") is None
        with pytest.raises(InjectedFaultError) as info:
            plan.enact("service.demux")
        assert info.value.site == "service.demux"
        for _ in range(10):
            assert plan.enact("service.demux") is None
        assert plan.calls("service.demux") == 13

    def test_nth_count_covers_consecutive_calls(self):
        plan = FaultPlan.from_spec("engine.alloc:raise@n=2,count=2")
        assert plan.enact("engine.alloc") is None
        for _ in range(2):
            with pytest.raises(InjectedFaultError):
                plan.enact("engine.alloc")
        assert plan.enact("engine.alloc") is None

    def test_sites_count_independently(self):
        plan = FaultPlan.from_spec("cache.get:raise@n=1")
        assert plan.enact("service.demux") is None
        with pytest.raises(InjectedFaultError):
            plan.enact("cache.get")
        assert plan.stats()["calls"] == {"service.demux": 1, "cache.get": 1}

    def test_probability_is_seeded_deterministic(self):
        def firing_pattern(seed):
            plan = FaultPlan.from_spec(f"seed={seed}; cache.get:raise@p=0.3")
            fired = []
            for index in range(200):
                try:
                    plan.enact("cache.get")
                except InjectedFaultError:
                    fired.append(index)
            return fired

        first = firing_pattern(7)
        assert first, "p=0.3 over 200 calls must fire at least once"
        assert firing_pattern(7) == first
        assert firing_pattern(8) != first

    def test_die_raises_worker_death(self):
        plan = FaultPlan.from_spec("backend.run_levels:die@n=1")
        with pytest.raises(WorkerDeathError):
            plan.enact("backend.run_levels")
        # Deliberately not an Exception: hardening layers that isolate
        # job failures with `except Exception` must never absorb it.
        assert not issubclass(WorkerDeathError, Exception)

    def test_delay_sleeps_and_reports_rule(self):
        plan = FaultPlan.from_spec("service.demux:delay@n=1,ms=1")
        rule = plan.enact("service.demux")
        assert rule is not None and rule.kind == "delay"
        assert plan.stats()["fired"] == {"service.demux:delay": 1}


class TestCorruption:
    def test_corrupt_flips_exactly_one_bit(self):
        waveforms = make_waveforms()
        before = waveform_checksum(waveforms)
        plan = FaultPlan.from_spec("seed=3; cache.get:corrupt@n=1")
        plan.enact("cache.get", corruptible=waveforms)
        assert waveform_checksum(waveforms) != before

    def test_corrupt_quiet_result_inverts_initial(self):
        waveforms = [{"q": Waveform.trusted(
            0, np.array([], dtype=np.float64))}]
        plan = FaultPlan.from_spec("cache.get:corrupt@n=1")
        plan.enact("cache.get", corruptible=waveforms)
        assert waveforms[0]["q"].initial == 1

    def test_corrupt_without_target_is_noop(self):
        plan = FaultPlan.from_spec("cache.get:corrupt@n=1")
        assert plan.enact("cache.get", corruptible=None).kind == "corrupt"


class TestActivation:
    def test_trip_is_noop_without_plan(self):
        assert faults.active_plan() is None
        assert faults.trip("service.demux") is None

    def test_injected_scopes_activation(self):
        with faults.injected("cache.get:raise@n=1") as plan:
            assert faults.active_plan() is plan
            with pytest.raises(InjectedFaultError):
                faults.trip("cache.get")
        assert faults.active_plan() is None

    def test_activation_stack_restores_shadowed_plan(self):
        outer = faults.activate("cache.get:raise@n=1")
        inner = faults.activate("service.demux:raise@n=1")
        assert faults.active_plan() is inner
        faults.deactivate()
        assert faults.active_plan() is outer
        faults.deactivate()
        assert faults.active_plan() is None

    def test_ensure_only_arms_when_idle(self):
        faults.ensure("cache.get:raise@n=5")
        first = faults.active_plan()
        faults.ensure("service.demux:raise@n=5")
        assert faults.active_plan() is first

    def test_env_plan_resolves_lazily(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "cache.get:raise@n=1")
        faults.reset()
        with pytest.raises(InjectedFaultError):
            faults.trip("cache.get")
        # An explicit activation shadows the env plan...
        with faults.injected(""):
            assert faults.trip("cache.get") is None
        # ...and popping it restores the env-resolved plan (call counts
        # intact: the next crossing is the 2nd, past n=1).
        assert faults.trip("cache.get") is None
