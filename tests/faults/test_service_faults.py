"""End-to-end fault matrix: the hardened service under an injected storm.

The load-bearing acceptance test is ``test_fault_matrix_64_jobs``: a
64-job run absorbing a worker death, a hung worker, a repeated native
kernel fault and a corrupted cache entry, where every job still
succeeds and every waveform is bit-identical to the fault-free run.
"""

import io
import json
import time

import numpy as np
import pytest

from repro import faults
from repro.errors import (
    CircuitOpenError,
    InjectedFaultError,
    JobCancelledError,
    JobDeadlineError,
)
from repro.netlist.generate import random_circuit
from repro.service import ServiceConfig, SimulationService
from repro.simulation.backend import available_backends
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.compiled import compile_circuit


@pytest.fixture(scope="module")
def circuit():
    return random_circuit("hrd", 10, 90, seed=23)


@pytest.fixture(scope="module")
def compiled(circuit, library):
    return compile_circuit(circuit, library)


def make_jobs(circuit, count, pairs_each=2, seed=0):
    rng = np.random.default_rng(seed)
    return [[PatternPair.random(len(circuit.inputs), rng)
             for _ in range(pairs_each)] for _ in range(count)]


def hardened_config(**overrides):
    """Flush on fullness only; aggressive supervision for fast tests."""
    # delta_bases=0: the base ring shares the ``cache.get`` fault seam
    # (every submission's base lookup counts a seam crossing), which
    # would shift this file's deterministic nth-call triggers; the
    # delta path has its own chaos coverage in the delta suites.
    defaults = dict(max_batch_slots=8, max_wait_ms=2000.0, idle_ms=500.0,
                    workers=1, cache_entries=256, hang_timeout_s=0.5,
                    supervisor_tick_s=0.02, delta_bases=0)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def run_service(circuit, library, compiled, jobs, service_config,
                **submit_kwargs):
    with SimulationService(config=service_config) as service:
        key = service.register_circuit(circuit, library, compiled=compiled)
        handles = [service.submit(key, pairs, **submit_kwargs)
                   for pairs in jobs]
        results = [handle.result(timeout=120) for handle in handles]
    return results


def assert_same_waveforms(reference, result):
    assert reference.num_slots == result.num_slots
    for slot in range(reference.num_slots):
        ref_nets = reference.waveforms[slot]
        got_nets = result.waveforms[slot]
        assert set(ref_nets) == set(got_nets)
        for net, ref in ref_nets.items():
            got = got_nets[net]
            assert got.initial == ref.initial, (slot, net)
            assert np.array_equal(got.times, ref.times), (slot, net)


class TestFaultMatrix:
    #: One worker death, one repeated kernel fault (absorbed by poison
    #: isolation at the numpy demotion floor), one hung demux, and a
    #: corrupted cache entry on the first hit.  Single worker + flush on
    #: fullness keep every nth-call trigger on a deterministic batch.
    PLAN = ("seed=11; backend.run_levels:die@n=3; "
            "backend.run_levels:raise@n=7,count=2; "
            "service.demux:hang@n=10,ms=1500; "
            "cache.get:corrupt@n=1")

    def test_fault_matrix_64_jobs(self, circuit, library, compiled):
        jobs = make_jobs(circuit, 64, seed=2)
        baseline = run_service(circuit, library, compiled, jobs,
                               hardened_config())

        with faults.injected(self.PLAN) as plan:
            with SimulationService(config=hardened_config()) as service:
                key = service.register_circuit(circuit, library,
                                               compiled=compiled)
                handles = [service.submit(key, pairs) for pairs in jobs]
                results = [handle.result(timeout=120) for handle in handles]
                # First cache hit: the corrupt rule rots the entry, the
                # checksum catches it, and the job silently recomputes.
                redo = service.submit(key, jobs[0]).result(timeout=120)
                metrics = service.metrics()

        # Every job survived the storm...
        assert metrics.jobs_completed == 65
        assert metrics.jobs_failed == 0
        # ...bit-identical to the fault-free run.
        for ref, got in zip(baseline, results):
            assert_same_waveforms(ref, got)
        assert not redo.cache_hit
        assert_same_waveforms(baseline[0], redo)

        # The storm actually happened, and the metrics show it.
        fired = plan.stats()["fired"]
        assert fired["backend.run_levels:die"] == 1
        assert fired["backend.run_levels:raise"] == 2
        assert fired["service.demux:hang"] == 1
        assert fired["cache.get:corrupt"] == 1
        assert metrics.workers_replaced == 2
        assert metrics.workers_hung == 1
        assert metrics.batches_requeued == 2
        assert metrics.integrity_evictions == 1

    def test_poison_fault_fails_exactly_one_job(self, circuit, library,
                                                compiled):
        jobs = make_jobs(circuit, 6, seed=4)
        baseline = run_service(circuit, library, compiled, jobs,
                               hardened_config(max_batch_slots=2))
        with faults.injected("service.demux:raise@n=3"):
            with SimulationService(
                    config=hardened_config(max_batch_slots=2)) as service:
                key = service.register_circuit(circuit, library,
                                               compiled=compiled)
                handles = [service.submit(key, pairs) for pairs in jobs]
                outcomes = [handle.exception(timeout=120)
                            for handle in handles]
                metrics = service.metrics()
        failures = [i for i, exc in enumerate(outcomes) if exc is not None]
        assert failures == [2]
        assert isinstance(outcomes[2], InjectedFaultError)
        assert metrics.jobs_failed == 1
        assert metrics.jobs_completed == 5
        for index, handle in enumerate(handles):
            if index != 2:
                assert_same_waveforms(baseline[index],
                                      handle.result(timeout=1))


class TestCircuitBreaker:
    def test_open_half_open_close_transitions(self, circuit, library,
                                              compiled):
        jobs = make_jobs(circuit, 8, seed=6)
        config = hardened_config(max_batch_slots=2, breaker_failures=2,
                                 breaker_reset_s=0.3)
        with SimulationService(config=config) as service:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            # Healthy traffic first (also seeds the cache).
            assert service.submit(key, jobs[0]).result(timeout=60)

            with faults.injected("service.demux:raise@p=1"):
                for pairs in jobs[1:3]:
                    exc = service.submit(key, pairs).exception(timeout=60)
                    assert isinstance(exc, InjectedFaultError)
                # Two consecutive failures: the group's breaker is open.
                with pytest.raises(CircuitOpenError) as info:
                    service.submit(key, jobs[3])
                assert info.value.retry_after_seconds > 0
                # Cache hits bypass the breaker entirely.
                assert service.submit(key, jobs[0]).result(timeout=60)

                # Half-open: one probe gets through — and fails.
                time.sleep(0.35)
                exc = service.submit(key, jobs[4]).exception(timeout=60)
                assert isinstance(exc, InjectedFaultError)
                with pytest.raises(CircuitOpenError):
                    service.submit(key, jobs[5])

            # Fault cleared: the next probe closes the breaker.
            time.sleep(0.35)
            assert service.submit(key, jobs[6]).result(timeout=60)
            assert service.submit(key, jobs[7]).result(timeout=60)
            metrics = service.metrics()

        assert metrics.breaker_rejections >= 2
        states = {stats["state"] for stats in metrics.breakers.values()}
        assert states == {"closed"}
        assert any(stats["times_opened"] == 2
                   for stats in metrics.breakers.values())


def blocking_config():
    """A service whose batcher never flushes on its own (held jobs)."""
    return hardened_config(max_batch_slots=4096, max_wait_ms=60_000.0,
                           idle_ms=60_000.0)


class TestDeadlinesAndCancellation:
    def test_deadline_fails_queued_job(self, circuit, library, compiled):
        jobs = make_jobs(circuit, 1, seed=8)
        with SimulationService(config=blocking_config()) as service:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            handle = service.submit(key, jobs[0], deadline_ms=80)
            exc = handle.exception(timeout=30)
            assert isinstance(exc, JobDeadlineError)
            assert exc.deadline_ms == 80
            metrics = service.metrics()
        assert metrics.jobs_timed_out == 1
        assert metrics.jobs_failed == 0

    def test_deadline_must_be_positive(self, circuit, library, compiled):
        from repro.errors import ServiceError
        jobs = make_jobs(circuit, 1, seed=8)
        with SimulationService(config=blocking_config()) as service:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            with pytest.raises(ServiceError, match="deadline_ms"):
                service.submit(key, jobs[0], deadline_ms=0)

    def test_cancel_settles_job_and_releases_backlog(self, circuit, library,
                                                     compiled):
        jobs = make_jobs(circuit, 2, seed=9)
        with SimulationService(config=blocking_config()) as service:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            handle = service.submit(key, jobs[0])
            assert handle.cancel() is True
            assert handle.cancel() is False  # already settled
            assert isinstance(handle.exception(timeout=5), JobCancelledError)
            metrics = service.metrics()
        assert metrics.jobs_cancelled == 1

    def test_cancel_after_completion_returns_false(self, circuit, library,
                                                   compiled):
        jobs = make_jobs(circuit, 1, seed=10)
        with SimulationService(config=hardened_config()) as service:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            handle = service.submit(key, jobs[0])
            handle.result(timeout=60)
            assert handle.cancel() is False


class TestServeJsonlDeadline:
    def test_timeout_response_is_structured(self, library):
        from repro.cli import _load_circuit
        from repro.service import ServiceClient, serve_jsonl
        with SimulationService(config=blocking_config()) as service:
            client = ServiceClient(service, library, _load_circuit,
                                   backend="numpy")
            out = io.StringIO()
            line = json.dumps({"id": "t", "circuit": "random:60:2",
                               "patterns": 2, "deadline_ms": 60})
            status = serve_jsonl(io.StringIO(line + "\n"), out, client)
        assert status == 0
        response = json.loads(out.getvalue().strip())
        assert response["id"] == "t"
        assert not response["ok"]
        assert response["timeout"] is True
        assert response["deadline_ms"] == 60
        assert "JobDeadlineError" in response["error"]


class TestServiceDemotion:
    @pytest.mark.skipif("cext" not in available_backends(),
                        reason="needs the C extension backend")
    def test_demotion_reaches_label_report_and_metrics(self, circuit,
                                                       library, compiled):
        jobs = make_jobs(circuit, 4, seed=12)
        baseline = run_service(
            circuit, library, compiled, jobs, hardened_config(),
            config=SimulationConfig(backend="numpy"))
        with faults.injected("backend.run_levels:raise@n=1"):
            results = run_service(
                circuit, library, compiled, jobs, hardened_config(),
                config=SimulationConfig(backend="cext", demote_after=1))
        assert any("demoted:cext->numpy" in result.engine
                   for result in results)
        demoted = [r for r in results if "demoted" in r.engine]
        assert demoted
        for result in demoted:
            assert result.report.backend == "numpy"
            assert result.report.backend_demotions == ["cext->numpy"]
        for ref, got in zip(baseline, results):
            assert_same_waveforms(ref, got)
