"""Engine-layer fault handling: seams, retry absorption, backend demotion."""

import numpy as np
import pytest

from repro import faults
from repro.errors import InjectedFaultError
from repro.netlist.generate import random_circuit
from repro.simulation import backend as backend_mod
from repro.simulation.backend import available_backends, demote_backend
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.compiled import compile_circuit
from repro.simulation.gpu import GpuWaveSim


@pytest.fixture(scope="module")
def circuit():
    return random_circuit("flt", 8, 60, seed=3)


@pytest.fixture(scope="module")
def compiled(circuit, library):
    return compile_circuit(circuit, library)


def make_pairs(circuit, count=4, seed=0):
    rng = np.random.default_rng(seed)
    return [PatternPair.random(len(circuit.inputs), rng)
            for _ in range(count)]


def make_engine(circuit, library, compiled, **config_kwargs):
    config_kwargs.setdefault("backend", "numpy")
    return GpuWaveSim(circuit, library, compiled=compiled,
                      config=SimulationConfig(**config_kwargs))


class TestDemotionLadder:
    def test_demote_walks_to_next_loadable_rung(self):
        floor = demote_backend("cext")
        assert floor is not None  # numba may be absent; numpy never is
        assert floor.name in ("numba", "numpy")
        assert demote_backend("numpy") is None

    def test_transient_kernel_fault_is_retried_in_place(self, circuit,
                                                        library, compiled):
        engine = make_engine(circuit, library, compiled, demote_after=2)
        pairs = make_pairs(circuit)
        baseline = engine.run(pairs)
        with faults.injected("backend.run_levels:raise@n=1"):
            result = engine.run(pairs)
        assert engine.backend.name == "numpy"
        assert engine.last_stats.retries >= 1
        assert engine.demotions == []
        for slot in range(len(baseline.waveforms)):
            for net, ref in baseline.waveforms[slot].items():
                got = result.waveforms[slot][net]
                assert got.initial == ref.initial
                assert np.array_equal(got.times, ref.times)

    def test_fault_at_numpy_floor_propagates(self, circuit, library,
                                             compiled):
        engine = make_engine(circuit, library, compiled, demote_after=1)
        with faults.injected("engine.alloc:raise@n=1"):
            with pytest.raises(InjectedFaultError) as info:
                engine.run(make_pairs(circuit))
        assert info.value.site == "engine.alloc"

    @pytest.mark.skipif("cext" not in available_backends(),
                        reason="needs the C extension backend")
    def test_native_faults_demote_to_numpy(self, circuit, library, compiled):
        engine = make_engine(circuit, library, compiled, backend="cext",
                             demote_after=1)
        pairs = make_pairs(circuit, seed=5)
        reference = make_engine(circuit, library, compiled).run(pairs)
        with faults.injected("backend.run_levels:raise@n=1"):
            result = engine.run(pairs)
        assert engine.backend.name == "numpy"
        assert engine.demotions == ["cext->numpy"]
        assert "demoted:cext->numpy" in result.engine
        assert engine.last_stats.demotions == ["cext->numpy"]
        for slot in range(len(reference.waveforms)):
            for net, ref in reference.waveforms[slot].items():
                got = result.waveforms[slot][net]
                assert got.initial == ref.initial
                assert np.array_equal(got.times, ref.times)

    def test_config_faults_arm_a_plan_on_first_engine(self, circuit, library,
                                                      compiled):
        assert faults.active_plan() is None
        make_engine(circuit, library, compiled,
                    faults="cache.get:raise@n=99")
        plan = faults.active_plan()
        assert plan is not None
        assert plan.rules[0].site == "cache.get"
        # A second engine with a different spec keeps the armed plan.
        make_engine(circuit, library, compiled,
                    faults="service.demux:raise@n=1")
        assert faults.active_plan() is plan


class TestBackendLoadSeam:
    def test_concrete_backend_reports_injected_load_failure(self):
        backend_mod._clear_caches()
        try:
            with faults.injected("backend.load:raise@n=1"):
                with pytest.raises(Exception) as info:
                    backend_mod.resolve_backend("numpy")
            assert "injected fault" in str(info.value)
        finally:
            backend_mod._clear_caches()

    def test_single_load_fault_reaches_next_rung(self):
        backend_mod._clear_caches()
        try:
            with faults.injected("backend.load:raise@n=1"):
                resolved = backend_mod.resolve_backend("auto")
            assert resolved is not None
            # The first rung's failure is cached with the injected cause.
            assert any("injected fault" in reason
                       for reason in backend_mod._FAILURES.values())
        finally:
            backend_mod._clear_caches()
