"""Supervised engine-pool unit tests (no service, fake batches)."""

import threading
import time

import pytest

from repro.errors import WorkerLostError
from repro.faults.plan import WorkerDeathError
from repro.service.batcher import PendingBatch
from repro.service.pool import EnginePool


def make_batch():
    return PendingBatch(compat_key="group")


def wait_for(predicate, timeout=10.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class Harness:
    """Records handler executions and scripted failures per batch."""

    def __init__(self):
        self.executions = []
        self.lost = []
        self.done = threading.Event()
        self._lock = threading.Lock()
        self._death_budget = {}

    def arm_deaths(self, batch, count):
        self._death_budget[id(batch)] = count

    def handler(self, batch):
        with self._lock:
            self.executions.append(batch)
            budget = self._death_budget.get(id(batch), 0)
            if budget > 0:
                self._death_budget[id(batch)] = budget - 1
        if budget > 0:
            raise WorkerDeathError("test")
        self.done.set()

    def on_batch_lost(self, batch, error):
        self.lost.append((batch, error))
        self.done.set()


@pytest.fixture
def harness():
    return Harness()


def make_pool(harness, **overrides):
    kwargs = dict(workers=1, handler=harness.handler,
                  on_batch_lost=harness.on_batch_lost,
                  hang_timeout_s=0.2, tick_s=0.01)
    kwargs.update(overrides)
    return EnginePool(**kwargs)


class TestEnginePool:
    def test_healthy_batch_executes_once(self, harness):
        pool = make_pool(harness)
        try:
            pool.submit(make_batch())
            assert harness.done.wait(timeout=10)
            assert len(harness.executions) == 1
            assert pool.stats() == {"workers_replaced": 0,
                                    "workers_hung": 0,
                                    "batches_requeued": 0}
        finally:
            pool.close()

    def test_dead_worker_is_replaced_and_batch_requeued_once(self, harness):
        pool = make_pool(harness)
        try:
            batch = make_batch()
            harness.arm_deaths(batch, 1)
            pool.submit(batch)
            assert harness.done.wait(timeout=10)
            assert harness.executions == [batch, batch]
            assert not harness.lost
            stats = pool.stats()
            assert stats["workers_replaced"] == 1
            assert stats["batches_requeued"] == 1
        finally:
            pool.close()

    def test_second_loss_fails_the_batch(self, harness):
        pool = make_pool(harness)
        try:
            batch = make_batch()
            harness.arm_deaths(batch, 2)
            pool.submit(batch)
            assert harness.done.wait(timeout=10)
            assert len(harness.lost) == 1
            lost_batch, error = harness.lost[0]
            assert lost_batch is batch
            assert isinstance(error, WorkerLostError)
            assert pool.stats()["workers_replaced"] == 2
        finally:
            pool.close()

    def test_hung_worker_is_abandoned_and_batch_retried(self, harness):
        release = threading.Event()
        first_call = threading.Event()

        def handler(batch):
            if not first_call.is_set():
                first_call.set()
                release.wait(timeout=20)  # simulated wedge (uninterruptible)
                return
            harness.handler(batch)

        pool = make_pool(harness)
        pool._handler = handler
        try:
            pool.submit(make_batch())
            assert harness.done.wait(timeout=10)
            stats = pool.stats()
            assert stats["workers_hung"] == 1
            assert stats["workers_replaced"] == 1
            assert stats["batches_requeued"] == 1
            # The stale thread finishing later must not double-settle.
            release.set()
            assert len(harness.executions) == 1
            assert not harness.lost
        finally:
            release.set()
            pool.close()

    def test_pool_survives_many_sequential_batches(self, harness):
        pool = make_pool(harness, workers=2)
        try:
            batches = [make_batch() for _ in range(20)]
            for batch in batches:
                pool.submit(batch)
            assert wait_for(lambda: len(harness.executions) == 20)
        finally:
            pool.close()
        assert harness.lost == []

    def test_close_waits_for_outstanding_work(self, harness):
        pool = make_pool(harness)
        pool.submit(make_batch())
        pool.close()
        assert len(harness.executions) == 1
