"""Circuit-breaker state machine, driven with explicit clocks."""

from repro.service.breaker import CircuitBreaker


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_seconds=10.0)
        for _ in range(2):
            breaker.record_failure(now=0.0)
        assert breaker.allow(now=0.0) == (True, 0.0)
        breaker.record_failure(now=0.0)
        allowed, retry = breaker.allow(now=1.0)
        assert not allowed
        assert 0.0 < retry <= 10.0
        assert breaker.times_opened == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_seconds=10.0)
        breaker.record_failure(now=0.0)
        breaker.record_success()
        breaker.record_failure(now=0.0)
        assert breaker.allow(now=0.0)[0]

    def test_half_open_grants_single_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=5.0)
        breaker.record_failure(now=0.0)
        assert not breaker.allow(now=1.0)[0]
        # Past reset_seconds: exactly one probe slot.
        assert breaker.allow(now=6.0)[0]
        assert not breaker.allow(now=6.0)[0]
        assert breaker.stats()["state"] == "half-open"

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=5.0)
        breaker.record_failure(now=0.0)
        assert breaker.allow(now=6.0)[0]
        breaker.record_success()
        assert breaker.stats()["state"] == "closed"
        assert breaker.allow(now=6.0) == (True, 0.0)

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=5.0)
        breaker.record_failure(now=0.0)
        assert breaker.allow(now=6.0)[0]
        breaker.record_failure(now=6.0)
        assert not breaker.allow(now=7.0)[0]
        assert breaker.times_opened == 2
        # The re-opened window is timed from the probe failure.
        assert breaker.allow(now=12.0)[0]

    def test_rejections_are_counted(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=5.0)
        breaker.record_failure(now=0.0)
        for _ in range(3):
            breaker.allow(now=1.0)
        assert breaker.stats()["rejections"] == 3
