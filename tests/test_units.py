"""Tests for engineering-notation units and formatting."""

import math

import pytest

from repro.units import FF, PS, format_runtime, meps, si_format, si_parse


class TestSiFormat:
    @pytest.mark.parametrize("value, expected", [
        (145.3e-12, "145.3p"),
        (2.234e-9, "2.234n"),
        (610.9e-12, "610.9p"),
        (0.0, "0"),
        (1.0, "1.000"),
        (-3.3e-12, "-3.300p"),
    ])
    def test_paper_style(self, value, expected):
        assert si_format(value) == expected

    def test_unit_suffix(self):
        assert si_format(5e-12, unit="s") == "5.000ps"

    def test_nan_inf(self):
        assert si_format(float("nan")) == "nan"
        assert si_format(float("inf")) == "inf"
        assert si_format(float("-inf")) == "-inf"


class TestSiParse:
    @pytest.mark.parametrize("text, expected", [
        ("145.3p", 145.3e-12),
        ("2.234n", 2.234e-9),
        ("0.5f", 0.5e-15),
        ("3.4k", 3400.0),
        ("1.2", 1.2),
        ("5ps", 5e-12),
        ("128fF", 128e-15),
    ])
    def test_values(self, text, expected):
        assert si_parse(text) == pytest.approx(expected)

    def test_round_trip(self):
        for value in (1.5e-12, 2.7e-9, 4.2e-15):
            assert si_parse(si_format(value)) == pytest.approx(value, rel=1e-3)

    def test_empty(self):
        with pytest.raises(ValueError):
            si_parse("  ")


class TestRuntime:
    @pytest.mark.parametrize("seconds, expected", [
        (0.005, "5ms"),
        (1.93, "1.93s"),
        (16.31, "16.31s"),
        (140.0, "2:20m"),
        (464.0, "7:44m"),
        (2940.0, "0:49h"),
        (4080.0, "1:08h"),
    ])
    def test_table1_style(self, seconds, expected):
        assert format_runtime(seconds) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_runtime(-1.0)


class TestMeps:
    def test_definition(self):
        # 18999 nodes x 173 pairs in 5 ms -> 657 MEPS-ish
        value = meps(18999, 173, 0.005)
        assert value == pytest.approx(18999 * 173 / 0.005 / 1e6)

    def test_zero_runtime(self):
        with pytest.raises(ValueError):
            meps(10, 10, 0.0)
