"""Tests for campaign preflight validation."""

import dataclasses

import numpy as np
import pytest

from repro.errors import PreflightError
from repro.netlist.generate import random_circuit
from repro.runtime import validate_campaign
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.compiled import compile_circuit
from repro.simulation.grid import SlotPlan


@pytest.fixture(scope="module")
def setup(library):
    circuit = random_circuit("preflight", 10, 120, seed=21)
    compiled = compile_circuit(circuit, library)
    rng = np.random.default_rng(21)
    pairs = [PatternPair.random(10, rng) for _ in range(6)]
    return compiled, pairs


class TestStimuli:
    def test_valid_campaign_passes(self, setup, kernel_table):
        compiled, pairs = setup
        plan = SlotPlan.cross(len(pairs), [0.6, 0.9])
        validate_campaign(compiled, pairs, plan, kernel_table=kernel_table)

    def test_empty_pairs(self, setup):
        compiled, _pairs = setup
        plan = SlotPlan.uniform(1, 0.8)
        with pytest.raises(PreflightError, match="no pattern pairs"):
            validate_campaign(compiled, [], plan)

    def test_mixed_widths(self, setup):
        compiled, pairs = setup
        rng = np.random.default_rng(0)
        mixed = list(pairs) + [PatternPair.random(5, rng)]
        plan = SlotPlan.uniform(len(mixed), 0.8)
        with pytest.raises(PreflightError, match="mixed widths"):
            validate_campaign(compiled, mixed, plan)

    def test_width_mismatch(self, setup):
        compiled, _pairs = setup
        rng = np.random.default_rng(0)
        narrow = [PatternPair.random(4, rng) for _ in range(3)]
        plan = SlotPlan.uniform(3, 0.8)
        with pytest.raises(PreflightError, match="does not match"):
            validate_campaign(compiled, narrow, plan)


class TestPlan:
    def test_out_of_range_pattern(self, setup):
        compiled, pairs = setup
        plan = SlotPlan.zip([0, len(pairs)], [0.8, 0.8])
        with pytest.raises(PreflightError, match="references pattern"):
            validate_campaign(compiled, pairs, plan)

    def test_non_positive_voltage(self, setup, kernel_table):
        compiled, pairs = setup
        plan = SlotPlan.zip([0, 1], [0.8, 0.0])
        with pytest.raises(PreflightError, match="non-positive"):
            validate_campaign(compiled, pairs, plan,
                              kernel_table=kernel_table)

    def test_non_finite_voltage(self, setup, kernel_table):
        compiled, pairs = setup
        plan = SlotPlan.zip([0, 1], [0.8, float("nan")])
        with pytest.raises(PreflightError, match="non-finite"):
            validate_campaign(compiled, pairs, plan,
                              kernel_table=kernel_table)


class TestDelayModel:
    def test_static_multi_voltage(self, setup):
        compiled, pairs = setup
        plan = SlotPlan.cross(len(pairs), [0.6, 0.9])
        with pytest.raises(PreflightError, match="static delay mode"):
            validate_campaign(compiled, pairs, plan)

    def test_kernel_table_name_mismatch(self, setup, kernel_table):
        compiled, pairs = setup
        shuffled = dataclasses.replace(
            kernel_table, type_names=tuple(reversed(kernel_table.type_names)))
        plan = SlotPlan.uniform(len(pairs), 0.8)
        with pytest.raises(PreflightError, match="disagree"):
            validate_campaign(compiled, pairs, plan, kernel_table=shuffled)

    def test_kernel_table_truncated(self, setup, kernel_table):
        compiled, pairs = setup
        truncated = dataclasses.replace(
            kernel_table,
            coefficients=kernel_table.coefficients[:1],
            pin_counts=kernel_table.pin_counts[:1],
            type_names=kernel_table.type_names[:1])
        plan = SlotPlan.uniform(len(pairs), 0.8)
        with pytest.raises(PreflightError):
            validate_campaign(compiled, pairs, plan, kernel_table=truncated)

    def test_kernel_table_pin_shortfall(self, setup, kernel_table):
        compiled, pairs = setup
        starved = dataclasses.replace(
            kernel_table,
            pin_counts=np.zeros_like(kernel_table.pin_counts))
        plan = SlotPlan.uniform(len(pairs), 0.8)
        with pytest.raises(PreflightError, match="pins"):
            validate_campaign(compiled, pairs, plan, kernel_table=starved)


class TestResources:
    def test_memory_budget_too_small(self, setup):
        compiled, pairs = setup
        plan = SlotPlan.uniform(len(pairs), 0.8)
        with pytest.raises(PreflightError, match="memory budget"):
            validate_campaign(compiled, pairs, plan, memory_budget=64)

    def test_capacity_above_ceiling(self, setup):
        from repro.simulation.gpu import MAX_CAPACITY

        compiled, pairs = setup
        plan = SlotPlan.uniform(len(pairs), 0.8)
        config = SimulationConfig(waveform_capacity=2 * MAX_CAPACITY)
        with pytest.raises(PreflightError, match="ceiling"):
            validate_campaign(compiled, pairs, plan, config=config)

    def test_corrupt_nominal_delays(self, setup):
        compiled, pairs = setup
        plan = SlotPlan.uniform(len(pairs), 0.8)
        broken = dataclasses.replace(compiled)
        broken.nominal_delays = compiled.nominal_delays.copy()
        broken.nominal_delays[0, 0, 0] = np.nan
        with pytest.raises(PreflightError, match="non-finite nominal"):
            validate_campaign(broken, pairs, plan)
