"""Integration tests for the fault-tolerant campaign runner.

The acceptance property: a campaign interrupted mid-run resumes from
its checkpoint directory, re-executes only the missing chunks, and
produces waveforms bit-identical to an uninterrupted single-device run
— including the Monte-Carlo variation case, where die factors must be
indexed by global slot and therefore survive chunking and resume.
"""

import json
import os

import numpy as np
import pytest

from repro.errors import CheckpointError, ChunkExecutionError, CampaignError
from repro.netlist.generate import random_circuit
from repro.runtime import CampaignConfig, CampaignRunner
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.compiled import compile_circuit
from repro.simulation.gpu import GpuWaveSim
from repro.simulation.grid import SlotPlan
from repro.simulation.variation import ProcessVariation


@pytest.fixture(scope="module")
def setup(library):
    circuit = random_circuit("campaign", 10, 120, seed=17)
    compiled = compile_circuit(circuit, library)
    rng = np.random.default_rng(17)
    pairs = [PatternPair.random(10, rng) for _ in range(8)]
    return circuit, compiled, pairs


CONFIG = SimulationConfig(record_all_nets=True)


def fast_campaign(**overrides):
    defaults = dict(chunk_slots=3, num_workers=2, backoff_seconds=0.0)
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def make_runner(setup, library, **overrides):
    circuit, compiled, _pairs = setup
    return CampaignRunner(circuit, library, config=CONFIG, compiled=compiled,
                          campaign=fast_campaign(**overrides))


def assert_bit_identical(reference, result, circuit):
    assert result.slot_labels == reference.slot_labels
    for slot in range(reference.num_slots):
        for net in circuit.nets():
            assert reference.waveform(slot, net).equivalent(
                result.waveform(slot, net), 0.0), (slot, net)


# -- fault-injection hooks (module level: must pickle into workers) ----------


def crash_chunk_one(chunk_index, attempt):
    if chunk_index == 1:
        os._exit(13)


def fail_chunk_zero_once(chunk_index, attempt):
    if chunk_index == 0 and attempt == 0:
        raise RuntimeError("transient glitch")


def fail_always(chunk_index, attempt):
    raise RuntimeError("worker permanently broken")


def fail_from_chunk_two(chunk_index, attempt):
    if chunk_index >= 2:
        raise RuntimeError("injected mid-run failure")


class TestHappyPath:
    def test_matches_single_device(self, setup, library, kernel_table):
        circuit, compiled, pairs = setup
        plan = SlotPlan.cross(len(pairs), [0.6, 0.9])
        reference = GpuWaveSim(circuit, library, config=CONFIG,
                               compiled=compiled).run(
            pairs, plan=plan, kernel_table=kernel_table)
        result = make_runner(setup, library).run(pairs, plan=plan,
                                                 kernel_table=kernel_table)
        assert result.engine == "campaign[2]"
        assert_bit_identical(reference, result, circuit)
        report = result.report
        assert report.num_chunks == 6
        assert report.chunks_executed == 6
        assert report.total_retries == 0
        assert report.degraded_chunks == 0
        assert result.gate_evaluations == reference.gate_evaluations

    def test_in_process_mode(self, setup, library):
        """num_workers=0 runs the whole plane without a process pool."""
        circuit, compiled, pairs = setup
        reference = GpuWaveSim(circuit, library, config=CONFIG,
                               compiled=compiled).run(pairs)
        result = make_runner(setup, library, num_workers=0).run(pairs)
        assert result.engine == "campaign[0]"
        assert_bit_identical(reference, result, circuit)
        assert result.report.engines_used() == ["in-process"]

    def test_empty_pairs_rejected(self, setup, library):
        with pytest.raises(CampaignError):
            make_runner(setup, library).run([])

    def test_report_is_json_serializable(self, setup, library):
        _circuit, _compiled, pairs = setup
        result = make_runner(setup, library).run(pairs)
        payload = json.loads(json.dumps(result.report.to_dict()))
        assert payload["num_slots"] == len(pairs)
        assert len(payload["chunks"]) == result.report.num_chunks


class TestWorkerRecovery:
    def test_worker_crash_degrades_in_process(self, setup, library):
        """A chunk that keeps killing its worker (BrokenProcessPool)
        lands on the in-process engine; results stay bit-identical."""
        circuit, compiled, pairs = setup
        reference = GpuWaveSim(circuit, library, config=CONFIG,
                               compiled=compiled).run(pairs)
        runner = make_runner(setup, library, max_worker_attempts=2,
                             worker_fault=crash_chunk_one)
        result = runner.run(pairs)
        assert_bit_identical(reference, result, circuit)
        chunk = result.report.chunks[1]
        assert chunk.final_engine == "in-process"
        assert chunk.retries >= 2
        assert any("crashed" in (a.error or "") for a in chunk.attempts)
        assert result.report.degraded_chunks >= 1

    def test_transient_failure_retries_with_growth(self, setup, library):
        """Retry k runs with doubled capacity and halved budget."""
        circuit, compiled, pairs = setup
        reference = GpuWaveSim(circuit, library, config=CONFIG,
                               compiled=compiled).run(pairs)
        runner = make_runner(setup, library,
                             worker_fault=fail_chunk_zero_once)
        result = runner.run(pairs)
        assert_bit_identical(reference, result, circuit)
        chunk = result.report.chunks[0]
        assert chunk.final_engine == "worker"
        assert chunk.retries == 1
        failed, succeeded = chunk.attempts
        assert "transient glitch" in failed.error
        assert succeeded.waveform_capacity == 2 * failed.waveform_capacity
        assert succeeded.memory_budget <= failed.memory_budget

    def test_event_driven_last_resort(self, setup, library, kernel_table):
        """With workers always failing and the in-process rung disabled,
        chunks land on the reference engine — still bit-identical."""
        circuit, compiled, pairs = setup
        plan = SlotPlan.cross(len(pairs), [0.6, 0.9])
        reference = GpuWaveSim(circuit, library, config=CONFIG,
                               compiled=compiled).run(
            pairs, plan=plan, kernel_table=kernel_table)
        runner = make_runner(setup, library, max_worker_attempts=1,
                             degrade_in_process=False,
                             worker_fault=fail_always)
        result = runner.run(pairs, plan=plan, kernel_table=kernel_table)
        assert_bit_identical(reference, result, circuit)
        assert result.report.engines_used() == ["event-driven"]
        assert all(c.final_engine == "event-driven"
                   for c in result.report.chunks)

    def test_exhausted_ladder_raises(self, setup, library):
        _circuit, _compiled, pairs = setup
        runner = make_runner(setup, library, max_worker_attempts=1,
                             degrade_in_process=False,
                             degrade_event_driven=False,
                             worker_fault=fail_always)
        with pytest.raises(ChunkExecutionError) as excinfo:
            runner.run(pairs)
        assert excinfo.value.attempts


class TestCheckpointResume:
    def test_interrupted_campaign_resumes(self, setup, library, kernel_table,
                                          tmp_path):
        """The acceptance scenario: interrupt mid-run, resume, compare."""
        circuit, compiled, pairs = setup
        plan = SlotPlan.cross(len(pairs), [0.6, 0.9])
        directory = str(tmp_path / "campaign")
        reference = GpuWaveSim(circuit, library, config=CONFIG,
                               compiled=compiled).run(
            pairs, plan=plan, kernel_table=kernel_table)

        # First invocation dies on chunk 2 (no fallback engines), with
        # chunks 0 and 1 already checkpointed.
        broken = make_runner(setup, library, num_workers=1,
                             max_worker_attempts=1,
                             degrade_in_process=False,
                             degrade_event_driven=False,
                             worker_fault=fail_from_chunk_two)
        with pytest.raises(ChunkExecutionError):
            broken.run(pairs, plan=plan, kernel_table=kernel_table,
                       checkpoint_dir=directory)
        healthy = make_runner(setup, library)
        completed = set(
            int(p.stem.split("_")[-1])
            for p in (tmp_path / "campaign").glob("chunk_*.npz"))
        assert completed == {0, 1}

        # Resume with a healthy runner: only the missing chunks run.
        result = healthy.run(pairs, plan=plan, kernel_table=kernel_table,
                             checkpoint_dir=directory)
        report = result.report
        assert report.resumed
        assert report.chunks_from_checkpoint == 2
        assert report.chunks_executed == report.num_chunks - 2
        assert all(not report.chunks[i].attempts for i in (0, 1))
        assert_bit_identical(reference, result, circuit)

    def test_interrupted_variation_campaign_resumes(self, setup, library,
                                                    kernel_table, tmp_path):
        """Monte-Carlo die factors are global-slot-indexed and must be
        unaffected by which chunks were checkpointed before the crash."""
        circuit, compiled, pairs = setup
        variation = ProcessVariation(sigma=0.08, seed=3)
        plan = SlotPlan.cross(len(pairs), [0.6, 0.9])
        directory = str(tmp_path / "campaign_mc")
        reference = GpuWaveSim(circuit, library, config=CONFIG,
                               compiled=compiled).run(
            pairs, plan=plan, kernel_table=kernel_table, variation=variation)

        broken = make_runner(setup, library, num_workers=1,
                             max_worker_attempts=1,
                             degrade_in_process=False,
                             degrade_event_driven=False,
                             worker_fault=fail_from_chunk_two)
        with pytest.raises(ChunkExecutionError):
            broken.run(pairs, plan=plan, kernel_table=kernel_table,
                       variation=variation, checkpoint_dir=directory)

        result = make_runner(setup, library).run(
            pairs, plan=plan, kernel_table=kernel_table, variation=variation,
            checkpoint_dir=directory)
        assert result.report.resumed
        assert result.report.chunks_from_checkpoint == 2
        assert_bit_identical(reference, result, circuit)

    def test_completed_campaign_resumes_entirely(self, setup, library,
                                                 tmp_path):
        circuit, compiled, pairs = setup
        directory = str(tmp_path / "done")
        runner = make_runner(setup, library)
        first = runner.run(pairs, checkpoint_dir=directory)
        second = runner.run(pairs, checkpoint_dir=directory)
        assert second.report.chunks_from_checkpoint == \
            second.report.num_chunks
        assert second.report.chunks_executed == 0
        assert_bit_identical(first, second, circuit)

    def test_foreign_checkpoint_rejected(self, setup, library, tmp_path):
        """A directory written by a different campaign must not be
        silently mixed into this one."""
        circuit, compiled, pairs = setup
        directory = str(tmp_path / "foreign")
        runner = make_runner(setup, library)
        runner.run(pairs, checkpoint_dir=directory)
        rng = np.random.default_rng(99)
        other_pairs = [PatternPair.random(10, rng) for _ in range(8)]
        with pytest.raises(CheckpointError, match="different campaign"):
            runner.run(other_pairs, checkpoint_dir=directory)

    def test_corrupt_chunk_is_recomputed(self, setup, library, tmp_path):
        circuit, compiled, pairs = setup
        directory = tmp_path / "corrupt"
        runner = make_runner(setup, library)
        first = runner.run(pairs, checkpoint_dir=str(directory))
        victim = sorted(directory.glob("chunk_*.npz"))[0]
        victim.write_bytes(b"garbage")
        second = runner.run(pairs, checkpoint_dir=str(directory))
        assert second.report.chunks_executed == 1
        assert second.report.chunks_from_checkpoint == \
            second.report.num_chunks - 1
        assert_bit_identical(first, second, circuit)

    def test_resume_adopts_manifest_chunking(self, setup, library, tmp_path):
        """A resume with a different chunk_slots setting follows the
        manifest so chunk files keep lining up."""
        circuit, compiled, pairs = setup
        directory = str(tmp_path / "rechunk")
        make_runner(setup, library, chunk_slots=3).run(
            pairs, checkpoint_dir=directory)
        result = make_runner(setup, library, chunk_slots=5).run(
            pairs, checkpoint_dir=directory)
        assert result.report.chunk_slots == 3
        assert result.report.chunks_from_checkpoint == 3
