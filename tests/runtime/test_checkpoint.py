"""Tests for the campaign checkpoint store and fingerprint."""

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.netlist.generate import random_circuit
from repro.runtime import CheckpointStore, campaign_fingerprint
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.compiled import compile_circuit
from repro.simulation.grid import SlotPlan
from repro.simulation.variation import ProcessVariation
from repro.waveform.waveform import Waveform


def make_chunk(num_slots=3):
    rng = np.random.default_rng(5)
    chunk = []
    for slot in range(num_slots):
        chunk.append({
            "a": Waveform(initial=slot % 2,
                          times=np.sort(rng.uniform(0, 1e-9, 4))),
            "b": Waveform.constant(1),
            "c": Waveform(initial=0, times=np.asarray([3.2e-10])),
        })
    return chunk


class TestChunkRoundTrip:
    def test_save_load(self, tmp_path):
        store = CheckpointStore(tmp_path)
        chunk = make_chunk()
        store.save_chunk(4, chunk)
        assert store.has_chunk(4)
        assert store.completed_chunks() == {4}
        loaded = store.load_chunk(4, 3)
        for slot in range(3):
            for net in ("a", "b", "c"):
                assert chunk[slot][net].equivalent(loaded[slot][net], 0.0)

    def test_wrong_slot_count_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save_chunk(0, make_chunk(3))
        with pytest.raises(CheckpointError, match="slots"):
            store.load_chunk(0, 5)

    def test_corrupt_file_treated_as_missing(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save_chunk(1, make_chunk())
        store.chunk_path(1).write_bytes(b"not a valid npz file")
        assert store.try_load_chunk(1, 3) is None
        assert not store.has_chunk(1)

    def test_missing_chunk(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.try_load_chunk(9, 3) is None
        assert store.completed_chunks() == set()


class TestManifest:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.load_manifest() is None
        store.write_manifest({"fingerprint": "abc", "chunk_slots": 7})
        manifest = store.load_manifest()
        assert manifest["fingerprint"] == "abc"
        assert manifest["chunk_slots"] == 7

    def test_bad_format_version(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write_manifest({"fingerprint": "abc"})
        text = store.manifest_path.read_text().replace(
            '"format_version": 1', '"format_version": 99')
        store.manifest_path.write_text(text)
        with pytest.raises(CheckpointError, match="format version"):
            store.load_manifest()

    def test_unreadable_manifest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.directory.mkdir(exist_ok=True)
        store.manifest_path.write_text("{ not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            store.load_manifest()


class TestFingerprint:
    @pytest.fixture(scope="class")
    def setup(self, library):
        circuit = random_circuit("fp", 8, 80, seed=3)
        compiled = compile_circuit(circuit, library)
        rng = np.random.default_rng(3)
        pairs = [PatternPair.random(8, rng) for _ in range(4)]
        plan = SlotPlan.cross(len(pairs), [0.6, 0.9])
        return compiled, pairs, plan

    def test_deterministic(self, setup, kernel_table):
        compiled, pairs, plan = setup
        config = SimulationConfig()
        first = campaign_fingerprint(compiled, pairs, plan, config,
                                     kernel_table)
        second = campaign_fingerprint(compiled, pairs, plan, config,
                                      kernel_table)
        assert first == second

    def test_sensitive_to_semantic_inputs(self, setup, kernel_table):
        compiled, pairs, plan = setup
        config = SimulationConfig()
        base = campaign_fingerprint(compiled, pairs, plan, config,
                                    kernel_table)
        assert campaign_fingerprint(compiled, pairs[:-1],
                                    SlotPlan.cross(len(pairs) - 1, [0.6, 0.9]),
                                    config, kernel_table) != base
        assert campaign_fingerprint(
            compiled, pairs, plan, config, kernel_table,
            variation=ProcessVariation(sigma=0.05)) != base
        assert campaign_fingerprint(compiled, pairs, plan, config,
                                    kernel_table=None) != base
        assert campaign_fingerprint(
            compiled, pairs, plan,
            SimulationConfig(record_all_nets=True), kernel_table) != base

    def test_insensitive_to_operational_knobs(self, setup, kernel_table):
        """Capacity/overflow policy never change results, so they must
        not invalidate a checkpoint directory."""
        compiled, pairs, plan = setup
        base = campaign_fingerprint(compiled, pairs, plan,
                                    SimulationConfig(), kernel_table)
        tweaked = campaign_fingerprint(
            compiled, pairs, plan,
            SimulationConfig(waveform_capacity=128, grow_on_overflow=False),
            kernel_table)
        assert tweaked == base
