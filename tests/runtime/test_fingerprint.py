"""Tests for the shared fingerprint module (service cache + checkpoints).

``campaign_fingerprint`` determinism/sensitivity is covered by
``test_checkpoint.py``; this file covers what the extraction added: the
service-facing identities and the compatibility key the batcher groups
by.
"""

import numpy as np
import pytest

from repro.netlist.generate import random_circuit
from repro.runtime.fingerprint import (
    Fingerprinter,
    campaign_fingerprint,
    circuit_fingerprint,
    compatibility_fingerprint,
    job_fingerprint,
)
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.compiled import compile_circuit


@pytest.fixture(scope="module")
def compiled(library):
    return compile_circuit(random_circuit("fp", 8, 60, seed=2), library)


@pytest.fixture(scope="module")
def other_compiled(library):
    return compile_circuit(random_circuit("fp2", 8, 60, seed=3), library)


class TestFingerprinter:
    def test_framing_separates_boundaries(self):
        # (b"ab", b"c") and (b"a", b"bc") must not collide: each feed is
        # framed with its tag and an 8-byte length.
        one = Fingerprinter()
        one.feed("x", b"ab")
        one.feed("y", b"c")
        two = Fingerprinter()
        two.feed("x", b"a")
        two.feed("y", b"bc")
        assert one.hexdigest() != two.hexdigest()

    def test_array_feed_covers_dtype(self):
        as_i64 = Fingerprinter()
        as_i64.feed_array("a", np.arange(4, dtype=np.int64))
        as_i32 = Fingerprinter()
        as_i32.feed_array("a", np.arange(4, dtype=np.int32))
        assert as_i64.hexdigest() != as_i32.hexdigest()


class TestIdentities:
    def test_job_fingerprint_is_campaign_fingerprint(self):
        assert job_fingerprint is campaign_fingerprint

    def test_circuit_fingerprint_distinguishes_circuits(self, compiled,
                                                        other_compiled):
        assert circuit_fingerprint(compiled) == circuit_fingerprint(compiled)
        assert circuit_fingerprint(compiled) != \
            circuit_fingerprint(other_compiled)


class TestCompatibilityKey:
    def test_same_inputs_same_key(self, compiled):
        config = SimulationConfig()
        assert compatibility_fingerprint(compiled, config, None, None) == \
            compatibility_fingerprint(compiled, config, None, None)

    def test_circuit_and_config_split_groups(self, compiled, other_compiled):
        config = SimulationConfig()
        base = compatibility_fingerprint(compiled, config, None, None)
        assert compatibility_fingerprint(other_compiled, config,
                                         None, None) != base
        assert compatibility_fingerprint(
            compiled, SimulationConfig(record_all_nets=True),
            None, None) != base

    def test_static_mode_splits_distinct_voltages(self, compiled):
        config = SimulationConfig()
        at_08 = compatibility_fingerprint(
            compiled, config, None, None,
            static_voltages=np.full(4, 0.8))
        at_06 = compatibility_fingerprint(
            compiled, config, None, None,
            static_voltages=np.full(4, 0.6))
        assert at_08 != at_06
        # Slot multiplicity does not matter, only the distinct values.
        assert compatibility_fingerprint(
            compiled, config, None, None,
            static_voltages=np.full(9, 0.8)) == at_08

    def test_parametric_mode_ignores_voltages(self, compiled, kernel_table):
        config = SimulationConfig()
        base = compatibility_fingerprint(compiled, config, kernel_table,
                                         None, static_voltages=None)
        assert compatibility_fingerprint(compiled, config, kernel_table,
                                         None, static_voltages=None) == base

    def test_variation_splits_groups(self, compiled, kernel_table):
        from repro.simulation.variation import ProcessVariation

        config = SimulationConfig()
        base = compatibility_fingerprint(compiled, config, kernel_table, None)
        varied = compatibility_fingerprint(
            compiled, config, kernel_table, ProcessVariation(sigma=0.05))
        assert base != varied


class TestBackendDoesNotSplitIdentity:
    def test_backend_outside_fingerprint(self, compiled):
        rng = np.random.default_rng(0)
        pairs = [PatternPair.random(len(compiled.circuit.inputs), rng)
                 for _ in range(2)]
        from repro.simulation.grid import SlotPlan
        plan = SlotPlan.uniform(2, 0.8)
        a = job_fingerprint(compiled, pairs, plan,
                            SimulationConfig(backend="numpy"), None, None)
        b = job_fingerprint(compiled, pairs, plan,
                            SimulationConfig(backend=None), None, None)
        assert a == b
