"""Tests for cancellation and inertial pulse filtering."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.waveform.inertial import cancel_monotonic, filter_inertial, filter_waveform
from repro.waveform.waveform import Waveform


class TestCancellation:
    def test_in_order_kept(self):
        times = [1.0, 2.0, 3.0]
        np.testing.assert_array_equal(cancel_monotonic(times), times)

    def test_out_of_order_annihilates(self):
        # second toggle scheduled before the first -> both vanish
        assert list(cancel_monotonic([2.0, 1.5])) == []

    def test_equal_time_annihilates(self):
        assert list(cancel_monotonic([2.0, 2.0])) == []

    def test_partial(self):
        assert list(cancel_monotonic([1.0, 3.0, 2.5, 4.0])) == [1.0, 4.0]

    def test_empty(self):
        assert list(cancel_monotonic([])) == []


class TestInertialFilter:
    def test_short_pulse_removed(self):
        assert list(filter_inertial([1.0, 1.2], min_width=0.5)) == []

    def test_long_pulse_kept(self):
        assert list(filter_inertial([1.0, 2.0], min_width=0.5)) == [1.0, 2.0]

    def test_cascaded_removal(self):
        # [1.0, 1.2] cancel; then 1.3 vs empty stack -> kept; 2.5 kept
        assert list(filter_inertial([1.0, 1.2, 1.3, 2.5], 0.4)) == [1.3, 2.5]

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            filter_inertial([1.0], -0.1)

    def test_filter_waveform(self):
        w = Waveform(initial=0, times=np.asarray([1.0, 1.1, 3.0]))
        filtered = filter_waveform(w, 0.5)
        assert list(filtered.times) == [3.0]
        assert filtered.initial == 0


class TestProperties:
    @given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False),
                    max_size=20),
           st.floats(min_value=0, max_value=5))
    def test_output_pulses_exceed_width(self, times, width):
        result = filter_inertial(times, width)
        gaps = np.diff(result)
        assert np.all(gaps > width)

    @given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False),
                    max_size=20))
    def test_parity_preserved_mod2(self, times):
        # each annihilation removes exactly two toggles
        result = cancel_monotonic(times)
        assert (len(times) - len(result)) % 2 == 0

    @given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False),
                    max_size=20).map(sorted))
    def test_sorted_input_with_zero_width_unchanged_if_distinct(self, times):
        distinct = sorted(set(times))
        np.testing.assert_array_equal(cancel_monotonic(distinct), distinct)
