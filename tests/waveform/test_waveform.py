"""Tests for the Waveform type."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.waveform.waveform import Waveform


def toggle_times():
    return st.lists(
        st.floats(min_value=0.0, max_value=1e-9, allow_nan=False),
        max_size=12, unique=True,
    ).map(sorted)


class TestConstruction:
    def test_constant(self):
        w = Waveform.constant(1)
        assert w.num_transitions == 0
        assert w.final_value == 1
        assert w.latest_transition() == float("-inf")

    def test_step(self):
        w = Waveform.step(value_after=1, at=5e-12)
        assert w.initial == 0
        assert w.value_at(4e-12) == 0
        assert w.value_at(5e-12) == 1

    def test_bad_initial(self):
        with pytest.raises(ValueError, match="initial"):
            Waveform(initial=2)

    def test_unsorted_times_rejected(self):
        with pytest.raises(ValueError, match="increasing"):
            Waveform(initial=0, times=np.asarray([2e-12, 1e-12]))

    def test_duplicate_times_rejected(self):
        with pytest.raises(ValueError, match="increasing"):
            Waveform(initial=0, times=np.asarray([1e-12, 1e-12]))

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            Waveform(initial=0, times=np.asarray([np.inf]))

    def test_from_transitions_drops_redundant(self):
        w = Waveform.from_transitions(0, [(1e-12, 1), (2e-12, 1), (3e-12, 0)])
        assert w.num_transitions == 2
        assert list(w.times) == [1e-12, 3e-12]

    def test_from_transitions_bad_value(self):
        with pytest.raises(ValueError):
            Waveform.from_transitions(0, [(1e-12, 2)])

    def test_trusted_constructor(self):
        times = np.asarray([1e-12, 2e-12])
        w = Waveform.trusted(1, times)
        assert w.initial == 1
        assert w.num_transitions == 2


class TestQueries:
    def test_value_at_parity(self):
        w = Waveform(initial=0, times=np.asarray([1.0, 2.0, 3.0]))
        assert [w.value_at(t) for t in (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0)] == \
            [0, 1, 1, 0, 0, 1, 1]
        assert w.final_value == 1

    def test_transitions_iterator(self):
        w = Waveform(initial=1, times=np.asarray([1.0, 2.0]))
        assert list(w.transitions()) == [(1.0, 0), (2.0, 1)]

    def test_pulse_widths(self):
        w = Waveform(initial=0, times=np.asarray([1.0, 1.5, 4.0]))
        np.testing.assert_allclose(w.pulse_widths(), [0.5, 2.5])
        assert w.min_pulse_width() == pytest.approx(0.5)
        assert Waveform.constant(0).min_pulse_width() == float("inf")

    def test_sampled(self):
        w = Waveform(initial=0, times=np.asarray([1.0, 3.0]))
        np.testing.assert_array_equal(w.sampled([0.0, 1.0, 2.0, 3.0]),
                                      [0, 1, 1, 0])


class TestAlgebra:
    def test_shifted(self):
        w = Waveform(initial=0, times=np.asarray([1.0]))
        assert w.shifted(0.5).value_at(1.2) == 0
        assert w.shifted(0.5).value_at(1.5) == 1

    def test_inverted(self):
        w = Waveform(initial=0, times=np.asarray([1.0]))
        inv = w.inverted()
        assert inv.initial == 1
        assert inv.value_at(2.0) == 0

    def test_equivalence_with_tolerance(self):
        a = Waveform(initial=0, times=np.asarray([1.0, 2.0]))
        b = Waveform(initial=0, times=np.asarray([1.0 + 1e-15, 2.0]))
        assert a.equivalent(b, tolerance=1e-12)
        assert not a.equivalent(b, tolerance=0.0)
        assert not a.equivalent(b.inverted(), tolerance=1.0)

    def test_eq_and_hash(self):
        a = Waveform(initial=0, times=np.asarray([1.0]))
        b = Waveform(initial=0, times=np.asarray([1.0]))
        assert a == b
        assert hash(a) == hash(b)


class TestProperties:
    @given(st.integers(0, 1), toggle_times())
    def test_final_value_parity(self, initial, times):
        w = Waveform(initial=initial, times=np.asarray(times, dtype=float))
        assert w.final_value == initial ^ (len(times) & 1)

    @given(st.integers(0, 1), toggle_times())
    def test_value_at_after_last_is_final(self, initial, times):
        w = Waveform(initial=initial, times=np.asarray(times, dtype=float))
        assert w.value_at(2e-9) == w.final_value

    @given(st.integers(0, 1), toggle_times())
    def test_inversion_involution(self, initial, times):
        w = Waveform(initial=initial, times=np.asarray(times, dtype=float))
        assert w.inverted().inverted() == w
