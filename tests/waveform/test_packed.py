"""Tests for PackedWaveforms (GPU waveform memory layout)."""

import numpy as np
import pytest

from repro.errors import WaveformOverflowError
from repro.waveform.packed import PackedWaveforms
from repro.waveform.waveform import Waveform


def sample_waveforms():
    return [
        Waveform.constant(0),
        Waveform(initial=1, times=np.asarray([1e-12])),
        Waveform(initial=0, times=np.asarray([1e-12, 2e-12, 5e-12])),
    ]


class TestPacking:
    def test_round_trip(self):
        waveforms = sample_waveforms()
        packed = PackedWaveforms.from_waveforms(waveforms)
        for slot, original in enumerate(waveforms):
            assert packed.to_waveform(slot) == original
        assert packed.to_waveforms() == waveforms

    def test_capacity_sizing(self):
        packed = PackedWaveforms.from_waveforms(sample_waveforms())
        assert packed.capacity == 3
        explicit = PackedWaveforms.from_waveforms(sample_waveforms(), capacity=8)
        assert explicit.capacity == 8

    def test_padding_is_inf(self):
        packed = PackedWaveforms.from_waveforms(sample_waveforms())
        assert np.isinf(packed.times[0]).all()
        assert np.isinf(packed.times[1, 1:]).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            PackedWaveforms(0, 4)
        with pytest.raises(ValueError):
            PackedWaveforms(2, 0)
        with pytest.raises(ValueError):
            PackedWaveforms(2, 4, initial=np.asarray([0, 1, 0], dtype=np.uint8))
        with pytest.raises(ValueError):
            PackedWaveforms(2, 4, initial=np.asarray([0, 7], dtype=np.uint8))
        with pytest.raises(ValueError):
            PackedWaveforms.from_waveforms([])


class TestBulkQueries:
    def test_transition_counts(self):
        packed = PackedWaveforms.from_waveforms(sample_waveforms())
        np.testing.assert_array_equal(packed.transition_counts(), [0, 1, 3])

    def test_final_values(self):
        packed = PackedWaveforms.from_waveforms(sample_waveforms())
        np.testing.assert_array_equal(packed.final_values(), [0, 0, 1])

    def test_values_at(self):
        packed = PackedWaveforms.from_waveforms(sample_waveforms())
        np.testing.assert_array_equal(packed.values_at(1.5e-12), [0, 0, 1])
        np.testing.assert_array_equal(packed.values_at(0.0), [0, 1, 0])

    def test_latest_times(self):
        packed = PackedWaveforms.from_waveforms(sample_waveforms())
        latest = packed.latest_times()
        assert latest[0] == -np.inf
        assert latest[2] == pytest.approx(5e-12)

    def test_nbytes(self):
        packed = PackedWaveforms(4, 8)
        assert packed.nbytes >= 4 * 8 * 8


class TestOverflow:
    def test_overflow_slot_refuses_unpack(self):
        packed = PackedWaveforms.from_waveforms(sample_waveforms())
        packed.overflow[1] = True
        with pytest.raises(WaveformOverflowError):
            packed.to_waveform(1)
        packed.to_waveform(0)  # other slots still fine

    def test_grown(self):
        packed = PackedWaveforms.from_waveforms(sample_waveforms())
        packed.overflow[2] = True
        bigger = packed.grown(16)
        assert bigger.capacity == 16
        assert bigger.to_waveform(1) == packed.to_waveform(1)
        assert bigger.overflow[2]
        with pytest.raises(ValueError):
            packed.grown(2)
