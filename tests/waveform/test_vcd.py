"""Tests for the VCD waveform exporter."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.netlist.generate import c17
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.gpu import GpuWaveSim
from repro.units import FS, PS
from repro.waveform.vcd import _identifier, dump_vcd, result_to_vcd
from repro.waveform.waveform import Waveform


def sample_waveforms():
    return {
        "clk_like": Waveform(initial=0, times=np.asarray([1e-12, 2e-12, 3e-12])),
        "stable": Waveform.constant(1),
    }


class TestIdentifiers:
    def test_unique_and_printable(self):
        codes = [_identifier(i) for i in range(500)]
        assert len(set(codes)) == 500
        for code in codes:
            assert all(33 <= ord(ch) <= 126 for ch in code)

    def test_first_codes_single_char(self):
        assert len(_identifier(0)) == 1
        assert len(_identifier(93)) == 1
        assert len(_identifier(94)) == 2


class TestDump:
    def test_structure(self):
        text = dump_vcd(sample_waveforms(), date="test run")
        assert "$timescale 1 fs $end" in text
        assert "$var wire 1 ! clk_like $end" in text
        assert "$var wire 1 \" stable $end" in text
        assert "$dumpvars" in text
        # initial values
        assert "0!" in text and "1\"" in text

    def test_toggle_times_quantized(self):
        text = dump_vcd(sample_waveforms(), timescale=PS)
        assert "#1\n1!" in text
        assert "#2\n0!" in text
        assert "#3\n1!" in text

    def test_femtosecond_default_lossless(self):
        text = dump_vcd(sample_waveforms())
        assert "#1000" in text  # 1 ps = 1000 fs

    def test_shared_timestamp_grouped(self):
        waveforms = {
            "a": Waveform(initial=0, times=np.asarray([1e-12])),
            "b": Waveform(initial=1, times=np.asarray([1e-12])),
        }
        text = dump_vcd(waveforms, timescale=PS)
        assert text.count("#1") == 1

    def test_validation(self):
        with pytest.raises(SimulationError):
            dump_vcd({})
        with pytest.raises(SimulationError):
            dump_vcd(sample_waveforms(), timescale=0.0)


class TestFromResult:
    def test_result_slot_dump(self, library):
        circuit = c17()
        sim = GpuWaveSim(circuit, library,
                         config=SimulationConfig(record_all_nets=True))
        pair = PatternPair(v1=np.zeros(5, dtype=np.uint8),
                           v2=np.ones(5, dtype=np.uint8))
        result = sim.run([pair])
        text = result_to_vcd(result, 0)
        assert "$scope module c17 $end" in text
        for net in circuit.nets():
            assert f" {net} $end" in text
        # parse back the toggle counts and compare
        toggles = sum(
            1 for line in text.splitlines()
            if line and line[0] in "01" and not line.startswith("0 "))
        expected = sum(result.waveform(0, n).num_transitions
                       for n in circuit.nets())
        dumped_initials = len(circuit.nets())
        assert toggles == expected + dumped_initials

    def test_net_subset_and_bad_slot(self, library):
        circuit = c17()
        sim = GpuWaveSim(circuit, library)
        pair = PatternPair(v1=np.zeros(5, dtype=np.uint8),
                           v2=np.ones(5, dtype=np.uint8))
        result = sim.run([pair])
        text = result_to_vcd(result, 0, nets=["G22"])
        assert "G22" in text and "G23" not in text
        with pytest.raises(SimulationError):
            result_to_vcd(result, 5)
