"""Tests for the benchmark-recording harness (``repro.perf.record``)."""

import json

import pytest

from repro.perf import record


class TestMicroBenchmarks:
    def test_merge_kernel_entry(self):
        entry = record.bench_merge_kernel("numpy", lanes=64, repeats=1)
        assert entry["name"] == "waveform_merge_kernel"
        assert entry["backend"] == "numpy"
        assert entry["wall_seconds"] > 0
        assert entry["gate_evals_per_second"] > 0
        assert entry["params"]["lanes"] == 64

    def test_delay_kernel_entry(self, kernel_table):
        entry = record.bench_delay_kernel("numpy", kernel_table, gates=16,
                                          repeats=1)
        assert entry["name"] == "delays_for_gates"
        assert entry["backend"] == "numpy"
        assert entry["wall_seconds"] > 0


def make_report(walls):
    return {"benchmarks": [
        {"name": name, "backend": backend, "wall_seconds": wall}
        for (name, backend), wall in walls.items()
    ]}


class TestRegressionGate:
    def test_no_regression_within_threshold(self):
        baseline = make_report({("merge", "numpy"): 1.0})
        current = make_report({("merge", "numpy"): 1.4})
        assert record.compare_reports(current, baseline, 1.5) == []

    def test_regression_flagged(self):
        baseline = make_report({("merge", "numpy"): 1.0,
                                ("merge", "cext"): 0.2})
        current = make_report({("merge", "numpy"): 1.1,
                               ("merge", "cext"): 0.5})
        messages = record.compare_reports(current, baseline, 1.5)
        assert len(messages) == 1
        assert "merge[cext]" in messages[0]
        assert "2.50x" in messages[0]

    def test_unmatched_entries_skipped(self):
        """Machines legitimately differ in backend availability."""
        baseline = make_report({("merge", "numba"): 0.1})
        current = make_report({("merge", "cext"): 5.0})
        assert record.compare_reports(current, baseline, 1.5) == []

    def test_speedups_relative_to_numpy(self):
        report = make_report({("merge", "numpy"): 1.0,
                              ("merge", "cext"): 0.25,
                              ("delay", "cext"): 0.5})
        speedups = record._speedups(report["benchmarks"])
        assert speedups["merge"]["cext"] == pytest.approx(4.0)
        assert "delay" not in speedups  # no numpy baseline entry

    def test_pruning_speedups_pair_dense_with_sparse(self):
        benchmarks = [
            {"name": "e2e_x_lowact_sparse", "backend": "numpy",
             "wall_seconds": 1.0},
            {"name": "e2e_x_lowact_dense", "backend": "numpy",
             "wall_seconds": 3.0},
            # No dense partner on cext: no ratio for it.
            {"name": "e2e_x_lowact_sparse", "backend": "cext",
             "wall_seconds": 0.5},
            # Unrelated benchmarks are ignored.
            {"name": "waveform_merge_kernel", "backend": "numpy",
             "wall_seconds": 2.0},
        ]
        speedups = record._pruning_speedups(benchmarks)
        assert speedups["e2e_x_lowact"]["numpy"] == pytest.approx(3.0)
        assert "cext" not in speedups["e2e_x_lowact"]

    def test_parametric_ratios_pair_static_with_parametric(self):
        benchmarks = make_report({
            ("e2e_x_static", "numpy"): 1.0,
            ("e2e_x_parametric", "numpy"): 2.5,
            # No static partner on cext: no ratio for it.
            ("e2e_x_parametric", "cext"): 0.5,
            # Low-activity entries end in _dense/_sparse, never pair.
            ("e2e_x_lowact_dense", "numpy"): 3.0,
        })["benchmarks"]
        ratios = record._parametric_ratios(benchmarks)
        assert ratios["x"]["numpy"] == pytest.approx(2.5)
        assert "cext" not in ratios["x"]

    def test_dispatch_speedups_pair_fused_with_unfused(self):
        benchmarks = make_report({
            ("level_dispatch_fused", "cext"): 0.5,
            ("level_dispatch_unfused", "cext"): 1.5,
            ("level_dispatch_fused", "numpy"): 1.0,
        })["benchmarks"]
        speedups = record._dispatch_speedups(benchmarks)
        assert speedups == {"cext": pytest.approx(3.0)}

    def test_parametric_ratio_regression_flagged(self):
        """The ratio gate fires even when every raw wall time improved."""
        baseline = make_report({("e2e_x_static", "numpy"): 1.0,
                                ("e2e_x_parametric", "numpy"): 1.2})
        current = make_report({("e2e_x_static", "numpy"): 0.5,
                               ("e2e_x_parametric", "numpy"): 1.3})
        messages = record.compare_reports(current, baseline, 1.5)
        assert len(messages) == 1
        assert "parametric_ratio[x/numpy]" in messages[0]

    def test_parametric_ratio_within_threshold(self):
        baseline = make_report({("e2e_x_static", "numpy"): 1.0,
                                ("e2e_x_parametric", "numpy"): 2.0})
        current = make_report({("e2e_x_static", "numpy"): 1.0,
                               ("e2e_x_parametric", "numpy"): 2.2})
        assert record.compare_reports(current, baseline, 1.5) == []

    def test_fault_overhead_extracted_per_backend(self):
        benchmarks = [
            {"name": "fault_seams_e2e", "backend": "numpy",
             "wall_seconds": 1.0, "params": {"overhead_fraction": 2e-5}},
            {"name": "fault_seams_e2e", "backend": "cext",
             "wall_seconds": 0.1, "params": {"overhead_fraction": 3e-4}},
            {"name": "waveform_merge_kernel", "backend": "numpy",
             "wall_seconds": 2.0, "params": {}},
        ]
        assert record._fault_overhead(benchmarks) == {"numpy": 2e-5,
                                                      "cext": 3e-4}

    def test_fault_overhead_ceiling_flagged(self):
        """The seam-overhead gate is absolute, not baseline-relative."""
        current = {"benchmarks": [
            {"name": "fault_seams_e2e", "backend": "numpy",
             "wall_seconds": 1.0,
             "params": {"overhead_fraction":
                        record.FAULT_OVERHEAD_CEILING * 2}},
        ]}
        messages = record.compare_reports(current, {"benchmarks": []}, 1.5)
        assert len(messages) == 1
        assert "faults_disabled_overhead[numpy]" in messages[0]

    def test_fault_overhead_under_ceiling_passes(self):
        current = {"benchmarks": [
            {"name": "fault_seams_e2e", "backend": "numpy",
             "wall_seconds": 1.0,
             "params": {"overhead_fraction":
                        record.FAULT_OVERHEAD_CEILING / 10}},
        ]}
        assert record.compare_reports(current, {"benchmarks": []}, 1.5) == []

    @staticmethod
    def charz_benchmarks(fixed_evals=39960, adaptive_evals=12000,
                         fixed_err=0.017, adaptive_err=0.019, warm_evals=0):
        return [
            {"name": "characterization_fixed", "backend": "numpy",
             "wall_seconds": 4.0,
             "params": {"delay_evaluations": fixed_evals,
                        "worst_error": fixed_err}},
            {"name": "characterization_adaptive", "backend": "numpy",
             "wall_seconds": 2.0,
             "params": {"delay_evaluations": adaptive_evals,
                        "worst_error": adaptive_err}},
            {"name": "characterization_pool", "backend": "numpy",
             "wall_seconds": 1.0,
             "params": {"delay_evaluations": adaptive_evals, "workers": 4}},
            {"name": "characterization_warm_cache", "backend": "numpy",
             "wall_seconds": 0.1,
             "params": {"delay_evaluations": warm_evals}},
        ]

    def test_characterization_section(self):
        section = record._characterization_speedups(self.charz_benchmarks())
        assert section["evaluation_ratio"] == pytest.approx(39960 / 12000)
        assert section["warm_cache_evaluations"] == 0
        assert section["pool_speedup"] == pytest.approx(2.0)
        assert section["pool_workers"] == 4
        assert section["wall_speedup"] == pytest.approx(2.0)

    def test_characterization_gates_pass(self):
        current = {"benchmarks": self.charz_benchmarks()}
        assert record.compare_reports(current, {"benchmarks": []}, 1.5) == []

    def test_characterization_eval_ratio_gate(self):
        current = {"benchmarks": self.charz_benchmarks(adaptive_evals=20000)}
        messages = record.compare_reports(current, {"benchmarks": []}, 1.5)
        assert len(messages) == 1
        assert "characterization[evals]" in messages[0]

    def test_characterization_error_gate(self):
        current = {"benchmarks": self.charz_benchmarks(adaptive_err=0.08)}
        messages = record.compare_reports(current, {"benchmarks": []}, 1.5)
        assert len(messages) == 1
        assert "characterization[error]" in messages[0]

    def test_characterization_warm_cache_gate(self):
        current = {"benchmarks": self.charz_benchmarks(warm_evals=108)}
        messages = record.compare_reports(current, {"benchmarks": []}, 1.5)
        assert len(messages) == 1
        assert "characterization[cache]" in messages[0]

    def test_report_roundtrip(self, tmp_path):
        report = make_report({("merge", "numpy"): 1.0})
        path = str(tmp_path / "bench.json")
        record.write_report(report, path)
        assert record.load_report(path) == report


class TestCli:
    def test_quick_run_writes_report(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = record.main(["--quick", "--no-e2e", "--backends", "numpy",
                            "--output", str(out)])
        assert code == 0
        report = json.loads(out.read_text())
        names = {e["name"] for e in report["benchmarks"]}
        # --no-e2e skips the delay/e2e benchmarks (they need the full
        # library characterization) — only the merge kernel remains.
        assert names == {"waveform_merge_kernel"}
        assert report["machine"]["backends"]
        assert "recorded" in capsys.readouterr().out

    def test_second_run_compares_against_first(self, tmp_path):
        out = tmp_path / "bench.json"
        argv = ["--quick", "--no-e2e", "--backends", "numpy",
                "--output", str(out)]
        assert record.main(argv) == 0
        # Same machine, same workload: far below any regression threshold.
        assert record.main(argv + ["--threshold", "100"]) == 0

    def test_regression_exit_code(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        argv = ["--quick", "--no-e2e", "--backends", "numpy",
                "--output", str(out)]
        assert record.main(argv) == 0
        baseline = json.loads(out.read_text())
        for entry in baseline["benchmarks"]:
            entry["wall_seconds"] /= 1e6  # impossible baseline
        (tmp_path / "fast.json").write_text(json.dumps(baseline))
        argv_vs = argv + ["--baseline", str(tmp_path / "fast.json")]
        assert record.main(argv_vs) == 3
        assert record.main(argv_vs + ["--no-fail"]) == 0
