"""Tests for timing-aware path pattern generation and false paths."""

import numpy as np
import pytest

from repro.atpg.path_patterns import _Justifier, generate_path_patterns
from repro.netlist.circuit import Circuit
from repro.netlist.generate import random_circuit, ripple_carry_adder
from repro.simulation.base import SimulationConfig
from repro.simulation.event_driven import EventDrivenSimulator


class TestJustifier:
    def test_simple_and_justification(self, library):
        circuit = Circuit("j")
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("g0", "AND2_X1", ["a", "b"], "y")
        circuit.add_output("y")
        justifier = _Justifier(circuit, library)
        solution = justifier.solve({"y": 1})
        assert solution["a"] == 1 and solution["b"] == 1
        solution0 = justifier.solve({"y": 0})
        assert solution0["a"] == 0 or solution0["b"] == 0

    def test_conflicting_requirements(self, library):
        circuit = Circuit("j")
        circuit.add_input("a")
        circuit.add_gate("g0", "BUF_X1", ["a"], "y")
        circuit.add_gate("g1", "INV_X1", ["a"], "z")
        circuit.add_output("y")
        circuit.add_output("z")
        justifier = _Justifier(circuit, library)
        # y == z is impossible: y = a, z = !a
        assert justifier.solve({"y": 1, "z": 1}) is None
        assert justifier.solve({"y": 1, "z": 0}) == {"y": 1, "z": 0, "a": 1}

    def test_reconvergent_conflict(self, library):
        circuit = Circuit("j")
        circuit.add_input("a")
        circuit.add_gate("g0", "INV_X1", ["a"], "na")
        circuit.add_gate("g1", "AND2_X1", ["a", "na"], "y")  # always 0
        circuit.add_output("y")
        justifier = _Justifier(circuit, library)
        assert justifier.solve({"y": 1}) is None
        assert justifier.solve({"y": 0}) is not None


class TestPathPatterns:
    def test_adder_carry_paths_testable(self, library):
        result = generate_path_patterns(ripple_carry_adder(6), library, k=12)
        assert result.tested_paths
        assert len(result.patterns) == len(result.tested_paths)
        assert not result.all_false

    def test_validated_by_simulation(self, library):
        """Each returned pattern really propagates to the path end."""
        circuit = ripple_carry_adder(4)
        result = generate_path_patterns(circuit, library, k=8)
        sim = EventDrivenSimulator(
            circuit, library,
            config=SimulationConfig(record_all_nets=True))
        for path, pair in zip(result.tested_paths, result.patterns.pairs):
            run = sim.run([pair])
            assert run.waveform(0, path.end).num_transitions > 0

    def test_launch_vector_flips_path_start(self, library):
        circuit = ripple_carry_adder(4)
        result = generate_path_patterns(circuit, library, k=8)
        for path, pair in zip(result.tested_paths, result.patterns.pairs):
            position = circuit.inputs.index(path.start)
            assert pair.v1[position] != pair.v2[position]

    def test_random_logic_mostly_false(self, library):
        """Reconvergent random logic exhibits the paper's '*' phenomenon."""
        circuit = random_circuit("fp", 24, 500, seed=11)
        result = generate_path_patterns(circuit, library, k=25)
        assert len(result.false_paths) + len(result.tested_paths) == 25
        assert result.false_paths  # at least some are false

    def test_all_false_property(self, library):
        circuit = random_circuit("fp", 24, 500, seed=11)
        result = generate_path_patterns(circuit, library, k=10)
        assert result.all_false == (
            bool(result.false_paths) and not result.tested_paths)
