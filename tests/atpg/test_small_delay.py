"""Tests for small-delay fault simulation."""

import numpy as np
import pytest

from repro.atpg.small_delay import SmallDelayFault, SmallDelayFaultSimulator
from repro.errors import AtpgError
from repro.netlist.circuit import Circuit
from repro.netlist.sdf import SdfAnnotation
from repro.simulation.base import PatternPair
from repro.simulation.compiled import compile_circuit


def chain(library):
    """Two-inverter chain with exact 1 ps per stage delays."""
    circuit = Circuit("sdqm")
    circuit.add_input("a")
    circuit.add_gate("g0", "INV_X1", ["a"], "n0")
    circuit.add_gate("g1", "INV_X1", ["n0"], "y")
    circuit.add_output("y")
    annotation = SdfAnnotation(design="sdqm")
    annotation.delays["g0"] = ((1e-12, 1e-12),)
    annotation.delays["g1"] = ((1e-12, 1e-12),)
    return circuit, compile_circuit(circuit, library, annotation=annotation)


RISING = [PatternPair(v1=np.asarray([0], dtype=np.uint8),
                      v2=np.asarray([1], dtype=np.uint8))]


class TestDetection:
    def test_fault_slipping_past_capture_detected(self, library):
        circuit, compiled = chain(library)
        sim = SmallDelayFaultSimulator(circuit, library, compiled=compiled)
        # fault-free: y settles at 2 ps; capture at 3 ps
        fault = SmallDelayFault("g0", extra_delay=2e-12)  # y now at 4 ps
        verdict = sim.simulate([fault], RISING, capture_time=3e-12)
        assert verdict[fault] == 0

    def test_small_defect_hides_in_slack(self, library):
        circuit, compiled = chain(library)
        sim = SmallDelayFaultSimulator(circuit, library, compiled=compiled)
        fault = SmallDelayFault("g0", extra_delay=0.5e-12)  # y at 2.5 ps < 3 ps
        verdict = sim.simulate([fault], RISING, capture_time=3e-12)
        assert verdict[fault] is None

    def test_faster_capture_exposes_hidden_defect(self, library):
        """The FAST (faster-than-at-speed) effect the paper cites."""
        circuit, compiled = chain(library)
        sim = SmallDelayFaultSimulator(circuit, library, compiled=compiled)
        fault = SmallDelayFault("g0", extra_delay=0.5e-12)
        relaxed = sim.simulate([fault], RISING, capture_time=3e-12)
        tight = sim.simulate([fault], RISING, capture_time=2.2e-12)
        assert relaxed[fault] is None
        assert tight[fault] == 0

    def test_unsensitized_fault_escapes(self, library):
        circuit, compiled = chain(library)
        sim = SmallDelayFaultSimulator(circuit, library, compiled=compiled)
        stable = [PatternPair(v1=np.asarray([1], dtype=np.uint8),
                              v2=np.asarray([1], dtype=np.uint8))]
        fault = SmallDelayFault("g0", extra_delay=5e-12)
        assert sim.simulate([fault], stable, capture_time=3e-12)[fault] is None

    def test_coverage(self, library):
        circuit, compiled = chain(library)
        sim = SmallDelayFaultSimulator(circuit, library, compiled=compiled)
        faults = [SmallDelayFault("g0", 2e-12), SmallDelayFault("g1", 0.1e-12)]
        coverage = sim.coverage(faults, RISING, capture_time=3e-12)
        assert coverage == pytest.approx(0.5)
        assert sim.coverage([], RISING, capture_time=3e-12) == 1.0


class TestThreshold:
    def test_minimum_detectable_delay_bisection(self, library):
        circuit, compiled = chain(library)
        sim = SmallDelayFaultSimulator(circuit, library, compiled=compiled)
        # slack at capture 3 ps is 1 ps: threshold must bisect to ~1 ps
        threshold = sim.minimum_detectable_delay(
            "g0", RISING, capture_time=3e-12, upper=8e-12, iterations=14)
        assert threshold == pytest.approx(1e-12, rel=0.01)

    def test_untestable_returns_none(self, library):
        circuit, compiled = chain(library)
        sim = SmallDelayFaultSimulator(circuit, library, compiled=compiled)
        stable = [PatternPair(v1=np.asarray([1], dtype=np.uint8),
                              v2=np.asarray([1], dtype=np.uint8))]
        assert sim.minimum_detectable_delay(
            "g0", stable, capture_time=3e-12, upper=1e-10) is None


class TestVoltageAwareness:
    def test_lower_voltage_exposes_smaller_defects(self, library, kernel_table,
                                                   medium_circuit, rng):
        """At reduced V_DD the same capture clock leaves less slack, so the
        minimum detectable delay shrinks — the paper's variation-aware
        fault-grading use case."""
        sim = SmallDelayFaultSimulator(medium_circuit, library)
        pairs = [PatternPair.random(len(medium_circuit.inputs), rng)
                 for _ in range(8)]
        # capture at the nominal settling time plus a little margin
        from repro.simulation.gpu import GpuWaveSim
        nominal = GpuWaveSim(medium_circuit, library).run(pairs)
        capture = 1.15 * max(nominal.latest_arrival(s, medium_circuit.outputs)
                             for s in range(len(pairs)))
        gate = medium_circuit.gates[len(medium_circuit.gates) // 2].name
        t_nom = sim.minimum_detectable_delay(
            gate, pairs, capture, voltage=0.8, kernel_table=kernel_table,
            upper=2e-9, iterations=8)
        t_low = sim.minimum_detectable_delay(
            gate, pairs, capture, voltage=0.6, kernel_table=kernel_table,
            upper=2e-9, iterations=8)
        if t_nom is not None and t_low is not None:
            assert t_low <= t_nom * 1.05


class TestIncrementalStrategy:
    def test_matches_full_rerun(self, library, kernel_table, rng):
        """Cone-limited and full re-simulation give identical verdicts
        across many faults, sizes and capture times."""
        from repro.netlist.generate import random_circuit
        from repro.simulation.gpu import GpuWaveSim

        circuit = random_circuit("sdq", 10, 180, seed=61)
        compiled = compile_circuit(circuit, library)
        pairs = [PatternPair.random(10, rng) for _ in range(10)]
        nominal = GpuWaveSim(circuit, library, compiled=compiled).run(
            pairs, voltage=0.8, kernel_table=kernel_table)
        base_arrival = max(nominal.latest_arrival(s, circuit.outputs)
                           for s in range(len(pairs)))

        fast = SmallDelayFaultSimulator(circuit, library, compiled=compiled,
                                        incremental=True)
        slow = SmallDelayFaultSimulator(circuit, library, compiled=compiled,
                                        incremental=False)
        chooser = np.random.default_rng(61)
        faults = [
            SmallDelayFault(circuit.gates[int(g)].name,
                            float(chooser.uniform(5e-12, 80e-12)))
            for g in chooser.choice(circuit.num_gates, size=10, replace=False)
        ]
        for capture in (base_arrival * 1.02, base_arrival * 1.2):
            a = fast.simulate(faults, pairs, capture, voltage=0.8,
                              kernel_table=kernel_table)
            b = slow.simulate(faults, pairs, capture, voltage=0.8,
                              kernel_table=kernel_table)
            assert a == b

    def test_matches_full_rerun_static_mode(self, library, rng):
        from repro.netlist.generate import random_circuit

        circuit = random_circuit("sdq2", 8, 100, seed=62)
        compiled = compile_circuit(circuit, library)
        pairs = [PatternPair.random(8, rng) for _ in range(6)]
        fast = SmallDelayFaultSimulator(circuit, library, compiled=compiled,
                                        incremental=True)
        slow = SmallDelayFaultSimulator(circuit, library, compiled=compiled,
                                        incremental=False)
        faults = [SmallDelayFault(circuit.gates[k].name, 20e-12)
                  for k in (5, 30, 70)]
        a = fast.simulate(faults, pairs, 0.4e-9)
        b = slow.simulate(faults, pairs, 0.4e-9)
        assert a == b

    def test_golden_run_cached(self, library, rng):
        from repro.netlist.generate import random_circuit

        circuit = random_circuit("sdq3", 8, 60, seed=63)
        sim = SmallDelayFaultSimulator(circuit, library)
        pairs = [PatternPair.random(8, rng) for _ in range(4)]
        fault = SmallDelayFault(circuit.gates[10].name, 10e-12)
        sim.simulate([fault], pairs, 1e-9)
        assert len(sim._golden_cache) == 1
        sim.simulate([fault], pairs, 2e-9)   # same workload, new capture
        assert len(sim._golden_cache) == 1
        # static mode ignores voltage differences only via the kernel
        # table; a different voltage key still creates a new entry
        sim.simulate([fault], pairs, 1e-9, voltage=0.7)
        assert len(sim._golden_cache) == 2


class TestValidation:
    def test_bad_fault(self):
        with pytest.raises(AtpgError):
            SmallDelayFault("g0", extra_delay=0.0)

    def test_unknown_gate(self, library):
        circuit, compiled = chain(library)
        sim = SmallDelayFaultSimulator(circuit, library, compiled=compiled)
        with pytest.raises(AtpgError, match="no gate"):
            sim.simulate([SmallDelayFault("ghost", 1e-12)], RISING, 3e-12)

    def test_bad_capture_time(self, library):
        circuit, compiled = chain(library)
        sim = SmallDelayFaultSimulator(circuit, library, compiled=compiled)
        with pytest.raises(AtpgError, match="capture"):
            sim.simulate([SmallDelayFault("g0", 1e-12)], RISING, 0.0)
