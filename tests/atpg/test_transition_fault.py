"""Tests for transition-fault simulation and coverage-driven ATPG."""

import numpy as np
import pytest

from repro.atpg.patterns import random_pattern_set
from repro.atpg.transition_fault import (
    FaultSimulator,
    TransitionFault,
    generate_transition_patterns,
)
from repro.netlist.circuit import Circuit
from repro.netlist.generate import c17, ripple_carry_adder
from repro.simulation.base import PatternPair


def buffer_circuit() -> Circuit:
    circuit = Circuit("buf")
    circuit.add_input("a")
    circuit.add_gate("g0", "BUF_X1", ["a"], "y")
    circuit.add_output("y")
    return circuit


class TestDetectionSemantics:
    def test_buffer_str_needs_rising_launch(self, library):
        sim = FaultSimulator(buffer_circuit(), library)
        str_fault = TransitionFault("a", slow_to_rise=True)
        rising = PatternPair(v1=np.asarray([0], dtype=np.uint8),
                             v2=np.asarray([1], dtype=np.uint8))
        falling = PatternPair(v1=np.asarray([1], dtype=np.uint8),
                              v2=np.asarray([0], dtype=np.uint8))
        stable = PatternPair(v1=np.asarray([1], dtype=np.uint8),
                             v2=np.asarray([1], dtype=np.uint8))
        detected = sim.simulate([falling, stable, rising], [str_fault])
        assert detected == {str_fault: 2}

    def test_stf_symmetry(self, library):
        sim = FaultSimulator(buffer_circuit(), library)
        stf = TransitionFault("y", slow_to_rise=False)
        falling = PatternPair(v1=np.asarray([1], dtype=np.uint8),
                              v2=np.asarray([0], dtype=np.uint8))
        assert sim.simulate([falling], [stf]) == {stf: 0}

    def test_masked_fault_not_detected(self, library):
        """A transition that does not propagate to any output is undetected."""
        circuit = Circuit("mask")
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("g0", "AND2_X1", ["a", "b"], "y")
        circuit.add_output("y")
        sim = FaultSimulator(circuit, library)
        fault = TransitionFault("a", slow_to_rise=True)
        # a rises but b=0 blocks the AND: no detection
        blocked = PatternPair(v1=np.asarray([0, 0], dtype=np.uint8),
                              v2=np.asarray([1, 0], dtype=np.uint8))
        assert sim.simulate([blocked], [fault]) == {}
        # with b=1 the effect reaches the output
        open_path = PatternPair(v1=np.asarray([0, 1], dtype=np.uint8),
                                v2=np.asarray([1, 1], dtype=np.uint8))
        assert sim.simulate([open_path], [fault]) == {fault: 0}

    def test_all_faults_universe(self, library):
        sim = FaultSimulator(c17(), library)
        faults = sim.all_faults()
        assert len(faults) == 2 * len(c17().nets())

    def test_unknown_net_fault(self, library):
        from repro.errors import AtpgError
        sim = FaultSimulator(buffer_circuit(), library)
        values1 = sim._good_values(np.zeros((1, 1), dtype=np.uint8))
        values2 = sim._good_values(np.ones((1, 1), dtype=np.uint8))
        with pytest.raises(AtpgError):
            sim.detecting_words(TransitionFault("ghost", True), values1, values2)


class TestCoverage:
    def test_coverage_monotone_in_patterns(self, library):
        circuit = c17()
        sim = FaultSimulator(circuit, library)
        patterns = random_pattern_set(circuit, 32, seed=5)
        few = sim.coverage(patterns.pairs[:4])
        many = sim.coverage(patterns.pairs)
        assert many >= few

    def test_c17_full_coverage_with_enough_patterns(self, library):
        circuit = c17()
        sim = FaultSimulator(circuit, library)
        patterns = random_pattern_set(circuit, 200, seed=1)
        assert sim.coverage(patterns.pairs) == pytest.approx(1.0)

    def test_empty_pattern_set(self, library):
        sim = FaultSimulator(c17(), library)
        assert sim.simulate([]) == {}


class TestAtpg:
    def test_c17_atpg(self, library):
        patterns, coverage = generate_transition_patterns(
            c17(), library, max_pairs=64)
        assert coverage == pytest.approx(1.0)
        assert 0 < len(patterns) <= 64
        assert set(patterns.count_by_source()) == {"transition-fault"}

    def test_adder_atpg(self, library):
        patterns, coverage = generate_transition_patterns(
            ripple_carry_adder(6), library, max_pairs=96)
        assert coverage > 0.95

    def test_kept_patterns_add_incremental_coverage(self, library):
        """Greedy keep order: every prefix extension adds new detections."""
        circuit = c17()
        patterns, _ = generate_transition_patterns(
            circuit, library, max_pairs=64, target_coverage=1.0)
        sim = FaultSimulator(circuit, library)
        previous = 0.0
        for count in range(1, len(patterns) + 1):
            coverage = sim.coverage(patterns.pairs[:count])
            assert coverage > previous
            previous = coverage

    def test_fault_sampling(self, library):
        patterns, coverage = generate_transition_patterns(
            ripple_carry_adder(8), library, max_pairs=48, fault_sample=30)
        assert coverage > 0.9

    def test_max_pairs_respected(self, library):
        patterns, _ = generate_transition_patterns(
            ripple_carry_adder(10), library, max_pairs=5)
        assert len(patterns) <= 5
