"""Tests for pattern-set containers and random generation."""

import numpy as np
import pytest

from repro.atpg.patterns import PatternSet, random_pattern_set
from repro.netlist.generate import c17
from repro.simulation.base import PatternPair


class TestPatternSet:
    def test_add_and_sources(self):
        patterns = PatternSet(circuit_name="x")
        pair = PatternPair(v1=np.zeros(2, dtype=np.uint8),
                           v2=np.ones(2, dtype=np.uint8))
        patterns.add(pair, source="random")
        patterns.add(pair, source="timing-aware")
        assert len(patterns) == 2
        assert patterns.count_by_source() == {"random": 1, "timing-aware": 1}
        assert patterns[0] is pair
        assert list(patterns) == [pair, pair]

    def test_extend(self):
        a = random_pattern_set(c17(), 3, seed=1)
        b = random_pattern_set(c17(), 2, seed=2)
        a.extend(b)
        assert len(a) == 5
        assert a.count_by_source() == {"random": 5}

    def test_matrices(self):
        patterns = random_pattern_set(c17(), 4, seed=3)
        assert patterns.v1_matrix().shape == (4, 5)
        assert patterns.v2_matrix().shape == (4, 5)

    def test_sources_padded(self):
        pair = PatternPair(v1=np.zeros(1, dtype=np.uint8),
                           v2=np.zeros(1, dtype=np.uint8))
        patterns = PatternSet(circuit_name="x", pairs=[pair])
        assert patterns.sources == ["unknown"]


class TestRandomGeneration:
    def test_deterministic(self):
        a = random_pattern_set(c17(), 10, seed=7)
        b = random_pattern_set(c17(), 10, seed=7)
        np.testing.assert_array_equal(a.v1_matrix(), b.v1_matrix())
        np.testing.assert_array_equal(a.v2_matrix(), b.v2_matrix())

    def test_seed_matters(self):
        a = random_pattern_set(c17(), 10, seed=1)
        b = random_pattern_set(c17(), 10, seed=2)
        assert not np.array_equal(a.v1_matrix(), b.v1_matrix())

    def test_adjacent_flips_one_bit(self):
        patterns = random_pattern_set(c17(), 20, seed=4, adjacent=True)
        diff = patterns.v1_matrix() != patterns.v2_matrix()
        np.testing.assert_array_equal(diff.sum(axis=1), np.ones(20))

    def test_count_validation(self):
        with pytest.raises(ValueError):
            random_pattern_set(c17(), 0)
