"""Tests for the dynamic batcher's flush policy (pure logic, no threads)."""

from concurrent.futures import Future

from repro.service import DynamicBatcher
from repro.service.jobs import SimulationJob
from repro.simulation.grid import SlotPlan


def job(compat: str, slots: int) -> SimulationJob:
    return SimulationJob(
        circuit_key="c", pairs=[None] * slots,
        plan=SlotPlan.uniform(slots, 0.8), config=None, kernel_table=None,
        variation=None, fingerprint=f"fp-{compat}-{slots}-{id(object())}",
        compat_key=compat, future=Future())


class TestFullnessFlush:
    def test_flushes_at_max_slots(self):
        batcher = DynamicBatcher(max_batch_slots=4, max_wait_seconds=10.0)
        assert batcher.add(job("g", 2), now=0.0) == []
        ready = batcher.add(job("g", 2), now=0.1)
        assert len(ready) == 1
        assert ready[0].num_jobs == 2
        assert ready[0].num_slots == 4
        assert batcher.pending_jobs == 0

    def test_overflow_flushes_group_first(self):
        batcher = DynamicBatcher(max_batch_slots=4, max_wait_seconds=10.0)
        batcher.add(job("g", 3), now=0.0)
        ready = batcher.add(job("g", 3), now=0.1)
        # 3 + 3 > 4: the pending 3-slot batch flushes, the new job
        # starts a fresh group (it has not reached the ceiling itself).
        assert len(ready) == 1
        assert ready[0].num_slots == 3
        assert batcher.pending_slots == 3

    def test_oversized_job_becomes_own_batch(self):
        batcher = DynamicBatcher(max_batch_slots=4, max_wait_seconds=10.0)
        ready = batcher.add(job("g", 9), now=0.0)
        assert len(ready) == 1
        assert ready[0].num_slots == 9

    def test_compat_groups_do_not_mix(self):
        batcher = DynamicBatcher(max_batch_slots=4, max_wait_seconds=10.0)
        batcher.add(job("a", 2), now=0.0)
        ready = batcher.add(job("b", 2), now=0.0)
        assert ready == []
        assert batcher.pending_jobs == 2
        drained = batcher.drain()
        assert sorted(b.compat_key for b in drained) == ["a", "b"]
        assert all(b.num_jobs == 1 for b in drained)


class TestAgeFlush:
    def test_due_after_max_wait(self):
        batcher = DynamicBatcher(max_batch_slots=100, max_wait_seconds=1.0)
        batcher.add(job("g", 2), now=0.0)
        assert batcher.due(now=0.5) == []
        ready = batcher.due(now=1.0)
        assert len(ready) == 1
        assert batcher.pending_jobs == 0

    def test_age_counts_from_oldest_job(self):
        batcher = DynamicBatcher(max_batch_slots=100, max_wait_seconds=1.0)
        batcher.add(job("g", 2), now=0.0)
        batcher.add(job("g", 2), now=0.9)  # late arrival does not reset age
        ready = batcher.due(now=1.0)
        assert len(ready) == 1
        assert ready[0].num_jobs == 2

    def test_next_deadline(self):
        batcher = DynamicBatcher(max_batch_slots=100, max_wait_seconds=1.0)
        assert batcher.next_deadline(now=0.0) is None
        batcher.add(job("a", 1), now=0.0)
        batcher.add(job("b", 1), now=0.4)
        assert batcher.next_deadline(now=0.5) == 0.5
        assert batcher.next_deadline(now=2.0) == 0.0


class TestDrain:
    def test_drain_returns_everything_once(self):
        batcher = DynamicBatcher(max_batch_slots=100, max_wait_seconds=1.0)
        batcher.add(job("a", 1), now=0.0)
        batcher.add(job("b", 2), now=0.0)
        assert batcher.pending_slots == 3
        assert len(batcher.drain()) == 2
        assert batcher.drain() == []
