"""Tests for the simulation service: batching, caching, admission, shutdown.

The load-bearing property is **bit-identity**: a job's waveforms must be
exactly what a standalone ``GpuWaveSim.run`` of the same request
produces, no matter which batch the service coalesced it into.
"""

import threading

import numpy as np
import pytest

from repro.errors import (
    AdmissionError,
    ServiceClosedError,
    ServiceError,
)
from repro.netlist.generate import random_circuit
from repro.service import ServiceConfig, SimulationService
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.compiled import compile_circuit
from repro.simulation.gpu import GpuWaveSim
from repro.simulation.grid import SlotPlan
from repro.simulation.variation import ProcessVariation


@pytest.fixture(scope="module")
def circuit():
    return random_circuit("svc", 10, 90, seed=11)


@pytest.fixture(scope="module")
def compiled(circuit, library):
    return compile_circuit(circuit, library)


def make_jobs(circuit, count, pairs_each=2, seed=0):
    rng = np.random.default_rng(seed)
    return [[PatternPair.random(len(circuit.inputs), rng)
             for _ in range(pairs_each)] for _ in range(count)]


def coalescing_config(**overrides):
    """Deterministic batching: generous waits, flush on fullness."""
    defaults = dict(max_batch_slots=16, max_wait_ms=2000.0, idle_ms=500.0)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def assert_bit_identical(job_pairs, result, engine, **run_kwargs):
    reference = engine.run(job_pairs, **run_kwargs)
    assert len(reference.waveforms) == result.num_slots
    for slot in range(result.num_slots):
        ref_nets = reference.waveforms[slot]
        got_nets = result.waveforms[slot]
        assert set(ref_nets) == set(got_nets)
        for net, ref in ref_nets.items():
            got = got_nets[net]
            assert got.initial == ref.initial, (slot, net)
            assert np.array_equal(got.times, ref.times), (slot, net)


class TestBatchingAndBitIdentity:
    def test_coalesced_batch_is_bit_identical(self, circuit, library,
                                              compiled):
        jobs = make_jobs(circuit, 8)
        with SimulationService(config=coalescing_config()) as service:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            handles = [service.submit(key, pairs) for pairs in jobs]
            results = [h.result(timeout=60) for h in handles]
            metrics = service.metrics()
        # 8 jobs x 2 slots == max_batch_slots: exactly one dispatch.
        assert metrics.batches_dispatched == 1
        assert metrics.coalesce_factor == 8.0
        assert metrics.jobs_completed == 8
        engine = GpuWaveSim(circuit, library, compiled=compiled,
                            config=SimulationConfig())
        for pairs, result in zip(jobs, results):
            assert not result.cache_hit
            assert_bit_identical(pairs, result, engine)

    def test_parametric_batch_is_bit_identical(self, circuit, library,
                                               compiled, kernel_table):
        jobs = make_jobs(circuit, 4, seed=5)
        voltages = [0.65, 0.95]
        plans = [SlotPlan.cross(len(pairs), voltages) for pairs in jobs]
        with SimulationService(config=coalescing_config()) as service:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            handles = [service.submit(key, pairs, plan=plan,
                                      kernel_table=kernel_table)
                       for pairs, plan in zip(jobs, plans)]
            results = [h.result(timeout=60) for h in handles]
            assert service.engine_dispatches == 1
        engine = GpuWaveSim(circuit, library, compiled=compiled,
                            config=SimulationConfig())
        for pairs, plan, result in zip(jobs, plans, results):
            assert result.slot_labels == plan.labels()
            assert_bit_identical(pairs, result, engine, plan=plan,
                                 kernel_table=kernel_table)

    def test_variation_ignores_batch_position(self, circuit, library,
                                              compiled, kernel_table):
        """Monte-Carlo die factors must use job-local slot indices."""
        variation = ProcessVariation(sigma=0.05, seed=9)
        jobs = make_jobs(circuit, 4, seed=7)
        with SimulationService(config=coalescing_config()) as service:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            handles = [service.submit(key, pairs, kernel_table=kernel_table,
                                      variation=variation)
                       for pairs in jobs]
            results = [h.result(timeout=60) for h in handles]
            assert service.engine_dispatches == 1
        engine = GpuWaveSim(circuit, library, compiled=compiled,
                            config=SimulationConfig())
        # Every job — including those landing late in the shared plane —
        # must match a standalone run, where its slots start at 0.
        for pairs, result in zip(jobs, results):
            assert_bit_identical(pairs, result, engine,
                                 kernel_table=kernel_table,
                                 variation=variation)

    def test_static_voltages_do_not_coalesce(self, circuit, library,
                                             compiled):
        """Two valid static jobs at different voltages must not share a
        plane (the engine rejects static multi-voltage planes)."""
        jobs = make_jobs(circuit, 2, seed=3)
        with SimulationService(config=coalescing_config()) as service:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            first = service.submit(key, jobs[0], voltage=0.8)
            second = service.submit(key, jobs[1], voltage=0.6)
            r1 = first.result(timeout=60)
            r2 = second.result(timeout=60)
            assert service.engine_dispatches == 2
        assert r1.slot_labels == [(0, 0.8), (1, 0.8)]
        assert r2.slot_labels == [(0, 0.6), (1, 0.6)]

    def test_incompatible_configs_do_not_coalesce(self, circuit, library,
                                                  compiled):
        jobs = make_jobs(circuit, 2, seed=4)
        with SimulationService(config=coalescing_config()) as service:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            a = service.submit(key, jobs[0],
                               config=SimulationConfig(record_all_nets=True))
            b = service.submit(key, jobs[1],
                               config=SimulationConfig(record_all_nets=False))
            ra, rb = a.result(timeout=60), b.result(timeout=60)
            assert service.engine_dispatches == 2
        assert len(ra.waveforms[0]) > len(rb.waveforms[0])


class TestConcurrentSubmission:
    def test_two_threads_get_their_own_slices(self, circuit, library,
                                              compiled):
        """Overlapping concurrent submissions demux correctly: every
        thread's results are bit-identical to its own standalone runs."""
        per_thread = 6
        job_sets = {
            name: make_jobs(circuit, per_thread, seed=seed)
            for name, seed in (("t1", 21), ("t2", 22))
        }
        # One identical job in both threads: overlapping fingerprints.
        job_sets["t2"][0] = [PatternPair(p.v1.copy(), p.v2.copy())
                             for p in job_sets["t1"][0]]
        outcomes = {}

        with SimulationService(config=coalescing_config(
                max_batch_slots=8, workers=2)) as service:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)

            def worker(name):
                handles = [service.submit(key, pairs)
                           for pairs in job_sets[name]]
                outcomes[name] = [h.result(timeout=60) for h in handles]

            threads = [threading.Thread(target=worker, args=(name,))
                       for name in job_sets]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
                assert not thread.is_alive()
            metrics = service.metrics()

        assert metrics.jobs_completed == 2 * per_thread
        assert metrics.jobs_failed == 0
        engine = GpuWaveSim(circuit, library, compiled=compiled,
                            config=SimulationConfig())
        for name, jobs in job_sets.items():
            for pairs, result in zip(jobs, outcomes[name]):
                assert_bit_identical(pairs, result, engine)


class TestResultCache:
    def test_cache_hit_skips_engine_dispatch(self, circuit, library,
                                             compiled):
        pairs = make_jobs(circuit, 1, seed=8)[0]
        with SimulationService(config=coalescing_config(
                max_batch_slots=2)) as service:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            first = service.submit(key, pairs).result(timeout=60)
            dispatches = service.engine_dispatches
            assert dispatches == 1
            second = service.submit(key, pairs).result(timeout=60)
            assert service.engine_dispatches == dispatches  # no new dispatch
            metrics = service.metrics()
        assert not first.cache_hit
        assert second.cache_hit
        assert second.engine == "cache"
        assert second.gate_evaluations == 0
        assert second.report.chunks[0].from_checkpoint
        assert metrics.cache["hits"] == 1
        # Cached waveforms are the same data.
        for slot in range(first.num_slots):
            for net, ref in first.waveforms[slot].items():
                assert np.array_equal(second.waveforms[slot][net].times,
                                      ref.times)

    def test_different_stimuli_miss(self, circuit, library, compiled):
        jobs = make_jobs(circuit, 2, seed=9)
        with SimulationService(config=coalescing_config(
                max_batch_slots=2)) as service:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            service.submit(key, jobs[0]).result(timeout=60)
            service.submit(key, jobs[1]).result(timeout=60)
            assert service.engine_dispatches == 2

    def test_cache_disabled(self, circuit, library, compiled):
        pairs = make_jobs(circuit, 1, seed=10)[0]
        with SimulationService(config=coalescing_config(
                max_batch_slots=2, cache_entries=0)) as service:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            service.submit(key, pairs).result(timeout=60)
            repeat = service.submit(key, pairs).result(timeout=60)
            assert service.engine_dispatches == 2
        assert not repeat.cache_hit

    def test_cache_hit_copies_do_not_alias_slots(self, circuit, library,
                                                 compiled):
        pairs = make_jobs(circuit, 1, seed=12)[0]
        with SimulationService(config=coalescing_config(
                max_batch_slots=2)) as service:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            service.submit(key, pairs).result(timeout=60)
            hit1 = service.submit(key, pairs).result(timeout=60)
            hit1.waveforms[0].clear()  # caller mutates its copy
            hit2 = service.submit(key, pairs).result(timeout=60)
        assert hit2.cache_hit
        assert len(hit2.waveforms[0]) > 0


class TestAdmissionControl:
    def test_reject_policy_raises_with_retry_hint(self, circuit, library,
                                                  compiled):
        jobs = make_jobs(circuit, 3, seed=13)
        config = coalescing_config(queue_depth=2, admission="reject",
                                   max_batch_slots=64)
        with SimulationService(config=config) as service:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            # Two jobs sit in the batcher (generous waits, plane not
            # full), saturating the backlog.
            service.submit(key, jobs[0])
            service.submit(key, jobs[1])
            with pytest.raises(AdmissionError) as excinfo:
                service.submit(key, jobs[2])
            assert excinfo.value.retry_after_seconds > 0
            assert service.metrics().jobs_rejected == 1
        # close() drains: the admitted jobs still completed.
        assert service.metrics().jobs_completed == 2

    def test_block_policy_times_out(self, circuit, library, compiled):
        jobs = make_jobs(circuit, 3, seed=14)
        config = coalescing_config(queue_depth=2, admission="block",
                                   block_timeout_s=0.05, max_batch_slots=64)
        with SimulationService(config=config) as service:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            service.submit(key, jobs[0])
            service.submit(key, jobs[1])
            with pytest.raises(AdmissionError):
                service.submit(key, jobs[2])

    def test_invalid_jobs_rejected_synchronously(self, circuit, library,
                                                 compiled):
        with SimulationService(config=coalescing_config()) as service:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            with pytest.raises(ServiceError, match="at least one"):
                service.submit(key, [])
            rng = np.random.default_rng(0)
            wrong = [PatternPair.random(len(circuit.inputs) + 1, rng)]
            with pytest.raises(ServiceError, match="width"):
                service.submit(key, wrong)
            pairs = make_jobs(circuit, 1, seed=15)[0]
            multi = SlotPlan.cross(len(pairs), [0.6, 0.8])
            with pytest.raises(ServiceError, match="static"):
                service.submit(key, pairs, plan=multi)
            with pytest.raises(ServiceError, match="unknown circuit"):
                service.submit("not-a-fingerprint", pairs)


class TestShutdown:
    def test_close_drains_pending_jobs(self, circuit, library, compiled):
        jobs = make_jobs(circuit, 3, seed=16)
        service = SimulationService(config=coalescing_config(
            max_batch_slots=64))
        key = service.register_circuit(circuit, library, compiled=compiled)
        handles = [service.submit(key, pairs) for pairs in jobs]
        service.close()  # jobs were still waiting in the batcher
        for handle in handles:
            assert handle.result(timeout=60).num_slots == 2
        assert service.metrics().jobs_completed == 3

    def test_close_without_drain_fails_pending(self, circuit, library,
                                               compiled):
        jobs = make_jobs(circuit, 2, seed=17)
        service = SimulationService(config=coalescing_config(
            max_batch_slots=64))
        key = service.register_circuit(circuit, library, compiled=compiled)
        handles = [service.submit(key, pairs) for pairs in jobs]
        service.close(drain=False)
        for handle in handles:
            with pytest.raises(ServiceClosedError):
                handle.result(timeout=60)
        assert service.metrics().jobs_failed == 2
        assert service.metrics().queue_depth == 0

    def test_submit_after_close_raises(self, circuit, library, compiled):
        service = SimulationService(config=coalescing_config())
        key = service.register_circuit(circuit, library, compiled=compiled)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(key, make_jobs(circuit, 1, seed=18)[0])
        service.close()  # idempotent

    def test_register_unknown_circuit_errors(self, library):
        with SimulationService(config=coalescing_config()) as service:
            with pytest.raises(ServiceError, match="unknown circuit"):
                service.circuit("deadbeef")


class TestMetrics:
    def test_snapshot_shape(self, circuit, library, compiled):
        jobs = make_jobs(circuit, 8, seed=19)
        with SimulationService(config=coalescing_config(
                max_batch_slots=2)) as service:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            for pairs in jobs:
                service.submit(key, pairs).result(timeout=60)
            metrics = service.metrics()
        data = metrics.to_dict()
        assert data["jobs_submitted"] == 8
        assert data["jobs_completed"] == 8
        assert data["slots_dispatched"] == 16
        assert sum(metrics.occupancy_histogram.values()) == \
            metrics.batches_dispatched
        assert metrics.latency_p50_ms is not None
        assert metrics.latency_p50_ms <= metrics.latency_p99_ms
        assert "coalesce factor" in metrics.summary()
