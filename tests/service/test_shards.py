"""Tests for the multi-process sharded service (``ServiceConfig(shards=N)``).

Contracts under test (``docs/architecture.md`` §11):

* results coming back through a shard's shared-memory result plane are
  **bit-identical** to a standalone ``GpuWaveSim.run`` of the same
  request, including Monte-Carlo sampling;
* waveform payloads travel through shared memory, never the control
  pipe — ``ipc_rx_bytes`` stays descriptor-sized while
  ``shm_out_bytes`` carries the data;
* every shard's level-plan cache is warmed at registration time, before
  its first batch;
* a shard SIGKILLed mid-batch is respawned with its registry replayed
  and its in-flight batch re-queued exactly once, with every job still
  settling correctly;
* the ``shard.spawn`` / ``shard.dispatch`` fault seams drive the
  retry, error-propagation and poison-isolation paths.

The shard count comes from the ``--shards`` pytest option (default 2).
"""

import os
import signal
import time

import numpy as np
import pytest

from repro import faults
from repro.errors import InjectedFaultError, ServiceError, ShardError
from repro.netlist.generate import random_circuit
from repro.service import ServiceConfig, SimulationService
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.compiled import compile_circuit
from repro.simulation.gpu import GpuWaveSim
from repro.simulation.variation import ProcessVariation


@pytest.fixture(scope="module")
def circuit():
    return random_circuit("svc", 10, 90, seed=11)


@pytest.fixture(scope="module")
def compiled(circuit, library):
    return compile_circuit(circuit, library)


@pytest.fixture(scope="module")
def sharded(circuit, library, compiled, shard_count):
    """One sharded service shared by the read-only tests below."""
    service = SimulationService(config=sharded_config(shard_count))
    key = service.register_circuit(circuit, library, compiled=compiled)
    yield service, key
    service.close()


def make_jobs(circuit, count, pairs_each=2, seed=0):
    rng = np.random.default_rng(seed)
    return [[PatternPair.random(len(circuit.inputs), rng)
             for _ in range(pairs_each)] for _ in range(count)]


def sharded_config(shard_count, **overrides):
    """Deterministic batching over ``shard_count`` worker processes."""
    defaults = dict(shards=shard_count, max_batch_slots=16,
                    max_wait_ms=2000.0, idle_ms=500.0, cache_entries=0)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def assert_bit_identical(job_pairs, result, engine, **run_kwargs):
    reference = engine.run(job_pairs, **run_kwargs)
    assert len(reference.waveforms) == result.num_slots
    for slot in range(result.num_slots):
        ref_nets = reference.waveforms[slot]
        got_nets = result.waveforms[slot]
        assert set(ref_nets) == set(got_nets)
        for net, ref in ref_nets.items():
            got = got_nets[net]
            assert got.initial == ref.initial, (slot, net)
            assert np.array_equal(got.times, ref.times), (slot, net)


class TestShardedBitIdentity:
    def test_results_bit_identical_to_standalone(self, sharded, circuit,
                                                 library, compiled):
        service, key = sharded
        jobs = make_jobs(circuit, 8, seed=3)
        handles = [service.submit(key, pairs) for pairs in jobs]
        results = [h.result(timeout=180) for h in handles]
        engine = GpuWaveSim(circuit, library, compiled=compiled,
                            config=SimulationConfig())
        for pairs, result in zip(jobs, results):
            assert_bit_identical(pairs, result, engine)

    def test_zero_copy_result_transport(self, sharded, circuit):
        service, key = sharded
        jobs = make_jobs(circuit, 4, seed=21)
        handles = [service.submit(key, pairs) for pairs in jobs]
        for handle in handles:
            handle.result(timeout=180)
        metrics = service.metrics()
        assert metrics.shm_in_bytes > 0
        assert metrics.shm_out_bytes > 0
        # Waveform payloads never cross the control pipe: everything the
        # parent receives is descriptor-sized, while the packed results
        # it demuxed rode shared memory.
        assert metrics.ipc_rx_bytes < metrics.shm_out_bytes
        assert metrics.shards  # per-shard metrics dimension exists
        assert sum(s["dispatches"] for s in metrics.shards.values()) >= 1
        assert metrics.shard_latency_ms  # shard dimension on percentiles
        assert all(pcts["p95"] >= pcts["p50"] >= 0.0
                   for pcts in metrics.shard_latency_ms.values())

    def test_plan_cache_warm_before_first_batch(self, sharded):
        # Registration broadcasts the parent's already-built CircuitPlans
        # to every shard, so no shard — busy or idle — has ever missed.
        service, _ = sharded
        router = service._router
        for index in range(router.num_shards):
            info = router.ping(index, timeout_s=30.0)
            assert info is not None, f"shard {index} did not answer ping"
            stats = info["plan_cache"]
            assert stats["entries"] >= 1
            assert stats["misses"] == 0

    def test_monte_carlo_bit_identical(self, sharded, circuit, library,
                                       compiled, kernel_table):
        # Monte-Carlo die factors must use job-local slot indices no
        # matter which shard and batch position a job landed in.
        service, key = sharded
        variation = ProcessVariation(sigma=0.05, seed=9)
        jobs = make_jobs(circuit, 4, seed=7)
        handles = [service.submit(key, pairs, kernel_table=kernel_table,
                                  variation=variation)
                   for pairs in jobs]
        results = [h.result(timeout=180) for h in handles]
        engine = GpuWaveSim(circuit, library, compiled=compiled,
                            config=SimulationConfig())
        for pairs, result in zip(jobs, results):
            assert_bit_identical(pairs, result, engine,
                                 kernel_table=kernel_table,
                                 variation=variation)


class TestShardDeath:
    def test_shard_death_storm(self, circuit, library, compiled,
                               shard_count, monkeypatch):
        """SIGKILL one shard mid-batch during a 64-job run.

        Every job must still settle with correct bits, the dead shard
        must be respawned exactly once, and the single in-flight batch
        (ring depth 1) re-queued exactly once.
        """
        # Hold every batch in the shard for 250 ms so the kill lands
        # while one is provably in flight (spawned children inherit the
        # environment and resolve it at their first seam crossing).
        monkeypatch.setenv("REPRO_FAULTS", "shard.dispatch:delay@p=1,ms=250")
        faults.reset()
        jobs = make_jobs(circuit, 64, pairs_each=1, seed=13)
        config = sharded_config(shard_count, max_batch_slots=8,
                                shard_ring_slots=1, shard_queue_depth=2)
        service = SimulationService(config=config)
        try:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            handles = [service.submit(key, pairs) for pairs in jobs]
            router = service._router
            victim = None
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                stats = router.stats()
                busy = [int(idx) for idx, s in stats["shards"].items()
                        if s["inflight"] >= 1]
                if busy:
                    victim = busy[0]
                    break
                time.sleep(0.01)
            assert victim is not None, "no shard ever had an in-flight batch"
            os.kill(router.shard_pid(victim), signal.SIGKILL)

            results = [h.result(timeout=300) for h in handles]
            engine = GpuWaveSim(circuit, library, compiled=compiled,
                                config=SimulationConfig())
            for pairs, result in zip(jobs, results):
                assert_bit_identical(pairs, result, engine)

            metrics = service.metrics()
            assert metrics.jobs_completed >= 64
            assert metrics.workers_replaced == 1
            # ring depth 1 => exactly the one in-flight batch re-queued
            assert metrics.batches_requeued == 1
            stats = router.stats()
            assert stats["shards"][str(victim)]["respawns"] == 1
            assert stats["shards"][str(victim)]["requeues"] == 1
            if shard_count >= 2:
                # one hot group + tiny per-shard backlog => the router
                # must have spilled work off the home shard
                assert metrics.shard_rebalances >= 1
        finally:
            service.close()
            faults.reset()


class TestOrphanSweepOnRespawn:
    def test_two_sigkills_each_sweep_foreign_orphans(self, circuit, library,
                                                     compiled, shard_count):
        """Respawn-time orphan sweep (not just router startup).

        Plant a shm segment owned by an already-dead pid before each of
        two sequential shard SIGKILLs: every ``_recover`` must re-run
        ``sweep_orphans`` and reclaim it — a crash storm on a long-lived
        service must not accumulate dead segments until restart.  Live
        services' segments survive (the sweep checks owner liveness).
        """
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        import multiprocessing
        from multiprocessing import shared_memory

        from repro.service import shm as shm_mod

        def plant_orphan(tag):
            proc = multiprocessing.get_context("spawn").Process(target=int)
            proc.start()
            proc.join()
            name = shm_mod.segment_name(proc.pid, tag)
            segment = shared_memory.SharedMemory(name=name, create=True,
                                                 size=64)
            shm_mod._unregister(segment)
            segment.close()
            return name

        service = SimulationService(config=sharded_config(shard_count))
        try:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            pairs = make_jobs(circuit, 1, seed=41)[0]
            engine = GpuWaveSim(circuit, library, compiled=compiled,
                                config=SimulationConfig())
            assert_bit_identical(pairs, service.submit(key, pairs).result(
                timeout=180), engine)
            router = service._router
            for round_index in (1, 2):
                orphan = plant_orphan(f"orphan{round_index}")
                assert os.path.exists(os.path.join("/dev/shm", orphan))
                os.kill(router.shard_pid(0), signal.SIGKILL)
                deadline = time.monotonic() + 60.0
                while time.monotonic() < deadline:
                    stats = router.stats()
                    if (stats["shards"]["0"]["respawns"] >= round_index
                            and not os.path.exists(
                                os.path.join("/dev/shm", orphan))):
                        break
                    time.sleep(0.02)
                assert router.stats()["shards"]["0"]["respawns"] == \
                    round_index
                assert not os.path.exists(os.path.join("/dev/shm", orphan))
                # The respawned shard still serves traffic correctly.
                result = service.submit(key, pairs).result(timeout=180)
                assert_bit_identical(pairs, result, engine)
        finally:
            service.close()


class TestShardFaultSeams:
    def test_spawn_fault_is_retried(self, circuit, library, compiled):
        # first spawn attempt dies; the router's single retry succeeds
        with faults.injected("shard.spawn:raise@n=1"):
            service = SimulationService(config=sharded_config(1))
            try:
                key = service.register_circuit(circuit, library,
                                               compiled=compiled)
                pairs = make_jobs(circuit, 1, seed=31)[0]
                result = service.submit(key, pairs).result(timeout=180)
                engine = GpuWaveSim(circuit, library, compiled=compiled,
                                    config=SimulationConfig())
                assert_bit_identical(pairs, result, engine)
            finally:
                service.close()

    def test_persistent_spawn_failure_surfaces_and_leaks_nothing(self):
        before = set(os.listdir("/dev/shm")) if os.path.isdir(
            "/dev/shm") else set()
        with faults.injected("shard.spawn:raise@p=1"):
            with pytest.raises(ShardError):
                SimulationService(config=sharded_config(1))
        if os.path.isdir("/dev/shm"):
            leaked = {n for n in set(os.listdir("/dev/shm")) - before
                      if n.startswith("repro-svc")}
            assert leaked == set()

    def test_dispatch_fault_propagates_original_type(self, circuit, library,
                                                     compiled, monkeypatch):
        # a single-job batch failing inside the shard must fail that
        # job's future with the reconstructed exception type
        monkeypatch.setenv("REPRO_FAULTS", "shard.dispatch:raise@n=1")
        faults.reset()
        service = SimulationService(config=sharded_config(1))
        try:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            handle = service.submit(key, make_jobs(circuit, 1, seed=41)[0])
            with pytest.raises(InjectedFaultError):
                handle.result(timeout=180)
        finally:
            service.close()
            faults.reset()

    def test_dispatch_fault_isolates_poison_batch(self, circuit, library,
                                                  compiled, monkeypatch):
        # a multi-job batch failing in the shard is split into
        # singletons and re-dispatched; the fault fired once, so every
        # job still completes with correct bits
        monkeypatch.setenv("REPRO_FAULTS", "shard.dispatch:raise@n=1")
        faults.reset()
        jobs = make_jobs(circuit, 4, seed=43)
        service = SimulationService(
            config=sharded_config(1, max_batch_slots=8))
        try:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            handles = [service.submit(key, pairs) for pairs in jobs]
            results = [h.result(timeout=180) for h in handles]
            engine = GpuWaveSim(circuit, library, compiled=compiled,
                                config=SimulationConfig())
            for pairs, result in zip(jobs, results):
                assert_bit_identical(pairs, result, engine)
        finally:
            service.close()
            faults.reset()


class TestShardConfig:
    def test_shards_and_num_devices_are_exclusive(self):
        with pytest.raises(ServiceError):
            ServiceConfig(shards=2, num_devices=2)

    def test_negative_shards_rejected(self):
        with pytest.raises(ServiceError):
            ServiceConfig(shards=-1)

    def test_ring_and_segment_floors(self):
        with pytest.raises(ServiceError):
            ServiceConfig(shards=1, shard_ring_slots=0)
        with pytest.raises(ServiceError):
            ServiceConfig(shards=1, shard_segment_bytes=1024)
