"""Tests for the fingerprinted LRU result cache."""

from repro.service import CachedResult, ResultCache


def entry(tag: str) -> CachedResult:
    return CachedResult(waveforms=[{}], slot_labels=[(0, 0.8)],
                        engine=tag, gate_evaluations=1)


class TestResultCache:
    def test_round_trip(self):
        cache = ResultCache(4)
        cache.put("a", entry("a"))
        assert cache.get("a").engine == "a"
        assert cache.get("missing") is None
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = ResultCache(2)
        cache.put("a", entry("a"))
        cache.put("b", entry("b"))
        assert cache.get("a") is not None  # refresh a; b is now oldest
        cache.put("c", entry("c"))
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.evictions == 1

    def test_replacing_same_key_does_not_evict(self):
        cache = ResultCache(2)
        cache.put("a", entry("a1"))
        cache.put("b", entry("b"))
        cache.put("a", entry("a2"))
        assert len(cache) == 2
        assert cache.evictions == 0
        assert cache.get("a").engine == "a2"

    def test_disabled_cache_never_stores(self):
        cache = ResultCache(0)
        assert not cache.enabled
        cache.put("a", entry("a"))
        assert cache.get("a") is None
        assert len(cache) == 0
        # A disabled cache counts nothing: lookups short-circuit.
        assert cache.hits == 0 and cache.misses == 0

    def test_stats_shape(self):
        cache = ResultCache(2)
        cache.put("a", entry("a"))
        cache.get("a")
        cache.get("b")
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["max_entries"] == 2
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["evictions"] == 0

    def test_clear(self):
        cache = ResultCache(2)
        cache.put("a", entry("a"))
        cache.clear()
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_hit_rate_before_first_lookup(self):
        assert ResultCache(2).hit_rate == 0.0
