"""Tests for the service client and the JSON-lines transport."""

import io
import json

import pytest

from repro.cli import _load_circuit
from repro.service import (
    ServiceClient,
    ServiceConfig,
    SimulationService,
    serve_jsonl,
)


@pytest.fixture()
def service():
    with SimulationService(config=ServiceConfig(
            max_batch_slots=64, max_wait_ms=2000.0, idle_ms=20.0)) as svc:
        yield svc


@pytest.fixture()
def client(service, library):
    return ServiceClient(service, library, _load_circuit, backend="numpy")


class TestServiceClient:
    def test_request_round_trip(self, client):
        handle = client.request({"circuit": "random:60:2", "patterns": 4})
        result = handle.result(timeout=60)
        assert result.num_slots == 4
        assert not result.cache_hit

    def test_circuit_key_is_cached(self, client):
        key1 = client.circuit_key("random:60:2")
        key2 = client.circuit_key("random:60:2")
        assert key1 == key2
        assert client.service.circuit(key1) is not None

    def test_request_requires_circuit(self, client):
        from repro.errors import ReproError
        with pytest.raises(ReproError, match="circuit"):
            client.request({"patterns": 4})


class TestServeJsonl:
    def run_lines(self, client, lines):
        out = io.StringIO()
        status = serve_jsonl(io.StringIO("\n".join(lines) + "\n"), out,
                             client)
        assert status == 0
        return [json.loads(line) for line in
                out.getvalue().strip().splitlines()]

    def test_responses_in_submission_order(self, client):
        responses = self.run_lines(client, [
            json.dumps({"id": "a", "circuit": "random:60:2", "patterns": 2}),
            json.dumps({"id": "b", "circuit": "random:60:2", "patterns": 3,
                        "seed": 1}),
            json.dumps({"id": "c", "circuit": "random:60:2", "patterns": 2}),
        ])
        assert [r["id"] for r in responses] == ["a", "b", "c"]
        assert all(r["ok"] for r in responses)
        assert responses[0]["slots"] == 2
        assert responses[1]["slots"] == 3
        assert responses[0]["gate_evaluations"] > 0
        assert responses[0]["latest_arrival_s"] > 0

    def test_bad_lines_report_per_line(self, client):
        responses = self.run_lines(client, [
            "this is not json",
            json.dumps({"id": "x"}),  # missing circuit spec
            json.dumps(["not", "an", "object"]),
            json.dumps({"id": "ok", "circuit": "random:60:2",
                        "patterns": 2}),
        ])
        assert len(responses) == 4
        bad, no_spec, not_obj, good = responses
        assert not bad["ok"] and bad["id"] is None
        assert not no_spec["ok"] and no_spec["id"] == "x"
        assert not not_obj["ok"]
        assert good["ok"] and good["id"] == "ok"

    def test_blank_lines_ignored(self, client):
        responses = self.run_lines(client, [
            "",
            json.dumps({"id": "a", "circuit": "random:60:2", "patterns": 2}),
            "   ",
        ])
        assert len(responses) == 1

    def test_rejection_carries_retry_hint(self, library):
        config = ServiceConfig(max_batch_slots=64, max_wait_ms=2000.0,
                               idle_ms=500.0, queue_depth=1,
                               admission="reject")
        with SimulationService(config=config) as service:
            client = ServiceClient(service, library, _load_circuit,
                                   backend="numpy")
            out = io.StringIO()
            lines = [
                json.dumps({"id": "a", "circuit": "random:60:2",
                            "patterns": 2}),
                json.dumps({"id": "b", "circuit": "random:60:2",
                            "patterns": 2, "seed": 1}),
            ]
            serve_jsonl(io.StringIO("\n".join(lines) + "\n"), out, client)
        responses = {r["id"]: r for r in
                     (json.loads(line)
                      for line in out.getvalue().strip().splitlines())}
        assert responses["a"]["ok"]
        assert not responses["b"]["ok"]
        assert responses["b"]["retry_after_ms"] > 0
