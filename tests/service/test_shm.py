"""Tests for the shared-memory arena layer: naming, lifecycle, sweeps.

The contracts here back the sharded service's zero-copy transport
(``docs/architecture.md`` §11): segments are named after their owner
pid, attachers never destroy them, and the sweep functions reclaim
exactly the segments whose owner process is dead.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.service.shm import (
    SharedArena,
    segment_name,
    sweep_orphans,
    sweep_pid,
    unlink_segment,
)

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"),
    reason="POSIX shared memory not mounted")


def _dead_pid():
    """A pid guaranteed to belong to no live process."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


class TestArenaLifecycle:
    def test_create_write_attach_read_unlink(self):
        name = segment_name(os.getpid(), "t-lifecycle")
        arena = SharedArena.create(name, 4096)
        try:
            arena.ndarray((16,), np.float64)[:] = np.arange(16.0)
            reader = SharedArena.attach(name)
            got = np.array(reader.ndarray((16,), np.float64))
            reader.close()
            assert np.array_equal(got, np.arange(16.0))
        finally:
            arena.close()
            arena.unlink()
        with pytest.raises(FileNotFoundError):
            SharedArena.attach(name)

    def test_ndarray_views_share_the_segment(self):
        name = segment_name(os.getpid(), "t-views")
        with SharedArena.create(name, 4096) as arena:
            a = arena.ndarray((8,), np.uint32)
            b = arena.ndarray((8,), np.uint32)
            a[3] = 0xDEAD
            assert b[3] == 0xDEAD

    def test_unlink_is_idempotent(self):
        name = segment_name(os.getpid(), "t-idem")
        arena = SharedArena.create(name, 1024)
        arena.close()
        arena.unlink()
        arena.unlink()  # second unlink of a gone segment must not raise
        assert unlink_segment(name) is False

    def test_owner_context_manager_destroys_segment(self):
        name = segment_name(os.getpid(), "t-ctx")
        with SharedArena.create(name, 1024) as arena:
            arena.ndarray((4,), np.uint8)[:] = 1
        assert unlink_segment(name) is False

    def test_attacher_context_manager_keeps_segment(self):
        name = segment_name(os.getpid(), "t-attach")
        owner = SharedArena.create(name, 1024)
        try:
            with SharedArena.attach(name):
                pass
            # the attacher closed its mapping but must not unlink
            assert unlink_segment(name) is True
        finally:
            owner.close()


class TestSweeps:
    def test_sweep_pid_reclaims_only_that_owner(self):
        dead = _dead_pid()
        victim = segment_name(dead, "t-sweep")
        keeper = segment_name(os.getpid(), "t-keeper")
        SharedArena.create(victim, 1024).close()
        SharedArena.create(keeper, 1024).close()
        try:
            removed = sweep_pid(dead)
            assert victim in removed
            assert keeper not in removed
            assert unlink_segment(victim) is False
        finally:
            unlink_segment(keeper)

    def test_sweep_orphans_spares_live_owners(self):
        dead = _dead_pid()
        orphan = segment_name(dead, "t-orphan")
        mine = segment_name(os.getpid(), "t-mine")
        SharedArena.create(orphan, 1024).close()
        SharedArena.create(mine, 1024).close()
        try:
            removed = sweep_orphans()
            assert orphan in removed
            assert mine not in removed
            assert unlink_segment(orphan) is False
            # a live owner's segment is still there
            assert unlink_segment(mine) is True
        finally:
            unlink_segment(mine)

    def test_sweep_orphans_skip_pid(self):
        # skip_pid protects segments the caller vouches for even when
        # the embedded owner is dead (the router passes its own pid).
        dead = _dead_pid()
        name = segment_name(dead, "t-skipped")
        SharedArena.create(name, 1024).close()
        try:
            assert name not in sweep_orphans(skip_pid=dead)
            assert unlink_segment(name) is True
        finally:
            unlink_segment(name)

    def test_foreign_names_are_ignored(self):
        # only repro-svc-<pid>- segments are candidates; anything else
        # in /dev/shm is invisible to the sweeps.
        assert all(n.startswith("repro-svc-")
                   for n in sweep_orphans(skip_pid=os.getpid()))
