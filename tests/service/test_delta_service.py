"""Service-level incremental re-simulation: base rings end to end.

The service retains each compatibility group's recent base arenas in a
small ring next to the exact-fingerprint cache.  A near-duplicate job
(cache *miss*) is diffed against the ring at submit time and, when the
changed fraction is under ``delta_threshold``, rides its batch with a
:class:`~repro.simulation.delta.DeltaPlan`: unchanged lanes are spliced
from the base, changed cones re-evaluate — bit-identical to a full run.

Contracts under test:

* a variant job after a base run shows ``lanes_spliced`` in its report
  and the service metrics (``base_hits``, ``base_bytes_pinned``,
  ``delta_fraction``), with waveforms bit-identical to standalone;
* near-disjoint traffic refuses the delta path (threshold fallback);
* a corrupted base arena is caught by its checksum on lookup, evicted
  (``integrity_evictions``), and the job silently runs the full path;
* ``delta_bases=0`` disables retention entirely; the config knobs
  validate their ranges.
"""

import numpy as np
import pytest

from repro import faults
from repro.errors import ServiceError
from repro.netlist.generate import random_circuit
from repro.service import ServiceConfig, SimulationService
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.compiled import compile_circuit
from repro.simulation.gpu import GpuWaveSim
from repro.simulation.grid import SlotPlan
from repro.simulation.variation import ProcessVariation


@pytest.fixture(scope="module")
def circuit():
    return random_circuit("dsvc", 10, 90, seed=17)


@pytest.fixture(scope="module")
def compiled(circuit, library):
    return compile_circuit(circuit, library)


def make_pairs(circuit, count, seed):
    rng = np.random.default_rng(seed)
    return [PatternPair.random(len(circuit.inputs), rng)
            for _ in range(count)]


def variant_of(pairs, seed):
    """One flipped v2 bit: a cache miss with a tiny changed fraction."""
    rng = np.random.default_rng(seed)
    out = [PatternPair(p.v1.copy(), p.v2.copy()) for p in pairs]
    victim = out[rng.integers(len(out))]
    victim.v2[rng.integers(victim.v2.size)] ^= 1
    return out


def delta_config(**overrides):
    """Deterministic batching with the delta path enabled."""
    defaults = dict(max_batch_slots=16, max_wait_ms=2000.0, idle_ms=500.0,
                    cache_entries=64, delta_bases=4, delta_threshold=0.35)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def assert_bit_identical(job_pairs, result, engine, **run_kwargs):
    reference = engine.run(job_pairs, **run_kwargs)
    assert len(reference.waveforms) == result.num_slots
    for slot in range(result.num_slots):
        ref_nets = reference.waveforms[slot]
        got_nets = result.waveforms[slot]
        assert set(ref_nets) == set(got_nets)
        for net, ref in ref_nets.items():
            got = got_nets[net]
            assert got.initial == ref.initial, (slot, net)
            assert np.array_equal(got.times, ref.times), (slot, net)


class TestDeltaEndToEnd:
    def test_variant_job_splices_from_base(self, circuit, library, compiled,
                                           kernel_table):
        base_pairs = make_pairs(circuit, 4, seed=51)
        var_pairs = variant_of(base_pairs, seed=52)
        with SimulationService(config=delta_config()) as service:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            base = service.submit(key, base_pairs,
                                  kernel_table=kernel_table).result(
                timeout=120)
            variant = service.submit(key, var_pairs,
                                     kernel_table=kernel_table).result(
                timeout=120)
            metrics = service.metrics()

        assert base.report.lanes_spliced == 0
        assert not variant.cache_hit
        assert variant.report.lanes_spliced > 0
        assert variant.report.delta_fraction < 1.0
        assert ",delta" in variant.engine
        engine = GpuWaveSim(circuit, library, compiled=compiled,
                            config=SimulationConfig())
        assert_bit_identical(var_pairs, variant, engine,
                             kernel_table=kernel_table)

        assert metrics.base_hits == 1
        assert metrics.base_bytes_pinned > 0
        assert metrics.lanes_spliced > 0
        assert metrics.delta_fraction < 1.0
        assert metrics.cache["bases"] >= 1

    def test_voltage_sweep_variant(self, circuit, library, compiled,
                                   kernel_table):
        """The AVFS motivating case: re-sweep with one new operating
        point's worth of stimulus change, most of the plane spliced."""
        pairs = make_pairs(circuit, 2, seed=53)
        plan = SlotPlan.cross(len(pairs), [0.6, 0.7, 0.8, 0.9, 1.0])
        var_pairs = variant_of(pairs, seed=54)
        with SimulationService(config=delta_config()) as service:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            service.submit(key, pairs, plan=plan,
                           kernel_table=kernel_table).result(timeout=120)
            variant = service.submit(key, var_pairs, plan=plan,
                                     kernel_table=kernel_table).result(
                timeout=120)
        assert variant.report.lanes_spliced > 0
        engine = GpuWaveSim(circuit, library, compiled=compiled,
                            config=SimulationConfig())
        assert_bit_identical(var_pairs, variant, engine, plan=plan,
                             kernel_table=kernel_table)

    def test_monte_carlo_variant(self, circuit, library, compiled,
                                 kernel_table):
        pairs = make_pairs(circuit, 3, seed=55)
        var_pairs = variant_of(pairs, seed=56)
        variation = ProcessVariation(sigma=0.1, seed=42)
        with SimulationService(config=delta_config()) as service:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            service.submit(key, pairs, kernel_table=kernel_table,
                           variation=variation).result(timeout=120)
            variant = service.submit(key, var_pairs,
                                     kernel_table=kernel_table,
                                     variation=variation).result(timeout=120)
        assert variant.report.lanes_spliced > 0
        engine = GpuWaveSim(circuit, library, compiled=compiled,
                            config=SimulationConfig())
        assert_bit_identical(var_pairs, variant, engine,
                             kernel_table=kernel_table, variation=variation)

    def test_exact_resubmission_prefers_cache(self, circuit, library,
                                              compiled):
        """An exact repeat is an exact-fingerprint hit — the delta path
        only serves misses."""
        pairs = make_pairs(circuit, 2, seed=57)
        with SimulationService(config=delta_config()) as service:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            service.submit(key, pairs).result(timeout=120)
            redo = service.submit(key, pairs).result(timeout=120)
            metrics = service.metrics()
        assert redo.cache_hit
        assert redo.engine == "cache"
        assert metrics.base_hits == 0


class TestFallbacks:
    def test_threshold_fallback_on_disjoint_traffic(self, circuit, library,
                                                    compiled):
        """Every input bit changed: the changed fraction hits 1.0 and
        the job must pay nothing for the delta machinery."""
        width = len(circuit.inputs)
        zeros = np.zeros(width, dtype=np.uint8)
        ones = np.ones(width, dtype=np.uint8)
        base_pairs = [PatternPair(zeros.copy(), zeros.copy())
                      for _ in range(3)]
        far_pairs = [PatternPair(ones.copy(), ones.copy())
                     for _ in range(3)]
        with SimulationService(config=delta_config()) as service:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            service.submit(key, base_pairs).result(timeout=120)
            far = service.submit(key, far_pairs).result(timeout=120)
            metrics = service.metrics()
        assert far.report.lanes_spliced == 0
        assert ",delta" not in far.engine
        assert metrics.base_hits == 0
        engine = GpuWaveSim(circuit, library, compiled=compiled,
                            config=SimulationConfig())
        assert_bit_identical(far_pairs, far, engine)

    def test_corrupt_base_evicts_and_falls_back(self, circuit, library,
                                                compiled):
        """A rotted base arena must never reach the splice path: the
        checksum catches it at lookup, the ring entry is evicted, and
        the variant silently runs the full simulation — still correct."""
        base_pairs = make_pairs(circuit, 4, seed=58)
        var_pairs = variant_of(base_pairs, seed=59)
        with faults.injected("seed=7;cache.get:corrupt@p=1") as plan:
            with SimulationService(config=delta_config()) as service:
                key = service.register_circuit(circuit, library,
                                               compiled=compiled)
                service.submit(key, base_pairs).result(timeout=120)
                variant = service.submit(key, var_pairs).result(timeout=120)
                metrics = service.metrics()
        assert plan.stats()["fired"]["cache.get:corrupt"] >= 1
        assert metrics.integrity_evictions >= 1
        assert metrics.base_hits == 0
        assert variant.report.lanes_spliced == 0
        assert ",delta" not in variant.engine
        # The rotted base is gone; the one ring entry left is the
        # variant's own freshly captured arena.
        assert metrics.cache["bases"] == 1
        engine = GpuWaveSim(circuit, library, compiled=compiled,
                            config=SimulationConfig())
        assert_bit_identical(var_pairs, variant, engine)

    def test_delta_disabled_without_bases(self, circuit, library, compiled):
        base_pairs = make_pairs(circuit, 3, seed=60)
        var_pairs = variant_of(base_pairs, seed=61)
        with SimulationService(config=delta_config(
                delta_bases=0)) as service:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            service.submit(key, base_pairs).result(timeout=120)
            variant = service.submit(key, var_pairs).result(timeout=120)
            metrics = service.metrics()
        assert variant.report.lanes_spliced == 0
        assert metrics.base_hits == 0
        assert metrics.cache["max_bases"] == 0
        assert metrics.base_bytes_pinned == 0

    def test_ring_keeps_at_most_delta_bases(self, circuit, library,
                                            compiled):
        with SimulationService(config=delta_config(
                delta_bases=1)) as service:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            for seed in (62, 63, 64):
                pairs = make_pairs(circuit, 2, seed=seed)
                service.submit(key, pairs).result(timeout=120)
            metrics = service.metrics()
        assert metrics.cache["bases"] == 1
        assert metrics.base_bytes_pinned > 0


class TestConfigKnobs:
    def test_negative_delta_bases_rejected(self):
        with pytest.raises(ServiceError, match="delta_bases"):
            ServiceConfig(delta_bases=-1)

    @pytest.mark.parametrize("threshold", [0.0, -0.2, 1.5])
    def test_threshold_range_enforced(self, threshold):
        with pytest.raises(ServiceError, match="delta_threshold"):
            ServiceConfig(delta_threshold=threshold)


class TestShardedDelta:
    def test_shard_local_ring_splices(self, circuit, library, compiled,
                                      kernel_table, shard_count):
        """Base retention lives in the shard: a variant routed to the
        same compatibility group splices against the shard's ring and
        the splice counters travel back through the result plane."""
        base_pairs = make_pairs(circuit, 4, seed=65)
        var_pairs = variant_of(base_pairs, seed=66)
        config = delta_config(shards=shard_count)
        with SimulationService(config=config) as service:
            key = service.register_circuit(circuit, library,
                                           compiled=compiled)
            service.submit(key, base_pairs,
                           kernel_table=kernel_table).result(timeout=180)
            variant = service.submit(key, var_pairs,
                                     kernel_table=kernel_table).result(
                timeout=180)
            metrics = service.metrics()
        assert variant.report.lanes_spliced > 0
        assert metrics.lanes_spliced > 0
        assert metrics.delta_fraction < 1.0
        engine = GpuWaveSim(circuit, library, compiled=compiled,
                            config=SimulationConfig())
        assert_bit_identical(var_pairs, variant, engine,
                             kernel_table=kernel_table)
