"""Shared fixtures: one library/characterization per test session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cells import make_nangate15_library
from repro.core.characterization import characterize_library
from repro.core.parameters import ParameterSpace
from repro.electrical.spice import AnalyticalSpice
from repro.netlist.generate import random_circuit


def pytest_addoption(parser):
    parser.addoption(
        "--shards", type=int, default=2,
        help="worker-process count for sharded-service tests "
             "(tests/service/test_shards.py)")


@pytest.fixture(scope="session")
def shard_count(request):
    return max(1, int(request.config.getoption("--shards")))


@pytest.fixture(scope="session")
def library():
    return make_nangate15_library()

@pytest.fixture(scope="session")
def space():
    return ParameterSpace.paper_default()


@pytest.fixture(scope="session")
def spice():
    return AnalyticalSpice()


@pytest.fixture(scope="session")
def characterization(library):
    """Full library characterization at the paper's default order N=3."""
    return characterize_library(library, n=3)


@pytest.fixture(scope="session")
def kernel_table(characterization):
    return characterization.compile()


@pytest.fixture(scope="session")
def small_circuit():
    """A 60-gate random circuit used across simulator tests."""
    return random_circuit("small", num_inputs=8, num_gates=60, seed=42)


@pytest.fixture(scope="session")
def medium_circuit():
    return random_circuit("medium", num_inputs=16, num_gates=400, seed=7)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
