"""Tests for voltage-frequency tables."""

import pytest

from repro.avfs.scaling import VoltageFrequencyPoint, VoltageFrequencyTable
from repro.errors import ParameterError

VOLTAGES = [0.6, 0.8, 1.0]
DELAYS = [2e-9, 1e-9, 0.5e-9]


class TestConstruction:
    def test_from_delays(self):
        table = VoltageFrequencyTable.from_delays(VOLTAGES, DELAYS,
                                                  guardband=0.0)
        assert len(table) == 3
        assert table.points[0].max_frequency == pytest.approx(0.5e9)
        assert table.points[-1].max_frequency == pytest.approx(2e9)

    def test_guardband_reduces_frequency(self):
        plain = VoltageFrequencyTable.from_delays(VOLTAGES, DELAYS, 0.0)
        guarded = VoltageFrequencyTable.from_delays(VOLTAGES, DELAYS, 0.10)
        for a, b in zip(plain, guarded):
            assert b.max_frequency == pytest.approx(a.max_frequency / 1.1)
            assert b.guardband == 0.10

    @pytest.mark.parametrize("kwargs", [
        {"voltages": [0.8], "delays": [1e-9, 2e-9]},
        {"voltages": [0.8], "delays": [0.0]},
        {"voltages": [0.8], "delays": [1e-9], "guardband": -0.1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ParameterError):
            VoltageFrequencyTable.from_delays(**kwargs)

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            VoltageFrequencyTable([])

    def test_duplicate_voltages_rejected(self):
        point = VoltageFrequencyPoint(0.8, 1e-9, 1e9, 0.0)
        with pytest.raises(ParameterError, match="duplicate"):
            VoltageFrequencyTable([point, point])


class TestQueries:
    @pytest.fixture
    def table(self):
        return VoltageFrequencyTable.from_delays(VOLTAGES, DELAYS, 0.0)

    def test_frequency_at_grid_points(self, table):
        assert table.frequency_at(0.8) == pytest.approx(1e9)

    def test_frequency_interpolation(self, table):
        mid = table.frequency_at(0.9)
        assert 1e9 < mid < 2e9

    def test_frequency_out_of_range(self, table):
        with pytest.raises(ParameterError, match="outside"):
            table.frequency_at(1.2)

    def test_voltage_for_picks_minimum(self, table):
        assert table.voltage_for(0.4e9) == 0.6
        assert table.voltage_for(1.5e9) == 1.0

    def test_voltage_for_unreachable(self, table):
        with pytest.raises(ParameterError, match="no characterized voltage"):
            table.voltage_for(5e9)

    def test_summary_text(self, table):
        text = table.summary()
        assert "f_max" in text and "0.80" in text
