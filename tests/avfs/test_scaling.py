"""Tests for voltage-frequency tables."""

import pytest

from repro.avfs.scaling import VoltageFrequencyPoint, VoltageFrequencyTable
from repro.errors import ParameterError

VOLTAGES = [0.6, 0.8, 1.0]
DELAYS = [2e-9, 1e-9, 0.5e-9]


class TestConstruction:
    def test_from_delays(self):
        table = VoltageFrequencyTable.from_delays(VOLTAGES, DELAYS,
                                                  guardband=0.0)
        assert len(table) == 3
        assert table.points[0].max_frequency == pytest.approx(0.5e9)
        assert table.points[-1].max_frequency == pytest.approx(2e9)

    def test_guardband_reduces_frequency(self):
        plain = VoltageFrequencyTable.from_delays(VOLTAGES, DELAYS, 0.0)
        guarded = VoltageFrequencyTable.from_delays(VOLTAGES, DELAYS, 0.10)
        for a, b in zip(plain, guarded):
            assert b.max_frequency == pytest.approx(a.max_frequency / 1.1)
            assert b.guardband == 0.10

    @pytest.mark.parametrize("kwargs", [
        {"voltages": [0.8], "delays": [1e-9, 2e-9]},
        {"voltages": [0.8], "delays": [0.0]},
        {"voltages": [0.8], "delays": [1e-9], "guardband": -0.1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ParameterError):
            VoltageFrequencyTable.from_delays(**kwargs)

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            VoltageFrequencyTable([])

    def test_duplicate_voltages_rejected(self):
        point = VoltageFrequencyPoint(0.8, 1e-9, 1e9, 0.0)
        with pytest.raises(ParameterError, match="duplicate"):
            VoltageFrequencyTable([point, point])


class TestConstraints:
    def make(self, **kwargs):
        return VoltageFrequencyTable.from_delays(VOLTAGES, DELAYS,
                                                 guardband=0.0, **kwargs)

    def test_vth_floor_rejects_near_threshold_points(self):
        with pytest.raises(ParameterError, match="vth floor"):
            self.make(vth_floor=0.7)

    def test_negative_floor_rejected(self):
        with pytest.raises(ParameterError, match="non-negative"):
            self.make(vth_floor=-0.1)

    def test_boost_cap_below_one_rejected(self):
        with pytest.raises(ParameterError, match="boost cap"):
            self.make(boost_cap=0.9)

    def test_boost_cap_rejects_turbo_point(self):
        # Nominal at 0.8 V (1 GHz): the 1.0 V point clocks 2x nominal,
        # over the default 1.3x cap.
        with pytest.raises(ParameterError, match="boost cap"):
            self.make(nominal_voltage=0.8)

    def test_boost_cap_admits_turbo_within_cap(self):
        table = self.make(nominal_voltage=0.8, boost_cap=2.0)
        assert table.max_boost_frequency == pytest.approx(2e9)

    def test_nominal_must_be_characterized(self):
        with pytest.raises(ParameterError, match="not a"):
            self.make(nominal_voltage=0.9)

    def test_nominal_defaults_to_top_point(self):
        table = self.make()
        assert table.nominal_voltage == 1.0
        assert table.max_boost_frequency == pytest.approx(1.3 * 2e9)

    def test_clamp_voltage_floor_and_range(self):
        table = self.make(vth_floor=0.55)
        assert table.clamp_voltage(0.3) == 0.6   # floor < lowest point
        assert table.clamp_voltage(1.4) == 1.0
        assert table.clamp_voltage(0.75) == 0.75
        floored = VoltageFrequencyTable.from_delays(
            [0.7, 1.0], [1e-9, 0.5e-9], guardband=0.0, vth_floor=0.65)
        assert floored.clamp_voltage(0.0) == 0.7

    def test_clamp_frequency_to_boost_cap(self):
        table = self.make()
        assert table.clamp_frequency(1e12) == table.max_boost_frequency
        assert table.clamp_frequency(-5.0) == 0.0
        assert table.clamp_frequency(1e9) == 1e9

    def test_clamped_demand_is_always_servable(self):
        # Construction caps every point at the boost limit, so an
        # over-cap demand clamps to a frequency voltage_for can serve.
        table = self.make(nominal_voltage=0.8, boost_cap=2.0)
        assert table.voltage_for(table.clamp_frequency(9e9)) == 1.0

    def test_grid_at_or_above(self):
        table = self.make()
        assert table.grid_at_or_above(0.65) == 0.8
        assert table.grid_at_or_above(0.8) == 0.8
        assert table.grid_at_or_above(1.2) == 1.0
        assert table.grid_at_or_above(0.1) == 0.6

    def test_summary_mentions_constraints(self):
        assert "vth floor" in self.make(vth_floor=0.55).summary()


class TestQueries:
    @pytest.fixture
    def table(self):
        return VoltageFrequencyTable.from_delays(VOLTAGES, DELAYS, 0.0)

    def test_frequency_at_grid_points(self, table):
        assert table.frequency_at(0.8) == pytest.approx(1e9)

    def test_frequency_interpolation(self, table):
        mid = table.frequency_at(0.9)
        assert 1e9 < mid < 2e9

    def test_frequency_out_of_range(self, table):
        with pytest.raises(ParameterError, match="outside"):
            table.frequency_at(1.2)

    def test_voltage_for_picks_minimum(self, table):
        assert table.voltage_for(0.4e9) == 0.6
        assert table.voltage_for(1.5e9) == 1.0

    def test_voltage_for_unreachable(self, table):
        with pytest.raises(ParameterError, match="no characterized voltage"):
            table.voltage_for(5e9)

    def test_summary_text(self, table):
        text = table.summary()
        assert "f_max" in text and "0.80" in text
