"""Tests for the closed-loop AVFS controller."""

import pytest

from repro.avfs.controller import AvfsController
from repro.avfs.scaling import VoltageFrequencyTable
from repro.errors import ParameterError


@pytest.fixture
def table():
    return VoltageFrequencyTable.from_delays(
        [0.6, 0.8, 1.0], [2e-9, 1e-9, 0.5e-9], guardband=0.0)


class TestDecisions:
    def test_low_demand_low_voltage(self, table):
        controller = AvfsController(table)
        decision = controller.set_performance(0.3e9)
        assert decision.voltage == 0.6
        assert decision.relative_energy == pytest.approx(0.36)

    def test_high_demand_high_voltage(self, table):
        controller = AvfsController(table)
        assert controller.set_performance(1.8e9).voltage == 1.0

    def test_invalid_frequency(self, table):
        with pytest.raises(ParameterError):
            AvfsController(table).set_performance(0.0)

    def test_history_and_saving(self, table):
        controller = AvfsController(table)
        assert controller.energy_saving() == 0.0
        controller.run_workload([0.3e9, 0.3e9, 1.8e9])
        assert len(controller.history) == 3
        saving = controller.energy_saving()
        assert 0 < saving < 1
        # two low-voltage cycles out of three: saving = 1 - (0.36+0.36+1)/3
        assert saving == pytest.approx(1 - (0.36 + 0.36 + 1.0) / 3)


class TestAging:
    def test_aging_raises_voltage(self, table):
        controller = AvfsController(table)
        fresh = controller.set_performance(0.95e9)
        assert fresh.voltage == 0.8
        controller.apply_aging(0.10)  # 10% slower: 0.8 V now gives ~0.91 GHz
        aged = controller.set_performance(0.95e9)
        assert aged.voltage == 1.0

    def test_aging_reduces_max_frequency(self, table):
        controller = AvfsController(table)
        before = controller.max_frequency()
        controller.apply_aging(0.2)
        assert controller.max_frequency() == pytest.approx(before / 1.2)

    def test_negative_derate_rejected(self, table):
        with pytest.raises(ParameterError):
            AvfsController(table).apply_aging(-0.1)

    def test_aging_accumulates(self, table):
        controller = AvfsController(table)
        controller.apply_aging(0.05)
        controller.apply_aging(0.05)
        assert controller.aging_derate == pytest.approx(0.10)
