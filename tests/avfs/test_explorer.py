"""Tests for the design-space explorer."""

import numpy as np
import pytest

from repro.avfs.explorer import DesignSpaceExplorer
from repro.errors import ParameterError
from repro.netlist.generate import random_circuit
from repro.simulation.base import PatternPair

VOLTAGES = [0.55, 0.7, 0.8, 1.0]


@pytest.fixture(scope="module")
def setup(library, kernel_table):
    circuit = random_circuit("dse", 12, 200, seed=8)
    rng = np.random.default_rng(3)
    pairs = [PatternPair.random(12, rng) for _ in range(10)]
    return circuit, pairs


class TestSweep:
    def test_sweep_shape_and_monotonicity(self, setup, library, kernel_table):
        circuit, pairs = setup
        explorer = DesignSpaceExplorer(circuit, library, kernel_table)
        points = explorer.sweep(pairs, VOLTAGES)
        assert [p.voltage for p in points] == VOLTAGES
        arrivals = [p.latest_arrival for p in points]
        assert arrivals == sorted(arrivals, reverse=True)
        for p in points:
            assert p.max_frequency == pytest.approx(1.0 / p.latest_arrival)
            assert p.energy_per_pattern is None  # activity not recorded

    def test_activity_recording(self, setup, library, kernel_table):
        circuit, pairs = setup
        explorer = DesignSpaceExplorer(circuit, library, kernel_table,
                                       record_activity=True)
        points = explorer.sweep(pairs, [0.6, 1.0])
        energies = [p.energy_per_pattern for p in points]
        assert all(e is not None and e > 0 for e in energies)
        assert energies[1] > energies[0]  # E ~ V^2
        assert all(0 <= p.glitch_ratio <= 1 for p in points)

    def test_voltage_outside_space(self, setup, library, kernel_table):
        circuit, pairs = setup
        explorer = DesignSpaceExplorer(circuit, library, kernel_table)
        with pytest.raises(ParameterError, match="outside"):
            explorer.sweep(pairs, [1.5])
        with pytest.raises(ParameterError):
            explorer.sweep(pairs, [])


class TestDerivedProducts:
    def test_vf_table(self, setup, library, kernel_table):
        circuit, pairs = setup
        explorer = DesignSpaceExplorer(circuit, library, kernel_table)
        table = explorer.voltage_frequency_table(pairs, VOLTAGES,
                                                 guardband=0.1)
        assert len(table) == len(VOLTAGES)
        frequencies = [p.max_frequency for p in table]
        assert frequencies == sorted(frequencies)

    def test_shmoo_consistency(self, setup, library, kernel_table):
        circuit, pairs = setup
        explorer = DesignSpaceExplorer(circuit, library, kernel_table)
        points = explorer.sweep(pairs, VOLTAGES)
        period = points[1].latest_arrival * 1.01  # passes at 0.7 V and above
        shmoo = explorer.shmoo(pairs, VOLTAGES, [period])
        assert not shmoo[0.55][period]
        assert shmoo[0.7][period]
        assert shmoo[1.0][period]

    def test_find_vmin(self, setup, library, kernel_table):
        circuit, pairs = setup
        explorer = DesignSpaceExplorer(circuit, library, kernel_table)
        points = explorer.sweep(pairs, VOLTAGES)
        generous = points[0].latest_arrival * 2.0
        assert explorer.find_vmin(pairs, VOLTAGES, generous,
                                  guardband=0.0) == 0.55
        impossible = points[-1].latest_arrival * 0.5
        assert explorer.find_vmin(pairs, VOLTAGES, impossible) is None
