"""Tests for the closed-loop AVFS scenario engine."""

import numpy as np
import pytest

from repro import faults
from repro.avfs.controller import AvfsController
from repro.avfs.explorer import DesignSpaceExplorer
from repro.avfs.loop import (ClosedLoopRunner, LoopConfig, LoopStep,
                             TemperatureDrift, VoltageDroop)
from repro.errors import CheckpointError, InjectedFaultError, ParameterError
from repro.faults.plan import WorkerDeathError
from repro.netlist.generate import random_circuit
from repro.simulation.base import PatternPair
from repro.simulation.pool import clear_engine_pool
from repro.simulation.variation import (ProcessVariation,
                                        StateDependentVariation)

VOLTAGES = [0.55, 0.7, 0.8, 1.0]


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.reset()
    yield
    faults.reset()


@pytest.fixture(scope="module")
def setup(library, kernel_table):
    circuit = random_circuit("loop", 10, 120, seed=21)
    rng = np.random.default_rng(5)
    pairs = [PatternPair.random(10, rng) for _ in range(6)]
    explorer = DesignSpaceExplorer(circuit, library, kernel_table)
    table = explorer.voltage_frequency_table(pairs, VOLTAGES, guardband=0.05)
    return circuit, pairs, explorer, table


def make_runner(setup, library, kernel_table, config, **kwargs):
    circuit, pairs, explorer, table = setup
    return ClosedLoopRunner(circuit, library, kernel_table,
                            AvfsController(table), config, **kwargs)


def loose_period(table, voltage=0.7, margin=1.10):
    """A period comfortably met at ``voltage`` (guardband included)."""
    point = next(p for p in table if np.isclose(p.voltage, voltage))
    return point.critical_delay * (1.0 + point.guardband) * margin


class TestConvergence:
    def test_steps_down_to_vmin_and_settles(self, setup, library,
                                            kernel_table):
        circuit, pairs, explorer, table = setup
        period = loose_period(table, voltage=0.7)
        runner = make_runner(setup, library, kernel_table,
                             LoopConfig(period=period, max_iterations=12,
                                        settle_iterations=2,
                                        record_energy=False))
        report = runner.run(pairs)
        assert report.converged_at is not None
        # The loop's resting point matches the explorer's static answer.
        vmin = explorer.find_vmin(pairs, VOLTAGES, period, guardband=0.05)
        assert report.final_voltage == pytest.approx(vmin)
        assert report.violations == 0
        assert not report.resumed
        # Convergence stops the loop early.
        assert report.num_iterations < 12

    def test_tight_period_stays_at_top(self, setup, library, kernel_table):
        circuit, pairs, explorer, table = setup
        top = table.points[-1]
        period = top.critical_delay * (1.0 + top.guardband) * 1.02
        runner = make_runner(setup, library, kernel_table,
                             LoopConfig(period=period, max_iterations=6,
                                        settle_iterations=2,
                                        record_energy=False))
        report = runner.run(pairs)
        assert report.final_voltage == pytest.approx(top.voltage)

    def test_energy_accounting(self, setup, library, kernel_table):
        circuit, pairs, explorer, table = setup
        runner = make_runner(setup, library, kernel_table,
                             LoopConfig(period=loose_period(table),
                                        max_iterations=4,
                                        settle_iterations=2))
        report = runner.run(pairs)
        assert all(s.energy_per_pattern > 0 for s in report.steps)
        assert report.total_energy > 0
        # Energy drops as the supply steps down (E ~ V^2).
        assert (report.steps[-1].energy_per_pattern
                < report.steps[0].energy_per_pattern)

    def test_empty_pairs_rejected(self, setup, library, kernel_table):
        runner = make_runner(setup, library, kernel_table,
                             LoopConfig(period=1e-9, record_energy=False))
        with pytest.raises(ParameterError):
            runner.run([])

    def test_report_round_trip(self, setup, library, kernel_table):
        circuit, pairs, explorer, table = setup
        runner = make_runner(setup, library, kernel_table,
                             LoopConfig(period=loose_period(table),
                                        max_iterations=4,
                                        settle_iterations=2,
                                        record_energy=False))
        report = runner.run(pairs)
        payload = report.to_dict()
        assert payload["circuit_name"] == circuit.name
        assert len(payload["steps"]) == report.num_iterations
        step = LoopStep.from_dict(report.steps[0].to_dict())
        assert step == report.steps[0]
        assert "iter" in report.summary()


class TestDisturbances:
    def test_droop_lowers_effective_voltage(self, setup, library,
                                            kernel_table):
        circuit, pairs, explorer, table = setup
        config = LoopConfig(period=loose_period(table), max_iterations=5,
                            settle_iterations=6, record_energy=False)
        runner = make_runner(setup, library, kernel_table, config,
                             disturbances=[VoltageDroop(0.03)])
        report = runner.run(pairs)
        for step in report.steps:
            assert (step.effective_voltage
                    <= step.commanded_voltage + 1e-12)
        assert any(s.effective_voltage < s.commanded_voltage
                   for s in report.steps)

    def test_drift_inflates_measurement(self, setup, library, kernel_table):
        circuit, pairs, explorer, table = setup
        config = LoopConfig(period=loose_period(table), max_iterations=4,
                            settle_iterations=5, record_energy=False)
        runner = make_runner(setup, library, kernel_table, config,
                             disturbances=[TemperatureDrift(0.02)])
        report = runner.run(pairs)
        for i, step in enumerate(report.steps):
            expected = step.raw_arrival * (1.0 + min(0.02 * i, 0.10))
            assert step.measured_arrival == pytest.approx(expected)

    def test_jittered_droop_is_deterministic_under_seed(self, setup, library,
                                                        kernel_table):
        circuit, pairs, explorer, table = setup
        config = LoopConfig(period=loose_period(table), max_iterations=6,
                            settle_iterations=7, record_energy=False)

        def trajectory(seed):
            runner = make_runner(
                setup, library, kernel_table, config,
                disturbances=[VoltageDroop(0.01, jitter=0.02, seed=seed)])
            return [(s.effective_voltage, s.raw_arrival)
                    for s in runner.run(pairs).steps]

        assert trajectory(11) == trajectory(11)
        assert trajectory(11) != trajectory(12)

    def test_disturbance_validation(self):
        with pytest.raises(ParameterError):
            VoltageDroop(-0.1)
        with pytest.raises(ParameterError):
            TemperatureDrift(-0.01)


class TestDeltaReuse:
    def test_delta_matches_full_bit_identically(self, setup, library,
                                                kernel_table):
        circuit, pairs, explorer, table = setup
        disturbances = [VoltageDroop(0.02), TemperatureDrift(0.005)]
        reports = {}
        for use_delta in (False, True):
            config = LoopConfig(period=loose_period(table),
                                max_iterations=10, settle_iterations=11,
                                use_delta=use_delta, record_energy=False)
            runner = make_runner(setup, library, kernel_table, config,
                                 disturbances=disturbances)
            reports[use_delta] = runner.run(pairs)
        full, delta = reports[False], reports[True]
        assert [s.raw_arrival for s in full.steps] == \
               [s.raw_arrival for s in delta.steps]
        assert [s.effective_voltage for s in full.steps] == \
               [s.effective_voltage for s in delta.steps]
        assert full.delta_reuse_fraction == 0.0
        assert delta.delta_reuse_fraction > 0.0
        assert delta.run_report.lanes_spliced > 0
        assert delta.delta_iterations > 0
        assert any(s.delta_used for s in delta.steps)

    def test_delta_with_state_dependent_variation(self, setup, library,
                                                  kernel_table):
        circuit, pairs, explorer, table = setup
        variation = StateDependentVariation(
            sigma=0.04, seed=3, voltage_sensitivity=1.5, v_ref=1.0)
        reports = {}
        for use_delta in (False, True):
            config = LoopConfig(period=loose_period(table, margin=1.2),
                                max_iterations=8, settle_iterations=9,
                                use_delta=use_delta, record_energy=False)
            runner = make_runner(setup, library, kernel_table, config,
                                 variation=variation)
            reports[use_delta] = runner.run(pairs)
        assert [s.raw_arrival for s in reports[False].steps] == \
               [s.raw_arrival for s in reports[True].steps]
        assert reports[True].delta_iterations > 0

    def test_variation_changes_measurement(self, setup, library,
                                           kernel_table):
        circuit, pairs, explorer, table = setup
        config = LoopConfig(period=loose_period(table), max_iterations=2,
                            settle_iterations=3, record_energy=False)
        plain = make_runner(setup, library, kernel_table, config).run(pairs)
        varied = make_runner(
            setup, library, kernel_table, config,
            variation=StateDependentVariation(sigma=0.08, seed=9)).run(pairs)
        assert plain.steps[0].raw_arrival != varied.steps[0].raw_arrival


class TestCheckpointing:
    def fast_config(self, table, **kwargs):
        kwargs.setdefault("max_iterations", 6)
        kwargs.setdefault("settle_iterations", 2)
        kwargs.setdefault("record_energy", False)
        return LoopConfig(period=loose_period(table), **kwargs)

    def test_resume_after_injected_crash(self, setup, library, kernel_table,
                                         tmp_path):
        circuit, pairs, explorer, table = setup
        config = self.fast_config(table)
        baseline = make_runner(setup, library, kernel_table, config).run(pairs)

        with faults.injected("loop.step:raise@n=3"):
            with pytest.raises(InjectedFaultError):
                make_runner(setup, library, kernel_table, config,
                            checkpoint_dir=tmp_path).run(pairs)
        # Two completed iterations survived the crash.
        assert (tmp_path / "step_00001.json").exists()
        assert not (tmp_path / "step_00002.json").exists()

        report = make_runner(setup, library, kernel_table, config,
                             checkpoint_dir=tmp_path).run(pairs)
        assert report.resumed
        assert sum(1 for s in report.steps if s.from_checkpoint) == 2
        assert [(s.effective_voltage, s.raw_arrival, s.next_voltage)
                for s in report.steps] == \
               [(s.effective_voltage, s.raw_arrival, s.next_voltage)
                for s in baseline.steps]
        assert report.converged_at == baseline.converged_at

    def test_resume_after_worker_death(self, setup, library, kernel_table,
                                       tmp_path):
        circuit, pairs, explorer, table = setup
        config = self.fast_config(table)
        with faults.injected("loop.step:die@n=2"):
            with pytest.raises(WorkerDeathError):
                make_runner(setup, library, kernel_table, config,
                            checkpoint_dir=tmp_path).run(pairs)
        report = make_runner(setup, library, kernel_table, config,
                             checkpoint_dir=tmp_path).run(pairs)
        assert report.resumed
        assert report.steps[0].from_checkpoint
        assert report.converged_at is not None

    def test_completed_loop_replays_from_checkpoint(self, setup, library,
                                                    kernel_table, tmp_path):
        circuit, pairs, explorer, table = setup
        config = self.fast_config(table)
        first = make_runner(setup, library, kernel_table, config,
                            checkpoint_dir=tmp_path).run(pairs)
        second = make_runner(setup, library, kernel_table, config,
                             checkpoint_dir=tmp_path).run(pairs)
        assert second.resumed
        assert all(s.from_checkpoint for s in second.steps)
        assert second.run_report.gate_evaluations == 0
        assert [s.raw_arrival for s in second.steps] == \
               [s.raw_arrival for s in first.steps]

    def test_foreign_checkpoint_refused(self, setup, library, kernel_table,
                                        tmp_path):
        circuit, pairs, explorer, table = setup
        config = self.fast_config(table)
        make_runner(setup, library, kernel_table, config,
                    checkpoint_dir=tmp_path).run(pairs)
        other = LoopConfig(period=config.period * 2.0, max_iterations=6,
                           settle_iterations=2, record_energy=False)
        with pytest.raises(CheckpointError, match="fingerprint"):
            make_runner(setup, library, kernel_table, other,
                        checkpoint_dir=tmp_path).run(pairs)

    def test_corrupt_step_degrades_to_recomputation(self, setup, library,
                                                    kernel_table, tmp_path):
        circuit, pairs, explorer, table = setup
        config = self.fast_config(table)
        baseline = make_runner(setup, library, kernel_table, config,
                               checkpoint_dir=tmp_path).run(pairs)
        (tmp_path / "step_00001.json").write_text("{ not json")
        report = make_runner(setup, library, kernel_table, config,
                             checkpoint_dir=tmp_path).run(pairs)
        assert sum(1 for s in report.steps if s.from_checkpoint) == 1
        assert [s.raw_arrival for s in report.steps] == \
               [s.raw_arrival for s in baseline.steps]


class TestServiceMode:
    def test_service_trajectory_matches_local(self, setup, library,
                                              kernel_table):
        from repro.service import SimulationService

        circuit, pairs, explorer, table = setup
        config = LoopConfig(period=loose_period(table), max_iterations=5,
                            settle_iterations=2, record_energy=False)
        local = make_runner(setup, library, kernel_table, config).run(pairs)
        with SimulationService() as service:
            report = make_runner(setup, library, kernel_table, config,
                                 service=service).run(pairs)
        assert report.service_metrics is not None
        assert [s.raw_arrival for s in report.steps] == \
               [s.raw_arrival for s in local.steps]
        assert report.final_voltage == local.final_voltage


class TestEngineSharing:
    def test_loop_and_explorer_share_pooled_engine(self, library,
                                                   kernel_table):
        clear_engine_pool()
        circuit = random_circuit("loop-pool", 8, 80, seed=4)
        rng = np.random.default_rng(8)
        pairs = [PatternPair.random(8, rng) for _ in range(4)]
        explorer = DesignSpaceExplorer(circuit, library, kernel_table)
        table = explorer.voltage_frequency_table(pairs, VOLTAGES,
                                                 guardband=0.05)
        period = loose_period(table)
        runner = ClosedLoopRunner(
            circuit, library, kernel_table, AvfsController(table),
            LoopConfig(period=period, max_iterations=3, settle_iterations=2,
                       record_energy=False))
        assert runner.simulator is explorer.simulator
        report = runner.run(pairs)
        # The pooled-engine hit and warm level plans show up in the
        # report's cache accounting.
        assert report.run_report.plan_cache_hits > 0

    def test_explorer_second_sweep_hits_plan_cache(self, library,
                                                   kernel_table):
        clear_engine_pool()
        circuit = random_circuit("pool-sweep", 8, 80, seed=6)
        rng = np.random.default_rng(2)
        pairs = [PatternPair.random(8, rng) for _ in range(4)]
        DesignSpaceExplorer(circuit, library, kernel_table).sweep(
            pairs, VOLTAGES)
        explorer = DesignSpaceExplorer(circuit, library, kernel_table)
        explorer.sweep(pairs, VOLTAGES)
        assert explorer.last_report is not None
        assert explorer.last_report.plan_cache_hits > 0


class TestStateDependentVariation:
    def test_sigma_grows_below_reference(self):
        model = StateDependentVariation(sigma=0.05, voltage_sensitivity=2.0,
                                        v_ref=1.0)
        assert model.sigma_at(1.0) == pytest.approx(0.05)
        assert model.sigma_at(1.2) == pytest.approx(0.05)  # no shrink above
        assert model.sigma_at(0.6) == pytest.approx(0.05 * (1 + 2.0 * 0.4))

    def test_zero_sensitivity_matches_process_variation(self):
        state = StateDependentVariation(sigma=0.05, seed=7).bound(
            [0.7, 0.9, 1.1])
        plain = ProcessVariation(sigma=0.05, seed=7)
        slots = np.arange(3)
        assert np.array_equal(state.factors(12, slots),
                              plain.factors(12, slots))

    def test_lower_voltage_widens_factors(self):
        model = StateDependentVariation(sigma=0.05, seed=1,
                                        voltage_sensitivity=3.0, v_ref=1.0)
        high = model.bound([1.0]).factors(64, np.array([0]))
        low = model.bound([0.6]).factors(64, np.array([0]))
        # Same noise stream, rescaled spread — strictly wider at 0.6 V.
        assert np.std(np.log(low)) > np.std(np.log(high))

    def test_bound_respects_global_slots(self):
        model = StateDependentVariation(sigma=0.04, seed=2,
                                        voltage_sensitivity=1.0)
        bound = model.bound([0.6, 0.8], global_slots=np.array([5, 2]))
        assert bound.slot_voltages[5] == 0.6
        assert bound.slot_voltages[2] == 0.8
        direct = model.bound([0.6]).factors(8, np.array([0]))
        # Factors depend on the *global* slot, not the batch position.
        assert not np.array_equal(
            direct, bound.factors(8, np.array([5])))

    def test_validation(self):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            StateDependentVariation(sigma=0.05, voltage_sensitivity=-1.0)
        with pytest.raises(SimulationError):
            StateDependentVariation(sigma=0.05, v_ref=0.0)
