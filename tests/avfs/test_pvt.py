"""Tests for PVT-corner design-space exploration."""

import numpy as np
import pytest

from repro.avfs.explorer import DesignSpaceExplorer
from repro.cells.nangate15 import make_nangate15_library
from repro.core.characterization import characterize_library
from repro.electrical.model import TransistorCorner
from repro.electrical.spice import AnalyticalSpice
from repro.errors import ParameterError
from repro.netlist.generate import random_circuit
from repro.simulation.base import PatternPair

VOLTAGES = [0.6, 0.8, 1.0]


@pytest.fixture(scope="module")
def pvt_setup(library, kernel_table):
    """Characterize a reduced library at two extra corners (kept small:
    one family subset keeps the test fast)."""
    subset = library  # type ids must match the circuit's library
    slow_table = characterize_library(
        subset, AnalyticalSpice(TransistorCorner.slow()), n=2).compile()
    fast_table = characterize_library(
        subset, AnalyticalSpice(TransistorCorner.fast()), n=2).compile()
    circuit = random_circuit("pvt", 10, 120, seed=19)
    rng = np.random.default_rng(19)
    pairs = [PatternPair.random(10, rng) for _ in range(6)]
    return circuit, pairs, {"typ": kernel_table, "slow": slow_table,
                            "fast": fast_table}


class TestPvtSweep:
    def test_corner_ordering(self, pvt_setup, library):
        circuit, pairs, tables = pvt_setup
        explorer = DesignSpaceExplorer(circuit, library, tables["typ"])
        results = explorer.pvt_sweep(pairs, VOLTAGES, tables)
        assert set(results) == {"typ", "slow", "fast"}
        for index in range(len(VOLTAGES)):
            # NOTE: corner tables scale *deviation*, not the SDF nominal
            # delays, so ordering shows up in the voltage sensitivity.
            slow = results["slow"][index].latest_arrival
            fast = results["fast"][index].latest_arrival
            assert slow > 0 and fast > 0

    def test_slow_corner_more_voltage_sensitive(self, pvt_setup, library):
        """The slow corner's low-voltage penalty exceeds the fast one's —
        the reason worst-case AVFS tables use SS silicon."""
        circuit, pairs, tables = pvt_setup
        explorer = DesignSpaceExplorer(circuit, library, tables["typ"])
        results = explorer.pvt_sweep(pairs, VOLTAGES, tables)
        ratio = {
            label: points[0].latest_arrival / points[-1].latest_arrival
            for label, points in results.items()
        }
        assert ratio["slow"] > ratio["typ"] > ratio["fast"]

    def test_kernel_table_restored(self, pvt_setup, library):
        circuit, pairs, tables = pvt_setup
        explorer = DesignSpaceExplorer(circuit, library, tables["typ"])
        explorer.pvt_sweep(pairs, VOLTAGES, tables)
        assert explorer.kernel_table is tables["typ"]

    def test_worst_case_reduction(self, pvt_setup, library):
        circuit, pairs, tables = pvt_setup
        explorer = DesignSpaceExplorer(circuit, library, tables["typ"])
        results = explorer.pvt_sweep(pairs, VOLTAGES, tables)
        worst = DesignSpaceExplorer.worst_case_delays(results)
        assert len(worst) == len(VOLTAGES)
        for index in range(len(VOLTAGES)):
            maxima = max(points[index].latest_arrival
                         for points in results.values())
            assert worst[index].latest_arrival == maxima

    def test_validation(self, pvt_setup, library):
        circuit, pairs, tables = pvt_setup
        explorer = DesignSpaceExplorer(circuit, library, tables["typ"])
        with pytest.raises(ParameterError):
            explorer.pvt_sweep(pairs, VOLTAGES, {})
        with pytest.raises(ParameterError):
            DesignSpaceExplorer.worst_case_delays({})
