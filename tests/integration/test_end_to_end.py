"""End-to-end integration: the full paper flow on one circuit.

Exercises the complete pipeline the README advertises:

    library -> characterization -> kernels -> netlist + SDF + SPEF
    -> ATPG -> parallel voltage-sweep simulation -> analysis -> AVFS
"""

import numpy as np
import pytest

from repro import (
    AvfsController,
    DesignSpaceExplorer,
    EventDrivenSimulator,
    GpuWaveSim,
    SimulationConfig,
    SlotPlan,
    StaticTimingAnalysis,
    ZeroDelaySimulator,
    circuit_stats,
    generate_transition_patterns,
    parse_sdf,
    parse_spef,
    parse_verilog,
    random_circuit,
    write_sdf,
    write_spef,
    write_verilog,
)
from repro.analysis import dynamic_power, latest_arrivals, switching_activity
from repro.netlist.sdf import annotate_nominal
from repro.simulation.compiled import compile_circuit

VOLTAGES = [0.55, 0.7, 0.8, 1.1]


@pytest.fixture(scope="module")
def flow(library, kernel_table, tmp_path_factory):
    """Run the whole flow once; individual tests check its stages."""
    root = tmp_path_factory.mktemp("flow")
    circuit = random_circuit("design", num_inputs=14, num_gates=300, seed=21)

    # Design-exchange round trip through files on disk (Fig. 2 step 1).
    loads = circuit.net_loads(library)
    annotation = annotate_nominal(circuit, library, loads=loads)
    (root / "design.v").write_text(write_verilog(circuit, library))
    (root / "design.sdf").write_text(write_sdf(circuit, library, annotation))
    (root / "design.spef").write_text(write_spef(circuit, loads))

    reparsed = parse_verilog((root / "design.v").read_text(), library)
    re_annotation = parse_sdf((root / "design.sdf").read_text(), library)
    re_loads = parse_spef((root / "design.spef").read_text())
    compiled = compile_circuit(reparsed, library, annotation=re_annotation,
                               loads=re_loads)

    patterns, coverage = generate_transition_patterns(
        reparsed, library, max_pairs=48, fault_sample=500)

    sim = GpuWaveSim(reparsed, library, compiled=compiled,
                     config=SimulationConfig(record_all_nets=True))
    plan = SlotPlan.cross(len(patterns), VOLTAGES)
    result = sim.run(patterns.pairs, plan=plan, kernel_table=kernel_table)
    return {
        "circuit": reparsed,
        "compiled": compiled,
        "patterns": patterns,
        "coverage": coverage,
        "plan": plan,
        "result": result,
        "loads": re_loads,
    }


class TestFlow:
    def test_circuit_round_trip(self, flow):
        stats = circuit_stats(flow["circuit"])
        assert stats.num_gates == 300

    def test_atpg_found_patterns(self, flow):
        assert len(flow["patterns"]) > 4
        assert flow["coverage"] > 0.4

    def test_final_values_match_zero_delay(self, flow, library):
        circuit = flow["circuit"]
        result = flow["result"]
        plan = flow["plan"]
        expected = ZeroDelaySimulator(circuit, library).responses(
            flow["patterns"].v2_matrix())
        for slot in range(0, result.num_slots, 7):
            pattern = int(plan.pattern_indices[slot])
            np.testing.assert_array_equal(
                result.final_values(slot, circuit.outputs), expected[pattern])

    def test_voltage_arrival_shape(self, flow):
        report = latest_arrivals(flow["result"], flow["circuit"],
                                 plan=flow["plan"])
        arrivals = [report.at(v) for v in VOLTAGES]
        assert arrivals == sorted(arrivals, reverse=True)

    def test_sta_bounds_and_pessimism(self, flow, library):
        sta = StaticTimingAnalysis(flow["circuit"], library,
                                   compiled=flow["compiled"])
        longest = sta.longest_path_delay()
        report = latest_arrivals(flow["result"], flow["circuit"],
                                 plan=flow["plan"])
        assert report.at(0.8) <= longest * 1.05

    def test_event_driven_agrees_on_sample(self, flow, library,
                                           kernel_table):
        circuit = flow["circuit"]
        config = SimulationConfig(record_all_nets=True)
        event = EventDrivenSimulator(circuit, library,
                                     compiled=flow["compiled"], config=config)
        reference = event.run(flow["patterns"].pairs[:3], voltage=0.7,
                              kernel_table=kernel_table)
        plan = flow["plan"]
        slots = [s for s in plan.slots_for_voltage(0.7)
                 if plan.pattern_indices[s] < 3]
        for slot in slots:
            pattern = int(plan.pattern_indices[slot])
            for net in circuit.nets():
                assert reference.waveform(pattern, net).equivalent(
                    flow["result"].waveform(int(slot), net), 0.0)

    def test_power_increases_with_voltage(self, flow):
        plan = flow["plan"]
        result = flow["result"]
        energies = []
        for voltage in (0.55, 1.1):
            slots = plan.slots_for_voltage(voltage).tolist()
            activity = switching_activity(result, slots=slots)
            energies.append(
                dynamic_power(activity, flow["loads"], voltage)
                .energy_per_pattern)
        assert energies[1] > energies[0]

    def test_avfs_closes_the_loop(self, flow, library, kernel_table):
        explorer = DesignSpaceExplorer(flow["circuit"], library, kernel_table)
        table = explorer.voltage_frequency_table(
            flow["patterns"].pairs[:8], VOLTAGES, guardband=0.05)
        controller = AvfsController(table)
        low = controller.set_performance(table.points[0].max_frequency * 0.5)
        assert low.voltage == min(VOLTAGES)
        controller.apply_aging(0.3)
        aged = controller.set_performance(table.points[0].max_frequency * 0.9)
        assert aged.voltage >= low.voltage
