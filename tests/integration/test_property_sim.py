"""Property-based cross-engine validation on random circuits.

These are the heavyweight invariants of the whole system:

* the parallel SIMT engine and the serial event-driven engine produce
  bit- and time-identical waveforms on arbitrary circuits and stimuli,
* settled values always equal the zero-delay responses,
* transport-mode arrivals never exceed the STA bound,
* inertial filtering only ever removes transitions.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.netlist.generate import random_circuit
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.compiled import compile_circuit
from repro.simulation.event_driven import EventDrivenSimulator
from repro.simulation.gpu import GpuWaveSim
from repro.simulation.zero_delay import ZeroDelaySimulator
from repro.timing.sta import StaticTimingAnalysis

SLOW = settings(max_examples=12, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def circuit_strategy():
    return st.builds(
        random_circuit,
        name=st.just("prop"),
        num_inputs=st.integers(4, 10),
        num_gates=st.integers(10, 90),
        seed=st.integers(0, 10_000),
    )


@SLOW
@given(circuit=circuit_strategy(), pattern_seed=st.integers(0, 1000),
       voltage=st.sampled_from([0.55, 0.8, 1.1]),
       filtering=st.sampled_from(["inertial", "transport"]))
def test_engines_equivalent(circuit, pattern_seed, voltage, filtering,
                            library, kernel_table):
    config = SimulationConfig(record_all_nets=True, pulse_filtering=filtering)
    compiled = compile_circuit(circuit, library)
    rng = np.random.default_rng(pattern_seed)
    pairs = [PatternPair.random(len(circuit.inputs), rng) for _ in range(4)]
    event = EventDrivenSimulator(circuit, library, config=config,
                                 compiled=compiled)
    parallel = GpuWaveSim(circuit, library, config=config, compiled=compiled)
    reference = event.run(pairs, voltage=voltage, kernel_table=kernel_table)
    candidate = parallel.run(
        pairs, voltage=voltage, kernel_table=kernel_table)
    for slot in range(len(pairs)):
        for net in circuit.nets():
            assert reference.waveform(slot, net).equivalent(
                candidate.waveform(slot, net), 0.0), net


@SLOW
@given(circuit=circuit_strategy(), pattern_seed=st.integers(0, 1000))
def test_final_values_equal_zero_delay(circuit, pattern_seed, library):
    compiled = compile_circuit(circuit, library)
    rng = np.random.default_rng(pattern_seed)
    pairs = [PatternPair.random(len(circuit.inputs), rng) for _ in range(6)]
    result = GpuWaveSim(circuit, library, compiled=compiled).run(pairs)
    expected = ZeroDelaySimulator(circuit, library).responses(
        np.stack([p.v2 for p in pairs]))
    for slot in range(len(pairs)):
        np.testing.assert_array_equal(
            result.final_values(slot, circuit.outputs), expected[slot])


@SLOW
@given(circuit=circuit_strategy(), pattern_seed=st.integers(0, 1000))
def test_sta_bounds_transport_arrivals(circuit, pattern_seed, library):
    compiled = compile_circuit(circuit, library)
    longest = StaticTimingAnalysis(circuit, library,
                                   compiled=compiled).longest_path_delay()
    rng = np.random.default_rng(pattern_seed)
    pairs = [PatternPair.random(len(circuit.inputs), rng) for _ in range(6)]
    sim = GpuWaveSim(circuit, library, compiled=compiled,
                     config=SimulationConfig(pulse_filtering="transport"))
    result = sim.run(pairs)
    for slot in range(len(pairs)):
        assert result.latest_arrival(slot, circuit.outputs) <= longest + 1e-18


@SLOW
@given(circuit=circuit_strategy(), pattern_seed=st.integers(0, 1000))
def test_inertial_never_adds_transitions(circuit, pattern_seed, library):
    """Inertial filtering only removes transitions — gate-locally.

    The guarantee holds per gate *for identical input waveforms*: it is
    asserted on first-level gates, whose inputs are the (unfiltered)
    primary stimuli in both modes.  Globally the property is false —
    filtering an upstream pulse can unmask downstream switching that
    cancelled out in transport mode, so deeper nets can legitimately
    gain transitions (counterexample: circuit seed 3588, pattern seed
    86)."""
    compiled = compile_circuit(circuit, library)
    rng = np.random.default_rng(pattern_seed)
    pairs = [PatternPair.random(len(circuit.inputs), rng) for _ in range(4)]
    transport = GpuWaveSim(
        circuit, library, compiled=compiled,
        config=SimulationConfig(record_all_nets=True,
                                pulse_filtering="transport")).run(pairs)
    inertial = GpuWaveSim(
        circuit, library, compiled=compiled,
        config=SimulationConfig(record_all_nets=True,
                                pulse_filtering="inertial")).run(pairs)
    primary = set(circuit.inputs)
    level1 = [gate.output for gate in circuit.gates
              if all(pin in primary for pin in gate.inputs)]
    assert level1
    for slot in range(len(pairs)):
        for net in level1:
            kept = len(inertial.waveform(slot, net).times)
            original = len(transport.waveform(slot, net).times)
            assert kept <= original, (slot, net)
