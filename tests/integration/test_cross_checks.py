"""Cross-component consistency checks spanning several subsystems."""

import subprocess
import sys

import numpy as np
import pytest

from repro.cells.cell import DrivePolarity
from repro.netlist.generate import random_circuit
from repro.netlist.liberty import parse_liberty, write_liberty
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.compiled import compile_circuit
from repro.simulation.event_driven import EventDrivenSimulator
from repro.simulation.gpu import GpuWaveSim
from repro.simulation.grid import SlotPlan
from repro.simulation.variation import ProcessVariation
from repro.timing.sta import StaticTimingAnalysis


class TestLibertyVsSimulation:
    def test_liberty_view_predicts_simulated_gate_delay(self, library,
                                                        characterization,
                                                        kernel_table):
        """The emitted .lib tables and the live simulator use the same
        kernels: an inverter's simulated transition time must match the
        Liberty view's table entry at the same (voltage, load)."""
        from repro.netlist.circuit import Circuit
        from repro.netlist.sdf import annotate_nominal

        voltage = 0.65
        parsed = parse_liberty(write_liberty(characterization,
                                             voltage=voltage))
        circuit = Circuit("lib_xcheck")
        circuit.add_input("a")
        circuit.add_gate("g0", "INV_X1", ["a"], "y")
        circuit.add_output("y")
        loads = circuit.net_loads(library)
        compiled = compile_circuit(circuit, library,
                                   annotation=annotate_nominal(
                                       circuit, library, loads=loads),
                                   loads=loads)
        sim = GpuWaveSim(circuit, library, compiled=compiled,
                         config=SimulationConfig(record_all_nets=True))
        pair = PatternPair(v1=np.asarray([1], dtype=np.uint8),
                           v2=np.asarray([0], dtype=np.uint8))  # y rises
        result = sim.run([pair], voltage=voltage, kernel_table=kernel_table)
        simulated = float(result.waveform(0, "y").times[0])

        table_loads = parsed["__loads__"]
        rise = parsed["INV_X1"]["timing"]["A"]["rise"]
        # delay is near-linear in load, so interpolate on the linear axis
        expected = float(np.interp(loads["y"], table_loads, rise))
        assert simulated == pytest.approx(expected, rel=0.03)


class TestStaVsKernels:
    def test_parametric_sta_tracks_simulated_scaling(self, library,
                                                     kernel_table, rng):
        """STA's voltage derating and the simulator's must agree on the
        *ratio* of slowdown (same kernels drive both)."""
        circuit = random_circuit("xsta", 10, 200, seed=47)
        compiled = compile_circuit(circuit, library)
        sta = StaticTimingAnalysis(circuit, library, compiled=compiled)
        sta_ratio = (sta.longest_path_delay(0.6, kernel_table)
                     / sta.longest_path_delay(0.9, kernel_table))
        sim = GpuWaveSim(circuit, library, compiled=compiled)
        pairs = [PatternPair.random(10, rng) for _ in range(20)]
        plan = SlotPlan.cross(len(pairs), [0.6, 0.9])
        result = sim.run(pairs, plan=plan, kernel_table=kernel_table)
        from repro.analysis.arrival import latest_arrivals
        report = latest_arrivals(result, circuit, plan=plan)
        sim_ratio = report.at(0.6) / report.at(0.9)
        assert sim_ratio == pytest.approx(sta_ratio, rel=0.10)


class TestVariationUnderSweep:
    def test_variation_composes_with_voltage_sweep(self, library,
                                                   kernel_table, rng):
        """Monte-Carlo factors and the voltage plane compose: engines
        agree slot-for-slot on the combined configuration."""
        circuit = random_circuit("xmc", 8, 90, seed=51)
        compiled = compile_circuit(circuit, library)
        config = SimulationConfig(record_all_nets=True)
        pairs = [PatternPair.random(8, rng) for _ in range(4)]
        variation = ProcessVariation(sigma=0.07, seed=9)
        plan = SlotPlan.cross(len(pairs), [0.7])
        parallel = GpuWaveSim(circuit, library, config=config,
                              compiled=compiled).run(
            pairs, plan=plan, kernel_table=kernel_table, variation=variation)
        serial = EventDrivenSimulator(circuit, library, config=config,
                                      compiled=compiled).run(
            pairs, voltage=0.7, kernel_table=kernel_table,
            variation=variation)
        for slot in range(len(pairs)):
            for net in circuit.nets():
                assert serial.waveform(slot, net).equivalent(
                    parallel.waveform(slot, net), 0.0)


class TestCliModule:
    def test_python_dash_m_entrypoint(self):
        """``python -m repro`` dispatches to the CLI help cleanly."""
        process = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True, text=True, timeout=120,
        )
        assert process.returncode == 0
        assert "characterize" in process.stdout
        assert "simulate" in process.stdout


class TestFig4Csv:
    def test_csv_dump(self, tmp_path):
        from repro.experiments import fig4

        result = fig4.run(orders=(1,), families=("INV",), grid=8)
        path = tmp_path / "fig4.csv"
        fig4.write_csv(result, str(path))
        lines = path.read_text().splitlines()
        assert lines[0].startswith("order,")
        assert len(lines) == 1 + result.orders[0].num_entries
