"""Tests for the bit-parallel zero-delay simulator."""

import numpy as np
import pytest

from repro.netlist.generate import c17, random_circuit
from repro.simulation.zero_delay import ZeroDelaySimulator


class TestCorrectness:
    def test_c17_matches_formula(self, library):
        circuit = c17()
        sim = ZeroDelaySimulator(circuit, library)
        vectors = np.asarray(
            [[(i >> b) & 1 for b in range(5)] for i in range(32)], dtype=np.uint8
        )
        outputs = sim.evaluate(vectors, nets=circuit.nets())
        for gate in circuit.gates:
            a = outputs[gate.inputs[0]]
            b = outputs[gate.inputs[1]]
            np.testing.assert_array_equal(outputs[gate.output], 1 - (a & b))

    def test_matches_naive_evaluation(self, library, rng):
        circuit = random_circuit("zd", num_inputs=10, num_gates=120, seed=8)
        sim = ZeroDelaySimulator(circuit, library)
        vectors = rng.integers(0, 2, size=(30, 10), dtype=np.uint8)
        fast = sim.evaluate(vectors, nets=circuit.nets())
        # naive scalar evaluation per pattern
        for p in range(0, 30, 7):
            values = {net: int(vectors[p, i])
                      for i, net in enumerate(circuit.inputs)}
            for gate in circuit.topological_gates():
                cell = library[gate.cell]
                values[gate.output] = int(cell.evaluate(
                    [values[n] for n in gate.inputs])) & 1
            for net, expected in values.items():
                assert fast[net][p] == expected

    def test_word_boundary(self, library, rng):
        """65 and 128 patterns exercise multi-word packing."""
        circuit = random_circuit("zd", num_inputs=6, num_gates=40, seed=2)
        sim = ZeroDelaySimulator(circuit, library)
        for count in (1, 63, 64, 65, 128, 129):
            vectors = rng.integers(0, 2, size=(count, 6), dtype=np.uint8)
            responses = sim.responses(vectors)
            assert responses.shape == (count, len(circuit.outputs))
            single = sim.responses(vectors[-1:])
            np.testing.assert_array_equal(responses[-1], single[0])


class TestApi:
    def test_width_mismatch(self, library):
        sim = ZeroDelaySimulator(c17(), library)
        with pytest.raises(ValueError, match="columns"):
            sim.evaluate(np.zeros((2, 3), dtype=np.uint8))

    def test_single_vector_promoted(self, library):
        sim = ZeroDelaySimulator(c17(), library)
        out = sim.evaluate(np.zeros(5, dtype=np.uint8))
        assert out["G22"].shape == (1,)

    def test_requested_nets_only(self, library):
        sim = ZeroDelaySimulator(c17(), library)
        out = sim.evaluate(np.zeros((4, 5), dtype=np.uint8), nets=["G10"])
        assert set(out) == {"G10"}
