"""merge_single (scalar) vs waveform_merge_kernel (vectorized) oracle."""

import numpy as np
import pytest

from repro.simulation.kernels import merge_single, waveform_merge_kernel
from repro.waveform.waveform import Waveform


def random_case(rng, k):
    waveforms = []
    for _ in range(k):
        count = int(rng.integers(0, 6))
        times = np.unique(np.sort(rng.uniform(0, 10, size=count)))
        waveforms.append(Waveform(initial=int(rng.integers(0, 2)),
                                  times=times))
    delays = rng.uniform(0.5, 3.0, size=(k, 2))
    table = int(rng.integers(0, 1 << (1 << k)))
    return waveforms, delays, table


class TestScalarVsVectorized:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    @pytest.mark.parametrize("inertial", [True, False])
    def test_agreement(self, k, inertial):
        rng = np.random.default_rng(1000 + k + int(inertial))
        for trial in range(60):
            waveforms, delays, table = random_case(rng, k)
            scalar = merge_single(waveforms, delays, table,
                                  inertial=inertial)
            capacity = max(max(w.num_transitions for w in waveforms), 1)
            input_times = np.full((k, 1, capacity), np.inf)
            input_initial = np.zeros((k, 1), dtype=np.uint8)
            kernel_delays = np.zeros((k, 2, 1))
            for pin in range(k):
                count = waveforms[pin].num_transitions
                input_times[pin, 0, :count] = waveforms[pin].times
                input_initial[pin, 0] = waveforms[pin].initial
                kernel_delays[pin, :, 0] = delays[pin]
            merged = waveform_merge_kernel(
                input_times, input_initial, kernel_delays,
                np.asarray([table], dtype=np.int64), 64, inertial=inertial)
            count = int(merged.counts[0])
            vector = Waveform(initial=int(merged.initial[0]),
                              times=merged.times[0, :count].copy())
            assert scalar == vector, (k, trial, inertial)

    def test_constant_inputs(self):
        waveforms = [Waveform.constant(1), Waveform.constant(0)]
        result = merge_single(waveforms, np.ones((2, 2)), 0b0111)  # NAND2
        assert result.initial == 1
        assert result.num_transitions == 0

    def test_simple_inverter(self):
        wave = Waveform(initial=0, times=np.asarray([1.0, 2.0]))
        delays = np.asarray([[0.5, 0.3]])
        result = merge_single([wave], delays, 0b01)  # INV
        assert result.initial == 1
        np.testing.assert_allclose(result.times, [1.3, 2.5])
