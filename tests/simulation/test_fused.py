"""Fused level-plan execution: bit-identity, plan caching, phase timing.

The contract under test (``compiled.py`` / ``gpu.py``): with
``fused=True`` (the default) the engine walks one compacted
:class:`LevelPlan` per level — one backend ``run_level`` call covering
every arity group, with the 2-D Horner delay polynomial evaluated
inside the merge loop — instead of one per-arity-group dispatch with
materialized per-lane delay arrays.  Fusion is an execution-strategy
change only: waveforms must be **bit identical** to the unfused path on
every backend, for static, multi-voltage parametric, Monte-Carlo,
overflow-retry and sparse lane-tracked workloads alike.
"""

import numpy as np
import pytest

from repro.netlist.generate import random_circuit
from repro.simulation.backend import available_backends
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.compiled import (
    clear_level_plan_cache,
    compile_circuit,
    level_plan_cache_stats,
)
from repro.simulation.gpu import GpuWaveSim
from repro.simulation.grid import SlotPlan
from repro.simulation.variation import ProcessVariation

CONCRETE = available_backends()


def make_pairs(circuit, count, seed=0):
    rng = np.random.default_rng(seed)
    return [PatternPair.random(len(circuit.inputs), rng) for _ in range(count)]


def single_toggle_pairs(circuit, count, seed=0):
    """Pairs toggling exactly one input: slots classify as lane-tracked,
    so the fused path's sparse (lane-compacted) entry runs."""
    rng = np.random.default_rng(seed)
    width = len(circuit.inputs)
    pairs = []
    for i in range(count):
        v1 = rng.integers(0, 2, size=width).astype(np.uint8)
        v2 = v1.copy()
        v2[i % width] ^= 1
        pairs.append(PatternPair(v1, v2))
    return pairs


def quiet_pairs(circuit, count, seed=0):
    rng = np.random.default_rng(seed)
    vectors = rng.integers(0, 2, size=(count, len(circuit.inputs)))
    return [PatternPair(v, v.copy()) for v in vectors]


def assert_identical(reference, candidate, num_slots, nets):
    for slot in range(num_slots):
        for net in nets:
            wa = reference.waveform(slot, net)
            wb = candidate.waveform(slot, net)
            assert wa.initial == wb.initial, (slot, net)
            # Bit-identical: list equality on raw float64, no tolerance.
            assert wa.times.tolist() == wb.times.tolist(), (slot, net)


def run_engine(circuit, compiled, library, pairs, *, backend, fused,
               plan=None, kernel_table=None, variation=None, capacity=None,
               prune=True):
    kwargs = dict(record_all_nets=True, backend=backend, fused=fused,
                  prune_inactive=prune)
    if capacity is not None:
        kwargs["waveform_capacity"] = capacity
    sim = GpuWaveSim(circuit, library, config=SimulationConfig(**kwargs),
                     compiled=compiled)
    result = sim.run(pairs, plan=plan, kernel_table=kernel_table,
                     variation=variation)
    return result, sim.last_stats


class TestBitIdentity:
    """Fused output must equal unfused output bit for bit, per backend."""

    @pytest.mark.parametrize("backend_name", CONCRETE)
    def test_static_delays(self, library, backend_name):
        circuit = random_circuit("fused_s", 8, 150, seed=31)
        compiled = compile_circuit(circuit, library)
        pairs = make_pairs(circuit, 6, 31)
        unfused, _ = run_engine(circuit, compiled, library, pairs,
                                backend=backend_name, fused=False)
        fused, _ = run_engine(circuit, compiled, library, pairs,
                              backend=backend_name, fused=True)
        assert_identical(unfused, fused, len(pairs), circuit.nets())

    @pytest.mark.parametrize("backend_name", CONCRETE)
    def test_parametric_multi_voltage(self, library, kernel_table,
                                      backend_name):
        """Voltage-dependent delays evaluated in-kernel (Horner inside
        the merge loop) vs materialized per-lane arrays."""
        circuit = random_circuit("fused_v", 8, 120, seed=33)
        compiled = compile_circuit(circuit, library)
        pairs = make_pairs(circuit, 4, 33)
        plan = SlotPlan.cross(len(pairs), [0.6, 0.8, 1.0])
        unfused, _ = run_engine(circuit, compiled, library, pairs,
                                backend=backend_name, fused=False,
                                plan=plan, kernel_table=kernel_table)
        fused, _ = run_engine(circuit, compiled, library, pairs,
                              backend=backend_name, fused=True,
                              plan=plan, kernel_table=kernel_table)
        assert_identical(unfused, fused, plan.num_slots, circuit.nets())

    @pytest.mark.parametrize("backend_name", CONCRETE)
    def test_monte_carlo_variation(self, library, kernel_table,
                                   backend_name):
        """Per-slot die factors fold into the same fused entry point."""
        circuit = random_circuit("fused_mc", 8, 120, seed=35)
        compiled = compile_circuit(circuit, library)
        pairs = make_pairs(circuit, 4, 35)
        variation = ProcessVariation(sigma=0.1, seed=77)
        unfused, _ = run_engine(circuit, compiled, library, pairs,
                                backend=backend_name, fused=False,
                                kernel_table=kernel_table,
                                variation=variation)
        fused, _ = run_engine(circuit, compiled, library, pairs,
                              backend=backend_name, fused=True,
                              kernel_table=kernel_table,
                              variation=variation)
        assert_identical(unfused, fused, len(pairs), circuit.nets())

    @pytest.mark.parametrize("backend_name", CONCRETE)
    def test_overflow_retry_path(self, library, kernel_table, backend_name):
        """Capacity-doubling retries rerun the fused dispatch from
        scratch; plans and normalization memos must carry over clean."""
        circuit = random_circuit("fused_o", 12, 200, seed=36)
        compiled = compile_circuit(circuit, library)
        pairs = make_pairs(circuit, 6, 36)
        unfused, _ = run_engine(circuit, compiled, library, pairs,
                                backend=backend_name, fused=False,
                                kernel_table=kernel_table, capacity=2)
        fused, fstats = run_engine(circuit, compiled, library, pairs,
                                   backend=backend_name, fused=True,
                                   kernel_table=kernel_table, capacity=2)
        assert fstats.retries >= 1, "workload must exercise the retry"
        assert_identical(unfused, fused, len(pairs), circuit.nets())

    @pytest.mark.parametrize("backend_name", CONCRETE)
    def test_sparse_lane_tracked(self, library, backend_name):
        """Mixed dense / lane-tracked / quiet slots: the fused path's
        lane-compacted sparse dispatch and the activity accounting must
        match the unfused path exactly."""
        circuit = random_circuit("fused_l", 8, 150, seed=37)
        compiled = compile_circuit(circuit, library)
        pairs = (make_pairs(circuit, 4, 37) +
                 single_toggle_pairs(circuit, 4, 39) +
                 quiet_pairs(circuit, 4, 38))
        unfused, ustats = run_engine(circuit, compiled, library, pairs,
                                     backend=backend_name, fused=False)
        fused, fstats = run_engine(circuit, compiled, library, pairs,
                                   backend=backend_name, fused=True)
        assert fstats.lanes_skipped == ustats.lanes_skipped > 0
        assert fstats.gate_evaluations == ustats.gate_evaluations
        assert_identical(unfused, fused, len(pairs), circuit.nets())


class TestLevelPlans:
    def test_plan_structure(self, library):
        """Plans cover every gate exactly once, arity runs are
        contiguous, and spare pins point at the constant-0 dummy net."""
        circuit = random_circuit("fused_p", 8, 120, seed=41)
        compiled = compile_circuit(circuit, library)
        plans = compiled.plans()
        assert len(plans.levels) == len(compiled.levels)
        seen = []
        for plan in plans.levels:
            assert plan.num_gates == plan.gate_indices.size
            seen.extend(plan.gate_indices.tolist())
            # Arity-sorted with matching group bounds.
            assert np.all(np.diff(plan.arities) >= 0)
            for g in range(plan.num_groups):
                lo, hi = plan.group_offsets[g], plan.group_offsets[g + 1]
                assert np.all(plan.arities[lo:hi] == plan.group_arity[g])
            # Spare pins are wired to the dummy net.
            for row, arity in enumerate(plan.arities):
                spare = plan.in_ids[row, arity:]
                assert np.all(spare == compiled.dummy_net_id)
            # Gathered arrays match the compiled source of truth.
            idx = plan.gate_indices
            assert plan.out_ids.tolist() == \
                compiled.gate_output[idx].tolist()
            assert plan.nominal.tolist() == \
                compiled.nominal_delays[idx].tolist()
        assert sorted(seen) == list(range(compiled.num_gates))

    def test_plans_shared_across_compiled_copies(self, library):
        """Two independent compiles of one circuit hit the
        fingerprint-keyed process cache."""
        circuit = random_circuit("fused_c", 8, 80, seed=43)
        clear_level_plan_cache()
        a = compile_circuit(circuit, library).plans()
        stats = level_plan_cache_stats()
        assert stats["misses"] == 1 and stats["entries"] == 1
        b = compile_circuit(circuit, library).plans()
        assert b is a
        assert level_plan_cache_stats()["hits"] >= 1

    def test_mutated_copy_gets_fresh_plans(self, library):
        """A compiled copy with different delays (ATPG fault injection
        shallow-copies and mutates) must not reuse stale plans."""
        import copy

        circuit = random_circuit("fused_m", 8, 80, seed=44)
        compiled = compile_circuit(circuit, library)
        base = compiled.plans()
        faulty = copy.copy(compiled)
        faulty.nominal_delays = compiled.nominal_delays.copy()
        faulty.nominal_delays[0, 0, :] += 1e-9
        mutated = faulty.plans()
        assert mutated is not base
        # The mutated delay shows up in gate 0's plan row.
        for plan in mutated.levels:
            rows = np.nonzero(plan.gate_indices == 0)[0]
            if rows.size:
                assert plan.nominal[rows[0], 0, 0] == \
                    faulty.nominal_delays[0, 0, 0]
        # The original still resolves to its own plans.
        assert compiled.plans() is base

    def test_plans_shared_across_service_jobs(self, library):
        """Jobs on independently compiled copies of one circuit — even
        in separate service instances — share one plan set through the
        fingerprint-keyed process cache: the plans build exactly once."""
        from repro.service import ServiceConfig, SimulationService

        circuit = random_circuit("fused_j", 8, 80, seed=45)
        pairs = make_pairs(circuit, 2, 45)
        clear_level_plan_cache()
        config = SimulationConfig(backend="numpy")
        for _ in range(2):
            with SimulationService(config=ServiceConfig(cache_entries=0)) \
                    as service:
                key = service.register_circuit(
                    circuit, library, compiled=compile_circuit(
                        circuit, library))
                handle = service.submit(key, pairs, config=config)
                assert handle.result().gate_evaluations > 0
        stats = level_plan_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] >= 1

    def test_normalization_memoized(self, library, kernel_table):
        """φ_V / φ_C land in plan-level memos and are reused by value."""
        circuit = random_circuit("fused_n", 8, 80, seed=46)
        plans = compile_circuit(circuit, library).plans()
        volts = np.array([0.6, 0.8, 1.0])
        nv1 = plans.normalized_voltages(kernel_table.space, volts)
        nv2 = plans.normalized_voltages(kernel_table.space, volts.copy())
        assert nv2 is nv1
        assert nv1.tolist() == \
            kernel_table.space.normalize_voltage(volts).tolist()
        nc1 = plans.normalized_loads(kernel_table.space)
        nc2 = plans.normalized_loads(kernel_table.space)
        assert nc2 is nc1
        assert len(nc1) == len(plans.levels)
        for level_nc, plan in zip(nc1, plans.levels):
            assert level_nc.tolist() == kernel_table.space.normalize_load(
                plan.loads).tolist()


class TestPhaseTiming:
    @pytest.mark.parametrize("backend_name", CONCRETE)
    def test_phases_recorded(self, library, kernel_table, backend_name):
        circuit = random_circuit("fused_t", 8, 120, seed=47)
        compiled = compile_circuit(circuit, library)
        pairs = make_pairs(circuit, 4, 47)
        plan = SlotPlan.cross(len(pairs), [0.6, 0.8])
        _, stats = run_engine(circuit, compiled, library, pairs,
                              backend=backend_name, fused=True,
                              plan=plan, kernel_table=kernel_table)
        phases = stats.phase_seconds()
        assert set(phases) == {"delay", "merge", "pack"}
        assert all(seconds >= 0.0 for seconds in phases.values())
        # Merge covers the fused kernel work and pack the unpack/settle
        # stage — both necessarily ran.
        assert phases["merge"] > 0.0
        assert phases["pack"] > 0.0

    def test_unfused_reports_delay_phase(self, library, kernel_table):
        """The per-arity-group path times delay evaluation separately."""
        circuit = random_circuit("fused_d", 8, 120, seed=48)
        compiled = compile_circuit(circuit, library)
        pairs = make_pairs(circuit, 4, 48)
        plan = SlotPlan.cross(len(pairs), [0.6, 0.8])
        _, stats = run_engine(circuit, compiled, library, pairs,
                              backend="numpy", fused=False,
                              plan=plan, kernel_table=kernel_table)
        assert stats.phase_seconds()["delay"] > 0.0
