"""Tests for the slot-plane organization (Fig. 3)."""

import numpy as np
import pytest

from repro.simulation.grid import SlotPlan


class TestConstructors:
    def test_cross_layout(self):
        plan = SlotPlan.cross(3, [0.6, 0.8])
        assert plan.num_slots == 6
        # voltage-major: first all patterns at 0.6 V
        np.testing.assert_array_equal(plan.pattern_indices, [0, 1, 2, 0, 1, 2])
        np.testing.assert_allclose(plan.voltages, [0.6] * 3 + [0.8] * 3)

    def test_zip_layout(self):
        plan = SlotPlan.zip([0, 2, 1], [0.6, 0.7, 0.8])
        assert plan.num_slots == 3
        assert plan.labels() == [(0, 0.6), (2, 0.7), (1, 0.8)]

    def test_uniform(self):
        plan = SlotPlan.uniform(4, 0.8)
        assert plan.num_slots == 4
        assert plan.distinct_voltages().tolist() == [0.8]

    def test_validation(self):
        with pytest.raises(ValueError):
            SlotPlan(pattern_indices=np.asarray([0, 1]),
                     voltages=np.asarray([0.8]))
        with pytest.raises(ValueError):
            SlotPlan(pattern_indices=np.asarray([], dtype=np.int64),
                     voltages=np.asarray([]))

    def test_negative_pattern_indices_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            SlotPlan(pattern_indices=np.asarray([0, -1]),
                     voltages=np.asarray([0.8, 0.8]))
        with pytest.raises(ValueError, match="non-negative"):
            SlotPlan.zip([-3], [0.8])


class TestQueries:
    def test_slots_for_voltage(self):
        plan = SlotPlan.cross(2, [0.6, 0.8, 1.0])
        np.testing.assert_array_equal(plan.slots_for_voltage(0.8), [2, 3])
        assert plan.slots_for_voltage(0.9).size == 0

    def test_distinct_voltages_sorted(self):
        plan = SlotPlan.zip([0, 0, 0], [1.0, 0.6, 0.8])
        np.testing.assert_allclose(plan.distinct_voltages(), [0.6, 0.8, 1.0])


class TestBatching:
    def test_batches_cover_all_slots(self):
        plan = SlotPlan.cross(5, [0.6, 0.8])
        seen = []
        for indices, sub in plan.batches(3):
            assert sub.num_slots == len(indices) <= 3
            for local, slot in enumerate(indices):
                assert sub.pattern_indices[local] == plan.pattern_indices[slot]
                assert sub.voltages[local] == plan.voltages[slot]
            seen.extend(indices.tolist())
        assert seen == list(range(10))

    def test_single_batch_when_large(self):
        plan = SlotPlan.uniform(4, 0.8)
        batches = list(plan.batches(100))
        assert len(batches) == 1

    def test_bad_batch_size(self):
        plan = SlotPlan.uniform(4, 0.8)
        with pytest.raises(ValueError):
            list(plan.batches(0))
