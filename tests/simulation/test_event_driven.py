"""Tests for the serial event-driven time simulator."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.netlist.sdf import SdfAnnotation
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.event_driven import EventDrivenSimulator
from repro.simulation.zero_delay import ZeroDelaySimulator


def inv_chain(length: int) -> Circuit:
    circuit = Circuit(f"chain{length}")
    circuit.add_input("a")
    previous = "a"
    for i in range(length):
        circuit.add_gate(f"g{i}", "INV_X1", [previous], f"n{i}")
        previous = f"n{i}"
    circuit.add_output(previous)
    return circuit


def fixed_annotation(circuit: Circuit, rise: float, fall: float) -> SdfAnnotation:
    annotation = SdfAnnotation(design=circuit.name)
    for gate in circuit.gates:
        annotation.delays[gate.name] = tuple(
            (rise, fall) for _ in gate.inputs
        )
    return annotation


class TestHandComputedDelays:
    def test_inverter_chain_arrival(self, library):
        circuit = inv_chain(4)
        annotation = fixed_annotation(circuit, rise=2e-12, fall=3e-12)
        sim = EventDrivenSimulator(circuit, library, annotation=annotation,
                                   config=SimulationConfig(record_all_nets=True))
        # rising input: inverters alternate fall (3ps), rise (2ps), ...
        pair = PatternPair(v1=np.asarray([0]), v2=np.asarray([1]))
        result = sim.run([pair])
        w = result.waveform(0, circuit.outputs[0])
        assert w.num_transitions == 1
        assert w.times[0] == pytest.approx(3e-12 + 2e-12 + 3e-12 + 2e-12)

    def test_nand_glitch_generation_transport(self, library):
        """A NAND with skewed input arrival produces a 0-pulse glitch."""
        circuit = Circuit("glitch")
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("u0", "BUF_X1", ["a"], "a_slow")
        circuit.add_gate("u1", "NAND2_X1", ["a_slow", "b"], "y")
        circuit.add_output("y")
        annotation = SdfAnnotation(design="glitch")
        annotation.delays["u0"] = ((5e-12, 5e-12),)
        annotation.delays["u1"] = ((1e-12, 1e-12), (1e-12, 1e-12))
        sim = EventDrivenSimulator(circuit, library, annotation=annotation,
                                   config=SimulationConfig(
                                       record_all_nets=True,
                                       pulse_filtering="transport"))
        # a: 1->0 (slow path), b: 0->1 : y = !(a_slow & b)
        # settle: a=1,b=0 -> a_slow=1, y=1
        # t=0: b->1 => y falls at 1ps ; a_slow falls at 5ps => y rises at 6ps
        pair = PatternPair(v1=np.asarray([1, 0]), v2=np.asarray([0, 1]))
        result = sim.run([pair])
        w = result.waveform(0, "y")
        assert w.initial == 1
        np.testing.assert_allclose(w.times, [1e-12, 6e-12])
        assert w.final_value == 1  # glitch: returns to 1

    def test_inertial_filters_short_pulse(self, library):
        """Same circuit, but a 0.5 ps pulse dies against a 1 ps inertial."""
        circuit = Circuit("glitch")
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("u0", "BUF_X1", ["a"], "a_slow")
        circuit.add_gate("u1", "NAND2_X1", ["a_slow", "b"], "y")
        circuit.add_output("y")
        annotation = SdfAnnotation(design="glitch")
        annotation.delays["u0"] = ((0.5e-12, 0.5e-12),)
        annotation.delays["u1"] = ((1e-12, 1e-12), (1e-12, 1e-12))
        sim = EventDrivenSimulator(circuit, library, annotation=annotation,
                                   config=SimulationConfig(record_all_nets=True))
        pair = PatternPair(v1=np.asarray([1, 0]), v2=np.asarray([0, 1]))
        result = sim.run([pair])
        # pulse would be 1ps..1.5ps = 0.5 ps wide < 1 ps inertial -> filtered
        assert result.waveform(0, "y").num_transitions == 0


class TestDescheduling:
    def test_queued_event_cancelled_before_dispatch(self, library):
        """A toggle already in the event queue gets invalidated when a
        later input event annihilates it — downstream gates must never
        see the phantom pulse."""
        circuit = Circuit("cancel")
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("u0", "BUF_X1", ["a"], "a_slow")
        circuit.add_gate("u1", "NAND2_X1", ["a_slow", "b"], "pulse")
        circuit.add_gate("u2", "INV_X1", ["pulse"], "y")
        circuit.add_output("y")
        annotation = SdfAnnotation(design="cancel")
        # b falls y at t=0+2ps (pulse falls at 2ps); a_slow falls at
        # 1.5ps scheduling the rise at 1.5+1=2.5ps: the 0.5ps pulse is
        # narrower than the 1ps inertial window -> both toggles cancel,
        # including the already-queued 2ps event.
        annotation.delays["u0"] = ((1.5e-12, 1.5e-12),)
        annotation.delays["u1"] = ((1e-12, 2e-12), (2e-12, 2e-12))
        annotation.delays["u2"] = ((1e-12, 1e-12),)
        sim = EventDrivenSimulator(circuit, library, annotation=annotation,
                                   config=SimulationConfig(record_all_nets=True))
        pair = PatternPair(v1=np.asarray([1, 0]), v2=np.asarray([0, 1]))
        result = sim.run([pair])
        assert result.waveform(0, "pulse").num_transitions == 0
        assert result.waveform(0, "y").num_transitions == 0  # no phantom

    def test_cancelled_event_matches_parallel_engine(self, library):
        """The same crafted circuit agrees with the SIMT engine."""
        from repro.simulation.compiled import compile_circuit
        from repro.simulation.gpu import GpuWaveSim

        circuit = Circuit("cancel2")
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("u0", "BUF_X1", ["a"], "a_slow")
        circuit.add_gate("u1", "NAND2_X1", ["a_slow", "b"], "pulse")
        circuit.add_gate("u2", "INV_X1", ["pulse"], "y")
        circuit.add_output("y")
        annotation = SdfAnnotation(design="cancel2")
        annotation.delays["u0"] = ((1.5e-12, 1.5e-12),)
        annotation.delays["u1"] = ((1e-12, 2e-12), (2e-12, 2e-12))
        annotation.delays["u2"] = ((1e-12, 1e-12),)
        compiled = compile_circuit(circuit, library, annotation=annotation)
        config = SimulationConfig(record_all_nets=True)
        pair = PatternPair(v1=np.asarray([1, 0]), v2=np.asarray([0, 1]))
        serial = EventDrivenSimulator(circuit, library, compiled=compiled,
                                      config=config).run([pair])
        parallel = GpuWaveSim(circuit, library, compiled=compiled,
                              config=config).run([pair])
        for net in circuit.nets():
            assert serial.waveform(0, net).equivalent(
                parallel.waveform(0, net), 0.0)


class TestConsistency:
    def test_final_values_match_zero_delay(self, library, small_circuit, rng):
        config = SimulationConfig(record_all_nets=True)
        sim = EventDrivenSimulator(small_circuit, library, config=config)
        zd = ZeroDelaySimulator(small_circuit, library)
        pairs = [PatternPair.random(len(small_circuit.inputs), rng)
                 for _ in range(20)]
        result = sim.run(pairs)
        expected = zd.responses(np.stack([p.v2 for p in pairs]))
        for slot in range(len(pairs)):
            np.testing.assert_array_equal(
                result.final_values(slot, small_circuit.outputs), expected[slot]
            )

    def test_initial_values_match_v1(self, library, small_circuit, rng):
        config = SimulationConfig(record_all_nets=True)
        sim = EventDrivenSimulator(small_circuit, library, config=config)
        zd = ZeroDelaySimulator(small_circuit, library)
        pairs = [PatternPair.random(len(small_circuit.inputs), rng)
                 for _ in range(5)]
        result = sim.run(pairs)
        settled = zd.responses(np.stack([p.v1 for p in pairs]))
        for slot in range(len(pairs)):
            initial = np.asarray(
                [result.waveform(slot, net).initial
                 for net in small_circuit.outputs])
            np.testing.assert_array_equal(initial, settled[slot])

    def test_parametric_voltage_scaling(self, library, small_circuit,
                                        kernel_table, rng):
        sim = EventDrivenSimulator(small_circuit, library)
        pairs = [PatternPair.random(len(small_circuit.inputs), rng)
                 for _ in range(10)]
        slow = sim.run(pairs, voltage=0.55, kernel_table=kernel_table)
        fast = sim.run(pairs, voltage=1.10, kernel_table=kernel_table)
        arr_slow = max(slow.latest_arrival(s, small_circuit.outputs)
                       for s in range(10))
        arr_fast = max(fast.latest_arrival(s, small_circuit.outputs)
                       for s in range(10))
        assert arr_slow > 1.2 * arr_fast


class TestValidation:
    def test_pattern_width(self, library, small_circuit):
        sim = EventDrivenSimulator(small_circuit, library)
        bad = PatternPair(v1=np.zeros(3, dtype=np.uint8),
                          v2=np.zeros(3, dtype=np.uint8))
        with pytest.raises(SimulationError, match="width"):
            sim.run([bad])

    def test_parametric_requires_voltage(self, library, small_circuit,
                                         kernel_table):
        sim = EventDrivenSimulator(small_circuit, library)
        with pytest.raises(SimulationError, match="voltage"):
            sim._delays(None, kernel_table)

    def test_result_metadata(self, library, small_circuit, rng):
        sim = EventDrivenSimulator(small_circuit, library)
        pairs = [PatternPair.random(len(small_circuit.inputs), rng)
                 for _ in range(3)]
        result = sim.run(pairs, voltage=0.8)
        assert result.engine == "event-driven"
        assert result.num_slots == 3
        assert result.gate_evaluations >= 3 * small_circuit.num_gates
        assert result.runtime_seconds > 0
