"""Edge-case circuits both engines must agree on."""

import numpy as np
import pytest

from repro.netlist.bench import parse_bench
from repro.netlist.circuit import Circuit
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.compiled import compile_circuit
from repro.simulation.event_driven import EventDrivenSimulator
from repro.simulation.gpu import GpuWaveSim
from repro.simulation.zero_delay import ZeroDelaySimulator


def both_engines(circuit, library, pairs, kernel_table=None, voltage=0.8):
    config = SimulationConfig(record_all_nets=True)
    compiled = compile_circuit(circuit, library)
    serial = EventDrivenSimulator(circuit, library, config=config,
                                  compiled=compiled).run(
        pairs, voltage=voltage, kernel_table=kernel_table)
    parallel = GpuWaveSim(circuit, library, config=config,
                          compiled=compiled).run(
        pairs, voltage=voltage, kernel_table=kernel_table)
    for slot in range(len(pairs)):
        for net in circuit.nets():
            assert serial.waveform(slot, net).equivalent(
                parallel.waveform(slot, net), 0.0), (slot, net)
    return serial


class TestDuplicateInputNet:
    """One net driving two pins of the same gate (legal and common)."""

    def make(self) -> Circuit:
        circuit = Circuit("dup")
        circuit.add_input("a")
        circuit.add_gate("g0", "XOR2_X1", ["a", "a"], "zero")   # always 0
        circuit.add_gate("g1", "AND2_X1", ["a", "a"], "same")   # follows a
        circuit.add_output("zero")
        circuit.add_output("same")
        return circuit

    def test_function(self, library):
        circuit = self.make()
        sim = ZeroDelaySimulator(circuit, library)
        outputs = sim.evaluate(np.asarray([[0], [1]], dtype=np.uint8))
        np.testing.assert_array_equal(outputs["zero"], [0, 0])
        np.testing.assert_array_equal(outputs["same"], [0, 1])

    def test_time_simulation_engines_agree(self, library, kernel_table):
        circuit = self.make()
        pairs = [
            PatternPair(v1=np.asarray([0], dtype=np.uint8),
                        v2=np.asarray([1], dtype=np.uint8)),
            PatternPair(v1=np.asarray([1], dtype=np.uint8),
                        v2=np.asarray([0], dtype=np.uint8)),
        ]
        result = both_engines(circuit, library, pairs, kernel_table)
        # XOR(a, a) never moves even though both pins toggle together.
        for slot in range(2):
            assert result.waveform(slot, "zero").num_transitions == 0
            assert result.waveform(slot, "same").num_transitions == 1

    def test_bench_duplicate_inputs(self, library):
        circuit = parse_bench(
            "INPUT(a)\nOUTPUT(y)\ny = AND(a, a)\n")
        circuit.validate(library)


class TestDegenerateShapes:
    def test_single_gate_circuit(self, library, kernel_table):
        circuit = Circuit("one")
        circuit.add_input("a")
        circuit.add_gate("g0", "INV_X1", ["a"], "y")
        circuit.add_output("y")
        pairs = [PatternPair(v1=np.asarray([0], dtype=np.uint8),
                             v2=np.asarray([1], dtype=np.uint8))]
        result = both_engines(circuit, library, pairs, kernel_table)
        assert result.waveform(0, "y").num_transitions == 1

    def test_input_fed_directly_to_output_via_buffer(self, library):
        circuit = Circuit("thru")
        circuit.add_input("a")
        circuit.add_gate("g0", "BUF_X1", ["a"], "y")
        circuit.add_output("y")
        pairs = [PatternPair(v1=np.asarray([1], dtype=np.uint8),
                             v2=np.asarray([1], dtype=np.uint8))]
        result = both_engines(circuit, library, pairs)
        assert result.waveform(0, "y").num_transitions == 0
        assert result.waveform(0, "y").initial == 1

    def test_no_toggling_pattern_set(self, library, medium_circuit, rng):
        """All-stable pairs: zero events anywhere, still well-formed."""
        width = len(medium_circuit.inputs)
        v = rng.integers(0, 2, size=width, dtype=np.uint8)
        pairs = [PatternPair(v1=v, v2=v.copy())]
        result = both_engines(medium_circuit, library, pairs)
        assert result.total_transitions(0) == 0

    def test_wide_gate_simultaneous_toggles(self, library, kernel_table):
        """All four pins of a NAND4 toggling at launch."""
        circuit = Circuit("wide")
        for name in "abcd":
            circuit.add_input(name)
        circuit.add_gate("g0", "NAND4_X1", list("abcd"), "y")
        circuit.add_output("y")
        pairs = [PatternPair(v1=np.zeros(4, dtype=np.uint8),
                             v2=np.ones(4, dtype=np.uint8))]
        result = both_engines(circuit, library, pairs, kernel_table)
        wave = result.waveform(0, "y")
        assert wave.initial == 1
        assert wave.num_transitions == 1
        assert wave.final_value == 0
