"""Tests for netlist compilation (flat arrays, truth tables, levels)."""

import numpy as np
import pytest

from repro.netlist.generate import c17, random_circuit
from repro.netlist.sdf import annotate_nominal
from repro.simulation.compiled import _pad_truth_table, _truth_table, compile_circuit


class TestTruthTables:
    def test_nand2_table(self, library):
        table = _truth_table(library["NAND2_X1"])
        # index bit i = pin i: outputs 1,1,1,0 for 00,01,10,11
        assert table == 0b0111

    def test_mux_table(self, library):
        table = _truth_table(library["MUX2_X1"])
        # pins (A, B, S): index = A + 2B + 4S
        for idx in range(8):
            a, b, s = idx & 1, (idx >> 1) & 1, (idx >> 2) & 1
            expected = b if s else a
            assert (table >> idx) & 1 == expected

    def test_pad_preserves_function(self, library):
        base = _truth_table(library["NAND2_X1"])
        padded = _pad_truth_table(base, 2, 4)
        for idx in range(16):
            assert (padded >> idx) & 1 == (base >> (idx & 0b11)) & 1

    def test_pad_identity_when_same_arity(self):
        assert _pad_truth_table(0b0110, 2, 2) == 0b0110


class TestCompiledStructure:
    @pytest.fixture(scope="class")
    def compiled(self, library):
        return compile_circuit(c17(), library)

    def test_net_numbering(self, compiled):
        # inputs first, then gate outputs in insertion order
        assert compiled.net_id("G1") == 0
        assert compiled.num_nets == 5 + 6
        np.testing.assert_array_equal(compiled.input_net_ids, range(5))

    def test_gate_arrays(self, compiled):
        assert compiled.num_gates == 6
        assert compiled.max_pins == 2
        assert np.all(compiled.gate_arity == 2)
        assert np.all(compiled.gate_loads > 0)
        assert np.all(compiled.nominal_delays[:, :2, :] > 0)

    def test_dummy_net_and_padding(self, library):
        circuit = random_circuit("pad", 8, 60, seed=4)  # mixed arities
        compiled = compile_circuit(circuit, library)
        assert compiled.dummy_net_id == compiled.num_nets
        narrow = np.where(compiled.gate_arity < compiled.max_pins)[0]
        assert narrow.size > 0
        for gate_index in narrow[:5]:
            arity = int(compiled.gate_arity[gate_index])
            assert np.all(
                compiled.padded_inputs[gate_index, arity:]
                == compiled.dummy_net_id)
            # spare pins are don't-care: padded table restricted to the
            # real pins equals the original
            base = int(compiled.truth_tables[gate_index])
            padded = int(compiled.padded_truth_tables[gate_index])
            for idx in range(1 << arity):
                assert (padded >> idx) & 1 == (base >> idx) & 1

    def test_levels_partition_gates(self, library):
        circuit = random_circuit("lvl", 8, 120, seed=5)
        compiled = compile_circuit(circuit, library)
        seen = np.concatenate(compiled.levels)
        assert sorted(seen.tolist()) == list(range(compiled.num_gates))
        # every level's groups cover the level exactly
        for level, groups in zip(compiled.levels, compiled.level_groups):
            grouped = np.concatenate([idx for _a, idx in groups])
            assert sorted(grouped.tolist()) == sorted(level.tolist())

    def test_custom_annotation_respected(self, library):
        circuit = c17()
        annotation = annotate_nominal(circuit, library)
        # perturb one delay and verify it lands in the arrays
        gate = circuit.gates[0]
        rise, fall = annotation.delays[gate.name][0]
        annotation.delays[gate.name] = ((rise * 2, fall),) + \
            annotation.delays[gate.name][1:]
        compiled = compile_circuit(circuit, library, annotation=annotation)
        assert compiled.nominal_delays[0, 0, 0] == pytest.approx(rise * 2)
        assert compiled.nominal_delays[0, 0, 1] == pytest.approx(fall)

    def test_invalid_circuit_rejected(self, library):
        from repro.errors import NetlistError
        from repro.netlist.circuit import Circuit
        bad = Circuit("bad")
        bad.add_input("a")
        bad.add_gate("g0", "NAND2_X1", ["a", "ghost"], "y")
        bad.add_output("y")
        with pytest.raises(NetlistError):
            compile_circuit(bad, library)
