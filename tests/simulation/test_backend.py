"""Tests for the pluggable compute-backend layer.

The central claim (`backend.py` module docstring) is that every backend
implements the exact per-lane algorithm of the numpy reference with
identical IEEE-754 operation order — results are **bit-identical**, not
merely close.  The suite asserts that, plus the selection/fallback
machinery (explicit name, ``REPRO_BACKEND``, ``auto`` degradation when a
dependency is absent).
"""

import sys

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.netlist.generate import random_circuit
from repro.simulation import backend as backend_mod
from repro.simulation.backend import (
    AUTO_ORDER,
    BACKEND_CHOICES,
    NumpyBackend,
    available_backends,
    backend_status,
    resolve_backend,
)
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.compiled import compile_circuit
from repro.simulation.gpu import GpuWaveSim
from repro.simulation.grid import SlotPlan
from repro.simulation.kernels import merge_single
from repro.simulation.variation import ProcessVariation
from repro.waveform.waveform import Waveform

CONCRETE = available_backends()            # loadable on this machine
JIT = [n for n in CONCRETE if n != "numpy"]


def make_pairs(circuit, count, seed=0):
    rng = np.random.default_rng(seed)
    return [PatternPair.random(len(circuit.inputs), rng) for _ in range(count)]


@pytest.fixture
def fresh_registry(monkeypatch):
    """Snapshot/restore the backend registry around cache-poking tests."""
    saved_cache = dict(backend_mod._CACHE)
    saved_failures = dict(backend_mod._FAILURES)
    backend_mod._clear_caches()
    yield
    backend_mod._clear_caches()
    backend_mod._CACHE.update(saved_cache)
    backend_mod._FAILURES.update(saved_failures)


class TestResolution:
    def test_numpy_always_available(self):
        assert isinstance(resolve_backend("numpy"), NumpyBackend)
        assert "numpy" in available_backends()

    def test_unknown_name_raises(self):
        with pytest.raises(SimulationError, match="unknown compute backend"):
            resolve_backend("fortran")

    def test_unknown_name_rejected_by_config(self):
        with pytest.raises(ValueError, match="backend"):
            SimulationConfig(backend="fortran")

    def test_config_accepts_all_choices(self):
        for name in BACKEND_CHOICES:
            assert SimulationConfig(backend=name).backend == name

    def test_env_var_consulted(self, monkeypatch):
        monkeypatch.setenv(backend_mod.ENV_VAR, "numpy")
        assert resolve_backend().name == "numpy"
        assert resolve_backend(None).name == "numpy"

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(backend_mod.ENV_VAR, "no-such-backend")
        assert resolve_backend("numpy").name == "numpy"

    def test_auto_never_fails(self, monkeypatch, fresh_registry):
        """``auto`` degrades to numpy even with every dependency absent.

        ``sys.modules[name] = None`` makes any import of ``name`` raise
        ImportError — the standard way to simulate an absent dependency.
        """
        import repro.simulation

        for module in ("numba", "repro.simulation.kernels_numba",
                       "repro.simulation.kernels_cext"):
            monkeypatch.setitem(sys.modules, module, None)
        for attr in ("kernels_numba", "kernels_cext"):
            monkeypatch.delattr(repro.simulation, attr, raising=False)
        assert resolve_backend("auto").name == "numpy"
        status = backend_status()
        assert status["numpy"] == "ok"
        assert status["numba"] != "ok"
        assert status["cext"] != "ok"
        # Failures are cached: the concrete names now report unavailable.
        with pytest.raises(SimulationError, match="unavailable"):
            resolve_backend("numba")
        with pytest.raises(SimulationError, match="unavailable"):
            resolve_backend("cext")

    def test_auto_prefers_jit_when_available(self):
        if not JIT:
            pytest.skip("no JIT backend loads on this machine")
        resolved = resolve_backend("auto").name
        assert resolved == next(n for n in AUTO_ORDER if n in CONCRETE)

    def test_status_reports_every_choice(self):
        status = backend_status()
        assert set(status) == set(BACKEND_CHOICES[1:])
        assert status["numpy"] == "ok"


def random_lane_workload(rng, lanes, pins, capacity):
    """Synthetic merge-kernel inputs with ragged waveform lengths."""
    times = np.full((pins, lanes, capacity), np.inf)
    for pin in range(pins):
        for lane in range(lanes):
            n = int(rng.integers(0, capacity))
            times[pin, lane, :n] = np.sort(rng.uniform(0.0, 1e-9, size=n))
    initial = rng.integers(0, 2, size=(pins, lanes)).astype(np.uint8)
    delays = rng.uniform(1e-12, 2e-10, size=(pins, 2, lanes))
    tables = rng.integers(0, 1 << (1 << pins), size=lanes, dtype=np.uint32)
    return times, initial, delays, tables


class TestKernelEquivalence:
    """Lane-oriented API: every backend vs the scalar merge_single oracle."""

    @pytest.mark.parametrize("backend_name", CONCRETE)
    @pytest.mark.parametrize("inertial", [True, False])
    @pytest.mark.parametrize("pins", [1, 2, 3])
    def test_bit_identical_to_oracle(self, backend_name, inertial, pins):
        backend = resolve_backend(backend_name)
        rng = np.random.default_rng(1000 + pins)
        lanes, capacity = 64, 8
        times, initial, delays, tables = random_lane_workload(
            rng, lanes, pins, capacity)
        result = backend.merge_kernel(times, initial, delays, tables,
                                      capacity * 2, inertial=inertial)
        for lane in range(lanes):
            inputs = [
                Waveform(int(initial[p, lane]),
                         times[p, lane][np.isfinite(times[p, lane])])
                for p in range(pins)
            ]
            expected = merge_single(inputs, delays[:, :, lane],
                                    int(tables[lane]), inertial=inertial)
            count = int(result.counts[lane])
            assert result.initial[lane] == expected.initial, lane
            # Bit-identical: == on the raw float64 payload, no tolerance.
            assert result.times[lane, :count].tolist() == \
                expected.times.tolist(), lane
            assert np.all(np.isinf(result.times[lane, count:]))
            assert not result.overflow[lane]

    @pytest.mark.parametrize("backend_name", CONCRETE)
    def test_overflow_flags_match_reference(self, backend_name):
        """Overflow trips on intermediate buffer depth — the exact same
        lanes must trip in every backend, and surviving lanes agree."""
        backend = resolve_backend(backend_name)
        reference = resolve_backend("numpy")
        rng = np.random.default_rng(7)
        times, initial, delays, tables = random_lane_workload(rng, 32, 2, 8)
        tables = np.full(32, 0b0110, dtype=np.uint32)  # XOR: no cancellation
        ours = backend.merge_kernel(times, initial, delays, tables, 2)
        theirs = reference.merge_kernel(times, initial, delays, tables, 2)
        assert np.array_equal(ours.overflow, theirs.overflow)
        assert ours.overflow.any(), "workload must exercise overflow"
        ok = ~ours.overflow
        assert np.array_equal(ours.counts[ok], theirs.counts[ok])
        assert np.array_equal(ours.initial[ok], theirs.initial[ok])


class TestEngineEquivalence:
    """End-to-end: GpuWaveSim results across backends, bit for bit."""

    @staticmethod
    def assert_identical(reference, candidate, num_slots, nets):
        for slot in range(num_slots):
            for net in nets:
                wa = reference.waveform(slot, net)
                wb = candidate.waveform(slot, net)
                assert wa.initial == wb.initial, (slot, net)
                assert wa.times.tolist() == wb.times.tolist(), (slot, net)

    @pytest.mark.parametrize("backend_name", JIT)
    @pytest.mark.parametrize("seed", [0, 3])
    @pytest.mark.parametrize("filtering", ["inertial", "transport"])
    def test_static_mode(self, library, backend_name, seed, filtering):
        circuit = random_circuit(f"beq{seed}", 8, 120, seed=seed)
        compiled = compile_circuit(circuit, library)
        pairs = make_pairs(circuit, 12, seed)

        def run(name):
            config = SimulationConfig(record_all_nets=True,
                                      pulse_filtering=filtering, backend=name)
            sim = GpuWaveSim(circuit, library, config=config,
                             compiled=compiled)
            result = sim.run(pairs)
            assert sim.last_stats.backend == name
            assert result.engine == f"gpu-static[{name},sparse]"
            return result

        self.assert_identical(run("numpy"), run(backend_name), len(pairs),
                              circuit.nets())

    @pytest.mark.parametrize("backend_name", JIT)
    def test_parametric_multi_voltage(self, library, kernel_table,
                                      backend_name):
        circuit = random_circuit("beqv", 8, 120, seed=11)
        compiled = compile_circuit(circuit, library)
        pairs = make_pairs(circuit, 6, 11)
        plan = SlotPlan.cross(len(pairs), [0.6, 0.8, 1.0])

        def run(name):
            config = SimulationConfig(record_all_nets=True, backend=name)
            return GpuWaveSim(circuit, library, config=config,
                              compiled=compiled).run(
                pairs, plan=plan, kernel_table=kernel_table)

        self.assert_identical(run("numpy"), run(backend_name),
                              plan.num_slots, circuit.nets())

    @pytest.mark.parametrize("backend_name", JIT)
    def test_overflow_retry_path(self, library, backend_name):
        circuit = random_circuit("beqo", 12, 200, seed=6)
        compiled = compile_circuit(circuit, library)
        pairs = make_pairs(circuit, 8, 6)

        def run(name):
            config = SimulationConfig(record_all_nets=True,
                                      waveform_capacity=2, backend=name)
            sim = GpuWaveSim(circuit, library, config=config,
                             compiled=compiled)
            result = sim.run(pairs)
            assert sim.last_stats.retries >= 1, "test needs the retry path"
            return result

        self.assert_identical(run("numpy"), run(backend_name), len(pairs),
                              circuit.nets())

    @pytest.mark.parametrize("backend_name", JIT)
    def test_monte_carlo_factors(self, library, kernel_table, backend_name):
        circuit = random_circuit("beqm", 8, 100, seed=4)
        compiled = compile_circuit(circuit, library)
        pairs = make_pairs(circuit, 6, 4)

        def run(name):
            config = SimulationConfig(record_all_nets=True, backend=name)
            return GpuWaveSim(circuit, library, config=config,
                              compiled=compiled).run(
                pairs, kernel_table=kernel_table,
                variation=ProcessVariation(sigma=0.05, seed=99))

        self.assert_identical(run("numpy"), run(backend_name), len(pairs),
                              circuit.nets())

    @pytest.mark.parametrize("backend_name", JIT)
    def test_delay_evaluation_matches(self, kernel_table, backend_name):
        """Backend delays_for_gates is bit-identical to the table's own."""
        backend = resolve_backend(backend_name)
        rng = np.random.default_rng(13)
        num_types = len(kernel_table.type_names)
        type_ids = rng.integers(0, num_types, size=50)
        pins = kernel_table.coefficients.shape[1]
        loads = rng.uniform(1e-16, 5e-15, size=50)
        nominal = rng.uniform(1e-12, 5e-11, size=(50, pins, 2))
        voltages = np.asarray([0.55, 0.8, 1.05])
        ours = backend.delays_for_gates(kernel_table, type_ids, loads,
                                        nominal, voltages)
        theirs = kernel_table.delays_for_gates(type_ids, loads, nominal,
                                               voltages)
        assert ours.shape == theirs.shape
        assert np.array_equal(ours, theirs)
