"""Tests for shared simulation types."""

import numpy as np
import pytest

from repro.netlist.generate import c17
from repro.simulation.base import (
    PatternPair,
    SimulationConfig,
    stimuli_from_pair,
)


class TestPatternPair:
    def test_valid(self):
        pair = PatternPair(v1=np.asarray([0, 1], dtype=np.uint8),
                           v2=np.asarray([1, 1], dtype=np.uint8))
        assert pair.width == 2
        assert pair.launches_transition()

    def test_no_transition(self):
        pair = PatternPair(v1=np.asarray([0, 1]), v2=np.asarray([0, 1]))
        assert not pair.launches_transition()

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            PatternPair(v1=np.asarray([0, 1]), v2=np.asarray([0]))

    def test_non_binary(self):
        with pytest.raises(ValueError):
            PatternPair(v1=np.asarray([0, 2]), v2=np.asarray([0, 1]))

    def test_random(self, rng):
        pair = PatternPair.random(16, rng)
        assert pair.width == 16
        assert set(np.unique(pair.v1)) <= {0, 1}


class TestStimuli:
    def test_stimuli_from_pair(self):
        circuit = c17()
        v1 = np.asarray([0, 0, 1, 1, 0], dtype=np.uint8)
        v2 = np.asarray([1, 0, 1, 0, 0], dtype=np.uint8)
        stimuli = stimuli_from_pair(circuit, PatternPair(v1, v2))
        assert stimuli["G1"].initial == 0
        assert stimuli["G1"].num_transitions == 1
        assert stimuli["G2"].num_transitions == 0
        assert stimuli["G6"].initial == 1
        assert stimuli["G6"].value_at(0.0) == 0

    def test_width_mismatch(self):
        circuit = c17()
        pair = PatternPair(v1=np.zeros(3, dtype=np.uint8),
                           v2=np.zeros(3, dtype=np.uint8))
        with pytest.raises(ValueError, match="width"):
            stimuli_from_pair(circuit, pair)


class TestConfig:
    def test_defaults(self):
        config = SimulationConfig()
        assert config.pulse_filtering == "inertial"
        assert config.grow_on_overflow

    def test_bad_filtering(self):
        with pytest.raises(ValueError):
            SimulationConfig(pulse_filtering="psychic")

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            SimulationConfig(waveform_capacity=1)
