"""Activity-driven sparse evaluation: correctness and accounting.

The contract under test (`gpu.py` module docstring): with
``prune_inactive=True`` the engine dispatches only lanes whose inputs
carry at least one surviving toggle; quiet lanes receive their settled
value from a vectorized truth-table lookup.  Pruning must be **bit
identical** to dense evaluation on every backend — it changes
accounting and throughput, never waveforms — and the lane counters must
be deterministic: ``gate_evaluations + lanes_skipped`` equals the dense
lane count regardless of backend or chunking.
"""

import numpy as np
import pytest

from repro.netlist.generate import random_circuit
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.compiled import compile_circuit
from repro.simulation.gpu import GpuWaveSim, _ArenaPool
from repro.simulation.backend import available_backends
from repro.simulation.grid import SlotPlan
from repro.simulation.variation import ProcessVariation

CONCRETE = available_backends()


def make_pairs(circuit, count, seed=0):
    rng = np.random.default_rng(seed)
    return [PatternPair.random(len(circuit.inputs), rng) for _ in range(count)]


def quiet_pairs(circuit, count, seed=0):
    """Pairs with v2 == v1: zero launched toggles on every input."""
    rng = np.random.default_rng(seed)
    vectors = rng.integers(0, 2, size=(count, len(circuit.inputs)))
    return [PatternPair(v, v.copy()) for v in vectors]


def single_toggle_pairs(circuit, count, seed=0):
    """Pairs toggling exactly one input: the toggle fraction sits below
    the lane-tracking threshold, so these slots exercise the activity
    mask and the backends' lane-compaction entry path."""
    rng = np.random.default_rng(seed)
    width = len(circuit.inputs)
    pairs = []
    for i in range(count):
        v1 = rng.integers(0, 2, size=width).astype(np.uint8)
        v2 = v1.copy()
        v2[i % width] ^= 1
        pairs.append(PatternPair(v1, v2))
    return pairs


def toggle_all_pairs(circuit, count):
    """Pairs where every single input toggles."""
    width = len(circuit.inputs)
    pairs = []
    for i in range(count):
        v1 = np.full(width, i % 2, dtype=np.uint8)
        pairs.append(PatternPair(v1, 1 - v1))
    return pairs


def assert_identical(reference, candidate, num_slots, nets):
    for slot in range(num_slots):
        for net in nets:
            wa = reference.waveform(slot, net)
            wb = candidate.waveform(slot, net)
            assert wa.initial == wb.initial, (slot, net)
            # Bit-identical: list equality on raw float64, no tolerance.
            assert wa.times.tolist() == wb.times.tolist(), (slot, net)


def run_engine(circuit, compiled, library, pairs, *, backend, prune,
               plan=None, kernel_table=None, variation=None, capacity=None):
    kwargs = dict(record_all_nets=True, backend=backend,
                  prune_inactive=prune)
    if capacity is not None:
        kwargs["waveform_capacity"] = capacity
    sim = GpuWaveSim(circuit, library, config=SimulationConfig(**kwargs),
                     compiled=compiled)
    result = sim.run(pairs, plan=plan, kernel_table=kernel_table,
                     variation=variation)
    return result, sim.last_stats


class TestBitIdentity:
    """Sparse output must equal dense output bit for bit, per backend."""

    @pytest.mark.parametrize("backend_name", CONCRETE)
    def test_static_mixed_activity(self, library, backend_name):
        circuit = random_circuit("sparse_s", 8, 150, seed=21)
        compiled = compile_circuit(circuit, library)
        # Mix of all three slot classes: dense (random pairs), lane
        # tracked (single-toggle pairs) and quiet.
        pairs = (make_pairs(circuit, 4, 21) +
                 single_toggle_pairs(circuit, 4, 23) +
                 quiet_pairs(circuit, 4, 22))
        dense, dstats = run_engine(circuit, compiled, library, pairs,
                                   backend=backend_name, prune=False)
        sparse, sstats = run_engine(circuit, compiled, library, pairs,
                                    backend=backend_name, prune=True)
        assert_identical(dense, sparse, len(pairs), circuit.nets())
        assert sstats.lanes_skipped > 0
        assert sstats.gate_evaluations + sstats.lanes_skipped == \
            dstats.gate_evaluations

    @pytest.mark.parametrize("backend_name", CONCRETE)
    def test_parametric_multi_voltage(self, library, kernel_table,
                                      backend_name):
        circuit = random_circuit("sparse_v", 8, 120, seed=5)
        compiled = compile_circuit(circuit, library)
        pairs = (make_pairs(circuit, 3, 5) +
                 single_toggle_pairs(circuit, 3, 7) +
                 quiet_pairs(circuit, 3, 6))
        plan = SlotPlan.cross(len(pairs), [0.6, 0.8, 1.0])
        dense, _ = run_engine(circuit, compiled, library, pairs,
                              backend=backend_name, prune=False,
                              plan=plan, kernel_table=kernel_table)
        sparse, sstats = run_engine(circuit, compiled, library, pairs,
                                    backend=backend_name, prune=True,
                                    plan=plan, kernel_table=kernel_table)
        assert_identical(dense, sparse, plan.num_slots, circuit.nets())
        assert sstats.lanes_skipped > 0

    @pytest.mark.parametrize("backend_name", CONCRETE)
    def test_monte_carlo_variation(self, library, kernel_table,
                                   backend_name):
        circuit = random_circuit("sparse_mc", 8, 120, seed=9)
        compiled = compile_circuit(circuit, library)
        pairs = (make_pairs(circuit, 2, 9) +
                 single_toggle_pairs(circuit, 2, 11) +
                 quiet_pairs(circuit, 2, 10))
        variation = ProcessVariation(sigma=0.1, seed=42)
        dense, _ = run_engine(circuit, compiled, library, pairs,
                              backend=backend_name, prune=False,
                              kernel_table=kernel_table,
                              variation=variation)
        sparse, _ = run_engine(circuit, compiled, library, pairs,
                               backend=backend_name, prune=True,
                               kernel_table=kernel_table,
                               variation=variation)
        assert_identical(dense, sparse, len(pairs), circuit.nets())

    @pytest.mark.parametrize("backend_name", CONCRETE)
    def test_overflow_retry_path(self, library, backend_name):
        """Capacity-doubling retries discard the arena; pruning must
        not leak activity state from the abandoned attempt."""
        circuit = random_circuit("sparse_o", 12, 200, seed=6)
        compiled = compile_circuit(circuit, library)
        pairs = (make_pairs(circuit, 4, 6) +
                 single_toggle_pairs(circuit, 2, 8) +
                 quiet_pairs(circuit, 2, 7))
        dense, _ = run_engine(circuit, compiled, library, pairs,
                              backend=backend_name, prune=False,
                              capacity=2)
        sparse, sstats = run_engine(circuit, compiled, library, pairs,
                                    backend=backend_name, prune=True,
                                    capacity=2)
        assert sstats.retries >= 1, "workload must exercise the retry"
        assert_identical(dense, sparse, len(pairs), circuit.nets())


class TestLaneCompaction:
    """Single-toggle stimuli: every slot is lane-tracked (no quiet
    slots), so all skipped lanes come from the per-level activity mask
    and the backends' ``merge_group_sparse`` entry path runs."""

    @pytest.mark.parametrize("backend_name", CONCRETE)
    def test_partial_activity_within_slots(self, library, backend_name):
        circuit = random_circuit("sparse_l", 8, 150, seed=17)
        compiled = compile_circuit(circuit, library)
        pairs = single_toggle_pairs(circuit, 8, 17)
        dense, dstats = run_engine(circuit, compiled, library, pairs,
                                   backend=backend_name, prune=False)
        sparse, sstats = run_engine(circuit, compiled, library, pairs,
                                    backend=backend_name, prune=True)
        assert 0 < sstats.gate_evaluations < dstats.gate_evaluations
        assert sstats.lanes_skipped > 0
        assert sstats.gate_evaluations + sstats.lanes_skipped == \
            dstats.gate_evaluations
        assert_identical(dense, sparse, len(pairs), circuit.nets())

    def test_group_by_arity_mode(self, library):
        """Lane tracking composes with the per-arity grouping ablation
        mode and keeps the same lane accounting."""
        circuit = random_circuit("sparse_g", 8, 120, seed=19)
        compiled = compile_circuit(circuit, library)
        pairs = single_toggle_pairs(circuit, 6, 19)
        config = SimulationConfig(record_all_nets=True, backend="numpy")
        padded = GpuWaveSim(circuit, library, config=config,
                            compiled=compiled)
        grouped = GpuWaveSim(circuit, library, config=config,
                             compiled=compiled, group_by_arity=True)
        a = padded.run(pairs)
        b = grouped.run(pairs)
        assert_identical(a, b, len(pairs), circuit.nets())
        assert padded.last_stats.lanes_skipped == \
            grouped.last_stats.lanes_skipped > 0


class TestActivityExtremes:
    @pytest.mark.parametrize("backend_name", CONCRETE)
    def test_zero_toggle_stimulus(self, library, backend_name):
        """A stimulus with no launched transition settles the whole
        circuit through the truth-table path: zero lanes dispatched."""
        circuit = random_circuit("sparse_z", 8, 100, seed=3)
        compiled = compile_circuit(circuit, library)
        pairs = quiet_pairs(circuit, 5, 3)
        dense, dstats = run_engine(circuit, compiled, library, pairs,
                                   backend=backend_name, prune=False)
        sparse, sstats = run_engine(circuit, compiled, library, pairs,
                                    backend=backend_name, prune=True)
        assert sstats.gate_evaluations == 0
        assert sstats.lanes_skipped == dstats.gate_evaluations
        assert sstats.active_fraction == 0.0
        assert_identical(dense, sparse, len(pairs), circuit.nets())

    @pytest.mark.parametrize("backend_name", CONCRETE)
    def test_all_toggle_stimulus(self, library, backend_name):
        """Every input toggles: the slots classify as dense and run the
        plain path — pruning adds no overhead and changes nothing."""
        circuit = random_circuit("sparse_a", 8, 100, seed=4)
        compiled = compile_circuit(circuit, library)
        pairs = toggle_all_pairs(circuit, 4)
        dense, dstats = run_engine(circuit, compiled, library, pairs,
                                   backend=backend_name, prune=False)
        sparse, sstats = run_engine(circuit, compiled, library, pairs,
                                    backend=backend_name, prune=True)
        assert sstats.gate_evaluations + sstats.lanes_skipped == \
            dstats.gate_evaluations
        assert sstats.gate_evaluations > 0
        assert_identical(dense, sparse, len(pairs), circuit.nets())


class TestStatsDeterminism:
    def test_counters_backend_invariant(self, library):
        """The activity mask is derived from arena contents that are
        bit-identical across backends, so the lane split must agree."""
        circuit = random_circuit("sparse_d", 8, 130, seed=12)
        compiled = compile_circuit(circuit, library)
        pairs = (make_pairs(circuit, 4, 12) +
                 single_toggle_pairs(circuit, 4, 16) +
                 quiet_pairs(circuit, 4, 13))
        splits = set()
        for name in CONCRETE:
            _, stats = run_engine(circuit, compiled, library, pairs,
                                  backend=name, prune=True)
            splits.add((stats.gate_evaluations, stats.lanes_skipped))
        assert len(splits) == 1

    def test_kernel_iterations_prune_invariant(self, library):
        """Skipped lanes contribute zero iterations in dense mode too
        (they converge instantly), so total iterations of *dispatched*
        work cannot be told apart — but gate_evaluations can."""
        circuit = random_circuit("sparse_i", 8, 130, seed=14)
        compiled = compile_circuit(circuit, library)
        pairs = (make_pairs(circuit, 3, 14) +
                 single_toggle_pairs(circuit, 3, 18) +
                 quiet_pairs(circuit, 3, 15))
        _, dense = run_engine(circuit, compiled, library, pairs,
                              backend="numpy", prune=False)
        _, sparse = run_engine(circuit, compiled, library, pairs,
                               backend="numpy", prune=True)
        assert sparse.gate_evaluations < dense.gate_evaluations
        assert sparse.gate_evaluations + sparse.lanes_skipped == \
            dense.gate_evaluations
        assert dense.lanes_skipped == 0
        assert dense.active_fraction == 1.0
        assert 0.0 < sparse.active_fraction < 1.0


class TestArenaPool:
    def test_buffers_reused_across_acquires(self):
        pool = _ArenaPool()
        t1, i1 = pool.acquire(10, 4, 8)
        assert t1.shape == (10, 4, 8) and i1.shape == (10, 4)
        assert np.all(np.isinf(t1)) and np.all(i1 == 0)
        t1[3, 2, 1] = 7.5
        i1[3, 2] = 1
        t2, i2 = pool.acquire(10, 4, 8)
        # Same backing memory, reset in place.
        assert t2.base is t1.base or t2 is t1
        assert np.all(np.isinf(t2)) and np.all(i2 == 0)

    def test_growth_and_shrink(self):
        pool = _ArenaPool()
        small_t, _ = pool.acquire(4, 2, 2)
        big_t, big_i = pool.acquire(16, 8, 4)
        assert big_t.shape == (16, 8, 4)
        assert np.all(np.isinf(big_t)) and np.all(big_i == 0)
        again_t, again_i = pool.acquire(4, 2, 2)
        assert again_t.shape == (4, 2, 2)
        assert np.all(np.isinf(again_t)) and np.all(again_i == 0)

    def test_engine_reuses_pool_between_runs(self, library):
        circuit = random_circuit("sparse_p", 6, 60, seed=2)
        sim = GpuWaveSim(circuit, library,
                         config=SimulationConfig(backend="numpy"))
        pairs = make_pairs(circuit, 3, 2)
        first = sim.run(pairs)
        buffer_id = id(sim._arena_pool._times)
        second = sim.run(pairs)
        assert id(sim._arena_pool._times) == buffer_id
        assert_identical(first, second, len(pairs), circuit.outputs)
