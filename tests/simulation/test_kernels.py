"""Tests for the vectorized waveform-merge kernel against a scalar oracle."""

import numpy as np
import pytest

from repro.simulation.kernels import waveform_merge_kernel

INF = np.inf


def scalar_merge(input_times, input_initial, delays, table, inertial):
    """Reference implementation of one lane (pure Python)."""
    k = len(input_times)
    pointers = [0] * k
    vals = list(input_initial)

    def evaluate():
        idx = sum(vals[i] << i for i in range(k))
        return (table >> idx) & 1

    last_target = evaluate()
    initial = last_target
    out = []
    while True:
        current = [
            input_times[i][pointers[i]] if pointers[i] < len(input_times[i])
            else INF
            for i in range(k)
        ]
        now = min(current)
        if now == INF:
            break
        causing = None
        for i in range(k):
            if current[i] == now:
                vals[i] ^= 1
                pointers[i] += 1
                if causing is None:
                    causing = i
        new_val = evaluate()
        if new_val == last_target:
            continue
        polarity = 1 - new_val
        delay = delays[causing][polarity]
        t_out = now + delay
        width = delay if inertial else 0.0
        if out and (t_out <= out[-1] or t_out - out[-1] < width):
            out.pop()
        else:
            out.append(t_out)
        last_target ^= 1
    return initial, out


def random_lane(rng, k):
    """Random input waveforms, delays and truth table for one lane."""
    times = []
    for _ in range(k):
        count = int(rng.integers(0, 5))
        toggles = np.sort(rng.uniform(0, 10, size=count))
        times.append(list(np.unique(toggles)))
    initial = [int(v) for v in rng.integers(0, 2, size=k)]
    delays = [[float(d) for d in rng.uniform(0.5, 3.0, size=2)] for _ in range(k)]
    table = int(rng.integers(0, 1 << (1 << k)))
    return times, initial, delays, table


def pack_lanes(lanes, k):
    capacity = max(max((len(t) for t in times), default=0)
                   for times, _, _, _ in lanes)
    capacity = max(capacity, 1)
    count = len(lanes)
    input_times = np.full((k, count, capacity), INF)
    input_initial = np.zeros((k, count), dtype=np.uint8)
    delays = np.zeros((k, 2, count))
    tables = np.zeros(count, dtype=np.int64)
    for lane, (times, initial, lane_delays, table) in enumerate(lanes):
        for pin in range(k):
            input_times[pin, lane, : len(times[pin])] = times[pin]
            input_initial[pin, lane] = initial[pin]
            delays[pin, 0, lane] = lane_delays[pin][0]
            delays[pin, 1, lane] = lane_delays[pin][1]
        tables[lane] = table
    return input_times, input_initial, delays, tables


class TestAgainstScalarOracle:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    @pytest.mark.parametrize("inertial", [True, False])
    def test_random_lanes(self, k, inertial):
        rng = np.random.default_rng(100 * k + inertial)
        lanes = [random_lane(rng, k) for _ in range(300)]
        input_times, input_initial, delays, tables = pack_lanes(lanes, k)
        result = waveform_merge_kernel(
            input_times, input_initial, delays, tables,
            out_capacity=32, inertial=inertial,
        )
        assert not result.overflow.any()
        for lane, (times, initial, lane_delays, table) in enumerate(lanes):
            exp_initial, exp_times = scalar_merge(times, initial, lane_delays,
                                                  table, inertial)
            assert result.initial[lane] == exp_initial, lane
            count = int(result.counts[lane])
            np.testing.assert_allclose(result.times[lane, :count], exp_times,
                                       err_msg=f"lane {lane}")
            assert np.isinf(result.times[lane, count:]).all()

    def test_compaction_triggered(self):
        """Many already-finished lanes force the compaction path."""
        rng = np.random.default_rng(0)
        # one busy lane among many constant lanes
        lanes = [([[], []], [0, 0], [[1.0, 1.0]] * 2, 0b1000)
                 for _ in range(400)]
        busy_times = [list(np.arange(1.0, 9.0)), [0.5]]
        lanes.append((busy_times, [1, 1], [[1.0, 2.0], [1.0, 2.0]], 0b1000))
        input_times, input_initial, delays, tables = pack_lanes(lanes, 2)
        result = waveform_merge_kernel(input_times, input_initial, delays,
                                       tables, out_capacity=32)
        exp_initial, exp_times = scalar_merge(
            busy_times, [1, 1], [[1.0, 2.0], [1.0, 2.0]], 0b1000, True)
        count = int(result.counts[400])
        np.testing.assert_allclose(result.times[400, :count], exp_times)


class TestOverflow:
    def test_overflow_flagged(self):
        # an inverter fed 6 toggles with capacity 2 must overflow
        input_times = np.asarray([[[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]]])
        input_initial = np.zeros((1, 1), dtype=np.uint8)
        delays = np.full((1, 2, 1), 0.1)
        tables = np.asarray([0b01])  # BUF
        result = waveform_merge_kernel(input_times, input_initial, delays,
                                       tables, out_capacity=2)
        assert result.overflow[0]

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            waveform_merge_kernel(
                np.zeros((2, 3, 4)), np.zeros((1, 3), dtype=np.uint8),
                np.zeros((2, 2, 3)), np.zeros(3, dtype=np.int64), 4)
        with pytest.raises(ValueError):
            waveform_merge_kernel(
                np.zeros((2, 3, 4)), np.zeros((2, 3), dtype=np.uint8),
                np.zeros((2, 2, 9)), np.zeros(3, dtype=np.int64), 4)
