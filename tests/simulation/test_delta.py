"""Bit-identity and accounting contracts of incremental re-simulation.

The delta path (``docs/architecture.md`` §12) must be invisible in the
output: splicing lanes out of a cached :class:`BaseArena` and cone-only
re-evaluation must produce waveforms **bit-identical** to a from-scratch
run on every backend, across multi-voltage slot planes, Monte-Carlo
variation, sparse (pruned) dispatch, fused and unfused kernels, batch
chunking and overflow-retry capacity growth.

The accounting contract is exact, not approximate: every (gate, slot)
lane is either dispatched or spliced, never both and never dropped —
``lanes_spliced + gate_evaluations + lanes_skipped == gates * slots``.
"""

import numpy as np
import pytest

from repro.netlist.generate import random_circuit
from repro.simulation.backend import available_backends
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.compiled import compile_circuit
from repro.simulation.delta import BaseArena, DeltaPlan, select_delta
from repro.simulation.gpu import GpuWaveSim
from repro.simulation.grid import SlotPlan
from repro.simulation.variation import ProcessVariation

CONCRETE = available_backends()


@pytest.fixture(scope="module")
def circuit():
    return random_circuit("delta", 12, 200, seed=3)


@pytest.fixture(scope="module")
def compiled(circuit, library):
    return compile_circuit(circuit, library)


def make_pairs(circuit, count, seed):
    rng = np.random.default_rng(seed)
    return [PatternPair.random(len(circuit.inputs), rng)
            for _ in range(count)]


def stack(pairs):
    return (np.stack([p.v1 for p in pairs]),
            np.stack([p.v2 for p in pairs]))


def flip_bits(pairs, flips, seed):
    """Return a copy of ``pairs`` with ``flips`` random v2 bits flipped."""
    rng = np.random.default_rng(seed)
    v1, v2 = stack(pairs)
    v2 = v2.copy()
    width = v1.shape[1]
    for _ in range(flips):
        v2[rng.integers(len(pairs)), rng.integers(width)] ^= 1
    return [PatternPair(v1[i], v2[i]) for i in range(len(pairs))]


def make_engine(circuit, compiled, library, *, backend, fused=True,
                prune=False, capacity=None, memory_budget=None):
    kwargs = dict(record_all_nets=True, backend=backend, fused=fused,
                  prune_inactive=prune)
    if capacity is not None:
        kwargs["waveform_capacity"] = capacity
    extra = {} if memory_budget is None else {"memory_budget": memory_budget}
    return GpuWaveSim(circuit, library, config=SimulationConfig(**kwargs),
                      compiled=compiled, **extra)


def assert_identical(circuit, reference, result):
    for slot in range(reference.num_slots):
        for net in circuit.nets():
            ref = reference.waveform(slot, net)
            got = result.waveform(slot, net)
            assert got.initial == ref.initial, (slot, net)
            assert got.times.tolist() == ref.times.tolist(), (slot, net)


def capture_and_select(engine, base_pairs, var_pairs, plan, kernel_table,
                       variation, threshold=0.99):
    """Run the base with capture, then select a delta plan for the
    variant against the captured arena."""
    base_result = engine.run(base_pairs, plan=plan,
                             kernel_table=kernel_table, variation=variation,
                             capture_base=True)
    arena = base_result.base_arena
    assert arena is not None
    v1, v2 = stack(var_pairs)
    selected = select_delta([arena], v1, v2, plan.pattern_indices,
                            plan.voltages, None, variation, threshold)
    return base_result, arena, selected


class TestFullSplice:
    """Zero-diff resubmission: every lane spliced, nothing dispatched."""

    @pytest.mark.parametrize("backend_name", CONCRETE)
    @pytest.mark.parametrize("voltages", [[0.8], [0.6, 0.8, 1.0]])
    def test_zero_diff_splices_everything(self, circuit, compiled, library,
                                          kernel_table, backend_name,
                                          voltages):
        pairs = make_pairs(circuit, 6, seed=21)
        plan = SlotPlan.cross(len(pairs), voltages)
        engine = make_engine(circuit, compiled, library,
                             backend=backend_name)
        base_result, _, selected = capture_and_select(
            engine, pairs, pairs, plan, kernel_table, None)
        assert selected is not None
        delta_plan, frac = selected
        assert frac == 0.0
        assert (delta_plan.base_slot >= 0).all()
        assert not delta_plan.changed_inputs.any()

        redo = make_engine(circuit, compiled, library, backend=backend_name)
        result = redo.run(pairs, plan=plan, kernel_table=kernel_table,
                          delta=delta_plan)
        assert_identical(circuit, base_result, result)
        stats = redo.last_stats
        assert stats.gate_evaluations == 0
        assert stats.lanes_spliced == compiled.num_gates * plan.num_slots
        assert stats.bytes_spliced > 0
        assert ",delta" in result.engine

    def test_monte_carlo_zero_diff(self, circuit, compiled, library,
                                   kernel_table):
        pairs = make_pairs(circuit, 4, seed=22)
        plan = SlotPlan.cross(len(pairs), [0.6, 1.0])
        variation = ProcessVariation(sigma=0.1, seed=42)
        engine = make_engine(circuit, compiled, library, backend="numpy")
        base_result, _, selected = capture_and_select(
            engine, pairs, pairs, plan, kernel_table, variation)
        assert selected is not None
        redo = make_engine(circuit, compiled, library, backend="numpy")
        result = redo.run(pairs, plan=plan, kernel_table=kernel_table,
                          variation=variation, delta=selected[0])
        assert_identical(circuit, base_result, result)
        assert redo.last_stats.gate_evaluations == 0


class TestConeBitIdentity:
    """Changed inputs re-evaluate their cone; the rest is spliced —
    and the merged result is bit-identical to a from-scratch run."""

    @pytest.mark.parametrize("backend_name", CONCRETE)
    @pytest.mark.parametrize("voltages,variation", [
        ([0.8], None),
        ([0.6, 0.8, 1.0], None),
        ([0.8], ProcessVariation(sigma=0.1, seed=42)),
        ([0.6, 1.0], ProcessVariation(sigma=0.15, seed=7)),
    ])
    def test_single_flip_cone(self, circuit, compiled, library, kernel_table,
                              backend_name, voltages, variation):
        base_pairs = make_pairs(circuit, 6, seed=23)
        var_pairs = flip_bits(base_pairs, 1, seed=24)
        plan = SlotPlan.cross(len(base_pairs), voltages)
        engine = make_engine(circuit, compiled, library,
                             backend=backend_name)
        _, _, selected = capture_and_select(
            engine, base_pairs, var_pairs, plan, kernel_table, variation)
        assert selected is not None
        delta_plan, frac = selected
        assert 0.0 < frac < 0.1

        delta_engine = make_engine(circuit, compiled, library,
                                   backend=backend_name)
        delta_result = delta_engine.run(
            var_pairs, plan=plan, kernel_table=kernel_table,
            variation=variation, delta=delta_plan)
        full_engine = make_engine(circuit, compiled, library,
                                  backend=backend_name)
        full_result = full_engine.run(
            var_pairs, plan=plan, kernel_table=kernel_table,
            variation=variation)
        assert_identical(circuit, full_result, delta_result)

        stats = delta_engine.last_stats
        total = compiled.num_gates * plan.num_slots
        assert stats.lanes_spliced + stats.gate_evaluations == total
        assert stats.lanes_spliced > 0
        assert stats.gate_evaluations > 0

    @pytest.mark.parametrize("backend_name", CONCRETE)
    @pytest.mark.parametrize("seed", [101, 202, 303, 404])
    def test_property_random_variants(self, circuit, compiled, library,
                                      kernel_table, backend_name, seed):
        """Property check: random base/variant pairs with a random
        number of flipped bits stay bit-identical and fully accounted."""
        rng = np.random.default_rng(seed)
        count = int(rng.integers(3, 8))
        base_pairs = make_pairs(circuit, count, seed=seed)
        flips = int(rng.integers(1, 5))
        var_pairs = flip_bits(base_pairs, flips, seed=seed + 1)
        voltages = [0.8] if rng.integers(2) else [0.6, 0.8]
        plan = SlotPlan.cross(count, voltages)
        engine = make_engine(circuit, compiled, library,
                             backend=backend_name)
        _, _, selected = capture_and_select(
            engine, base_pairs, var_pairs, plan, kernel_table, None)
        assert selected is not None
        delta_engine = make_engine(circuit, compiled, library,
                                   backend=backend_name)
        delta_result = delta_engine.run(var_pairs, plan=plan,
                                        kernel_table=kernel_table,
                                        delta=selected[0])
        full_result = make_engine(circuit, compiled, library,
                                  backend=backend_name).run(
            var_pairs, plan=plan, kernel_table=kernel_table)
        assert_identical(circuit, full_result, delta_result)
        stats = delta_engine.last_stats
        total = compiled.num_gates * plan.num_slots
        assert stats.lanes_spliced + stats.gate_evaluations == total

    @pytest.mark.parametrize("backend_name", CONCRETE)
    def test_static_delays(self, circuit, compiled, library, backend_name):
        """The delta path also serves static (nominal SDF) delay mode."""
        base_pairs = make_pairs(circuit, 5, seed=41)
        var_pairs = flip_bits(base_pairs, 1, seed=42)
        plan = SlotPlan.uniform(len(base_pairs), 0.8)
        engine = make_engine(circuit, compiled, library,
                             backend=backend_name)
        _, _, selected = capture_and_select(
            engine, base_pairs, var_pairs, plan, None, None)
        assert selected is not None
        delta_engine = make_engine(circuit, compiled, library,
                                   backend=backend_name)
        delta_result = delta_engine.run(var_pairs, plan=plan,
                                        delta=selected[0])
        full_result = make_engine(circuit, compiled, library,
                                  backend=backend_name).run(var_pairs,
                                                            plan=plan)
        assert_identical(circuit, full_result, delta_result)
        stats = delta_engine.last_stats
        total = compiled.num_gates * plan.num_slots
        assert stats.lanes_spliced + stats.gate_evaluations == total
        assert stats.lanes_spliced > 0

    @pytest.mark.parametrize("fused,prune", [(False, False), (True, True),
                                             (False, True)])
    def test_dispatch_mode_variants(self, circuit, compiled, library,
                                    kernel_table, fused, prune):
        """Unfused and sparse dispatch honour the splice contract: with
        pruning, skipped + spliced + evaluated still covers every lane."""
        base_pairs = make_pairs(circuit, 5, seed=25)
        var_pairs = flip_bits(base_pairs, 2, seed=26)
        plan = SlotPlan.cross(len(base_pairs), [0.6, 0.8])
        engine = make_engine(circuit, compiled, library, backend="numpy",
                             fused=fused, prune=prune)
        _, _, selected = capture_and_select(
            engine, base_pairs, var_pairs, plan, kernel_table, None)
        assert selected is not None
        delta_engine = make_engine(circuit, compiled, library,
                                   backend="numpy", fused=fused, prune=prune)
        delta_result = delta_engine.run(var_pairs, plan=plan,
                                        kernel_table=kernel_table,
                                        delta=selected[0])
        full_result = make_engine(circuit, compiled, library,
                                  backend="numpy", fused=fused,
                                  prune=prune).run(
            var_pairs, plan=plan, kernel_table=kernel_table)
        assert_identical(circuit, full_result, delta_result)
        stats = delta_engine.last_stats
        total = compiled.num_gates * plan.num_slots
        covered = (stats.lanes_spliced + stats.gate_evaluations
                   + stats.lanes_skipped)
        assert covered == total

    def test_chunked_batches(self, circuit, compiled, library, kernel_table):
        """A tiny memory budget splits the plane into several batches;
        the delta plan is sliced per batch and must still be exact."""
        base_pairs = make_pairs(circuit, 8, seed=27)
        var_pairs = flip_bits(base_pairs, 1, seed=28)
        plan = SlotPlan.cross(len(base_pairs), [0.6, 0.8])
        budget = (compiled.num_nets + 1) * 16 * 8 * 4  # ~4 slots per batch
        engine = make_engine(circuit, compiled, library, backend="numpy",
                             memory_budget=budget)
        _, _, selected = capture_and_select(
            engine, base_pairs, var_pairs, plan, kernel_table, None)
        assert selected is not None
        delta_engine = make_engine(circuit, compiled, library,
                                   backend="numpy", memory_budget=budget)
        delta_result = delta_engine.run(var_pairs, plan=plan,
                                        kernel_table=kernel_table,
                                        delta=selected[0])
        assert delta_engine.last_stats.batches > 1
        full_result = make_engine(circuit, compiled, library,
                                  backend="numpy").run(
            var_pairs, plan=plan, kernel_table=kernel_table)
        assert_identical(circuit, full_result, delta_result)

    def test_overflow_retry_grows_capacity(self, circuit, compiled, library,
                                           kernel_table):
        """A cone pass whose base toggles exceed the starting capacity
        raises ``WaveformOverflowError`` internally and retries doubled,
        exactly like the dense path."""
        base_pairs = make_pairs(circuit, 4, seed=29)
        var_pairs = flip_bits(base_pairs, 1, seed=30)
        plan = SlotPlan.cross(len(base_pairs), [0.8])
        engine = make_engine(circuit, compiled, library, backend="numpy")
        _, arena, selected = capture_and_select(
            engine, base_pairs, var_pairs, plan, kernel_table, None)
        assert selected is not None
        assert int(arena.counts.max()) > 2  # the retry below is real
        delta_engine = make_engine(circuit, compiled, library,
                                   backend="numpy", capacity=2)
        delta_result = delta_engine.run(var_pairs, plan=plan,
                                        kernel_table=kernel_table,
                                        delta=selected[0])
        assert delta_engine.last_stats.retries > 0
        full_result = make_engine(circuit, compiled, library,
                                  backend="numpy").run(
            var_pairs, plan=plan, kernel_table=kernel_table)
        assert_identical(circuit, full_result, delta_result)


class TestSelection:
    """The base-selection policy: eligibility, threshold, arena algebra."""

    def test_threshold_fallback(self, circuit, compiled, library,
                                kernel_table):
        """A near-disjoint job must refuse the delta path."""
        base_pairs = make_pairs(circuit, 4, seed=31)
        other_pairs = make_pairs(circuit, 4, seed=99)
        plan = SlotPlan.cross(len(base_pairs), [0.8])
        engine = make_engine(circuit, compiled, library, backend="numpy")
        result = engine.run(base_pairs, plan=plan, kernel_table=kernel_table,
                            capture_base=True)
        v1, v2 = stack(other_pairs)
        selected = select_delta([result.base_arena], v1, v2,
                                plan.pattern_indices, plan.voltages, None,
                                None, 0.35)
        assert selected is None
        # With the threshold effectively off, the same diff is accepted.
        selected = select_delta([result.base_arena], v1, v2,
                                plan.pattern_indices, plan.voltages, None,
                                None, 1.0)
        assert selected is not None
        assert selected[1] >= 0.35

    def test_voltage_eligibility(self, circuit, compiled, library,
                                 kernel_table):
        """A base at different operating points cannot serve any slot."""
        pairs = make_pairs(circuit, 4, seed=32)
        plan = SlotPlan.cross(len(pairs), [0.8])
        engine = make_engine(circuit, compiled, library, backend="numpy")
        result = engine.run(pairs, plan=plan, kernel_table=kernel_table,
                            capture_base=True)
        v1, v2 = stack(pairs)
        shifted = SlotPlan.cross(len(pairs), [0.6])
        selected = select_delta([result.base_arena], v1, v2,
                                shifted.pattern_indices, shifted.voltages,
                                None, None, 0.35)
        assert selected is None

    def test_monte_carlo_global_slot_eligibility(self, circuit, compiled,
                                                 library, kernel_table):
        """Under variation a base slot only matches the same global slot
        (per-die factors derive from it); a shifted plane is refused."""
        pairs = make_pairs(circuit, 4, seed=33)
        plan = SlotPlan.cross(len(pairs), [0.8])
        variation = ProcessVariation(sigma=0.1, seed=42)
        engine = make_engine(circuit, compiled, library, backend="numpy")
        offset = np.arange(plan.num_slots, dtype=np.int64) + 100
        result = engine.run(pairs, plan=plan, kernel_table=kernel_table,
                            variation=variation, global_slots=offset,
                            capture_base=True)
        v1, v2 = stack(pairs)
        # Same stimuli, but job global slots 0..3 vs base 100..103.
        selected = select_delta([result.base_arena], v1, v2,
                                plan.pattern_indices, plan.voltages,
                                None, variation, 0.99)
        assert selected is None
        # Matching global slots are accepted as a full splice.
        selected = select_delta([result.base_arena], v1, v2,
                                plan.pattern_indices, plan.voltages,
                                offset, variation, 0.99)
        assert selected is not None
        assert selected[1] == 0.0
        # Without variation the global-slot pin does not apply.
        selected = select_delta([result.base_arena], v1, v2,
                                plan.pattern_indices, plan.voltages,
                                None, None, 0.99)
        assert selected is not None

    def test_partial_slot_coverage_mixes_paths(self, circuit, compiled,
                                               library, kernel_table):
        """Slots with no eligible base slot (here: a voltage the base
        never ran) simulate from scratch inside the same batch as
        spliced slots, and the merge is bit-identical."""
        base_pairs = make_pairs(circuit, 4, seed=34)
        plan = SlotPlan.cross(len(base_pairs), [0.8])
        engine = make_engine(circuit, compiled, library, backend="numpy")
        base_result = engine.run(base_pairs, plan=plan,
                                 kernel_table=kernel_table,
                                 capture_base=True)
        # Same stimuli, but half the job plane runs at 0.6 V, which the
        # base never visited: those slots are unmapped.
        v1, v2 = stack(base_pairs)
        job_plan = SlotPlan.cross(len(base_pairs), [0.8, 0.6])
        selected = select_delta([base_result.base_arena], v1, v2,
                                job_plan.pattern_indices, job_plan.voltages,
                                None, None, 0.75)
        assert selected is not None
        delta_plan, _ = selected
        mapped = delta_plan.base_slot >= 0
        assert mapped.sum() == 4
        assert (job_plan.voltages[mapped] == 0.8).all()
        delta_engine = make_engine(circuit, compiled, library,
                                   backend="numpy")
        delta_result = delta_engine.run(base_pairs, plan=job_plan,
                                        kernel_table=kernel_table,
                                        delta=delta_plan)
        full_result = make_engine(circuit, compiled, library,
                                  backend="numpy").run(
            base_pairs, plan=job_plan, kernel_table=kernel_table)
        assert_identical(circuit, full_result, delta_result)
        stats = delta_engine.last_stats
        assert stats.lanes_spliced == compiled.num_gates * 4

    def test_newest_base_wins_ties(self, circuit, compiled, library,
                                   kernel_table):
        pairs = make_pairs(circuit, 3, seed=35)
        plan = SlotPlan.cross(len(pairs), [0.8])
        engine = make_engine(circuit, compiled, library, backend="numpy")
        result = engine.run(pairs, plan=plan, kernel_table=kernel_table,
                            capture_base=True)
        first = result.base_arena
        second = engine.run(pairs, plan=plan, kernel_table=kernel_table,
                            capture_base=True).base_arena
        v1, v2 = stack(pairs)
        selected = select_delta([second, first], v1, v2,
                                plan.pattern_indices, plan.voltages,
                                None, None, 0.99)
        assert selected is not None
        assert selected[0].base is second

    def test_arena_take_and_concat_roundtrip(self, circuit, compiled,
                                             library, kernel_table):
        """take/concat never reshuffle payload bytes: splitting an arena
        per slot and concatenating it back reproduces every waveform."""
        pairs = make_pairs(circuit, 4, seed=36)
        plan = SlotPlan.cross(len(pairs), [0.8])
        engine = make_engine(circuit, compiled, library, backend="numpy")
        arena = engine.run(pairs, plan=plan, kernel_table=kernel_table,
                           capture_base=True).base_arena
        parts = [arena.take(np.array([slot]))
                 for slot in range(arena.num_slots)]
        rebuilt = BaseArena.concat(parts)
        assert rebuilt.num_slots == arena.num_slots
        for net in range(arena.num_nets):
            for slot in range(arena.num_slots):
                count = int(arena.counts[net, slot])
                assert int(rebuilt.counts[net, slot]) == count
                assert rebuilt.initial[net, slot] == arena.initial[net, slot]
                a = arena.times[int(arena.starts[net, slot]):][:count]
                b = rebuilt.times[int(rebuilt.starts[net, slot]):][:count]
                assert a.tolist() == b.tolist()

    def test_delta_plan_concat_offsets_base_slots(self, circuit, compiled,
                                                  library, kernel_table):
        pairs = make_pairs(circuit, 2, seed=37)
        plan = SlotPlan.cross(len(pairs), [0.8])
        engine = make_engine(circuit, compiled, library, backend="numpy")
        arena = engine.run(pairs, plan=plan, kernel_table=kernel_table,
                           capture_base=True).base_arena
        v1, v2 = stack(pairs)
        width = v1.shape[1]
        single = select_delta([arena], v1, v2, plan.pattern_indices,
                              plan.voltages, None, None, 0.99)[0]
        merged = DeltaPlan.concat([single, None, single], [2, 3, 2], width)
        assert merged is not None
        assert merged.base_slot.tolist()[:2] == [0, 1]
        assert merged.base_slot.tolist()[2:5] == [-1, -1, -1]
        # The third job's base slots are offset past the second copy of
        # the arena in the concatenated base.
        assert merged.base_slot.tolist()[5:] == [arena.num_slots,
                                                 arena.num_slots + 1]
        assert merged.base.num_slots == 2 * arena.num_slots
