"""Tests for Monte-Carlo process variation on the slot plane."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.netlist.generate import random_circuit
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.compiled import compile_circuit
from repro.simulation.event_driven import EventDrivenSimulator
from repro.simulation.gpu import GpuWaveSim
from repro.simulation.grid import SlotPlan
from repro.simulation.variation import ProcessVariation


class TestFactors:
    def test_shape_and_determinism(self):
        variation = ProcessVariation(sigma=0.05, seed=3)
        a = variation.factors(100, np.arange(8))
        b = variation.factors(100, np.arange(8))
        assert a.shape == (100, 8)
        np.testing.assert_array_equal(a, b)

    def test_batch_invariance(self):
        """Slot k's factors do not depend on which batch contains it."""
        variation = ProcessVariation(sigma=0.1, seed=5)
        full = variation.factors(50, np.arange(10))
        part = variation.factors(50, np.asarray([7, 8]))
        np.testing.assert_array_equal(full[:, 7:9], part)

    def test_lognormal_median_one(self):
        variation = ProcessVariation(sigma=0.1, seed=1)
        factors = variation.factors(2000, np.arange(4))
        assert np.median(factors) == pytest.approx(1.0, abs=0.02)
        assert np.all(factors > 0)

    def test_normal_clipped(self):
        variation = ProcessVariation(sigma=2.0, seed=1, distribution="normal")
        factors = variation.factors(500, np.arange(2))
        assert factors.min() >= 0.05

    def test_zero_sigma_identity(self):
        variation = ProcessVariation(sigma=0.0, seed=9)
        factors = variation.factors(10, np.arange(3))
        np.testing.assert_allclose(factors, 1.0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            ProcessVariation(sigma=-0.1)
        with pytest.raises(SimulationError):
            ProcessVariation(sigma=0.1, distribution="cauchy")
        with pytest.raises(SimulationError):
            ProcessVariation(sigma=0.1, group_size=0)

    def test_group_size_shares_die_factors(self):
        """Slots of the same die group receive identical factors."""
        variation = ProcessVariation(sigma=0.1, seed=2, group_size=4)
        factors = variation.factors(30, np.arange(8))
        for slot in range(1, 4):
            np.testing.assert_array_equal(factors[:, 0], factors[:, slot])
        assert not np.array_equal(factors[:, 0], factors[:, 4])

    def test_group_matches_ungrouped_die_stream(self):
        """Die d of a grouped plan equals slot d of an ungrouped one."""
        grouped = ProcessVariation(sigma=0.1, seed=2, group_size=3)
        plain = ProcessVariation(sigma=0.1, seed=2, group_size=1)
        a = grouped.factors(20, np.asarray([3, 4, 5]))  # die 1
        b = plain.factors(20, np.asarray([1]))
        np.testing.assert_array_equal(a[:, 0], b[:, 0])


class TestSimulation:
    @pytest.fixture(scope="class")
    def setup(self, library):
        circuit = random_circuit("mc", 10, 150, seed=23)
        compiled = compile_circuit(circuit, library)
        rng = np.random.default_rng(23)
        pairs = [PatternPair.random(10, rng) for _ in range(6)]
        return circuit, compiled, pairs

    def test_zero_sigma_equals_baseline(self, setup, library, kernel_table):
        circuit, compiled, pairs = setup
        config = SimulationConfig(record_all_nets=True)
        sim = GpuWaveSim(circuit, library, config=config, compiled=compiled)
        base = sim.run(pairs, kernel_table=kernel_table)
        varied = sim.run(pairs, kernel_table=kernel_table,
                         variation=ProcessVariation(sigma=0.0))
        for slot in range(len(pairs)):
            for net in circuit.nets():
                assert base.waveform(slot, net).equivalent(
                    varied.waveform(slot, net), 0.0)

    def test_engines_agree_under_variation(self, setup, library, kernel_table):
        circuit, compiled, pairs = setup
        config = SimulationConfig(record_all_nets=True)
        variation = ProcessVariation(sigma=0.08, seed=4)
        parallel = GpuWaveSim(circuit, library, config=config,
                              compiled=compiled).run(
            pairs, kernel_table=kernel_table, variation=variation)
        serial = EventDrivenSimulator(circuit, library, config=config,
                                      compiled=compiled).run(
            pairs, kernel_table=kernel_table, variation=variation)
        for slot in range(len(pairs)):
            for net in circuit.nets():
                assert serial.waveform(slot, net).equivalent(
                    parallel.waveform(slot, net), 0.0), net

    def test_monte_carlo_spread(self, setup, library, kernel_table):
        """Replicating one pattern across slots yields a distribution of
        arrival times — the variation-aware analysis the paper cites."""
        circuit, compiled, pairs = setup
        sim = GpuWaveSim(circuit, library, compiled=compiled)
        samples = 48
        plan = SlotPlan.zip([0] * samples, [0.8] * samples)
        result = sim.run(pairs[:1], plan=plan, kernel_table=kernel_table,
                         variation=ProcessVariation(sigma=0.08, seed=11))
        arrivals = np.asarray([
            result.latest_arrival(slot, circuit.outputs)
            for slot in range(samples)
        ])
        assert np.std(arrivals) > 0
        spread = arrivals.max() / arrivals.min()
        assert 1.01 < spread < 2.0  # sigma=8% per gate -> modest path spread

    def test_final_values_unchanged_by_variation(self, setup, library):
        """Variation perturbs timing, never logic values."""
        circuit, compiled, pairs = setup
        sim = GpuWaveSim(circuit, library, compiled=compiled)
        base = sim.run(pairs)
        varied = sim.run(pairs, variation=ProcessVariation(sigma=0.15, seed=2))
        for slot in range(len(pairs)):
            np.testing.assert_array_equal(
                base.final_values(slot, circuit.outputs),
                varied.final_values(slot, circuit.outputs))
