"""Tests for multi-device slot distribution."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.netlist.generate import random_circuit
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.compiled import compile_circuit
from repro.simulation.gpu import GpuWaveSim
from repro.simulation.grid import SlotPlan
from repro.simulation.multi import MultiDeviceWaveSim


@pytest.fixture(scope="module")
def setup(library):
    circuit = random_circuit("multi", 10, 120, seed=17)
    compiled = compile_circuit(circuit, library)
    rng = np.random.default_rng(17)
    pairs = [PatternPair.random(10, rng) for _ in range(8)]
    return circuit, compiled, pairs


class TestEquivalence:
    def test_matches_single_device(self, setup, library, kernel_table):
        circuit, compiled, pairs = setup
        config = SimulationConfig(record_all_nets=True)
        plan = SlotPlan.cross(len(pairs), [0.6, 0.9])
        single = GpuWaveSim(circuit, library, config=config,
                            compiled=compiled).run(
            pairs, plan=plan, kernel_table=kernel_table)
        multi = MultiDeviceWaveSim(circuit, library, config=config,
                                   compiled=compiled, num_devices=2).run(
            pairs, plan=plan, kernel_table=kernel_table)
        assert multi.engine.startswith("multi-device[2][")
        for slot in range(plan.num_slots):
            for net in circuit.nets():
                assert single.waveform(slot, net).equivalent(
                    multi.waveform(slot, net), 0.0)

    def test_single_device_degenerates_in_process(self, setup, library):
        circuit, compiled, pairs = setup
        sim = MultiDeviceWaveSim(circuit, library, compiled=compiled,
                                 num_devices=1)
        result = sim.run(pairs)
        assert result.engine.startswith("multi-device[1][")
        assert result.num_slots == len(pairs)

    def test_more_devices_than_slots(self, setup, library):
        circuit, compiled, pairs = setup
        sim = MultiDeviceWaveSim(circuit, library, compiled=compiled,
                                 num_devices=64)
        result = sim.run(pairs[:2])
        assert result.engine.startswith("multi-device[2][")
        reference = GpuWaveSim(circuit, library, compiled=compiled).run(
            pairs[:2])
        for slot in range(2):
            for net in circuit.outputs:
                assert reference.waveform(slot, net).equivalent(
                    result.waveform(slot, net), 0.0)


class TestVariationComposition:
    def test_die_factors_independent_of_device_count(self, setup, library,
                                                     kernel_table):
        """Monte-Carlo results are bit-identical whether the plane runs on
        one device or several (die = global slot, not chunk-local)."""
        from repro.simulation.variation import ProcessVariation

        circuit, compiled, pairs = setup
        config = SimulationConfig(record_all_nets=True)
        variation = ProcessVariation(sigma=0.08, seed=3)
        single = GpuWaveSim(circuit, library, config=config,
                            compiled=compiled).run(
            pairs, kernel_table=kernel_table, variation=variation)
        multi = MultiDeviceWaveSim(circuit, library, config=config,
                                   compiled=compiled, num_devices=2).run(
            pairs, kernel_table=kernel_table, variation=variation)
        for slot in range(len(pairs)):
            for net in circuit.nets():
                assert single.waveform(slot, net).equivalent(
                    multi.waveform(slot, net), 0.0)


class TestStatsAggregation:
    def test_real_worker_stats_merged(self, setup, library):
        """gate_evaluations comes from the workers' _BatchStats, not a
        synthetic num_gates * num_slots estimate."""
        circuit, compiled, pairs = setup
        single = GpuWaveSim(circuit, library, compiled=compiled)
        reference = single.run(pairs)
        multi = MultiDeviceWaveSim(circuit, library, compiled=compiled,
                                   num_devices=2)
        result = multi.run(pairs)
        assert result.gate_evaluations == reference.gate_evaluations
        assert multi.last_stats is not None
        assert multi.last_stats.gate_evaluations == result.gate_evaluations
        # A level whose lanes are all quiet inside one chunk makes no
        # kernel call there, so the split can only drop calls, never
        # add beyond one call per chunk per level group.
        assert single.last_stats.kernel_calls \
            <= multi.last_stats.kernel_calls \
            <= single.last_stats.kernel_calls * 2
        assert multi.last_stats.lanes_skipped == \
            single.last_stats.lanes_skipped
        assert multi.last_stats.batches == 2

    def test_overflow_retries_surface_in_stats(self, setup, library):
        """Capacity-growth retries inside workers are visible (and the
        re-evaluated lanes are counted) after aggregation."""
        circuit, compiled, pairs = setup
        config = SimulationConfig(waveform_capacity=2)
        multi = MultiDeviceWaveSim(circuit, library, config=config,
                                   compiled=compiled, num_devices=2)
        result = multi.run(pairs)
        assert multi.last_stats.retries >= 1
        clean = MultiDeviceWaveSim(circuit, library, compiled=compiled,
                                   num_devices=2)
        clean.run(pairs)
        assert result.gate_evaluations > \
            clean.last_stats.gate_evaluations  # retried lanes re-counted

    def test_single_device_stats(self, setup, library):
        circuit, compiled, pairs = setup
        multi = MultiDeviceWaveSim(circuit, library, compiled=compiled,
                                   num_devices=1)
        result = multi.run(pairs)
        assert multi.last_stats is not None
        assert result.gate_evaluations == \
            multi.last_stats.gate_evaluations > 0


class TestValidation:
    def test_empty_pairs(self, setup, library):
        circuit, compiled, _pairs = setup
        sim = MultiDeviceWaveSim(circuit, library, compiled=compiled)
        with pytest.raises(SimulationError):
            sim.run([])

    def test_bad_device_count(self, setup, library):
        circuit, compiled, _pairs = setup
        with pytest.raises(SimulationError):
            MultiDeviceWaveSim(circuit, library, compiled=compiled,
                               num_devices=0)

    def test_slot_labels_preserved(self, setup, library, kernel_table):
        circuit, compiled, pairs = setup
        plan = SlotPlan.cross(len(pairs), [0.6, 0.9])
        sim = MultiDeviceWaveSim(circuit, library, compiled=compiled,
                                 num_devices=2)
        result = sim.run(pairs, plan=plan, kernel_table=kernel_table)
        assert result.slot_labels == plan.labels()
