"""Tests for the parallel GPU-style waveform simulator."""

import numpy as np
import pytest

from repro.errors import SimulationError, WaveformOverflowError
from repro.netlist.generate import random_circuit
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.compiled import compile_circuit
from repro.simulation.event_driven import EventDrivenSimulator
from repro.simulation.gpu import GpuWaveSim
from repro.simulation.grid import SlotPlan
from repro.simulation.zero_delay import ZeroDelaySimulator


def make_pairs(circuit, count, seed=0):
    rng = np.random.default_rng(seed)
    return [PatternPair.random(len(circuit.inputs), rng) for _ in range(count)]


def assert_equivalent(result_a, slot_a, result_b, slot_b, nets):
    for net in nets:
        wa = result_a.waveform(slot_a, net)
        wb = result_b.waveform(slot_b, net)
        assert wa.equivalent(wb, 0.0), (net, wa, wb)


class TestEquivalenceWithEventDriven:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("filtering", ["inertial", "transport"])
    def test_static_delays(self, library, seed, filtering):
        circuit = random_circuit(f"eq{seed}", 8, 80, seed=seed)
        config = SimulationConfig(record_all_nets=True,
                                  pulse_filtering=filtering)
        compiled = compile_circuit(circuit, library)
        pairs = make_pairs(circuit, 8, seed)
        reference = EventDrivenSimulator(circuit, library, config=config,
                                         compiled=compiled).run(pairs)
        parallel = GpuWaveSim(circuit, library, config=config,
                              compiled=compiled).run(pairs)
        for slot in range(len(pairs)):
            assert_equivalent(reference, slot, parallel, slot, circuit.nets())

    @pytest.mark.parametrize("seed", [3, 4])
    def test_parametric_delays(self, library, kernel_table, seed):
        circuit = random_circuit(f"eqp{seed}", 8, 80, seed=seed)
        config = SimulationConfig(record_all_nets=True)
        compiled = compile_circuit(circuit, library)
        pairs = make_pairs(circuit, 6, seed)
        voltages = [0.55, 0.8, 1.1]
        plan = SlotPlan.cross(len(pairs), voltages)
        event = EventDrivenSimulator(circuit, library, config=config,
                                     compiled=compiled)
        parallel = GpuWaveSim(circuit, library, config=config,
                              compiled=compiled)
        full = parallel.run(pairs, plan=plan, kernel_table=kernel_table)
        for voltage in voltages:
            reference = event.run(pairs, voltage=voltage,
                                  kernel_table=kernel_table)
            for slot in plan.slots_for_voltage(voltage):
                pattern = int(plan.pattern_indices[slot])
                assert_equivalent(reference, pattern, full, int(slot),
                                  circuit.nets())

    def test_group_by_arity_equivalent(self, library, kernel_table):
        circuit = random_circuit("grp", 8, 100, seed=9)
        config = SimulationConfig(record_all_nets=True)
        compiled = compile_circuit(circuit, library)
        pairs = make_pairs(circuit, 5, 9)
        padded = GpuWaveSim(circuit, library, config=config, compiled=compiled,
                            group_by_arity=False).run(
            pairs, kernel_table=kernel_table)
        grouped = GpuWaveSim(circuit, library, config=config, compiled=compiled,
                             group_by_arity=True).run(
            pairs, kernel_table=kernel_table)
        for slot in range(len(pairs)):
            assert_equivalent(padded, slot, grouped, slot, circuit.nets())

    def test_small_memory_budget_batches(self, library):
        """Tiny budget forces multiple batches; results must stitch."""
        circuit = random_circuit("mem", 8, 80, seed=5)
        config = SimulationConfig(record_all_nets=True)
        compiled = compile_circuit(circuit, library)
        pairs = make_pairs(circuit, 10, 5)
        whole = GpuWaveSim(circuit, library, config=config,
                           compiled=compiled).run(pairs)
        tiny = GpuWaveSim(circuit, library, config=config, compiled=compiled,
                          memory_budget=50_000)
        batched = tiny.run(pairs)
        assert tiny.last_stats.batches > 1
        for slot in range(len(pairs)):
            assert_equivalent(whole, slot, batched, slot, circuit.nets())


class TestFinalValues:
    def test_match_zero_delay(self, library, medium_circuit, rng):
        pairs = make_pairs(medium_circuit, 16, 11)
        result = GpuWaveSim(medium_circuit, library).run(pairs)
        expected = ZeroDelaySimulator(medium_circuit, library).responses(
            np.stack([p.v2 for p in pairs]))
        for slot in range(len(pairs)):
            np.testing.assert_array_equal(
                result.final_values(slot, medium_circuit.outputs),
                expected[slot])


class TestOverflowHandling:
    def test_capacity_growth(self, library):
        """A tiny starting capacity grows transparently on overflow."""
        circuit = random_circuit("ovf", 12, 200, seed=6)
        config = SimulationConfig(record_all_nets=True, waveform_capacity=2)
        compiled = compile_circuit(circuit, library)
        pairs = make_pairs(circuit, 8, 6)
        sim = GpuWaveSim(circuit, library, config=config, compiled=compiled)
        result = sim.run(pairs)
        assert sim.last_stats.retries >= 1
        baseline = GpuWaveSim(
            circuit, library, compiled=compiled,
            config=SimulationConfig(record_all_nets=True, waveform_capacity=64),
        ).run(pairs)
        for slot in range(len(pairs)):
            assert_equivalent(result, slot, baseline, slot, circuit.nets())

    def test_growth_doubles_until_success(self, library):
        """Capacity grows 2 -> 4 -> 8 for a run needing 7 toggles; the
        retry count records every doubling."""
        circuit = random_circuit("ovf3", 12, 300, seed=6)
        config = SimulationConfig(record_all_nets=True, waveform_capacity=2)
        compiled = compile_circuit(circuit, library)
        pairs = make_pairs(circuit, 8, 6)
        sim = GpuWaveSim(circuit, library, config=config, compiled=compiled)
        result = sim.run(pairs)
        needed = max(w.num_transitions for slot in result.waveforms
                     for w in slot.values())
        assert needed > 4  # the run genuinely required two doublings
        assert sim.last_stats.retries == 2

    def test_max_capacity_raises(self, library, monkeypatch):
        """Growth stops at MAX_CAPACITY and surfaces the overflow."""
        monkeypatch.setattr("repro.simulation.gpu.MAX_CAPACITY", 4)
        circuit = random_circuit("ovf3", 12, 300, seed=6)
        config = SimulationConfig(waveform_capacity=2)
        sim = GpuWaveSim(circuit, library, config=config)
        with pytest.raises(WaveformOverflowError, match="exceeded capacity"):
            sim.run(make_pairs(circuit, 8, 6))

    def test_growth_disabled_raises(self, library):
        circuit = random_circuit("ovf2", 12, 200, seed=6)
        config = SimulationConfig(waveform_capacity=2, grow_on_overflow=False)
        sim = GpuWaveSim(circuit, library, config=config)
        with pytest.raises(WaveformOverflowError):
            sim.run(make_pairs(circuit, 8, 6))

    def test_growth_disabled_raises_without_retrying(self, library):
        """grow_on_overflow=False fails on the first overflow, and the
        engine stays usable at a sufficient capacity afterwards."""
        circuit = random_circuit("ovf2", 12, 200, seed=6)
        compiled = compile_circuit(circuit, library)
        pairs = make_pairs(circuit, 8, 6)
        strict = GpuWaveSim(
            circuit, library, compiled=compiled,
            config=SimulationConfig(waveform_capacity=2,
                                    grow_on_overflow=False))
        with pytest.raises(WaveformOverflowError):
            strict.run(pairs)
        roomy = GpuWaveSim(
            circuit, library, compiled=compiled,
            config=SimulationConfig(waveform_capacity=64,
                                    grow_on_overflow=False))
        result = roomy.run(pairs)
        assert roomy.last_stats.retries == 0
        assert result.num_slots == len(pairs)


class TestValidation:
    def test_no_pairs(self, library, small_circuit):
        with pytest.raises(SimulationError, match="at least one"):
            GpuWaveSim(small_circuit, library).run([])

    def test_plan_references_missing_pattern(self, library, small_circuit):
        sim = GpuWaveSim(small_circuit, library)
        pairs = make_pairs(small_circuit, 2)
        plan = SlotPlan.zip([0, 5], [0.8, 0.8])
        with pytest.raises(SimulationError, match="missing pattern"):
            sim.run(pairs, plan=plan)

    def test_static_multi_voltage_rejected(self, library, small_circuit):
        sim = GpuWaveSim(small_circuit, library)
        pairs = make_pairs(small_circuit, 2)
        plan = SlotPlan.cross(2, [0.6, 0.8])
        with pytest.raises(SimulationError, match="static delay mode"):
            sim.run(pairs, plan=plan)

    def test_width_mismatch(self, library, small_circuit):
        sim = GpuWaveSim(small_circuit, library)
        bad = PatternPair(v1=np.zeros(2, dtype=np.uint8),
                          v2=np.ones(2, dtype=np.uint8))
        with pytest.raises(SimulationError, match="width"):
            sim.run([bad])

    def test_outputs_only_by_default(self, library, small_circuit):
        sim = GpuWaveSim(small_circuit, library)
        result = sim.run(make_pairs(small_circuit, 2))
        with pytest.raises(KeyError, match="record_all_nets"):
            result.waveform(0, small_circuit.gates[0].output)

    def test_global_slots_shape_mismatch(self, library, small_circuit):
        sim = GpuWaveSim(small_circuit, library)
        pairs = make_pairs(small_circuit, 2)
        with pytest.raises(SimulationError, match="global_slots"):
            sim.run(pairs, global_slots=np.asarray([0]))

    def test_global_slots_negative(self, library, small_circuit):
        sim = GpuWaveSim(small_circuit, library)
        pairs = make_pairs(small_circuit, 2)
        with pytest.raises(SimulationError, match="non-negative"):
            sim.run(pairs, global_slots=np.asarray([-1, 0]))

    def test_global_slots_select_die_factors(self, library, small_circuit,
                                             kernel_table):
        """A chunk run with explicit global slot ids reproduces the
        matching slots of a whole-plane Monte-Carlo run."""
        from repro.simulation.variation import ProcessVariation

        config = SimulationConfig(record_all_nets=True)
        compiled = compile_circuit(small_circuit, library)
        pairs = make_pairs(small_circuit, 6)
        variation = ProcessVariation(sigma=0.1, seed=11)
        sim = GpuWaveSim(small_circuit, library, config=config,
                         compiled=compiled)
        whole = sim.run(pairs, kernel_table=kernel_table, variation=variation)
        chunk_plan = SlotPlan.zip([3, 4, 5], [0.8, 0.8, 0.8])
        chunk = sim.run(pairs, plan=chunk_plan, kernel_table=kernel_table,
                        variation=variation,
                        global_slots=np.asarray([3, 4, 5]))
        for local, slot in enumerate([3, 4, 5]):
            assert_equivalent(whole, slot, chunk, local,
                              small_circuit.nets())

    def test_engine_labels(self, library, small_circuit, kernel_table):
        """The engine label records delay mode and compute backend."""
        sim = GpuWaveSim(small_circuit, library,
                         config=SimulationConfig(backend="numpy"))
        pairs = make_pairs(small_circuit, 2)
        assert sim.run(pairs).engine == "gpu-static[numpy,sparse]"
        assert (sim.run(pairs, kernel_table=kernel_table).engine
                == "gpu-parametric[numpy,sparse]")
        assert sim.last_stats.backend == "numpy"
        dense = GpuWaveSim(small_circuit, library,
                           config=SimulationConfig(backend="numpy",
                                                   prune_inactive=False))
        assert dense.run(pairs).engine == "gpu-static[numpy]"


class TestSatelliteRegressions:
    def test_overflow_retry_respects_memory_budget(self, library):
        """A capacity-doubling retry re-sizes the batch so the waveform
        arena never exceeds the memory budget."""
        circuit = random_circuit("budget", 12, 200, seed=6)
        compiled = compile_circuit(circuit, library)
        pairs = make_pairs(circuit, 16, 6)
        per_slot_base = (compiled.num_nets + 1) * 2 * 8
        budget = per_slot_base * 16  # all 16 slots fit at capacity 2 ...
        sim = GpuWaveSim(circuit, library, compiled=compiled,
                         memory_budget=budget,
                         config=SimulationConfig(waveform_capacity=2))
        seen = []
        original = GpuWaveSim._run_batch_at_capacity

        def spy(self, v1, v2, plan, kernel_table, capacity, *args, **kwargs):
            seen.append((plan.num_slots, capacity))
            return original(self, v1, v2, plan, kernel_table, capacity,
                            *args, **kwargs)

        sim._run_batch_at_capacity = spy.__get__(sim)
        result = sim.run(pairs)
        assert sim.last_stats.retries > 0, "test needs the overflow path"
        for num_slots, capacity in seen:
            arena_bytes = (compiled.num_nets + 1) * num_slots * capacity * 8
            assert arena_bytes <= budget, (num_slots, capacity)
        # ... and the stitched result still covers every slot.
        assert result.num_slots == len(pairs)
        assert all(result.waveforms[s] for s in range(len(pairs)))

    def test_budget_split_matches_unsplit_run(self, library):
        """Budget-forced re-chunking on retry is result-invariant."""
        circuit = random_circuit("budget2", 12, 200, seed=6)
        compiled = compile_circuit(circuit, library)
        pairs = make_pairs(circuit, 16, 6)
        config = SimulationConfig(waveform_capacity=2, record_all_nets=True)
        roomy = GpuWaveSim(circuit, library, compiled=compiled,
                           config=config).run(pairs)
        per_slot_base = (compiled.num_nets + 1) * 2 * 8
        tight = GpuWaveSim(circuit, library, compiled=compiled,
                           memory_budget=per_slot_base * 16,
                           config=config).run(pairs)
        for slot in range(len(pairs)):
            assert_equivalent(roomy, slot, tight, slot, circuit.nets())

    @pytest.mark.parametrize("fused", [True, False])
    def test_delay_evaluation_reused_across_retries(self, library,
                                                    kernel_table, fused):
        """Per-voltage polynomial evaluation depends only on the gates
        and distinct voltages — capacity-doubling retries reuse it.

        Counted on the numpy backend, whose fused and unfused paths
        both funnel through ``delays_from_normalized`` (the lane
        backends evaluate delays inside the merge loop and never
        materialize them at all)."""
        circuit = random_circuit("reuse", 12, 200, seed=6)
        compiled = compile_circuit(circuit, library)
        pairs = make_pairs(circuit, 8, 6)
        sim = GpuWaveSim(circuit, library, compiled=compiled,
                         config=SimulationConfig(waveform_capacity=2,
                                                 backend="numpy",
                                                 fused=fused))
        calls = []
        original = kernel_table.delays_from_normalized

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        kernel_table.delays_from_normalized = counting
        try:
            sim.run(pairs, kernel_table=kernel_table)
        finally:
            kernel_table.delays_from_normalized = original
        assert sim.last_stats.retries > 0, "test needs the overflow path"
        levels = sum(1 for level in compiled.levels if level.size)
        assert len(calls) == levels
