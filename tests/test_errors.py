"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("subclass", [
        errors.LibraryError, errors.CharacterizationError,
        errors.ParameterError, errors.NetlistError, errors.ParseError,
        errors.SimulationError, errors.TimingError, errors.AtpgError,
    ])
    def test_all_derive_from_base(self, subclass):
        assert issubclass(subclass, errors.ReproError)

    def test_specializations(self):
        assert issubclass(errors.UnknownCellError, errors.LibraryError)
        assert issubclass(errors.RegressionError, errors.CharacterizationError)
        assert issubclass(errors.WaveformOverflowError, errors.SimulationError)

    def test_unknown_cell_message(self):
        error = errors.UnknownCellError("NAND9")
        assert "NAND9" in str(error)
        assert error.name == "NAND9"

    def test_parse_error_location(self):
        error = errors.ParseError("bad token", filename="f.v", line=12)
        assert str(error).startswith("f.v:12:")
        no_line = errors.ParseError("bad", filename="f.v")
        assert str(no_line).startswith("f.v:")

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.SimulationError("boom")
