"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.delay_kernel import DelayKernelTable


@pytest.fixture(scope="module")
def kernels_file(tmp_path_factory, kernel_table):
    path = tmp_path_factory.mktemp("cli") / "kernels.npz"
    kernel_table.save(str(path))
    return str(path)


@pytest.fixture(scope="module")
def verilog_file(tmp_path_factory, library):
    from repro.netlist.generate import random_circuit
    from repro.netlist.verilog import write_verilog

    circuit = random_circuit("clidesign", 10, 120, seed=3)
    path = tmp_path_factory.mktemp("cli_netlist") / "design.v"
    path.write_text(write_verilog(circuit, library))
    return str(path)


class TestCharacterize:
    def test_writes_table(self, tmp_path, capsys):
        out = str(tmp_path / "k.npz")
        assert main(["characterize", "--order", "2", "--output", out]) == 0
        table = DelayKernelTable.load(out)
        assert table.n == 2
        assert "wrote" in capsys.readouterr().out

    def test_corner_and_temperature(self, tmp_path):
        out = str(tmp_path / "k_slow_hot.npz")
        assert main(["characterize", "--order", "1", "--corner", "slow",
                     "--temperature", "125", "--output", out]) == 0

    def test_adaptive_with_report_and_cache(self, tmp_path, capsys):
        import json

        from repro.core.charz_cache import CoefficientCache

        CoefficientCache.clear_memo()
        out = str(tmp_path / "k_adaptive.npz")
        report_path = str(tmp_path / "report.json")
        cache_dir = str(tmp_path / "cache")
        assert main(["characterize", "--adaptive", "--budget", "30",
                     "--target-error", "0.02", "--workers", "2",
                     "--cache-dir", cache_dir, "--report", report_path,
                     "--output", out]) == 0
        assert "adaptive sampling" in capsys.readouterr().out
        with open(report_path, encoding="utf-8") as stream:
            report = json.load(stream)
        assert report["mode"] == "adaptive"
        assert report["evaluations"]["ratio_vs_fixed"] > 3.0
        assert report["evaluations"]["performed"] == \
            report["evaluations"]["charged"]
        for entry in report["entries"]:
            assert entry["evaluations"] <= 30
            assert entry["fixed_grid_evaluations"] == 108
        # Second run hits the on-disk cache: zero SPICE work performed.
        CoefficientCache.clear_memo()
        assert main(["characterize", "--adaptive", "--budget", "30",
                     "--target-error", "0.02",
                     "--cache-dir", cache_dir, "--report", report_path,
                     "--output", out]) == 0
        with open(report_path, encoding="utf-8") as stream:
            warm = json.load(stream)
        assert warm["evaluations"]["performed"] == 0
        assert warm["evaluations"]["charged"] == \
            report["evaluations"]["charged"]
        assert DelayKernelTable.load(out).num_types > 0


class TestStats:
    def test_suite_spec(self, capsys):
        assert main(["stats", "suite:s38417:0.004"]) == 0
        out = capsys.readouterr().out
        assert "s38417" in out and "depth" in out

    def test_random_spec(self, capsys):
        assert main(["stats", "random:100:3"]) == 0
        assert "random100" in capsys.readouterr().out

    def test_verilog_file(self, verilog_file, capsys):
        assert main(["stats", verilog_file]) == 0
        assert "clidesign" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["stats", "no_such_file.v"]) == 1
        assert "error" in capsys.readouterr().err


class TestSta:
    def test_nominal(self, verilog_file, capsys):
        assert main(["sta", verilog_file, "--paths", "3"]) == 0
        out = capsys.readouterr().out
        assert "Longest path delay" in out
        assert "#3" in out

    def test_derated(self, verilog_file, kernels_file, capsys):
        assert main(["sta", verilog_file, "--kernels", kernels_file,
                     "--voltage", "0.6"]) == 0
        assert "0.60 V" in capsys.readouterr().out


class TestAtpg:
    def test_transition_and_paths(self, capsys):
        assert main(["atpg", "random:80:5", "--max-pairs", "16",
                     "--paths", "5"]) == 0
        out = capsys.readouterr().out
        assert "transition-fault ATPG" in out
        assert "timing-aware" in out


class TestSimulate:
    def test_single_voltage_static(self, verilog_file, capsys):
        assert main(["simulate", verilog_file, "--patterns", "8"]) == 0
        out = capsys.readouterr().out
        assert "gpu-static" in out
        assert "0.80 V" in out

    def test_sweep_with_kernels_and_vcd(self, verilog_file, kernels_file,
                                        tmp_path, capsys):
        vcd = str(tmp_path / "wave.vcd")
        assert main(["simulate", verilog_file, "--patterns", "4",
                     "--voltages", "0.6,1.0", "--kernels", kernels_file,
                     "--vcd", vcd]) == 0
        out = capsys.readouterr().out
        assert "gpu-parametric" in out
        text = open(vcd).read()
        assert "$enddefinitions" in text

    def test_sweep_without_kernels_fails(self, verilog_file, capsys):
        assert main(["simulate", verilog_file, "--voltages", "0.6,1.0"]) == 2
        assert "needs --kernels" in capsys.readouterr().err


class TestCampaign:
    def test_checkpoint_and_resume(self, verilog_file, tmp_path, capsys):
        import json

        directory = str(tmp_path / "campaign")
        report = str(tmp_path / "report.json")
        assert main(["campaign", verilog_file, "--patterns", "8",
                     "--chunk-slots", "3", "--workers", "0",
                     "--checkpoint-dir", directory,
                     "--report-json", report]) == 0
        out = capsys.readouterr().out
        assert "campaign" in out and "3 chunks" in out
        with open(report) as stream:
            payload = json.load(stream)
        assert payload["chunks_executed"] == 3
        # Second invocation resumes entirely from the checkpoint.
        assert main(["campaign", verilog_file, "--patterns", "8",
                     "--chunk-slots", "3", "--workers", "0",
                     "--checkpoint-dir", directory]) == 0
        out = capsys.readouterr().out
        assert "from checkpoint 3" in out and "(resumed)" in out

    def test_multi_voltage_needs_kernels(self, verilog_file, capsys):
        assert main(["campaign", verilog_file,
                     "--voltages", "0.6,1.0"]) == 2
        assert "need --kernels" in capsys.readouterr().err

    def test_sweep_with_kernels(self, verilog_file, kernels_file, capsys):
        assert main(["campaign", verilog_file, "--patterns", "4",
                     "--workers", "0", "--voltages", "0.6,1.0",
                     "--kernels", kernels_file]) == 0
        out = capsys.readouterr().out
        assert "8 slots" in out and "campaign[0]" in out


class TestConvert:
    def test_bench_to_verilog_and_back(self, tmp_path, capsys):
        from repro.netlist.bench import write_bench
        from repro.netlist.generate import c17

        bench_in = tmp_path / "c17.bench"
        bench_in.write_text(write_bench(c17()))
        verilog = str(tmp_path / "c.v")
        assert main(["convert", str(bench_in), verilog]) == 0
        assert "wrote" in capsys.readouterr().out
        assert "module" in open(verilog).read()
        bench_out = str(tmp_path / "c_back.bench")
        assert main(["convert", verilog, bench_out]) == 0
        assert "NAND" in open(bench_out).read()

    def test_sdf_and_spef_emission(self, verilog_file, tmp_path):
        sdf = str(tmp_path / "d.sdf")
        spef = str(tmp_path / "d.spef")
        assert main(["convert", verilog_file, sdf]) == 0
        assert main(["convert", verilog_file, spef]) == 0
        assert "(DELAYFILE" in open(sdf).read()
        assert "*SPEF" in open(spef).read()

    def test_unknown_format(self, verilog_file, tmp_path, capsys):
        assert main(["convert", verilog_file,
                     str(tmp_path / "d.xyz")]) == 2
        assert "unknown output format" in capsys.readouterr().err


class TestLiberty:
    def test_per_voltage_views(self, tmp_path, capsys):
        pattern = str(tmp_path / "lib_{voltage}V.lib")
        assert main(["liberty", "--order", "1", "--voltages", "0.6,1.0",
                     "--output-pattern", pattern]) == 0
        out = capsys.readouterr().out
        assert "0.60 V Liberty view" in out
        text = open(str(tmp_path / "lib_0.60V.lib")).read()
        assert text.startswith("library (")


class TestExplore:
    def test_vf_table(self, verilog_file, kernels_file, capsys):
        assert main(["explore", verilog_file, "--kernels", kernels_file,
                     "--patterns", "6",
                     "--voltages", "0.6,0.8,1.0"]) == 0
        out = capsys.readouterr().out
        assert "voltage-frequency table" in out
        assert "f_max" in out

    def test_requires_kernels(self, verilog_file, capsys):
        assert main(["explore", verilog_file]) == 2


class TestServe:
    def run_serve(self, monkeypatch, capsys, lines, extra_args=()):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
        status = main(["serve", "--backend", "numpy",
                       "--max-wait-ms", "200", *extra_args])
        captured = capsys.readouterr()
        return status, captured

    def test_json_lines_round_trip(self, monkeypatch, capsys):
        import json

        status, captured = self.run_serve(monkeypatch, capsys, [
            json.dumps({"id": "a", "circuit": "random:60:3", "patterns": 2}),
            json.dumps({"id": "b", "circuit": "random:60:3", "patterns": 2,
                        "seed": 1}),
        ])
        assert status == 0
        responses = [json.loads(line)
                     for line in captured.out.strip().splitlines()]
        assert [r["id"] for r in responses] == ["a", "b"]
        assert all(r["ok"] for r in responses)
        assert "service:" in captured.err
        assert "coalesce factor" in captured.err

    def test_metrics_json_output(self, monkeypatch, capsys, tmp_path):
        import json

        metrics_path = str(tmp_path / "metrics.json")
        status, _ = self.run_serve(
            monkeypatch, capsys,
            [json.dumps({"id": "a", "circuit": "random:60:3",
                         "patterns": 2})],
            extra_args=["--metrics-json", metrics_path])
        assert status == 0
        metrics = json.load(open(metrics_path))
        assert metrics["jobs_completed"] == 1
        assert "occupancy_histogram" in metrics
