"""Tests for test-response capture and comparison."""

import numpy as np
import pytest

from repro.analysis.responses import capture_responses, compare_responses
from repro.errors import SimulationError
from repro.netlist.generate import random_circuit
from repro.simulation.base import PatternPair
from repro.simulation.gpu import GpuWaveSim
from repro.simulation.zero_delay import ZeroDelaySimulator


@pytest.fixture(scope="module")
def setup(library):
    circuit = random_circuit("resp", 10, 120, seed=2)
    rng = np.random.default_rng(0)
    pairs = [PatternPair.random(10, rng) for _ in range(12)]
    result = GpuWaveSim(circuit, library).run(pairs)
    expected = ZeroDelaySimulator(circuit, library).responses(
        np.stack([p.v2 for p in pairs]))
    return circuit, pairs, result, expected


class TestCapture:
    def test_capture_matches_zero_delay(self, setup):
        circuit, pairs, result, expected = setup
        captured = capture_responses(result, circuit)
        np.testing.assert_array_equal(captured, expected)


class TestCompare:
    def test_pass(self, setup):
        circuit, pairs, result, expected = setup
        report = compare_responses(result, circuit, expected)
        assert report.passed
        assert report.failing_slots == []
        assert report.num_slots == len(pairs)

    def test_detects_mismatch(self, setup):
        circuit, pairs, result, expected = setup
        corrupted = expected.copy()
        corrupted[3, 0] ^= 1
        report = compare_responses(result, circuit, corrupted)
        assert not report.passed
        assert report.failing_slots == [3]
        assert report.mismatches[3] == [circuit.outputs[0]]

    def test_slot_subset(self, setup):
        circuit, pairs, result, expected = setup
        report = compare_responses(result, circuit, expected[2:5],
                                   slots=[2, 3, 4])
        assert report.passed

    def test_shape_validation(self, setup):
        circuit, pairs, result, expected = setup
        with pytest.raises(SimulationError, match="shape"):
            compare_responses(result, circuit, expected[:3])
