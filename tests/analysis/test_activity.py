"""Tests for glitch-accurate switching-activity analysis."""

import numpy as np
import pytest

from repro.analysis.activity import switching_activity
from repro.errors import SimulationError
from repro.netlist.generate import random_circuit
from repro.simulation.base import PatternPair, SimulationConfig, SimulationResult
from repro.simulation.gpu import GpuWaveSim
from repro.waveform.waveform import Waveform


def synthetic_result():
    """Hand-built result: one slot, three nets with known toggles."""
    waveforms = [{
        "quiet": Waveform.constant(1),
        "clean": Waveform(initial=0, times=np.asarray([1e-12])),
        "glitchy": Waveform(initial=0, times=np.asarray([1e-12, 2e-12, 3e-12])),
    }]
    return SimulationResult(
        circuit_name="synthetic", slot_labels=[(0, 0.8)],
        waveforms=waveforms, runtime_seconds=0.0,
        gate_evaluations=0, engine="test",
    )


class TestCounting:
    def test_known_counts(self):
        report = switching_activity(synthetic_result())
        assert report.toggles == {"quiet": 0, "clean": 1, "glitchy": 3}
        assert report.functional == {"quiet": 0, "clean": 1, "glitchy": 1}
        assert report.glitches == {"quiet": 0, "clean": 0, "glitchy": 2}
        assert report.total_toggles == 4
        assert report.total_glitches == 2
        assert report.glitch_ratio == pytest.approx(0.5)

    def test_hotspots(self):
        report = switching_activity(synthetic_result())
        assert report.hotspots() == ["glitchy"]

    def test_no_slots_rejected(self):
        with pytest.raises(SimulationError):
            switching_activity(synthetic_result(), slots=[])

    def test_empty_activity(self):
        result = synthetic_result()
        result.waveforms[0] = {"quiet": Waveform.constant(0)}
        report = switching_activity(result)
        assert report.glitch_ratio == 0.0
        assert report.hotspots() == []


class TestFromSimulation:
    def test_glitches_require_time_simulation(self, library, rng):
        """Glitch counts from a real run: toggles >= functional everywhere."""
        circuit = random_circuit("act", 12, 200, seed=3)
        sim = GpuWaveSim(circuit, library,
                         config=SimulationConfig(record_all_nets=True))
        pairs = [PatternPair.random(12, rng) for _ in range(16)]
        report = switching_activity(sim.run(pairs))
        assert report.num_slots == 16
        for net in circuit.nets():
            assert report.toggles[net] >= report.functional[net]
        # random reconvergent logic always glitches somewhere
        assert report.total_glitches > 0

    def test_slot_subset(self, library, rng):
        circuit = random_circuit("act", 12, 100, seed=4)
        sim = GpuWaveSim(circuit, library,
                         config=SimulationConfig(record_all_nets=True))
        pairs = [PatternPair.random(12, rng) for _ in range(8)]
        result = sim.run(pairs)
        full = switching_activity(result)
        half = switching_activity(result, slots=range(4))
        assert half.num_slots == 4
        assert half.total_toggles <= full.total_toggles
