"""Tests for waveform-level result comparison."""

import numpy as np
import pytest

from repro.analysis.compare import arrival_shifts, compare_results
from repro.errors import SimulationError
from repro.netlist.generate import random_circuit
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.compiled import compile_circuit
from repro.simulation.event_driven import EventDrivenSimulator
from repro.simulation.gpu import GpuWaveSim


@pytest.fixture(scope="module")
def setup(library):
    circuit = random_circuit("cmp", 10, 150, seed=31)
    compiled = compile_circuit(circuit, library)
    rng = np.random.default_rng(31)
    pairs = [PatternPair.random(10, rng) for _ in range(8)]
    config = SimulationConfig(record_all_nets=True)
    return circuit, compiled, pairs, config


class TestCompare:
    def test_identical_engines(self, setup, library, kernel_table):
        circuit, compiled, pairs, config = setup
        a = GpuWaveSim(circuit, library, config=config, compiled=compiled).run(
            pairs, kernel_table=kernel_table)
        b = EventDrivenSimulator(circuit, library, config=config,
                                 compiled=compiled).run(
            pairs, kernel_table=kernel_table)
        report = compare_results(a, b)
        assert report.identical
        assert report.num_waveforms == len(pairs) * len(circuit.nets())
        assert "0 mismatches" in report.summary()

    def test_static_vs_parametric_timing_shift(self, setup, library,
                                               kernel_table):
        """At nominal voltage the two models differ only by small timing
        shifts (the Table II residual), never by waveform shape."""
        circuit, compiled, pairs, config = setup
        sim = GpuWaveSim(circuit, library, config=config, compiled=compiled)
        static = sim.run(pairs)
        parametric = sim.run(pairs, kernel_table=kernel_table)
        strict = compare_results(static, parametric)
        assert strict.shape_clean
        assert 0 < strict.max_time_shift < 50e-12
        # within a generous tolerance the runs agree completely
        loose = compare_results(static, parametric, time_tolerance=50e-12)
        assert not loose.mismatches

    def test_detects_shape_difference(self, setup, library):
        """Transport vs inertial filtering changes waveform shapes."""
        circuit, compiled, pairs, _config = setup
        transport = GpuWaveSim(
            circuit, library, compiled=compiled,
            config=SimulationConfig(record_all_nets=True,
                                    pulse_filtering="transport")).run(pairs)
        inertial = GpuWaveSim(
            circuit, library, compiled=compiled,
            config=SimulationConfig(record_all_nets=True,
                                    pulse_filtering="inertial")).run(pairs)
        report = compare_results(transport, inertial, time_tolerance=1.0)
        kinds = {m.kind for m in report.mismatches}
        assert kinds <= {"shape"}

    def test_worst_ranking(self, setup, library, kernel_table):
        circuit, compiled, pairs, config = setup
        sim = GpuWaveSim(circuit, library, config=config, compiled=compiled)
        report = compare_results(sim.run(pairs),
                                 sim.run(pairs, kernel_table=kernel_table))
        worst = report.worst(3)
        assert len(worst) <= 3
        shifts = [m.max_shift for m in worst]
        assert shifts == sorted(shifts, reverse=True)

    def test_slot_count_mismatch(self, setup, library):
        circuit, compiled, pairs, config = setup
        sim = GpuWaveSim(circuit, library, config=config, compiled=compiled)
        with pytest.raises(SimulationError):
            compare_results(sim.run(pairs), sim.run(pairs[:3]))


class TestArrivalShifts:
    def test_voltage_shift_signs(self, setup, library, kernel_table):
        circuit, compiled, pairs, config = setup
        sim = GpuWaveSim(circuit, library, config=config, compiled=compiled)
        nominal = sim.run(pairs, voltage=0.8, kernel_table=kernel_table)
        slow = sim.run(pairs, voltage=0.6, kernel_table=kernel_table)
        shifts = arrival_shifts(nominal, slow, circuit.outputs)
        assert shifts.shape == (len(pairs),)
        # Dominantly positive: 0.6 V arrivals come later.  Individual
        # patterns may shift negative when the wider inertial window at
        # low voltage swallows a late glitch entirely.
        assert np.mean(shifts) > 0
        assert np.max(shifts) > 0
        assert np.sum(shifts > 0) >= 0.6 * len(shifts)
