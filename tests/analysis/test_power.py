"""Tests for dynamic power estimation."""

import numpy as np
import pytest

from repro.analysis.activity import ActivityReport
from repro.analysis.power import dynamic_power
from repro.errors import SimulationError


def report(num_slots=2):
    return ActivityReport(
        num_slots=num_slots,
        toggles={"a": 4, "b": 2},
        functional={"a": 2, "b": 2},
        glitches={"a": 2, "b": 0},
    )


LOADS = {"a": 2e-15, "b": 1e-15}


class TestArithmetic:
    def test_energy_formula(self):
        power = dynamic_power(report(), LOADS, voltage=1.0)
        # E = 0.5 * V^2 * (C_a*4 + C_b*2) / slots
        expected = 0.5 * (2e-15 * 4 + 1e-15 * 2) / 2
        assert power.energy_per_pattern == pytest.approx(expected)
        glitch = 0.5 * (2e-15 * 2) / 2
        assert power.glitch_energy_per_pattern == pytest.approx(glitch)
        assert power.glitch_fraction == pytest.approx(glitch / expected)

    def test_scales_with_v_squared(self):
        low = dynamic_power(report(), LOADS, voltage=0.5)
        high = dynamic_power(report(), LOADS, voltage=1.0)
        assert high.energy_per_pattern == pytest.approx(
            4 * low.energy_per_pattern)

    def test_power_with_frequency(self):
        result = dynamic_power(report(), LOADS, voltage=1.0, frequency=1e9)
        assert result.power == pytest.approx(result.energy_per_pattern * 1e9)
        assert dynamic_power(report(), LOADS, voltage=1.0).power is None

    def test_missing_loads_skipped(self):
        partial = dynamic_power(report(), {"a": 2e-15}, voltage=1.0)
        full = dynamic_power(report(), LOADS, voltage=1.0)
        assert partial.energy_per_pattern < full.energy_per_pattern

    def test_zero_activity(self):
        empty = ActivityReport(num_slots=1, toggles={}, functional={},
                               glitches={})
        result = dynamic_power(empty, LOADS, voltage=1.0)
        assert result.energy_per_pattern == 0.0
        assert result.glitch_fraction == 0.0

    def test_voltage_validation(self):
        with pytest.raises(SimulationError):
            dynamic_power(report(), LOADS, voltage=0.0)
