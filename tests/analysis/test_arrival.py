"""Tests for latest-transition arrival extraction (Table II metric)."""

import numpy as np
import pytest

from repro.analysis.arrival import latest_arrivals
from repro.netlist.generate import random_circuit
from repro.simulation.base import PatternPair
from repro.simulation.gpu import GpuWaveSim
from repro.simulation.grid import SlotPlan


@pytest.fixture(scope="module")
def sweep(library, kernel_table):
    circuit = random_circuit("arr", 12, 250, seed=6)
    rng = np.random.default_rng(1)
    pairs = [PatternPair.random(12, rng) for _ in range(10)]
    voltages = [0.55, 0.7, 0.8, 1.1]
    plan = SlotPlan.cross(len(pairs), voltages)
    sim = GpuWaveSim(circuit, library)
    result = sim.run(pairs, plan=plan, kernel_table=kernel_table)
    return circuit, plan, result, voltages


class TestExtraction:
    def test_per_voltage_report(self, sweep):
        circuit, plan, result, voltages = sweep
        report = latest_arrivals(result, circuit, plan=plan)
        assert report.voltages() == sorted(voltages)
        for voltage in voltages:
            assert np.isfinite(report.at(voltage))

    def test_monotone_voltage_dependence(self, sweep):
        circuit, plan, result, voltages = sweep
        report = latest_arrivals(result, circuit, plan=plan)
        ordered = [report.at(v) for v in sorted(voltages)]
        assert ordered == sorted(ordered, reverse=True)

    def test_critical_slot_consistent(self, sweep):
        circuit, plan, result, voltages = sweep
        report = latest_arrivals(result, circuit, plan=plan)
        for voltage in voltages:
            slot = report.critical_slot[voltage]
            assert result.latest_arrival(slot, circuit.outputs) == \
                pytest.approx(report.at(voltage))
            assert plan.voltages[slot] == pytest.approx(voltage)

    def test_relative_to(self, sweep):
        circuit, plan, result, voltages = sweep
        report = latest_arrivals(result, circuit, plan=plan)
        assert report.relative_to(report.at(0.8), 0.8) == pytest.approx(0.0)
        assert report.relative_to(report.at(0.8), 0.55) > 0

    def test_unknown_voltage(self, sweep):
        circuit, plan, result, voltages = sweep
        report = latest_arrivals(result, circuit, plan=plan)
        with pytest.raises(KeyError):
            report.at(0.95)

    def test_without_plan_uses_labels(self, sweep):
        circuit, plan, result, voltages = sweep
        report = latest_arrivals(result, circuit)
        for voltage in voltages:
            assert np.isfinite(report.at(voltage))
