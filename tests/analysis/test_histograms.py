"""Tests for distribution statistics over waveform populations."""

import numpy as np
import pytest

from repro.analysis.histograms import (
    arrival_histogram,
    pulse_width_histogram,
    toggles_per_level,
)
from repro.errors import SimulationError
from repro.netlist.generate import random_circuit
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.gpu import GpuWaveSim
from repro.simulation.variation import ProcessVariation


@pytest.fixture(scope="module")
def mc_result(library, kernel_table):
    circuit = random_circuit("hist", 12, 250, seed=13)
    sim = GpuWaveSim(circuit, library,
                     config=SimulationConfig(record_all_nets=True))
    rng = np.random.default_rng(13)
    pairs = [PatternPair.random(12, rng) for _ in range(40)]
    result = sim.run(pairs, kernel_table=kernel_table,
                     variation=ProcessVariation(sigma=0.05, seed=5))
    return circuit, result


class TestArrivalHistogram:
    def test_statistics_consistent(self, mc_result):
        circuit, result = mc_result
        hist = arrival_histogram(result, circuit.outputs, bins=12)
        assert hist.samples <= result.num_slots
        assert hist.minimum <= hist.mean <= hist.maximum
        assert hist.counts.sum() == hist.samples
        assert len(hist.edges) == len(hist.counts) + 1

    def test_percentiles_ordered(self, mc_result):
        circuit, result = mc_result
        hist = arrival_histogram(result, circuit.outputs)
        p10 = hist.percentile(10)
        p50 = hist.percentile(50)
        p95 = hist.percentile(95)
        assert p10 <= p50 <= p95
        with pytest.raises(ValueError):
            hist.percentile(150)

    def test_slot_subset(self, mc_result):
        circuit, result = mc_result
        subset = arrival_histogram(result, circuit.outputs, slots=range(5))
        assert subset.samples <= 5

    def test_ascii_rendering(self, mc_result):
        circuit, result = mc_result
        text = arrival_histogram(result, circuit.outputs, bins=5).format()
        assert text.count("\n") == 4
        assert "ps |" in text


class TestPulseWidthHistogram:
    def test_inertial_cutoff(self, mc_result):
        """Inertial filtering guarantees no sub-cutoff pulses survive
        anywhere near zero width."""
        circuit, result = mc_result
        hist = pulse_width_histogram(result)
        assert hist.minimum > 0
        assert hist.samples > 0

    def test_empty_raises(self, library):
        circuit = random_circuit("quiet", 6, 30, seed=1)
        sim = GpuWaveSim(circuit, library,
                         config=SimulationConfig(record_all_nets=True))
        v = np.zeros(6, dtype=np.uint8)
        result = sim.run([PatternPair(v1=v, v2=v.copy())])
        with pytest.raises(SimulationError, match="no pulses"):
            pulse_width_histogram(result)


class TestTogglesPerLevel:
    def test_covers_levels(self, mc_result):
        circuit, result = mc_result
        profile = toggles_per_level(result, circuit)
        assert 0 in profile  # primary inputs toggle at launch
        assert max(profile) <= circuit.depth
        total = sum(profile.values())
        expected = sum(result.total_transitions(slot)
                       for slot in range(result.num_slots))
        assert total == expected

    def test_slot_subset_scales_down(self, mc_result):
        circuit, result = mc_result
        full = toggles_per_level(result, circuit)
        half = toggles_per_level(result, circuit, slots=range(10))
        assert sum(half.values()) < sum(full.values())
