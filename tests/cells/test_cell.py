"""Tests for repro.cells.cell — cell and pin datatypes."""

import pytest

from repro.cells.cell import Cell, CellPin, DrivePolarity
from repro.units import FF


def make_nand2(strength: float = 1.0) -> Cell:
    pins = (
        CellPin(name="A1", index=0, input_cap=0.6 * FF),
        CellPin(name="A2", index=1, input_cap=0.6 * FF, parasitic_weight=1.06),
    )
    return Cell(name=f"NAND2_X{strength:g}", family="NAND2", strength=strength,
                pins=pins, output="ZN", parasitic=2.0)


class TestDrivePolarity:
    def test_stable_indices(self):
        assert int(DrivePolarity.RISE) == 0
        assert int(DrivePolarity.FALL) == 1

    def test_symbols(self):
        assert DrivePolarity.RISE.symbol == "r"
        assert DrivePolarity.FALL.symbol == "f"


class TestCell:
    def test_basic_properties(self):
        cell = make_nand2()
        assert cell.num_inputs == 2
        assert cell.is_inverting
        assert cell.pin_names() == ("A1", "A2")
        assert cell.function.name == "NAND2"

    def test_evaluate(self):
        cell = make_nand2()
        assert cell.evaluate([1, 1]) == 0
        assert cell.evaluate([0, 1]) == 1

    def test_pin_lookup(self):
        cell = make_nand2()
        assert cell.pin("A2").index == 1
        with pytest.raises(KeyError, match="no input pin"):
            cell.pin("B")

    def test_arity_mismatch_rejected(self):
        pins = (CellPin(name="A", index=0, input_cap=1e-15),)
        with pytest.raises(ValueError, match="arity"):
            Cell(name="BAD", family="NAND2", strength=1.0, pins=pins)

    def test_bad_pin_indices_rejected(self):
        pins = (
            CellPin(name="A1", index=0, input_cap=1e-15),
            CellPin(name="A2", index=2, input_cap=1e-15),
        )
        with pytest.raises(ValueError, match="pin indices"):
            Cell(name="BAD", family="NAND2", strength=1.0, pins=pins)

    def test_frozen(self):
        cell = make_nand2()
        with pytest.raises(AttributeError):
            cell.strength = 4.0
