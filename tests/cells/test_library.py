"""Tests for repro.cells.library — the cell-library container."""

import pytest

from repro.cells.cell import Cell, CellPin
from repro.cells.library import CellLibrary
from repro.errors import LibraryError, UnknownCellError


def inv(name="INV_X1", strength=1.0) -> Cell:
    return Cell(name=name, family="INV", strength=strength,
                pins=(CellPin(name="A", index=0, input_cap=1e-15),),
                output="ZN")


class TestContainer:
    def test_add_and_lookup(self):
        lib = CellLibrary("t")
        cell = lib.add(inv())
        assert lib["INV_X1"] is cell
        assert "INV_X1" in lib
        assert len(lib) == 1

    def test_duplicate_rejected(self):
        lib = CellLibrary("t", [inv()])
        with pytest.raises(LibraryError, match="duplicate"):
            lib.add(inv())

    def test_unknown_cell_error(self):
        lib = CellLibrary("t")
        with pytest.raises(UnknownCellError):
            lib["NAND2_X1"]
        assert lib.get("NAND2_X1") is None

    def test_type_ids_stable(self):
        lib = CellLibrary("t", [inv("INV_X1", 1), inv("INV_X2", 2)])
        assert lib.type_id("INV_X1") == 0
        assert lib.type_id("INV_X2") == 1
        assert lib.cell_by_type_id(1).name == "INV_X2"

    def test_cell_by_bad_type_id(self):
        lib = CellLibrary("t", [inv()])
        with pytest.raises(LibraryError, match="out of range"):
            lib.cell_by_type_id(5)

    def test_families_and_members(self, library):
        assert "NAND2" in library.families()
        members = library.members("NAND2")
        strengths = [cell.strength for cell in members]
        assert strengths == sorted(strengths)

    def test_select_subset(self, library):
        subset = library.select(["INV", "BUF"])
        assert set(subset.families()) == {"INV", "BUF"}
        with pytest.raises(LibraryError, match="not in library"):
            library.select(["INV", "FLUXCAP"])


class TestSerialization:
    def test_json_round_trip(self, library):
        restored = CellLibrary.from_json(library.to_json())
        assert restored.names() == library.names()
        for name in library.names():
            original = library[name]
            copy = restored[name]
            assert copy.family == original.family
            assert copy.strength == original.strength
            assert copy.parasitic == original.parasitic
            assert [p.input_cap for p in copy.pins] == [
                p.input_cap for p in original.pins
            ]

    def test_save_load(self, library, tmp_path):
        path = str(tmp_path / "lib.json")
        library.save(path)
        restored = CellLibrary.load(path)
        assert restored.names() == library.names()
        # type ids must survive the round trip (kernel tables rely on them)
        for name in library.names():
            assert restored.type_id(name) == library.type_id(name)
