"""Tests for repro.cells.logic — boolean function registry."""

import numpy as np
import pytest

from repro.cells.logic import FUNCTIONS, LogicFunction, get_function, register_function


class TestTruthTables:
    @pytest.mark.parametrize("name, expected", [
        ("BUF", (0, 1)),
        ("INV", (1, 0)),
        ("AND2", (0, 0, 0, 1)),
        ("OR2", (0, 1, 1, 1)),
        ("NAND2", (1, 1, 1, 0)),
        ("NOR2", (1, 0, 0, 0)),
        ("XOR2", (0, 1, 1, 0)),
        ("XNOR2", (1, 0, 0, 1)),
    ])
    def test_two_input_tables(self, name, expected):
        assert get_function(name).truth_table() == expected

    def test_and3(self):
        table = get_function("AND3").truth_table()
        assert table == (0, 0, 0, 0, 0, 0, 0, 1)

    def test_nand4_only_all_ones_low(self):
        table = get_function("NAND4").truth_table()
        assert table[-1] == 0
        assert all(v == 1 for v in table[:-1])

    def test_aoi21(self):
        f = get_function("AOI21")
        # ZN = !((A1 & A2) | B)
        assert f.evaluate([1, 1, 0]) == 0
        assert f.evaluate([0, 1, 0]) == 1
        assert f.evaluate([0, 0, 1]) == 0

    def test_oai22(self):
        f = get_function("OAI22")
        # ZN = !((A1 | A2) & (B1 | B2))
        assert f.evaluate([0, 0, 1, 1]) == 1
        assert f.evaluate([1, 0, 0, 1]) == 0

    def test_mux2(self):
        f = get_function("MUX2")
        # Z = S ? B : A
        assert f.evaluate([1, 0, 0]) == 1
        assert f.evaluate([1, 0, 1]) == 0
        assert f.evaluate([0, 1, 1]) == 1


class TestEvaluate:
    def test_scalar_masking(self):
        inv = get_function("INV")
        assert inv.evaluate([0]) == 1
        assert inv.evaluate([1]) == 0

    def test_word_masking(self):
        nand = get_function("NAND2")
        mask = (1 << 64) - 1
        a = 0b1100
        b = 0b1010
        assert nand.evaluate([a, b], mask=mask) == (~(a & b)) & mask

    def test_numpy_arrays(self):
        xor = get_function("XOR2")
        a = np.array([0, 0, 1, 1], dtype=np.uint8)
        b = np.array([0, 1, 0, 1], dtype=np.uint8)
        result = xor.evaluate([a, b], mask=np.uint8(1))
        assert list(result) == [0, 1, 1, 0]

    def test_wrong_arity_raises(self):
        with pytest.raises(ValueError, match="expects 2 inputs"):
            get_function("AND2").evaluate([1])


class TestUnateness:
    def test_and_positive(self):
        assert get_function("AND2").unateness(0) == "positive"
        assert get_function("AND2").unateness(1) == "positive"

    def test_nand_negative(self):
        assert get_function("NAND3").unateness(2) == "negative"

    def test_inv_negative(self):
        assert get_function("INV").unateness(0) == "negative"

    def test_xor_binate(self):
        assert get_function("XOR2").unateness(0) == "binate"

    def test_mux_select_binate_data_positive(self):
        mux = get_function("MUX2")
        assert mux.unateness(0) == "positive"
        assert mux.unateness(1) == "positive"
        assert mux.unateness(2) == "binate"

    def test_aoi_negative(self):
        aoi = get_function("AOI21")
        assert all(aoi.unateness(i) == "negative" for i in range(3))


class TestRegistry:
    def test_all_registered(self):
        expected = {"BUF", "INV", "AND2", "AND3", "AND4", "OR2", "OR3", "OR4",
                    "NAND2", "NAND3", "NAND4", "NOR2", "NOR3", "NOR4",
                    "XOR2", "XNOR2", "AOI21", "AOI22", "OAI21", "OAI22", "MUX2"}
        assert expected <= set(FUNCTIONS)

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown logic function"):
            get_function("NAND17")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_function("INV", 1, lambda a: ~a)

    def test_inverting_flags(self):
        assert get_function("NAND2").inverting
        assert get_function("NOR4").inverting
        assert get_function("AOI22").inverting
        assert not get_function("AND2").inverting
        assert not get_function("XOR2").inverting
