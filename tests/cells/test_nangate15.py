"""Tests for the NanGate-15nm-like library builder."""

import pytest

from repro.cells.nangate15 import FIG4_FAMILIES, make_nangate15_library


class TestLibraryStructure:
    def test_fig4_families_present(self, library):
        assert set(FIG4_FAMILIES) <= set(library.families())

    def test_complex_gates_present(self, library):
        for family in ("AOI21", "AOI22", "OAI21", "OAI22", "MUX2", "XOR2"):
            assert library.members(family), family

    def test_inverter_strength_range(self, library):
        strengths = {cell.strength for cell in library.members("INV")}
        assert strengths == {1, 2, 4, 8, 16}

    def test_complex_gates_capped_at_x4(self, library):
        strengths = {cell.strength for cell in library.members("AOI22")}
        assert max(strengths) == 4

    def test_output_pin_naming(self, library):
        assert library["NAND2_X1"].output == "ZN"
        assert library["INV_X1"].output == "ZN"
        assert library["AND2_X1"].output == "Z"
        assert library["XOR2_X1"].output == "Z"

    def test_input_cap_scales_with_strength(self, library):
        x1 = library["NAND2_X1"].pins[0].input_cap
        x4 = library["NAND2_X4"].pins[0].input_cap
        assert x4 == pytest.approx(4 * x1)

    def test_stack_skew_increases_with_pin_index(self, library):
        cell = library["NAND4_X1"]
        weights = [pin.parasitic_weight for pin in cell.pins]
        assert weights == sorted(weights)
        assert weights[0] < weights[-1]

    def test_mux_select_lighter_than_data(self, library):
        mux = library["MUX2_X1"]
        assert mux.pin("S").input_cap < mux.pin("A").input_cap

    def test_subset_build(self):
        lib = make_nangate15_library(["INV", "NAND2"])
        assert set(lib.families()) == {"INV", "NAND2"}

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown cell families"):
            make_nangate15_library(["NAND9"])

    def test_logical_effort_values(self, library):
        # textbook logical-effort values (Sutherland et al.)
        assert library["INV_X1"].pins[0].effort == pytest.approx(1.0)
        assert library["NAND2_X1"].pins[0].effort == pytest.approx(4.0 / 3.0)
        assert library["NOR2_X1"].pins[0].effort == pytest.approx(5.0 / 3.0)

    def test_every_cell_validates_arity(self, library):
        for cell in library:
            assert cell.function.arity == cell.num_inputs
