"""Tests for the experiment harnesses (small, fast configurations)."""

import numpy as np
import pytest

from repro.experiments import fig4, fig5, table1, table2
from repro.experiments.common import (
    default_kernel_table,
    default_library,
    format_table,
)
from repro.experiments.paper_data import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    TABLE2_VOLTAGES,
)
from repro.experiments.workload import prepare_workload


class TestCommon:
    def test_default_library_cached(self):
        assert default_library() is default_library()

    def test_kernel_table_cached(self):
        assert default_kernel_table(3) is default_kernel_table(3)

    def test_format_table(self):
        text = format_table(["a", "bb"], [["1", "2"], ["33", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5


class TestPaperData:
    def test_table1_complete(self):
        assert len(PAPER_TABLE1) == 15
        assert PAPER_TABLE1["b18"].speedup == 1785

    def test_table2_complete(self):
        assert len(PAPER_TABLE2) == 15
        row = PAPER_TABLE2["s38584"]
        assert row.longest_path == pytest.approx(610.9e-12)
        assert row.arrivals[0.55] == pytest.approx(846.0e-12)
        # monotone decreasing arrivals with voltage wherever present
        for name, entry in PAPER_TABLE2.items():
            values = [entry.arrivals[v] for v in TABLE2_VOLTAGES
                      if entry.arrivals[v] is not None]
            assert values == sorted(values, reverse=True), name


class TestFig4:
    def test_small_run(self):
        result = fig4.run(orders=(1, 3), families=("INV", "NOR2"), grid=24)
        assert len(result.orders) == 2
        low = result.stats_for(1)
        high = result.stats_for(3)
        # INV: 5 strengths x 1 pin x 2 polarities; NOR2: 4 x 2 x 2
        assert low.num_entries == high.num_entries == 5 * 2 + 4 * 4
        # paper shape: errors shrink with order, coefficients grow
        assert high.avg_max < low.avg_max
        assert high.avg_mean < low.avg_mean
        assert high.coefficients == 16
        assert fig4.format_result(result)

    def test_paper_claims_at_n3(self):
        result = fig4.run(orders=(3,), families=("NOR2", "NAND2", "INV"),
                          grid=32)
        stats = result.stats_for(3)
        assert stats.avg_mean < 0.01      # mean well below 1 %
        assert stats.avg_std < 0.01       # stddev below 1 % for N >= 3
        assert stats.avg_max < 0.027      # below the paper's 2.7 %
        assert stats.worst_max < 0.0535   # below the paper's worst sample


class TestFig5:
    def test_matches_paper_magnitudes(self):
        result = fig5.run(grid=64)
        assert result.cell == "NOR2_X2"
        # paper: 0.38 % average, 2.41 % max — demand the same class
        assert result.avg_abs_error < 0.01
        assert result.max_abs_error < 0.025
        assert result.polynomial_surface.shape == (64, 64)
        assert fig5.format_result(result)

    def test_csv_dump(self, tmp_path):
        result = fig5.run(grid=8)
        path = tmp_path / "surface.csv"
        fig5.write_csv(result, str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 1 + 64
        assert lines[0].startswith("voltage,")


class TestWorkload:
    def test_prepare_small(self):
        workload = prepare_workload("s38417", scale=0.004)
        assert workload.name == "s38417"
        assert workload.num_pairs >= 16
        assert workload.atpg_used
        assert workload.patterns.count_by_source()
        # cached on second call
        assert prepare_workload("s38417", scale=0.004) is workload


class TestTables:
    def test_table1_tiny(self):
        result = table1.run(circuits=["s38417"], scale=0.004,
                            ed_max_pairs=4, repeats=1)
        row = result.rows[0]
        assert row.name == "s38417"
        assert row.pairs >= 16
        assert row.event_driven_seconds > 0
        assert row.proposed_seconds > 0
        assert row.speedup == pytest.approx(
            row.event_driven_seconds / row.proposed_seconds)
        assert table1.format_result(result)

    def test_table2_tiny(self):
        result = table2.run(circuits=["s38417"], scale=0.004)
        row = result.rows[0]
        assert row.monotone_decreasing()
        assert abs(row.nominal_vs_static) < 0.02  # sub-2% kernel residual
        assert row.longest_path >= row.arrivals[0.8] * 0.5
        assert table2.format_result(result)
