"""The public API surface must stay importable and coherent."""

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize("module", [
        "repro.cells", "repro.electrical", "repro.core", "repro.netlist",
        "repro.waveform", "repro.simulation", "repro.timing", "repro.atpg",
        "repro.analysis", "repro.avfs", "repro.experiments", "repro.cli",
    ])
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_no_accidental_shadowing(self):
        # names exported at top level must be the same objects as in their
        # home subpackages (guards against diverging duplicate definitions)
        from repro.simulation.gpu import GpuWaveSim
        from repro.core.delay_kernel import DelayKernelTable
        assert repro.GpuWaveSim is GpuWaveSim
        assert repro.DelayKernelTable is DelayKernelTable

    def test_docstrings_on_public_classes(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type):
                assert obj.__doc__, f"{name} lacks a docstring"


class TestResultHelpers:
    def test_simulation_result_methods(self, library, small_circuit, rng):
        import numpy as np
        from repro import GpuWaveSim, PatternPair, SimulationConfig

        pairs = [PatternPair.random(len(small_circuit.inputs), rng)
                 for _ in range(3)]
        result = GpuWaveSim(
            small_circuit, library,
            config=SimulationConfig(record_all_nets=True)).run(pairs)
        # default-nets latest arrival covers every recorded net
        assert result.latest_arrival(0) >= result.latest_arrival(
            0, small_circuit.outputs)
        assert result.total_transitions(0) >= 0
        values = result.final_values(0, small_circuit.outputs)
        assert values.dtype == np.uint8
        assert result.num_slots == 3
