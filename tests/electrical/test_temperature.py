"""Tests for temperature derating of the electrical model."""

import pytest

from repro.cells.cell import DrivePolarity
from repro.electrical.model import ElectricalModel, TransistorCorner
from repro.units import FF


def delay_at(corner, library, voltage):
    cell = library["INV_X1"]
    model = ElectricalModel(corner)
    return model.pin_delay(cell, cell.pins[0], DrivePolarity.RISE,
                           voltage, 4 * FF)


class TestTemperature:
    def test_hot_is_slower_at_high_voltage(self, library):
        cold = TransistorCorner.typical().at_temperature(-40.0)
        hot = TransistorCorner.typical().at_temperature(125.0)
        assert delay_at(hot, library, 1.1) > delay_at(cold, library, 1.1)

    def test_temperature_inversion_trend(self, library):
        """Near threshold, heat hurts far less than at strong overdrive
        (the temperature-inversion effect of nanometer nodes)."""
        cold = TransistorCorner.typical().at_temperature(-40.0)
        hot = TransistorCorner.typical().at_temperature(125.0)
        ratio_low_v = delay_at(hot, library, 0.55) / delay_at(cold, library, 0.55)
        ratio_high_v = delay_at(hot, library, 1.1) / delay_at(cold, library, 1.1)
        assert ratio_low_v < ratio_high_v

    def test_reference_temperature_is_identity(self, library):
        base = TransistorCorner.typical()
        same = base.at_temperature(25.0)
        assert delay_at(same, library, 0.8) == pytest.approx(
            delay_at(base, library, 0.8), rel=1e-9)

    def test_composes_with_process_corners(self, library):
        slow_hot = TransistorCorner.slow().at_temperature(125.0)
        fast_cold = TransistorCorner.fast().at_temperature(-40.0)
        # worst-worst must dominate best-best at nominal overdrive
        assert delay_at(slow_hot, library, 1.0) > delay_at(fast_cold, library, 1.0)
        assert slow_hot.name == "slow@125C"

    def test_range_validation(self):
        with pytest.raises(ValueError):
            TransistorCorner.typical().at_temperature(300.0)

    def test_characterization_across_temperature(self, library):
        """Per-temperature kernel tables stay in the Fig. 4 accuracy class."""
        from repro.core.characterization import characterize_pin
        from repro.core.parameters import ParameterSpace
        from repro.electrical.spice import AnalyticalSpice

        cell = library["NAND2_X1"]
        spice = AnalyticalSpice(TransistorCorner.typical().at_temperature(125.0))
        entry = characterize_pin(spice, cell, cell.pins[0], DrivePolarity.FALL,
                                 space=ParameterSpace.paper_default(), n=3)
        assert entry.evaluation_error(32)[2] < 0.05
