"""Tests for the analytical per-cell delay model (the SPICE substitute)."""

import numpy as np
import pytest

from repro.cells.cell import DrivePolarity
from repro.electrical.model import ElectricalModel, TransistorCorner
from repro.units import FF


@pytest.fixture(scope="module")
def model():
    return ElectricalModel()


@pytest.fixture(scope="module")
def noiseless_model():
    return ElectricalModel(TransistorCorner(noise=0.0))


class TestMonotonicity:
    def test_delay_decreases_with_voltage(self, noiseless_model, library):
        cell = library["NAND2_X1"]
        pin = cell.pins[0]
        voltages = np.linspace(0.5, 1.2, 20)
        delays = noiseless_model.pin_delay(cell, pin, DrivePolarity.RISE,
                                           voltages, 4 * FF)
        assert np.all(np.diff(delays) < 0)

    def test_delay_increases_with_load(self, noiseless_model, library):
        cell = library["NOR2_X2"]
        pin = cell.pins[0]
        loads = np.linspace(0.5, 128, 30) * FF
        delays = noiseless_model.pin_delay(cell, pin, DrivePolarity.FALL,
                                           0.8, loads)
        assert np.all(np.diff(delays) > 0)


class TestStructure:
    def test_rise_fall_asymmetry(self, noiseless_model, library):
        cell = library["INV_X1"]
        pin = cell.pins[0]
        rise = noiseless_model.pin_delay(cell, pin, DrivePolarity.RISE, 0.8, 4 * FF)
        fall = noiseless_model.pin_delay(cell, pin, DrivePolarity.FALL, 0.8, 4 * FF)
        assert rise != pytest.approx(fall, rel=1e-3)

    def test_pin_asymmetry(self, noiseless_model, library):
        cell = library["NAND4_X1"]
        first = noiseless_model.pin_delay(cell, cell.pins[0], DrivePolarity.FALL,
                                          0.8, 4 * FF)
        last = noiseless_model.pin_delay(cell, cell.pins[3], DrivePolarity.FALL,
                                         0.8, 4 * FF)
        assert last > first  # inner stack pins are slower

    def test_stronger_cell_is_faster_at_fixed_load(self, noiseless_model, library):
        weak = library["NAND2_X1"]
        strong = library["NAND2_X4"]
        d_weak = noiseless_model.pin_delay(weak, weak.pins[0], DrivePolarity.RISE,
                                           0.8, 8 * FF)
        d_strong = noiseless_model.pin_delay(strong, strong.pins[0],
                                             DrivePolarity.RISE, 0.8, 8 * FF)
        assert d_strong < d_weak

    def test_delays_in_picosecond_range(self, model, library):
        # 15nm-class cells driving femtofarad loads switch in picoseconds
        cell = library["INV_X1"]
        delay = model.pin_delay(cell, cell.pins[0], DrivePolarity.RISE, 0.8, 2 * FF)
        assert 0.5e-12 < delay < 100e-12

    def test_cell_delays_structure(self, model, library):
        cell = library["NAND3_X1"]
        pairs = model.cell_delays(cell, 0.8, 4 * FF)
        assert len(pairs) == 3
        for rise, fall in pairs:
            assert rise > 0 and fall > 0


class TestDeterminismAndNoise:
    def test_deterministic(self, model, library):
        cell = library["NOR2_X1"]
        pin = cell.pins[0]
        a = model.pin_delay(cell, pin, DrivePolarity.RISE, 0.73, 3.1 * FF)
        b = model.pin_delay(cell, pin, DrivePolarity.RISE, 0.73, 3.1 * FF)
        assert a == b

    def test_noise_small_and_bounded(self, library):
        clean = ElectricalModel(TransistorCorner(noise=0.0))
        noisy = ElectricalModel(TransistorCorner(noise=0.0012))
        cell = library["AND2_X1"]
        pin = cell.pins[0]
        voltages = np.linspace(0.55, 1.1, 12)
        a = clean.pin_delay(cell, pin, DrivePolarity.FALL, voltages, 4 * FF)
        b = noisy.pin_delay(cell, pin, DrivePolarity.FALL, voltages, 4 * FF)
        assert np.all(np.abs(b / a - 1.0) < 0.0013)

    def test_noise_differs_per_entry(self, model, library):
        cell = library["AND2_X1"]
        r = model.pin_delay(cell, cell.pins[0], DrivePolarity.RISE, 0.8, 4 * FF)
        f = model.pin_delay(cell, cell.pins[0], DrivePolarity.FALL, 0.8, 4 * FF)
        assert r != f


class TestValidation:
    def test_nonpositive_load_rejected(self, model, library):
        cell = library["INV_X1"]
        with pytest.raises(ValueError, match="positive"):
            model.pin_delay(cell, cell.pins[0], DrivePolarity.RISE, 0.8, 0.0)

    def test_scalar_vs_array_consistency(self, model, library):
        cell = library["OR2_X1"]
        pin = cell.pins[0]
        scalar = model.pin_delay(cell, pin, DrivePolarity.RISE, 0.8, 4 * FF)
        array = model.pin_delay(cell, pin, DrivePolarity.RISE,
                                np.asarray([0.8]), np.asarray([4 * FF]))
        assert scalar == pytest.approx(float(array[0]))
