"""Tests for process corners (SS/TT/FF) of the electrical model."""

import pytest

from repro.cells.cell import DrivePolarity
from repro.core.characterization import characterize_pin
from repro.core.parameters import ParameterSpace
from repro.electrical.model import ElectricalModel, TransistorCorner
from repro.electrical.spice import AnalyticalSpice
from repro.units import FF


class TestCorners:
    def test_corner_ordering(self, library):
        cell = library["NAND2_X1"]
        pin = cell.pins[0]
        slow = ElectricalModel(TransistorCorner.slow())
        typical = ElectricalModel(TransistorCorner.typical())
        fast = ElectricalModel(TransistorCorner.fast())
        for polarity in (DrivePolarity.RISE, DrivePolarity.FALL):
            d_slow = slow.pin_delay(cell, pin, polarity, 0.8, 4 * FF)
            d_typ = typical.pin_delay(cell, pin, polarity, 0.8, 4 * FF)
            d_fast = fast.pin_delay(cell, pin, polarity, 0.8, 4 * FF)
            assert d_slow > d_typ > d_fast

    def test_corner_names(self):
        assert TransistorCorner.slow().name == "slow"
        assert TransistorCorner.fast().name == "fast"
        assert TransistorCorner.typical().name == "typical"

    def test_scaled_preserves_noise_and_coupling(self):
        base = TransistorCorner(noise=0.002, coupling=0.05)
        derived = base.scaled("x", 1.1, 0.01)
        assert derived.noise == base.noise
        assert derived.coupling == base.coupling
        assert derived.rise_load.k == pytest.approx(base.rise_load.k * 1.1)
        assert derived.rise_load.vth == pytest.approx(base.rise_load.vth + 0.01)

    def test_slow_corner_more_voltage_sensitive(self, library):
        """Higher V_th makes low-voltage operation disproportionately slow —
        the reason worst-case AVFS characterization uses the SS corner."""
        cell = library["INV_X1"]
        pin = cell.pins[0]
        slow = ElectricalModel(TransistorCorner.slow())
        fast = ElectricalModel(TransistorCorner.fast())
        ratio_slow = (slow.pin_delay(cell, pin, DrivePolarity.RISE, 0.55, 4 * FF)
                      / slow.pin_delay(cell, pin, DrivePolarity.RISE, 1.1, 4 * FF))
        ratio_fast = (fast.pin_delay(cell, pin, DrivePolarity.RISE, 0.55, 4 * FF)
                      / fast.pin_delay(cell, pin, DrivePolarity.RISE, 1.1, 4 * FF))
        assert ratio_slow > ratio_fast

    def test_corner_characterization_flow(self, library):
        """Per-corner kernel tables come out of the same Fig. 1 flow."""
        cell = library["NOR2_X1"]
        space = ParameterSpace.paper_default()
        slow_entry = characterize_pin(
            AnalyticalSpice(TransistorCorner.slow()), cell, cell.pins[0],
            DrivePolarity.RISE, space=space, n=3)
        typ_entry = characterize_pin(
            AnalyticalSpice(TransistorCorner.typical()), cell, cell.pins[0],
            DrivePolarity.RISE, space=space, n=3)
        assert slow_entry.nominal_delay(4 * FF) > typ_entry.nominal_delay(4 * FF)
        # fit quality stays in the paper's class on every corner
        assert slow_entry.evaluation_error(32)[2] < 0.05
