"""Tests for the AnalyticalSpice sweep front end."""

import numpy as np
import pytest

from repro.cells.cell import DrivePolarity
from repro.electrical.spice import (
    NOMINAL_VOLTAGE,
    PAPER_LOADS,
    PAPER_VOLTAGES,
    AnalyticalSpice,
    DelayGrid,
)
from repro.units import FF


class TestPaperGrids:
    def test_voltage_grid_matches_paper(self):
        assert PAPER_VOLTAGES[0] == 0.55
        assert PAPER_VOLTAGES[-1] == 1.10
        assert len(PAPER_VOLTAGES) == 12
        steps = np.diff(PAPER_VOLTAGES)
        assert np.allclose(steps, 0.05)
        assert NOMINAL_VOLTAGE in PAPER_VOLTAGES

    def test_load_grid_matches_paper(self):
        assert len(PAPER_LOADS) == 9
        assert PAPER_LOADS[0] == pytest.approx(0.5 * FF)
        assert PAPER_LOADS[-1] == pytest.approx(128 * FF)
        ratios = np.asarray(PAPER_LOADS[1:]) / np.asarray(PAPER_LOADS[:-1])
        assert np.allclose(ratios, 2.0)


class TestDelayGrid:
    def test_shape_validation(self):
        with pytest.raises(ValueError, match="shape"):
            DelayGrid(voltages=np.asarray([0.6, 0.8]),
                      loads=np.asarray([1e-15]),
                      delays=np.zeros((3, 1)))

    def test_axis_monotonicity_required(self):
        with pytest.raises(ValueError, match="increasing"):
            DelayGrid(voltages=np.asarray([0.8, 0.6]),
                      loads=np.asarray([1e-15, 2e-15]),
                      delays=np.zeros((2, 2)))

    def test_delay_at_and_column(self, spice, library):
        cell = library["NAND2_X1"]
        grid = spice.sweep(cell, cell.pins[0], DrivePolarity.RISE)
        value = grid.delay_at(0.8, 2 * FF)
        column = grid.column(2 * FF)
        v_index = list(PAPER_VOLTAGES).index(0.8)
        assert column[v_index] == pytest.approx(value)
        with pytest.raises(KeyError):
            grid.delay_at(0.81, 2 * FF)
        with pytest.raises(KeyError):
            grid.column(3 * FF)


class TestSweep:
    def test_sweep_shape_and_values(self, library):
        spice = AnalyticalSpice()
        cell = library["NOR2_X2"]
        pin = cell.pins[1]
        grid = spice.sweep(cell, pin, DrivePolarity.FALL)
        assert grid.shape == (12, 9)
        direct = spice.model.pin_delay(cell, pin, DrivePolarity.FALL, 0.7, 8 * FF)
        assert grid.delay_at(0.7, 8 * FF) == pytest.approx(direct)

    def test_transient_run_accounting(self, library):
        spice = AnalyticalSpice()
        cell = library["INV_X1"]
        spice.measure(cell, cell.pins[0], DrivePolarity.RISE, 0.8, 2 * FF)
        assert spice.transient_runs == 1
        spice.sweep(cell, cell.pins[0], DrivePolarity.RISE)
        assert spice.transient_runs == 1 + 12 * 9

    def test_delay_evaluation_counter(self, library):
        spice = AnalyticalSpice()
        cell = library["INV_X1"]
        assert spice.delay_evaluations == 0
        spice.measure(cell, cell.pins[0], DrivePolarity.RISE, 0.8, 2 * FF)
        assert spice.delay_evaluations == 1
        spice.sweep(cell, cell.pins[0], DrivePolarity.FALL)
        assert spice.delay_evaluations == 1 + 12 * 9


class TestDelaysAt:
    def test_matches_pointwise_measurements(self, library):
        spice = AnalyticalSpice()
        cell = library["NAND2_X1"]
        pin = cell.pins[1]
        points = np.asarray([[0.6, 1 * FF], [0.8, 4 * FF], [1.05, 64 * FF]])
        batched = spice.delays_at(cell, pin, DrivePolarity.RISE, points)
        assert batched.shape == (3,)
        for k, (v, c) in enumerate(points):
            direct = spice.model.pin_delay(cell, pin, DrivePolarity.RISE, v, c)
            assert batched[k] == pytest.approx(direct)
        assert spice.delay_evaluations == 3

    def test_matches_sweep_grid(self, library):
        spice = AnalyticalSpice()
        cell = library["NOR2_X2"]
        pin = cell.pins[0]
        grid = spice.sweep(cell, pin, DrivePolarity.FALL)
        vv, cc = np.meshgrid(grid.voltages, grid.loads, indexing="ij")
        points = np.column_stack([vv.ravel(), cc.ravel()])
        batched = spice.delays_at(cell, pin, DrivePolarity.FALL, points)
        np.testing.assert_allclose(batched.reshape(grid.shape), grid.delays)

    def test_rejects_bad_point_shapes(self, library):
        spice = AnalyticalSpice()
        cell = library["INV_X1"]
        for bad in (np.zeros(4), np.zeros((2, 3)), np.zeros((2, 2, 1))):
            with pytest.raises(ValueError, match="shape"):
                spice.delays_at(cell, cell.pins[0], DrivePolarity.RISE, bad)

    def test_sweep_cell_covers_all_entries(self, library):
        spice = AnalyticalSpice()
        cell = library["NAND3_X1"]
        entries = list(spice.sweep_cell(cell))
        assert len(entries) == 3 * 2  # pins x polarities
        pins = [pin.name for pin, _, _ in entries]
        assert pins == ["A1", "A1", "A2", "A2", "A3", "A3"]
        polarities = [pol for _, pol, _ in entries[:2]]
        assert polarities == [DrivePolarity.RISE, DrivePolarity.FALL]
