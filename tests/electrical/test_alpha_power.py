"""Tests for the α-power-law time constants."""

import numpy as np
import pytest

from repro.electrical.alpha_power import AlphaPowerParams, time_constant
from repro.errors import ParameterError


class TestParams:
    def test_valid(self):
        params = AlphaPowerParams(k=1e-12, vth=0.3, alpha=1.3)
        assert params.k == 1e-12

    @pytest.mark.parametrize("kwargs", [
        {"k": 0.0, "vth": 0.3, "alpha": 1.3},
        {"k": -1e-12, "vth": 0.3, "alpha": 1.3},
        {"k": 1e-12, "vth": -0.1, "alpha": 1.3},
        {"k": 1e-12, "vth": 0.3, "alpha": 0.1},
        {"k": 1e-12, "vth": 0.3, "alpha": 3.0},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ParameterError):
            AlphaPowerParams(**kwargs)


class TestTimeConstant:
    def setup_method(self):
        self.params = AlphaPowerParams(k=1e-12, vth=0.25, alpha=1.2)

    def test_monotone_decreasing_in_voltage(self):
        voltages = np.linspace(0.4, 1.2, 30)
        taus = time_constant(voltages, self.params)
        assert np.all(np.diff(taus) < 0)

    def test_exact_value(self):
        v = 0.8
        expected = 1e-12 * v / (v - 0.25) ** 1.2
        assert time_constant(v, self.params) == pytest.approx(expected)

    def test_scalar_returns_float(self):
        assert isinstance(time_constant(0.8, self.params), float)

    def test_array_shape_preserved(self):
        v = np.asarray([[0.6, 0.8], [1.0, 1.1]])
        assert time_constant(v, self.params).shape == (2, 2)

    def test_below_threshold_raises(self):
        with pytest.raises(ParameterError, match="threshold"):
            time_constant(0.2, self.params)
        with pytest.raises(ParameterError):
            time_constant(np.asarray([0.8, 0.25]), self.params)

    def test_callable_shorthand(self):
        assert self.params(0.8) == time_constant(0.8, self.params)

    def test_blows_up_near_threshold(self):
        near = time_constant(0.26, self.params)
        far = time_constant(1.1, self.params)
        assert near > 40 * far
