"""Tests for the paper benchmark-suite registry."""

import pytest

from repro.netlist.suite import (
    BENCHMARK_SUITE,
    build_suite_circuit,
    scaled_pattern_count,
)


class TestRegistry:
    def test_all_fifteen_circuits(self):
        assert len(BENCHMARK_SUITE) == 15
        assert list(BENCHMARK_SUITE)[0] == "s38417"
        assert list(BENCHMARK_SUITE)[-1] == "p1522k"

    def test_paper_statistics(self):
        assert BENCHMARK_SUITE["s38417"].paper_nodes == 18999
        assert BENCHMARK_SUITE["s38417"].paper_pairs == 173
        assert BENCHMARK_SUITE["p951k"].paper_nodes == 1090419

    def test_false_path_markers(self):
        starred = {name for name, e in BENCHMARK_SUITE.items()
                   if e.false_paths_only}
        assert starred == {"b17", "b18", "b19", "p1522k"}

    def test_families(self):
        assert BENCHMARK_SUITE["s38584"].family == "iscas89"
        assert BENCHMARK_SUITE["b22"].family == "itc99"
        assert BENCHMARK_SUITE["p100k"].family == "industrial"


class TestBuild:
    def test_deterministic(self, library):
        a = build_suite_circuit("s38417", scale=0.01)
        b = build_suite_circuit("s38417", scale=0.01)
        assert [g.inputs for g in a.gates] == [g.inputs for g in b.gates]
        a.validate(library)

    def test_size_scales(self):
        small = build_suite_circuit("b17", scale=0.005)
        large = build_suite_circuit("b17", scale=0.02)
        assert large.num_nodes > 2 * small.num_nodes
        assert abs(large.num_nodes - 0.02 * 42779) < 0.25 * 0.02 * 42779

    def test_size_ordering_preserved(self):
        sizes = [build_suite_circuit(name, scale=0.005).num_nodes
                 for name in ("s38417", "b19", "p951k")]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_unknown_circuit(self):
        with pytest.raises(KeyError, match="unknown suite circuit"):
            build_suite_circuit("c9999")

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            build_suite_circuit("b17", scale=0.0)

    def test_min_gates_floor(self):
        tiny = build_suite_circuit("s38417", scale=1e-6, min_gates=64)
        assert tiny.num_gates >= 64


class TestPatternCounts:
    def test_gentler_than_node_scale(self):
        pairs = scaled_pattern_count("p35k", scale=0.02)
        assert pairs == int(3298 * 0.1)

    def test_capped_at_paper_count(self):
        assert scaled_pattern_count("s38417", scale=1.0) == 173

    def test_minimum(self):
        assert scaled_pattern_count("s38417", scale=1e-6) == 16
