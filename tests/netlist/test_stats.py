"""Tests for circuit statistics."""

import pytest

from repro.netlist.generate import c17, ripple_carry_adder
from repro.netlist.stats import circuit_stats


class TestStats:
    def test_c17(self):
        stats = circuit_stats(c17())
        assert stats.nodes == 5 + 6 + 2
        assert stats.num_gates == 6
        assert stats.depth == 3
        assert stats.cells_by_family == {"NAND2": 6}
        assert stats.avg_fanin == pytest.approx(2.0)

    def test_adder(self):
        width = 4
        stats = circuit_stats(ripple_carry_adder(width))
        assert stats.num_gates == 5 * width
        assert stats.num_inputs == 2 * width + 1
        assert stats.num_outputs == width + 1
        assert stats.depth >= width  # the carry chain dominates

    def test_summary_text(self):
        stats = circuit_stats(c17())
        text = stats.summary()
        assert "c17" in text
        assert "13 nodes" in text

    def test_max_fanout(self):
        stats = circuit_stats(c17())
        # G11 and G16 each feed two NAND gates
        assert stats.max_fanout == 2
