"""Tests for the structural Verilog reader/writer."""

import pytest

from repro.errors import ParseError
from repro.netlist.generate import c17, random_circuit
from repro.netlist.verilog import parse_verilog, write_verilog

SAMPLE = """
// sample netlist
module top (a, b, y);
  input a, b;
  output y;
  wire n1; /* internal */

  NAND2_X1 u1 (.A1(a), .A2(b), .ZN(n1));
  INV_X2   u2 (.A(n1), .ZN(y));
endmodule
"""


class TestParse:
    def test_sample(self, library):
        circuit = parse_verilog(SAMPLE, library)
        assert circuit.name == "top"
        assert circuit.inputs == ["a", "b"]
        assert circuit.outputs == ["y"]
        assert circuit.num_gates == 2
        assert circuit.gate("u1").inputs == ("a", "b")

    def test_out_of_order_connections(self, library):
        text = SAMPLE.replace(".A1(a), .A2(b)", ".A2(b), .A1(a)")
        circuit = parse_verilog(text, library)
        # pin order must follow the cell definition, not the source order
        assert circuit.gate("u1").inputs == ("a", "b")

    def test_unknown_cell(self, library):
        text = SAMPLE.replace("NAND2_X1", "SUPERNAND")
        with pytest.raises(ParseError, match="unknown cell"):
            parse_verilog(text, library)

    def test_unconnected_pin(self, library):
        text = SAMPLE.replace(".A2(b), ", "")
        with pytest.raises(ParseError, match="unconnected"):
            parse_verilog(text, library)

    def test_unknown_pin(self, library):
        text = SAMPLE.replace(".A2(b)", ".A2(b), .Q(b)")
        with pytest.raises(ParseError, match="unknown pins"):
            parse_verilog(text, library)

    def test_missing_module(self, library):
        with pytest.raises(ParseError, match="module"):
            parse_verilog("wire x;", library)

    def test_missing_endmodule(self, library):
        with pytest.raises(ParseError, match="endmodule"):
            parse_verilog("module m (a); input a;", library)

    def test_double_declaration(self, library):
        text = SAMPLE.replace("wire n1;", "wire n1; wire n1;")
        with pytest.raises(ParseError, match="declared twice"):
            parse_verilog(text, library)


class TestRoundTrip:
    def test_c17_round_trip(self, library):
        circuit = c17()
        text = write_verilog(circuit, library)
        reparsed = parse_verilog(text, library)
        assert reparsed.inputs == circuit.inputs
        assert reparsed.outputs == circuit.outputs
        assert [g.cell for g in reparsed.gates] == [g.cell for g in circuit.gates]
        assert [g.inputs for g in reparsed.gates] == [g.inputs for g in circuit.gates]

    def test_random_circuit_round_trip(self, library):
        circuit = random_circuit("rt", num_inputs=6, num_gates=40, seed=3)
        text = write_verilog(circuit, library)
        reparsed = parse_verilog(text, library)
        assert reparsed.num_gates == circuit.num_gates
        reparsed.validate(library)
        for original, copy in zip(circuit.gates, reparsed.gates):
            assert original.cell == copy.cell
            assert original.inputs == copy.inputs
            assert original.output == copy.output
