"""Tests for the SPEF-like parasitics writer/parser."""

import pytest

from repro.errors import ParseError
from repro.netlist.generate import c17, random_circuit
from repro.netlist.spef import parse_spef, write_spef
from repro.units import FF


class TestRoundTrip:
    def test_values_survive(self, library):
        circuit = random_circuit("spef", num_inputs=6, num_gates=40, seed=5)
        loads = circuit.net_loads(library)
        parsed = parse_spef(write_spef(circuit, loads))
        assert set(parsed) == set(loads)
        for net, cap in loads.items():
            assert parsed[net] == pytest.approx(cap, rel=1e-5)

    def test_header(self, library):
        circuit = c17()
        text = write_spef(circuit, circuit.net_loads(library))
        assert text.startswith('*SPEF')
        assert '*DESIGN "c17"' in text
        assert "*C_UNIT 1 FF" in text


class TestParse:
    def test_not_spef(self):
        with pytest.raises(ParseError, match="SPEF"):
            parse_spef("nope")

    def test_pf_unit(self):
        text = (
            '*SPEF "IEEE 1481"\n*DESIGN "x"\n*C_UNIT 1 PF\n\n'
            "*NAME_MAP\n*1 n1\n\n*D_NET *1 2.0\n*END\n"
        )
        parsed = parse_spef(text)
        assert parsed["n1"] == pytest.approx(2e-12)

    def test_unmapped_index(self):
        text = (
            '*SPEF "IEEE 1481"\n*C_UNIT 1 FF\n\n*NAME_MAP\n*1 n1\n\n'
            "*D_NET *7 2.0\n*END\n"
        )
        with pytest.raises(ParseError, match="unmapped"):
            parse_spef(text)

    def test_bad_name_map_entry(self):
        text = '*SPEF "x"\n*NAME_MAP\nthis is wrong\n*END\n'
        with pytest.raises(ParseError, match="name-map"):
            parse_spef(text)

    def test_loads_usable_for_simulation(self, library):
        """SPEF-provided loads feed the compiler exactly like computed ones."""
        from repro.simulation.compiled import compile_circuit
        circuit = c17()
        loads = circuit.net_loads(library)
        parsed = parse_spef(write_spef(circuit, loads))
        compiled = compile_circuit(circuit, library, loads=parsed)
        direct = compile_circuit(circuit, library, loads=loads)
        for a, b in zip(compiled.gate_loads, direct.gate_loads):
            assert a == pytest.approx(b, rel=1e-5)
