"""Tests for the structured block generators (decoder, comparator, shifter)."""

import numpy as np
import pytest

from repro.netlist.generate import barrel_shifter, decoder, equality_comparator
from repro.simulation.zero_delay import ZeroDelaySimulator


class TestDecoder:
    @pytest.mark.parametrize("bits", [1, 2, 3, 4])
    def test_one_hot_exhaustive(self, bits, library):
        circuit = decoder(bits)
        circuit.validate(library)
        sim = ZeroDelaySimulator(circuit, library)
        vectors = np.asarray(
            [[(v >> i) & 1 for i in range(bits)] for v in range(1 << bits)],
            dtype=np.uint8)
        outputs = sim.evaluate(vectors)
        for value in range(1 << bits):
            column = outputs[f"d{value}"]
            expected = np.zeros(1 << bits, dtype=np.uint8)
            expected[value] = 1
            np.testing.assert_array_equal(column, expected)

    def test_shallow_and_wide(self, library):
        circuit = decoder(5)
        from repro.netlist.stats import circuit_stats
        stats = circuit_stats(circuit)
        assert stats.depth <= 6
        assert stats.max_fanout >= 8  # input rails feed many AND trees

    def test_range_validation(self):
        with pytest.raises(ValueError):
            decoder(0)
        with pytest.raises(ValueError):
            decoder(9)


class TestComparator:
    @pytest.mark.parametrize("width", [1, 4, 7])
    def test_equality(self, width, library, rng):
        circuit = equality_comparator(width)
        sim = ZeroDelaySimulator(circuit, library)
        for _ in range(30):
            a = rng.integers(0, 2, size=width, dtype=np.uint8)
            if rng.random() < 0.5:
                b = a.copy()
            else:
                b = rng.integers(0, 2, size=width, dtype=np.uint8)
            vector = np.zeros((1, 2 * width), dtype=np.uint8)
            for i in range(width):
                vector[0, circuit.inputs.index(f"a{i}")] = a[i]
                vector[0, circuit.inputs.index(f"b{i}")] = b[i]
            result = sim.evaluate(vector)["eq"][0]
            assert result == int(np.array_equal(a, b))

    def test_validation(self):
        with pytest.raises(ValueError):
            equality_comparator(0)


class TestBarrelShifter:
    @pytest.mark.parametrize("width", [2, 4, 8])
    def test_rotation(self, width, library, rng):
        circuit = barrel_shifter(width)
        circuit.validate(library)
        sim = ZeroDelaySimulator(circuit, library)
        stages = width.bit_length() - 1
        for _ in range(20):
            data = rng.integers(0, 2, size=width, dtype=np.uint8)
            shift = int(rng.integers(0, width))
            vector = np.zeros((1, width + stages), dtype=np.uint8)
            for i in range(width):
                vector[0, circuit.inputs.index(f"d{i}")] = data[i]
            for k in range(stages):
                vector[0, circuit.inputs.index(f"s{k}")] = (shift >> k) & 1
            outputs = sim.evaluate(vector)
            for i in range(width):
                assert outputs[f"q{i}"][0] == data[(i - shift) % width], \
                    (width, shift, i)

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            barrel_shifter(6)
        with pytest.raises(ValueError):
            barrel_shifter(1)

    def test_uses_mux_cells(self, library):
        circuit = barrel_shifter(8)
        assert any(g.cell.startswith("MUX2") for g in circuit.gates)
