"""Tests for the SDF writer/parser and nominal annotation."""

import pytest

from repro.cells.cell import DrivePolarity
from repro.electrical.model import ElectricalModel
from repro.errors import ParseError
from repro.netlist.generate import c17, random_circuit
from repro.netlist.sdf import annotate_nominal, parse_sdf, write_sdf
from repro.units import PS


class TestAnnotate:
    def test_nominal_matches_electrical_model(self, library):
        circuit = c17()
        model = ElectricalModel()
        loads = circuit.net_loads(library)
        annotation = annotate_nominal(circuit, library, model=model, loads=loads)
        gate = circuit.gates[0]
        cell = library[gate.cell]
        rise, fall = annotation.gate_delays(gate.name)[0]
        assert rise == pytest.approx(
            model.pin_delay(cell, cell.pins[0], DrivePolarity.RISE, 0.8,
                            loads[gate.output]))
        assert fall == pytest.approx(
            model.pin_delay(cell, cell.pins[0], DrivePolarity.FALL, 0.8,
                            loads[gate.output]))

    def test_every_gate_annotated(self, library):
        circuit = random_circuit("sdf", num_inputs=6, num_gates=50, seed=1)
        annotation = annotate_nominal(circuit, library)
        assert len(annotation) == circuit.num_gates

    def test_missing_instance_raises(self, library):
        annotation = annotate_nominal(c17(), library)
        with pytest.raises(ParseError, match="no SDF annotation"):
            annotation.gate_delays("ghost")


class TestRoundTrip:
    def test_values_survive(self, library):
        circuit = random_circuit("sdf", num_inputs=6, num_gates=30, seed=2)
        annotation = annotate_nominal(circuit, library)
        text = write_sdf(circuit, library, annotation)
        parsed = parse_sdf(text, library)
        assert parsed.design == circuit.name
        assert len(parsed) == len(annotation)
        for gate in circuit.gates:
            for (r1, f1), (r2, f2) in zip(annotation.gate_delays(gate.name),
                                          parsed.gate_delays(gate.name)):
                # writer quantizes to 0.1 fs at 1 ps timescale
                assert r2 == pytest.approx(r1, abs=0.001 * PS)
                assert f2 == pytest.approx(f1, abs=0.001 * PS)

    def test_sdf_header_fields(self, library):
        circuit = c17()
        text = write_sdf(circuit, library, annotate_nominal(circuit, library))
        assert '(SDFVERSION "3.0")' in text
        assert "(TIMESCALE 1ps)" in text
        assert "(IOPATH A1 ZN" in text


class TestParseEdgeCases:
    def test_not_sdf(self, library):
        with pytest.raises(ParseError, match="DELAYFILE"):
            parse_sdf("hello", library)

    def test_nanosecond_timescale(self, library):
        circuit = c17()
        text = write_sdf(circuit, library, annotate_nominal(circuit, library))
        # Rescale to ns: same numbers now mean 1000x the delay.
        text_ns = text.replace("(TIMESCALE 1ps)", "(TIMESCALE 1ns)")
        ps_val = parse_sdf(text, library).gate_delays("g0")[0][0]
        ns_val = parse_sdf(text_ns, library).gate_delays("g0")[0][0]
        assert ns_val == pytest.approx(1000 * ps_val)

    def test_unknown_celltype(self, library):
        text = (
            '(DELAYFILE (SDFVERSION "3.0") (DESIGN "x") (TIMESCALE 1ps)\n'
            '  (CELL (CELLTYPE "MYSTERY_X1") (INSTANCE u0)\n'
            "    (DELAY (ABSOLUTE (IOPATH A Z (1:1:1) (1:1:1)))))\n)"
        )
        with pytest.raises(ParseError, match="unknown CELLTYPE"):
            parse_sdf(text, library)

    def test_missing_iopath(self, library):
        text = (
            '(DELAYFILE (SDFVERSION "3.0") (DESIGN "x") (TIMESCALE 1ps)\n'
            '  (CELL (CELLTYPE "NAND2_X1") (INSTANCE u0)\n'
            "    (DELAY (ABSOLUTE (IOPATH A1 ZN (1:1:1) (1:1:1)))))\n)"
        )
        with pytest.raises(ParseError, match="missing IOPATH"):
            parse_sdf(text, library)

    def test_single_value_triple(self, library):
        text = (
            '(DELAYFILE (SDFVERSION "3.0") (DESIGN "x") (TIMESCALE 1ps)\n'
            '  (CELL (CELLTYPE "INV_X1") (INSTANCE u0)\n'
            "    (DELAY (ABSOLUTE (IOPATH A ZN (2.5) (3.5)))))\n)"
        )
        parsed = parse_sdf(text, library)
        rise, fall = parsed.gate_delays("u0")[0]
        assert rise == pytest.approx(2.5 * PS)
        assert fall == pytest.approx(3.5 * PS)
