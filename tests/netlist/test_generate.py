"""Tests for the synthetic circuit generators."""

import numpy as np
import pytest

from repro.netlist.generate import (
    array_multiplier,
    parity_tree,
    random_circuit,
    ripple_carry_adder,
)
from repro.netlist.stats import circuit_stats
from repro.simulation.zero_delay import ZeroDelaySimulator


class TestRandomCircuit:
    def test_deterministic(self):
        a = random_circuit("a", 8, 100, seed=9)
        b = random_circuit("a", 8, 100, seed=9)
        assert [g.inputs for g in a.gates] == [g.inputs for g in b.gates]
        assert [g.cell for g in a.gates] == [g.cell for g in b.gates]

    def test_seed_changes_structure(self):
        a = random_circuit("a", 8, 100, seed=1)
        b = random_circuit("a", 8, 100, seed=2)
        assert [g.inputs for g in a.gates] != [g.inputs for g in b.gates]

    def test_counts(self):
        circuit = random_circuit("c", 12, 300, seed=0)
        assert len(circuit.inputs) == 12
        assert circuit.num_gates == 300

    def test_validates_against_library(self, library):
        circuit = random_circuit("c", 10, 200, seed=3)
        circuit.validate(library)

    def test_no_dangling_nets(self):
        circuit = random_circuit("c", 10, 150, seed=4)
        fanout = circuit.fanout()
        outputs = set(circuit.outputs)
        for net, sinks in fanout.items():
            assert sinks or net in outputs

    @pytest.mark.parametrize("target", [25, 50])
    def test_depth_calibration(self, target):
        circuit = random_circuit("d", 32, 3000, seed=1, target_depth=target)
        assert 0.6 * target <= circuit.depth <= 1.6 * target

    def test_realistic_output_fraction(self):
        circuit = random_circuit("c", 64, 2000, seed=6)
        stats = circuit_stats(circuit)
        # sink-preferring input selection keeps POs a small fraction
        assert stats.num_outputs < 0.15 * stats.num_gates

    def test_strength_restriction(self):
        circuit = random_circuit("c", 8, 100, seed=0, strengths=(1,))
        assert all(gate.cell.endswith("_X1") for gate in circuit.gates)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            random_circuit("c", 1, 10)
        with pytest.raises(ValueError):
            random_circuit("c", 4, 0)
        with pytest.raises(ValueError):
            random_circuit("c", 4, 10, strengths=(16,))


class TestAdder:
    @pytest.mark.parametrize("width", [1, 4, 8])
    def test_addition_exhaustive_or_sampled(self, width, library, rng):
        circuit = ripple_carry_adder(width)
        sim = ZeroDelaySimulator(circuit, library)
        trials = min(64, 4 ** width)
        for _ in range(trials):
            a = int(rng.integers(0, 2 ** width))
            b = int(rng.integers(0, 2 ** width))
            cin = int(rng.integers(0, 2))
            vector = np.zeros((1, 2 * width + 1), dtype=np.uint8)
            for i in range(width):
                vector[0, circuit.inputs.index(f"a{i}")] = (a >> i) & 1
                vector[0, circuit.inputs.index(f"b{i}")] = (b >> i) & 1
            vector[0, circuit.inputs.index("cin")] = cin
            outputs = sim.evaluate(vector)
            total = sum(int(outputs[f"s{i}"][0]) << i for i in range(width))
            carry_net = circuit.outputs[-1]
            total += int(outputs[carry_net][0]) << width
            assert total == a + b + cin

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            ripple_carry_adder(0)


class TestMultiplier:
    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_multiplication(self, width, library, rng):
        circuit = array_multiplier(width)
        sim = ZeroDelaySimulator(circuit, library)
        for _ in range(32):
            a = int(rng.integers(0, 2 ** width))
            b = int(rng.integers(0, 2 ** width))
            vector = np.zeros((1, 2 * width), dtype=np.uint8)
            for i in range(width):
                vector[0, circuit.inputs.index(f"a{i}")] = (a >> i) & 1
                vector[0, circuit.inputs.index(f"b{i}")] = (b >> i) & 1
            outputs = sim.evaluate(vector)
            product = 0
            for net in circuit.outputs:
                bit_index = int(net[1:])
                product |= int(outputs[net][0]) << bit_index
            assert product == a * b

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            array_multiplier(1)


class TestParityTree:
    @pytest.mark.parametrize("width", [2, 5, 16])
    def test_parity(self, width, library):
        circuit = parity_tree(width)
        sim = ZeroDelaySimulator(circuit, library)
        rng = np.random.default_rng(width)
        vectors = rng.integers(0, 2, size=(20, width), dtype=np.uint8)
        outputs = sim.evaluate(vectors)
        expected = np.bitwise_xor.reduce(vectors, axis=1)
        np.testing.assert_array_equal(outputs["parity"], expected)

    def test_logarithmic_depth(self):
        circuit = parity_tree(64)
        assert circuit.depth <= 8  # 6 XOR levels + output buffer
