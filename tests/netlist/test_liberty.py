"""Tests for Liberty export of per-voltage library views."""

import numpy as np
import pytest

from repro.cells.cell import DrivePolarity
from repro.errors import ParseError
from repro.netlist.liberty import parse_liberty, write_liberty
from repro.units import FF


@pytest.fixture(scope="module")
def nominal_lib(characterization):
    return write_liberty(characterization)


class TestWrite:
    def test_header(self, nominal_lib):
        assert nominal_lib.startswith("library (nangate15_0p80v)")
        assert 'time_unit : "1ps";' in nominal_lib
        assert "voltage_map (VDD, 0.80);" in nominal_lib

    def test_all_cells_present(self, nominal_lib, library):
        for cell in library:
            assert f"cell ({cell.name})" in nominal_lib

    def test_voltage_out_of_range(self, characterization):
        with pytest.raises(ParseError, match="outside"):
            write_liberty(characterization, voltage=1.5)


class TestRoundTrip:
    def test_pin_caps_survive(self, nominal_lib, library):
        parsed = parse_liberty(nominal_lib)
        nand = parsed["NAND2_X1"]
        cell = library["NAND2_X1"]
        assert nand["pins"]["A1"] == pytest.approx(cell.pins[0].input_cap,
                                                   rel=1e-3)

    def test_delays_match_kernels(self, nominal_lib, characterization):
        parsed = parse_liberty(nominal_lib)
        loads = parsed["__loads__"]
        entry = characterization.entry("NOR2_X2", "A1", DrivePolarity.RISE)
        table = parsed["NOR2_X2"]["timing"]["A1"]["rise"]
        expected = np.asarray([entry.delay(0.8, c) for c in loads])
        np.testing.assert_allclose(table, expected, rtol=1e-3)

    def test_per_voltage_views_differ_consistently(self, characterization):
        low = parse_liberty(write_liberty(characterization, voltage=0.6))
        high = parse_liberty(write_liberty(characterization, voltage=1.0))
        slow = low["INV_X1"]["timing"]["A"]["fall"]
        fast = high["INV_X1"]["timing"]["A"]["fall"]
        assert np.all(slow > fast)
        # the low-voltage view is slower by the physical ~30-60% range
        ratio = slow / fast
        assert np.all(ratio > 1.1) and np.all(ratio < 2.5)

    def test_monotone_in_load(self, nominal_lib):
        parsed = parse_liberty(nominal_lib)
        values = parsed["AND3_X1"]["timing"]["A2"]["rise"]
        assert np.all(np.diff(values) > 0)


class TestParseErrors:
    def test_not_liberty(self):
        with pytest.raises(ParseError):
            parse_liberty("hello world")

    def test_missing_template(self):
        with pytest.raises(ParseError, match="index_1"):
            parse_liberty("library (x) { }")
