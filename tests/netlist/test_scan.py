"""Tests for full-scan design support (LOC/LOS pattern construction)."""

import numpy as np
import pytest

from repro.errors import NetlistError, ParseError
from repro.netlist.scan import ScanDesign, counter_bench, parse_scan_bench
from repro.simulation.base import SimulationConfig
from repro.simulation.gpu import GpuWaveSim
from repro.simulation.zero_delay import ZeroDelaySimulator


@pytest.fixture(scope="module")
def counter(library):
    design = parse_scan_bench(counter_bench(4), name="cnt4")
    design.core.validate(library)
    return design


class TestParsing:
    def test_structure(self, counter):
        assert counter.num_flops == 4
        assert counter.primary_inputs == ["en"]
        assert len(counter.primary_outputs) == 4
        assert counter.flops[0] == ("q0", "d0")

    def test_combinational_text_rejected(self):
        with pytest.raises(ParseError, match="no DFFs"):
            parse_scan_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")

    def test_inconsistent_design_rejected(self, counter):
        with pytest.raises(NetlistError):
            ScanDesign(core=counter.core, flops=[("ghost", "d0")])


class TestNextState:
    @pytest.mark.parametrize("state, enabled, expected", [
        (0, 1, 1), (3, 1, 4), (7, 1, 8), (15, 1, 0),  # wraps
        (5, 0, 5),                                    # hold when disabled
    ])
    def test_counter_increments(self, counter, library, state, enabled,
                                expected):
        sim = ZeroDelaySimulator(counter.core, library)
        bits = np.asarray([(state >> k) & 1 for k in range(4)],
                          dtype=np.uint8)
        nxt = counter.next_state(sim, np.asarray([enabled], dtype=np.uint8),
                                 bits)
        value = sum(int(nxt[k]) << k for k in range(4))
        assert value == expected


class TestPatternConstruction:
    def test_loc_pair_semantics(self, counter, library):
        sim = ZeroDelaySimulator(counter.core, library)
        pair = counter.launch_on_capture(
            sim, np.asarray([1], dtype=np.uint8),
            np.asarray([1, 1, 0, 0], dtype=np.uint8))  # state 3 -> 4
        # v2's state bits must equal the next state
        index = {net: i for i, net in enumerate(counter.core.inputs)}
        v2_state = [int(pair.v2[index[q]]) for q, _ in counter.flops]
        assert sum(b << k for k, b in enumerate(v2_state)) == 4
        assert pair.launches_transition()

    def test_los_shift(self, counter):
        pair = counter.launch_on_shift(
            np.asarray([0], dtype=np.uint8),
            np.asarray([1, 0, 1, 0], dtype=np.uint8), scan_in=1)
        index = {net: i for i, net in enumerate(counter.core.inputs)}
        v2_state = [int(pair.v2[index[q]]) for q, _ in counter.flops]
        assert v2_state == [1, 1, 0, 1]

    def test_random_loc_set_simulates(self, counter, library):
        pairs = counter.random_loc_patterns(library, 12, seed=3)
        assert len(pairs) == 12
        sim = GpuWaveSim(counter.core, library,
                         config=SimulationConfig(record_all_nets=True))
        result = sim.run(pairs)
        # captured next-state at the D nets must match functional behaviour
        zd = ZeroDelaySimulator(counter.core, library)
        expected = zd.responses(np.stack([p.v2 for p in pairs]))
        for slot in range(len(pairs)):
            np.testing.assert_array_equal(
                result.final_values(slot, counter.core.outputs),
                expected[slot])

    def test_pack_validation(self, counter):
        with pytest.raises(NetlistError):
            counter.pack(np.zeros(2, dtype=np.uint8),
                         np.zeros(4, dtype=np.uint8))
        with pytest.raises(NetlistError):
            counter.pack(np.zeros(1, dtype=np.uint8),
                         np.zeros(3, dtype=np.uint8))


class TestCounterBench:
    def test_width_validation(self):
        with pytest.raises(ValueError):
            counter_bench(0)

    def test_single_bit(self, library):
        design = parse_scan_bench(counter_bench(1))
        design.core.validate(library)
        sim = ZeroDelaySimulator(design.core, library)
        nxt = design.next_state(sim, np.asarray([1], dtype=np.uint8),
                                np.asarray([0], dtype=np.uint8))
        assert nxt[0] == 1
