"""Tests for the ISCAS-89 .bench reader/writer."""

import numpy as np
import pytest

from repro.errors import ParseError
from repro.netlist.bench import parse_bench, write_bench
from repro.netlist.generate import c17
from repro.simulation.zero_delay import ZeroDelaySimulator


class TestParse:
    def test_c17_structure(self):
        circuit = c17()
        assert len(circuit.inputs) == 5
        assert len(circuit.outputs) == 2
        assert circuit.num_gates == 6
        assert all(gate.cell == "NAND2_X1" for gate in circuit.gates)

    def test_c17_function(self, library):
        circuit = c17()
        sim = ZeroDelaySimulator(circuit, library)
        # G22 = NAND(G10, G16); exhaustive check vs direct formula
        vectors = np.asarray(
            [[(i >> b) & 1 for b in range(5)] for i in range(32)], dtype=np.uint8
        )
        outputs = sim.evaluate(vectors)
        g1, g2, g3, g6, g7 = (vectors[:, k] for k in range(5))
        g10 = 1 - (g1 & g3)
        g11 = 1 - (g3 & g6)
        g16 = 1 - (g2 & g11)
        g19 = 1 - (g11 & g7)
        np.testing.assert_array_equal(outputs["G22"], 1 - (g10 & g16))
        np.testing.assert_array_equal(outputs["G23"], 1 - (g16 & g19))

    def test_comments_and_blank_lines(self):
        text = """
        # a comment
        INPUT(a)   # trailing comment

        OUTPUT(y)
        y = NOT(a)
        """
        circuit = parse_bench("\n".join(l.strip() for l in text.splitlines()))
        assert circuit.num_gates == 1
        assert circuit.gates[0].cell == "INV_X1"

    def test_strength_selection(self):
        circuit = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", strength=4)
        assert circuit.gates[0].cell == "INV_X4"

    def test_dff_full_scan_transform(self):
        text = (
            "INPUT(clkless)\n"
            "OUTPUT(out)\n"
            "q = DFF(d)\n"
            "d = AND(clkless, q)\n"
            "out = NOT(q)\n"
        )
        circuit = parse_bench(text)
        # q becomes a pseudo input; d becomes a pseudo output.
        assert "q" in circuit.inputs
        assert "d" in circuit.outputs
        circuit.levelize()  # must be acyclic after the transform

    def test_wide_gate_decomposition_preserves_function(self, library):
        text = (
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\n"
            "OUTPUT(y)\n"
            "y = NAND(a, b, c, d, e, f)\n"
        )
        circuit = parse_bench(text)
        assert all(len(g.inputs) <= 4 for g in circuit.gates)
        sim = ZeroDelaySimulator(circuit, library)
        vectors = np.asarray(
            [[(i >> k) & 1 for k in range(6)] for i in range(64)], dtype=np.uint8
        )
        outputs = sim.evaluate(vectors)
        expected = 1 - np.bitwise_and.reduce(vectors, axis=1)
        np.testing.assert_array_equal(outputs["y"], expected)

    def test_wide_xor_decomposition(self, library):
        text = ("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = XOR(a, b, c)\n")
        circuit = parse_bench(text)
        sim = ZeroDelaySimulator(circuit, library)
        vectors = np.asarray(
            [[(i >> k) & 1 for k in range(3)] for i in range(8)], dtype=np.uint8
        )
        outputs = sim.evaluate(vectors)
        expected = vectors[:, 0] ^ vectors[:, 1] ^ vectors[:, 2]
        np.testing.assert_array_equal(outputs["y"], expected)


class TestParseErrors:
    def test_garbage_line(self):
        with pytest.raises(ParseError, match="unrecognized"):
            parse_bench("INPUT(a)\nwat is this\n")

    def test_unknown_gate_type(self):
        with pytest.raises(ParseError, match="unknown bench gate type"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")

    def test_not_with_two_inputs(self):
        with pytest.raises(ParseError, match="one input"):
            parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a, b)\n")

    def test_error_carries_location(self):
        with pytest.raises(ParseError) as excinfo:
            parse_bench("INPUT(a)\nbad line\n", filename="x.bench")
        assert "x.bench:2" in str(excinfo.value)


class TestWrite:
    def test_round_trip(self, library):
        circuit = c17()
        text = write_bench(circuit)
        reparsed = parse_bench(text)
        assert reparsed.num_gates == circuit.num_gates
        assert reparsed.inputs == circuit.inputs
        assert reparsed.outputs == circuit.outputs

    def test_complex_cells_rejected(self, library):
        from repro.netlist.circuit import Circuit
        circuit = Circuit("aoi")
        for net in ("a", "b", "c"):
            circuit.add_input(net)
        circuit.add_gate("g0", "AOI21_X1", ["a", "b", "c"], "y")
        circuit.add_output("y")
        with pytest.raises(ParseError, match="no .bench equivalent"):
            write_bench(circuit)
