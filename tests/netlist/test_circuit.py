"""Tests for the circuit graph and levelization."""

import pytest

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit


def chain_circuit() -> Circuit:
    """a -> INV -> n0 -> INV -> n1 (output)."""
    circuit = Circuit("chain")
    circuit.add_input("a")
    circuit.add_gate("g0", "INV_X1", ["a"], "n0")
    circuit.add_gate("g1", "INV_X1", ["n0"], "n1")
    circuit.add_output("n1")
    return circuit


def diamond_circuit() -> Circuit:
    """Two parallel inverters reconverging in a NAND."""
    circuit = Circuit("diamond")
    circuit.add_input("a")
    circuit.add_gate("u", "INV_X1", ["a"], "top")
    circuit.add_gate("v", "INV_X2", ["a"], "bot")
    circuit.add_gate("w", "NAND2_X1", ["top", "bot"], "out")
    circuit.add_output("out")
    return circuit


class TestConstruction:
    def test_counts(self):
        circuit = diamond_circuit()
        assert circuit.num_gates == 3
        assert circuit.num_nodes == 1 + 3 + 1  # PI + cells + PO

    def test_duplicate_gate_name(self):
        circuit = chain_circuit()
        with pytest.raises(NetlistError, match="duplicate gate name"):
            circuit.add_gate("g0", "INV_X1", ["a"], "n9")

    def test_net_double_drive(self):
        circuit = chain_circuit()
        with pytest.raises(NetlistError, match="already driven"):
            circuit.add_gate("g9", "INV_X1", ["a"], "n0")
        with pytest.raises(NetlistError, match="already driven"):
            circuit.add_input("n1")

    def test_duplicate_output(self):
        circuit = chain_circuit()
        with pytest.raises(NetlistError, match="duplicate output"):
            circuit.add_output("n1")

    def test_gate_lookup(self):
        circuit = chain_circuit()
        assert circuit.gate("g1").cell == "INV_X1"
        with pytest.raises(NetlistError):
            circuit.gate("nope")

    def test_driver(self):
        circuit = chain_circuit()
        assert circuit.driver("a") is None
        assert circuit.driver("n0").name == "g0"
        assert circuit.is_input("a")
        assert not circuit.is_input("n0")
        with pytest.raises(NetlistError, match="undriven"):
            circuit.driver("ghost")


class TestLevelization:
    def test_chain_levels(self):
        levels = chain_circuit().levelize()
        assert [len(level) for level in levels] == [1, 1]
        assert chain_circuit().depth == 2

    def test_diamond_levels(self):
        circuit = diamond_circuit()
        levels = circuit.levelize()
        assert len(levels) == 2
        assert sorted(circuit.gates[i].name for i in levels[0]) == ["u", "v"]
        assert [circuit.gates[i].name for i in levels[1]] == ["w"]

    def test_topological_order_respects_dependencies(self):
        circuit = diamond_circuit()
        seen = set(circuit.inputs)
        for gate in circuit.topological_gates():
            assert all(net in seen for net in gate.inputs)
            seen.add(gate.output)

    def test_cycle_detection(self):
        circuit = Circuit("cyc")
        circuit.add_input("a")
        circuit.add_gate("g0", "NAND2_X1", ["a", "n1"], "n0")
        circuit.add_gate("g1", "INV_X1", ["n0"], "n1")
        circuit.add_output("n1")
        with pytest.raises(NetlistError, match="cycle"):
            circuit.levelize()

    def test_levels_cached_and_invalidated(self):
        circuit = chain_circuit()
        first = circuit.levelize()
        assert circuit.levelize() is first
        circuit.add_gate("g2", "INV_X1", ["n1"], "n2")
        assert circuit.depth == 3


class TestValidation:
    def test_undriven_input_net(self, library):
        circuit = Circuit("bad")
        circuit.add_input("a")
        circuit.add_gate("g0", "NAND2_X1", ["a", "ghost"], "n0")
        circuit.add_output("n0")
        with pytest.raises(NetlistError, match="undriven"):
            circuit.validate(library)

    def test_arity_mismatch(self, library):
        circuit = Circuit("bad")
        circuit.add_input("a")
        circuit.add_gate("g0", "NAND2_X1", ["a"], "n0")
        circuit.add_output("n0")
        with pytest.raises(NetlistError, match="pins"):
            circuit.validate(library)

    def test_no_outputs(self, library):
        circuit = Circuit("bad")
        circuit.add_input("a")
        circuit.add_gate("g0", "INV_X1", ["a"], "n0")
        with pytest.raises(NetlistError, match="no outputs"):
            circuit.validate(library)

    def test_undriven_output(self, library):
        circuit = Circuit("bad")
        circuit.add_input("a")
        circuit.add_gate("g0", "INV_X1", ["a"], "n0")
        circuit.add_output("n0")
        circuit.add_output("ghost")
        with pytest.raises(NetlistError, match="output net"):
            circuit.validate(library)


class TestLoadsAndFanout:
    def test_fanout_map(self):
        circuit = diamond_circuit()
        fanout = circuit.fanout()
        assert len(fanout["a"]) == 2
        assert {(g.name, pin) for g, pin in fanout["top"]} == {("w", 0)}
        assert fanout["out"] == []

    def test_net_loads(self, library):
        circuit = diamond_circuit()
        loads = circuit.net_loads(library)
        # 'a' drives two inverter pins plus two wire stubs.
        inv1 = library["INV_X1"].pins[0].input_cap
        inv2 = library["INV_X2"].pins[0].input_cap
        from repro.netlist.circuit import WIRE_CAP_PER_FANOUT, OUTPUT_PORT_CAP
        assert loads["a"] == pytest.approx(inv1 + inv2 + 2 * WIRE_CAP_PER_FANOUT)
        # output net carries the port capacitance
        assert loads["out"] == pytest.approx(OUTPUT_PORT_CAP)

    def test_copy_is_equal_structure(self):
        circuit = diamond_circuit()
        clone = circuit.copy("clone")
        assert clone.name == "clone"
        assert clone.num_nodes == circuit.num_nodes
        assert [g.name for g in clone.gates] == [g.name for g in circuit.gates]
