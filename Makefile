# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test lint bench bench-pytest chaos experiments examples clean

# Seeded delays-only chaos plan for `make chaos` / the CI chaos job:
# latency injection at every service/engine seam without altering
# results or dispatch counts, so the ordinary assertions still hold
# while every lock/timeout path runs under perturbed interleavings.
CHAOS_PLAN = seed=1;service.demux:delay@p=0.15,ms=2;engine.alloc:delay@p=0.05,ms=1;backend.run_levels:delay@p=0.1,ms=1;shard.dispatch:delay@p=0.1,ms=2;shard.spawn:delay@p=0.5,ms=5;charz.fit:delay@p=0.05,ms=1

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Critical-error lint gate (rule subset in pyproject.toml).
lint:
	$(PYTHON) -m ruff check src tests benchmarks examples

# Record the benchmark trajectory (BENCH_kernels.json) across the
# available compute backends and flag wall-time regressions.
bench:
	$(PYTHON) benchmarks/record.py

bench-pytest:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Service + fault suites under seeded latency injection (numpy backend).
# PYTHONPATH=src so the target works from a bare checkout too.
chaos:
	PYTHONPATH=src REPRO_BACKEND=numpy REPRO_FAULTS="$(CHAOS_PLAN)" \
		$(PYTHON) -m pytest tests/service tests/faults -q

# Regenerate every paper exhibit (Fig. 4/5, Table I/II).
experiments:
	$(PYTHON) -m repro.experiments.fig4
	$(PYTHON) -m repro.experiments.fig5
	$(PYTHON) -m repro.experiments.table1
	$(PYTHON) -m repro.experiments.table2

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/delay_characterization.py
	$(PYTHON) examples/avfs_exploration.py
	$(PYTHON) examples/glitch_power_analysis.py
	$(PYTHON) examples/timing_validation_flow.py

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
