"""Campaign checkpoint directory: chunk waveforms + manifest.

A campaign directory holds one ``manifest.json`` plus one ``.npz`` file
per completed slot-plane chunk:

* the manifest pins the campaign identity — a SHA-256 fingerprint over
  the compiled circuit, stimuli, slot plan, engine configuration,
  kernel table and variation model — together with the chunking so a
  resume run can prove it is continuing the *same* campaign and re-use
  the same chunk boundaries;
* each chunk file stores the per-slot waveforms in a flat columnar form
  (net names, initial values, toggle counts and one concatenated
  toggle-time vector), written atomically (temp file + ``os.replace``)
  so an interrupt can never leave a half-written chunk behind.

Corrupt or truncated chunk files are treated as *missing*: the loader
deletes them and the runner simply re-simulates those chunks — a crash
during checkpointing degrades to recomputation, never to wrong results.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Set

import numpy as np

from repro.errors import CheckpointError
from repro.runtime.fingerprint import campaign_fingerprint
from repro.waveform.waveform import Waveform

__all__ = ["CheckpointStore", "campaign_fingerprint", "MANIFEST_NAME"]

MANIFEST_NAME = "manifest.json"

#: Bumped whenever the chunk or manifest layout changes incompatibly.
FORMAT_VERSION = 1


class CheckpointStore:
    """File-backed chunk results for one campaign directory."""

    def __init__(self, directory) -> None:
        self.directory = Path(directory)

    # -- manifest -------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def load_manifest(self) -> Optional[dict]:
        """The stored manifest, or ``None`` for a fresh directory."""
        if not self.manifest_path.exists():
            return None
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as stream:
                manifest = json.load(stream)
        except (OSError, ValueError) as error:
            raise CheckpointError(
                f"unreadable campaign manifest {self.manifest_path}: {error}"
            ) from error
        if manifest.get("format_version") != FORMAT_VERSION:
            raise CheckpointError(
                f"campaign manifest {self.manifest_path} has format version "
                f"{manifest.get('format_version')!r}, expected {FORMAT_VERSION}"
            )
        return manifest

    def write_manifest(self, manifest: dict) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest = dict(manifest, format_version=FORMAT_VERSION)
        self._atomic_write(self.manifest_path,
                           json.dumps(manifest, indent=2).encode("utf-8"))

    # -- chunks ---------------------------------------------------------------

    def chunk_path(self, index: int) -> Path:
        return self.directory / f"chunk_{index:05d}.npz"

    def has_chunk(self, index: int) -> bool:
        return self.chunk_path(index).exists()

    def completed_chunks(self) -> Set[int]:
        """Indices of chunk files present in the directory."""
        found: Set[int] = set()
        if not self.directory.exists():
            return found
        for path in self.directory.glob("chunk_*.npz"):
            stem = path.stem.split("_", 1)[-1]
            if stem.isdigit():
                found.add(int(stem))
        return found

    def save_chunk(self, index: int,
                   waveforms: List[Dict[str, Waveform]]) -> None:
        """Persist one chunk's per-slot waveform dicts atomically."""
        if not waveforms:
            raise CheckpointError("cannot checkpoint an empty chunk")
        self.directory.mkdir(parents=True, exist_ok=True)
        nets = list(waveforms[0])
        num_slots = len(waveforms)
        initial = np.zeros((len(nets), num_slots), dtype=np.uint8)
        counts = np.zeros((len(nets), num_slots), dtype=np.int64)
        pieces: List[np.ndarray] = []
        for row, net in enumerate(nets):
            for slot in range(num_slots):
                try:
                    waveform = waveforms[slot][net]
                except KeyError:
                    raise CheckpointError(
                        f"chunk {index}: slot {slot} is missing net {net!r}"
                    ) from None
                initial[row, slot] = waveform.initial
                counts[row, slot] = waveform.num_transitions
                pieces.append(waveform.times)
        times = (np.concatenate(pieces) if pieces
                 else np.empty(0, dtype=np.float64))
        payload = {
            "nets": np.asarray(nets),
            "initial": initial,
            "counts": counts,
            "times": times,
        }
        target = self.chunk_path(index)
        handle, temp_name = tempfile.mkstemp(
            dir=str(self.directory), prefix=f".chunk_{index:05d}.",
            suffix=".tmp")
        try:
            with os.fdopen(handle, "wb") as stream:
                np.savez_compressed(stream, **payload)
            os.replace(temp_name, target)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def load_chunk(self, index: int,
                   expected_slots: int) -> List[Dict[str, Waveform]]:
        """Load one chunk; raises :class:`CheckpointError` on corruption."""
        path = self.chunk_path(index)
        try:
            with np.load(path, allow_pickle=False) as data:
                nets = [str(net) for net in data["nets"]]
                initial = data["initial"]
                counts = data["counts"]
                times = np.asarray(data["times"], dtype=np.float64)
        except (OSError, ValueError, KeyError) as error:
            raise CheckpointError(
                f"corrupt chunk file {path}: {error}"
            ) from error
        if initial.shape != (len(nets), expected_slots) or \
                counts.shape != (len(nets), expected_slots):
            raise CheckpointError(
                f"chunk file {path} holds {initial.shape[1] if initial.ndim == 2 else '?'} "
                f"slots, expected {expected_slots}"
            )
        if int(counts.sum()) != times.size:
            raise CheckpointError(
                f"chunk file {path} toggle payload is truncated"
            )
        result: List[Dict[str, Waveform]] = [dict() for _ in range(expected_slots)]
        offset = 0
        for row, net in enumerate(nets):
            for slot in range(expected_slots):
                count = int(counts[row, slot])
                result[slot][net] = Waveform.trusted(
                    int(initial[row, slot]),
                    times[offset:offset + count].copy(),
                )
                offset += count
        return result

    def try_load_chunk(self, index: int,
                       expected_slots: int) -> Optional[List[Dict[str, Waveform]]]:
        """Graceful loader: a corrupt chunk is deleted and reported as
        missing so the runner re-simulates it instead of aborting."""
        if not self.has_chunk(index):
            return None
        try:
            return self.load_chunk(index, expected_slots)
        except CheckpointError:
            try:
                os.unlink(self.chunk_path(index))
            except OSError:
                pass
            return None

    # -- helpers --------------------------------------------------------------

    def _atomic_write(self, path: Path, payload: bytes) -> None:
        handle, temp_name = tempfile.mkstemp(
            dir=str(self.directory), prefix=".manifest.", suffix=".tmp")
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(payload)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
