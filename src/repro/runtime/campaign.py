"""Fault-tolerant campaign runner for slot-plane sweeps.

Huge campaigns — thousands of stimuli × operating points, split into
chunks across worker processes — run for hours, and at that scale
partial failure is the norm: a worker segfaults or is OOM-killed, a
chunk overflows its waveform memory, the whole job is interrupted.
:class:`CampaignRunner` wraps the existing engines with the three
mechanisms that keep such a campaign alive:

1. **retry with backoff and degradation** — a failed chunk is retried
   with doubled waveform capacity and a halved memory budget; a chunk
   that keeps killing workers falls back to in-process
   :class:`~repro.simulation.gpu.GpuWaveSim` execution and, as a last
   resort, to the event-driven reference engine.  Every attempt is
   recorded in the run report, so degraded chunks are visible, not
   silent.
2. **checkpoint/resume** — completed chunks are persisted to a campaign
   directory (:mod:`repro.runtime.checkpoint`); an interrupted sweep
   re-runs only the missing chunks, after the manifest fingerprint
   proves the directory belongs to the same campaign.
3. **preflight validation** (:mod:`repro.runtime.preflight`) — the
   campaign is checked for knowable failure modes before the first
   worker spawns.

Chunk results are bit-identical to an uninterrupted single-device run
regardless of which path produced them: capacity growth re-runs are
exact, the engines agree float-for-float, and Monte-Carlo die factors
follow *global* slot indices through every fallback.
"""

from __future__ import annotations

import os
import time as _time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.cells.library import CellLibrary
from repro.core.delay_kernel import DelayKernelTable
from repro.errors import CampaignError, CheckpointError, ChunkExecutionError
from repro.faults.plan import WorkerDeathError
from repro.netlist.circuit import Circuit
from repro.runtime.checkpoint import CheckpointStore, campaign_fingerprint
from repro.runtime.preflight import validate_campaign
from repro.runtime.report import (
    ENGINE_EVENT_DRIVEN,
    ENGINE_IN_PROCESS,
    ENGINE_WORKER,
    AttemptReport,
    ChunkReport,
    RunReport,
)
from repro.simulation.backend import resolve_backend
from repro.simulation.base import PatternPair, SimulationConfig, SimulationResult
from repro.simulation.compiled import CompiledCircuit, compile_circuit
from repro.simulation.event_driven import EventDrivenSimulator
from repro.simulation.gpu import (
    DEFAULT_MEMORY_BUDGET,
    MAX_CAPACITY,
    GpuWaveSim,
    _BatchStats,
)
from repro.simulation.grid import SlotPlan
from repro.waveform.waveform import Waveform

__all__ = ["CampaignConfig", "CampaignRunner"]


@dataclass(frozen=True)
class CampaignConfig:
    """Operational policy of a campaign run.

    None of these knobs affect the computed waveforms — they only decide
    how the slot plane is partitioned, parallelized and healed — so they
    are excluded from the checkpoint fingerprint and may differ between
    the original run and a resume.

    Attributes
    ----------
    chunk_slots:
        Slots per chunk (the checkpointing and retry granularity).
    num_workers:
        Worker-process count; ``None`` uses the CPU count, ``0`` runs
        every chunk in-process (no pool — useful where ``fork`` is
        unavailable).
    max_worker_attempts:
        Worker-process attempts per chunk before degrading in-process.
    backoff_seconds / backoff_factor:
        Delay before retry ``k`` is ``backoff_seconds * backoff_factor**k``.
    degrade_in_process / degrade_event_driven:
        Enable the two fallback engines of the degradation ladder.
    preflight:
        Run :func:`~repro.runtime.preflight.validate_campaign` first.
    worker_fault:
        Test-only fault-injection hook, called as ``hook(chunk_index,
        attempt)`` inside the worker before simulating; it may raise or
        kill the process to exercise the recovery paths.  Must be
        picklable.
    """

    chunk_slots: int = 64
    num_workers: Optional[int] = None
    max_worker_attempts: int = 3
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    degrade_in_process: bool = True
    degrade_event_driven: bool = True
    preflight: bool = True
    worker_fault: Optional[Callable[[int, int], None]] = None

    def __post_init__(self) -> None:
        if self.chunk_slots < 1:
            raise CampaignError("chunk_slots must be positive")
        if self.num_workers is not None and self.num_workers < 0:
            raise CampaignError("num_workers must be >= 0")
        if self.max_worker_attempts < 0:
            raise CampaignError("max_worker_attempts must be >= 0")
        if self.backoff_seconds < 0 or self.backoff_factor < 1:
            raise CampaignError("invalid backoff policy")


def _campaign_chunk(
    compiled: CompiledCircuit,
    config: SimulationConfig,
    memory_budget: int,
    kernel_table: Optional[DelayKernelTable],
    pairs: Sequence[PatternPair],
    pattern_indices: np.ndarray,
    voltages: np.ndarray,
    variation,
    global_slots: np.ndarray,
    fault: Optional[Callable[[int, int], None]],
    chunk_index: int,
    attempt: int,
):
    """Worker entry point: one chunk through the public engine API."""
    if fault is not None:
        fault(chunk_index, attempt)
    engine = GpuWaveSim(compiled.circuit, compiled.library, config=config,
                        compiled=compiled, memory_budget=memory_budget)
    plan = SlotPlan(pattern_indices=pattern_indices, voltages=voltages)
    try:
        result = engine.run(pairs, plan=plan, kernel_table=kernel_table,
                            variation=variation, global_slots=global_slots)
    except WorkerDeathError:
        # Injected worker death (``die`` fault kind): make it real.  The
        # hard exit surfaces to the parent as a broken process pool —
        # exactly the failure the campaign retry ladder already absorbs.
        os._exit(1)
    return result.waveforms, engine.last_stats


def _merge_stats(target: _BatchStats, source: Optional[_BatchStats]) -> None:
    if source is None:
        return
    target.gate_evaluations += source.gate_evaluations
    target.kernel_calls += source.kernel_calls
    target.kernel_iterations += source.kernel_iterations
    target.retries += source.retries
    target.batches += source.batches
    target.lanes_skipped += source.lanes_skipped
    target.demotions.extend(source.demotions)
    target.delay_seconds += source.delay_seconds
    target.merge_seconds += source.merge_seconds
    target.pack_seconds += source.pack_seconds


class CampaignRunner:
    """Checkpointing, self-healing executor for slot-plane sweeps.

    Same result contract as :meth:`GpuWaveSim.run` /
    :meth:`MultiDeviceWaveSim.run`; additionally the returned
    :class:`SimulationResult` carries a
    :class:`~repro.runtime.report.RunReport` in ``result.report``.
    """

    def __init__(
        self,
        circuit: Circuit,
        library: CellLibrary,
        config: Optional[SimulationConfig] = None,
        campaign: Optional[CampaignConfig] = None,
        compiled: Optional[CompiledCircuit] = None,
        memory_budget: int = DEFAULT_MEMORY_BUDGET,
    ) -> None:
        self.config = config or SimulationConfig()
        self.campaign = campaign or CampaignConfig()
        self.compiled = compiled or compile_circuit(circuit, library)
        self.memory_budget = memory_budget

    # -- public API -----------------------------------------------------------

    def run(
        self,
        pairs: Sequence[PatternPair],
        plan: Optional[SlotPlan] = None,
        voltage: float = 0.8,
        kernel_table: Optional[DelayKernelTable] = None,
        variation=None,
        checkpoint_dir: Optional[str] = None,
    ) -> SimulationResult:
        """Run (or resume) a campaign over the slot plane.

        With ``checkpoint_dir`` the run is durable: completed chunks are
        persisted there and a re-invocation with the same inputs resumes
        by executing only the missing chunks.  A directory written by a
        *different* campaign (mismatching manifest fingerprint) raises
        :class:`~repro.errors.CheckpointError` instead of silently
        mixing results.
        """
        if not pairs:
            raise CampaignError("need at least one pattern pair")
        pairs = list(pairs)
        plan = plan or SlotPlan.uniform(len(pairs), voltage)
        if self.campaign.preflight:
            validate_campaign(self.compiled, pairs, plan, config=self.config,
                              kernel_table=kernel_table,
                              memory_budget=self.memory_budget)
        start = _time.perf_counter()

        chunk_slots = self.campaign.chunk_slots
        store: Optional[CheckpointStore] = None
        resumed = False
        if checkpoint_dir is not None:
            store = CheckpointStore(checkpoint_dir)
            fingerprint = campaign_fingerprint(
                self.compiled, pairs, plan, self.config, kernel_table,
                variation)
            manifest = store.load_manifest()
            if manifest is not None:
                if manifest.get("fingerprint") != fingerprint:
                    raise CheckpointError(
                        f"checkpoint directory {checkpoint_dir} belongs to a "
                        "different campaign (manifest fingerprint mismatch)"
                    )
                chunk_slots = int(manifest["chunk_slots"])
                resumed = True
            else:
                store.write_manifest({
                    "fingerprint": fingerprint,
                    "circuit": self.compiled.circuit.name,
                    "num_slots": plan.num_slots,
                    "chunk_slots": chunk_slots,
                    "num_chunks": -(-plan.num_slots // chunk_slots),
                    "pulse_filtering": self.config.pulse_filtering,
                    "record_all_nets": self.config.record_all_nets,
                    "delay_mode": ("static" if kernel_table is None
                                   else "parametric"),
                    "variation": variation is not None,
                })

        chunks = list(plan.batches(chunk_slots))
        report = RunReport(
            circuit_name=self.compiled.circuit.name,
            num_slots=plan.num_slots,
            chunk_slots=chunk_slots,
            chunks=[ChunkReport(index=i, num_slots=indices.size)
                    for i, (indices, _sub) in enumerate(chunks)],
            resumed=resumed,
            backend=resolve_backend(self.config.backend).name,
        )

        waveforms: List[Optional[Dict[str, Waveform]]] = [None] * plan.num_slots
        totals = _BatchStats()
        execution = _Execution(self, pairs, kernel_table, variation, chunks,
                               report, waveforms, totals, store)
        pending = deque()
        for index, (indices, _sub) in enumerate(chunks):
            loaded = (store.try_load_chunk(index, indices.size)
                      if store is not None else None)
            if loaded is not None:
                report.chunks[index].from_checkpoint = True
                execution.stitch(index, loaded)
            else:
                pending.append((index, 0))
        execution.execute(pending)

        report.wall_seconds = _time.perf_counter() - start
        report.gate_evaluations = totals.gate_evaluations
        report.lanes_skipped = totals.lanes_skipped
        report.phase_seconds = totals.phase_seconds()
        report.backend_demotions = list(totals.demotions)
        return SimulationResult(
            circuit_name=self.compiled.circuit.name,
            slot_labels=plan.labels(),
            waveforms=waveforms,  # type: ignore[arg-type]
            runtime_seconds=report.wall_seconds,
            gate_evaluations=totals.gate_evaluations,
            engine=f"campaign[{execution.workers}]",
            report=report,
        )


class _Execution:
    """Mutable state of one campaign run (chunk queue, pool, results)."""

    def __init__(self, runner: CampaignRunner, pairs, kernel_table, variation,
                 chunks, report: RunReport, waveforms, totals: _BatchStats,
                 store: Optional[CheckpointStore]) -> None:
        self.runner = runner
        self.campaign = runner.campaign
        self.pairs = pairs
        self.kernel_table = kernel_table
        self.variation = variation
        self.chunks = chunks
        self.report = report
        self.waveforms = waveforms
        self.totals = totals
        self.store = store
        workers = self.campaign.num_workers
        if workers is None:
            workers = max(1, os.cpu_count() or 1)
        self.workers = min(workers, len(chunks))
        self.pool: Optional[ProcessPoolExecutor] = None

    # -- bookkeeping ----------------------------------------------------------

    def stitch(self, index: int, chunk_waveforms) -> None:
        indices, _sub = self.chunks[index]
        for local, slot in enumerate(indices):
            self.waveforms[int(slot)] = chunk_waveforms[local]

    def checkpoint(self, index: int, chunk_waveforms) -> None:
        if self.store is None:
            return
        try:
            self.store.save_chunk(index, chunk_waveforms)
        except OSError as error:
            # Degrade gracefully: the campaign finishes in memory, it is
            # just no longer resumable.
            self.report.warnings.append(
                f"checkpointing disabled after chunk {index}: {error}")
            self.store = None

    def attempt_params(self, attempt: int):
        """Per-attempt engine settings: capacity doubles (overflow
        recovery), memory budget halves (OOM recovery)."""
        base = self.runner.config
        capacity = min(base.waveform_capacity << attempt, MAX_CAPACITY)
        config = (base if capacity == base.waveform_capacity
                  else replace(base, waveform_capacity=capacity))
        floor = (self.runner.compiled.num_nets + 1) * capacity * 8
        budget = max(self.runner.memory_budget >> attempt, floor)
        return config, budget

    def backoff(self, attempt: int) -> None:
        seconds = (self.campaign.backoff_seconds
                   * self.campaign.backoff_factor ** attempt)
        if seconds > 0:
            _time.sleep(seconds)

    # -- main loop ------------------------------------------------------------

    def execute(self, pending: deque) -> None:
        in_flight: Dict = {}
        try:
            while pending or in_flight:
                while pending and len(in_flight) < max(self.workers, 1):
                    index, attempt = pending.popleft()
                    if (self.workers < 1
                            or attempt >= self.campaign.max_worker_attempts):
                        self.run_degraded(index, attempt)
                        continue
                    self.submit(index, attempt, in_flight)
                if not in_flight:
                    continue
                done, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
                pool_broken = False
                for future in done:
                    pool_broken |= self.collect(future, in_flight.pop(future),
                                                pending)
                if pool_broken:
                    # The pool is dead; every remaining future fails fast.
                    remaining, _ = wait(list(in_flight))
                    for future in remaining:
                        self.collect(future, in_flight.pop(future), pending)
                    # wait=True: every future is already collected, and an
                    # async teardown races the interpreter-exit hook on the
                    # pool's wakeup pipe (spurious EBADF traceback).
                    self.pool.shutdown(wait=True)
                    self.pool = None
        finally:
            if self.pool is not None:
                self.pool.shutdown(wait=True, cancel_futures=True)
                self.pool = None

    def submit(self, index: int, attempt: int, in_flight: Dict) -> None:
        if self.pool is None:
            self.pool = ProcessPoolExecutor(max_workers=max(self.workers, 1))
        config, budget = self.attempt_params(attempt)
        indices, sub = self.chunks[index]
        future = self.pool.submit(
            _campaign_chunk, self.runner.compiled, config, budget,
            self.kernel_table, self.pairs, sub.pattern_indices, sub.voltages,
            self.variation, indices, self.campaign.worker_fault, index,
            attempt,
        )
        in_flight[future] = (index, attempt, _time.perf_counter(), config,
                             budget)

    def collect(self, future, meta, pending: deque) -> bool:
        """Fold one finished future into the run; True if the pool broke."""
        index, attempt, started, config, budget = meta
        elapsed = _time.perf_counter() - started
        attempts = self.report.chunks[index].attempts
        try:
            chunk_waveforms, stats = future.result()
        except BrokenProcessPool as error:
            attempts.append(AttemptReport(
                ENGINE_WORKER, config.waveform_capacity, budget, elapsed,
                f"worker crashed: {error or type(error).__name__}"))
            pending.append((index, attempt + 1))
            self.backoff(attempt)
            return True
        except Exception as error:  # noqa: BLE001 - any failure retries
            attempts.append(AttemptReport(
                ENGINE_WORKER, config.waveform_capacity, budget, elapsed,
                f"{type(error).__name__}: {error}"))
            pending.append((index, attempt + 1))
            self.backoff(attempt)
            return False
        attempts.append(AttemptReport(
            ENGINE_WORKER, config.waveform_capacity, budget, elapsed))
        _merge_stats(self.totals, stats)
        self.stitch(index, chunk_waveforms)
        self.checkpoint(index, chunk_waveforms)
        return False

    # -- degradation ladder ---------------------------------------------------

    def run_degraded(self, index: int, attempt: int) -> None:
        """In-process fallback, then the event-driven last resort."""
        indices, sub = self.chunks[index]
        attempts = self.report.chunks[index].attempts
        runner = self.runner

        if self.campaign.degrade_in_process:
            config, budget = self.attempt_params(attempt)
            started = _time.perf_counter()
            try:
                engine = GpuWaveSim(
                    runner.compiled.circuit, runner.compiled.library,
                    config=config, compiled=runner.compiled,
                    memory_budget=budget)
                result = engine.run(self.pairs, plan=sub,
                                    kernel_table=self.kernel_table,
                                    variation=self.variation,
                                    global_slots=indices)
            except Exception as error:  # noqa: BLE001 - fall through
                attempts.append(AttemptReport(
                    ENGINE_IN_PROCESS, config.waveform_capacity, budget,
                    _time.perf_counter() - started,
                    f"{type(error).__name__}: {error}"))
            else:
                attempts.append(AttemptReport(
                    ENGINE_IN_PROCESS, config.waveform_capacity, budget,
                    _time.perf_counter() - started))
                _merge_stats(self.totals, engine.last_stats)
                self.stitch(index, result.waveforms)
                self.checkpoint(index, result.waveforms)
                return

        if self.campaign.degrade_event_driven:
            started = _time.perf_counter()
            try:
                chunk_waveforms, evaluations = self.run_event_driven(
                    sub, indices)
            except Exception as error:  # noqa: BLE001 - reported below
                attempts.append(AttemptReport(
                    ENGINE_EVENT_DRIVEN, 0, 0,
                    _time.perf_counter() - started,
                    f"{type(error).__name__}: {error}"))
            else:
                attempts.append(AttemptReport(
                    ENGINE_EVENT_DRIVEN, 0, 0,
                    _time.perf_counter() - started))
                self.totals.gate_evaluations += evaluations
                self.stitch(index, chunk_waveforms)
                self.checkpoint(index, chunk_waveforms)
                return

        raise ChunkExecutionError(
            index, "failed on every engine of the degradation ladder",
            attempts)

    def run_event_driven(self, sub: SlotPlan, indices: np.ndarray):
        """Last resort: the serial reference engine, one voltage at a
        time, with die factors still following global slot indices."""
        runner = self.runner
        engine = EventDrivenSimulator(
            runner.compiled.circuit, runner.compiled.library,
            config=runner.config, compiled=runner.compiled)
        chunk: List[Optional[Dict[str, Waveform]]] = [None] * sub.num_slots
        evaluations = 0
        for voltage in sub.distinct_voltages():
            slots = np.where(sub.voltages == voltage)[0]
            sub_pairs = [self.pairs[int(sub.pattern_indices[s])]
                         for s in slots]
            result = engine.run(sub_pairs, voltage=float(voltage),
                                kernel_table=self.kernel_table,
                                variation=self.variation,
                                slot_indices=indices[slots])
            evaluations += result.gate_evaluations
            for local, slot in enumerate(slots):
                chunk[int(slot)] = result.waveforms[local]
        return chunk, evaluations
