"""Fault-tolerant campaign runtime (checkpoint/resume, crash recovery).

The production layer above the simulation engines: it partitions a slot
plane into chunks, executes them across worker processes with retry,
backoff and a degradation ladder, persists completed chunks to a
resumable checkpoint directory, and validates the whole campaign before
the first worker spawns.  See :mod:`repro.runtime.campaign` for the
execution model.
"""

from repro.runtime.campaign import CampaignConfig, CampaignRunner
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.fingerprint import (
    Fingerprinter,
    campaign_fingerprint,
    circuit_fingerprint,
    compatibility_fingerprint,
    job_fingerprint,
)
from repro.runtime.preflight import validate_campaign
from repro.runtime.report import AttemptReport, ChunkReport, RunReport

__all__ = [
    "CampaignConfig",
    "CampaignRunner",
    "CheckpointStore",
    "Fingerprinter",
    "campaign_fingerprint",
    "circuit_fingerprint",
    "compatibility_fingerprint",
    "job_fingerprint",
    "validate_campaign",
    "AttemptReport",
    "ChunkReport",
    "RunReport",
]
