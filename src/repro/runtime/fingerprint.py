"""Canonical SHA-256 fingerprinting of simulation inputs.

Both durable-state layers of the runtime key their artifacts by content
identity: the campaign checkpoint manifest proves a directory belongs to
the campaign being resumed, and the service result cache proves a cached
waveform slice answers the job being submitted.  Both must agree on what
"the same simulation" means — same circuit structure and delays, same
stimuli, same slot plan, same *semantic* engine settings, same kernel
table and variation model — so the canonicalization lives here, in one
place, and the two layers compose their keys from the same feeders.

Purely *operational* knobs (chunk size, worker count, memory budget,
batching policy, compute backend) are deliberately excluded everywhere:
they never change results, so they must never split a cache or reject a
resume.

Every payload is framed as ``tag + 8-byte little-endian length + bytes``
before hashing, so adjacent fields cannot alias (``"ab" + "c"`` vs
``"a" + "bc"``) and a reordered feed changes the digest.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "Fingerprinter",
    "campaign_fingerprint",
    "characterization_fingerprint",
    "circuit_fingerprint",
    "compatibility_fingerprint",
    "job_fingerprint",
]


class Fingerprinter:
    """Incremental SHA-256 over tagged, length-framed payloads."""

    def __init__(self) -> None:
        self._digest = hashlib.sha256()

    def feed(self, tag: str, payload: bytes) -> None:
        self._digest.update(tag.encode("utf-8"))
        self._digest.update(len(payload).to_bytes(8, "little"))
        self._digest.update(payload)

    def feed_text(self, tag: str, text: str) -> None:
        self.feed(tag, text.encode("utf-8"))

    def feed_array(self, tag: str, array: np.ndarray) -> None:
        self.feed(tag, np.ascontiguousarray(array).tobytes())

    def feed_json(self, tag: str, obj) -> None:
        self.feed(tag, json.dumps(obj, sort_keys=True).encode("utf-8"))

    def hexdigest(self) -> str:
        return self._digest.hexdigest()


# -- component feeders -------------------------------------------------------------
#
# Field names and feed order are part of the on-disk checkpoint contract
# (the manifest stores the composed digest): changing either invalidates
# every existing campaign directory, so extend by *appending* new tagged
# fields only.


def feed_compiled(fp: Fingerprinter, compiled) -> None:
    """Circuit structure and nominal delays of a compiled circuit."""
    fp.feed_text("circuit", compiled.circuit.name)
    fp.feed_text("inputs", "\0".join(compiled.circuit.inputs))
    fp.feed_text("outputs", "\0".join(compiled.circuit.outputs))
    fp.feed_array("gate_types", compiled.gate_type_ids)
    fp.feed_array("gate_inputs", compiled.gate_inputs)
    fp.feed_array("delays", compiled.nominal_delays)


def feed_stimuli(fp: Fingerprinter, pairs: Sequence) -> None:
    fp.feed_array("v1", np.stack([p.v1 for p in pairs]))
    fp.feed_array("v2", np.stack([p.v2 for p in pairs]))


def feed_plan(fp: Fingerprinter, plan) -> None:
    fp.feed_array("plan_patterns", plan.pattern_indices)
    fp.feed_array("plan_voltages", plan.voltages)


def feed_config(fp: Fingerprinter, config) -> None:
    """Only the semantic engine settings — the ones that change waveforms."""
    fp.feed_json("config", {
        "pulse_filtering": config.pulse_filtering,
        "record_all_nets": config.record_all_nets,
    })


def feed_kernel_table(fp: Fingerprinter, kernel_table=None) -> None:
    if kernel_table is None:
        fp.feed("kernels", b"static")
    else:
        fp.feed_array("kernels", kernel_table.coefficients)
        fp.feed_text("kernel_names", "\0".join(kernel_table.type_names))


def feed_variation(fp: Fingerprinter, variation=None) -> None:
    if variation is None:
        fp.feed("variation", b"none")
    else:
        payload = {
            "sigma": variation.sigma,
            "seed": variation.seed,
            "distribution": variation.distribution,
            "group_size": variation.group_size,
        }
        # State-dependent statistical timing: the voltage binding is part
        # of the identity (same noise stream, different spread).  Plain
        # ProcessVariation keeps the legacy payload unchanged.
        sensitivity = getattr(variation, "voltage_sensitivity", None)
        if sensitivity is not None:
            payload["voltage_sensitivity"] = sensitivity
            payload["v_ref"] = variation.v_ref
            payload["slot_voltages"] = list(variation.slot_voltages)
        fp.feed_json("variation", payload)


# -- composed identities -----------------------------------------------------------


def campaign_fingerprint(
    compiled,
    pairs: Sequence,
    plan,
    config,
    kernel_table=None,
    variation=None,
) -> str:
    """SHA-256 identity of a campaign's inputs.

    Two invocations get the same fingerprint exactly when they would
    produce bit-identical waveforms.  This is the digest stored in
    checkpoint manifests (the feed order is therefore frozen — see the
    module docstring).
    """
    fp = Fingerprinter()
    feed_compiled(fp, compiled)
    feed_stimuli(fp, pairs)
    feed_plan(fp, plan)
    feed_config(fp, config)
    feed_kernel_table(fp, kernel_table)
    feed_variation(fp, variation)
    return fp.hexdigest()


#: A service job and a campaign are fingerprinted identically: both name
#: "one simulation of these stimuli over this slot plane".  The alias
#: keeps call sites honest about which identity they mean.
job_fingerprint = campaign_fingerprint


def circuit_fingerprint(compiled) -> str:
    """Identity of a compiled circuit alone (the service circuit key)."""
    fp = Fingerprinter()
    feed_compiled(fp, compiled)
    return fp.hexdigest()


def feed_cell(fp: Fingerprinter, cell) -> None:
    """Everything about a cell that shapes its delay surfaces."""
    fp.feed_json("cell", {
        "name": cell.name,
        "family": cell.family,
        "strength": cell.strength,
        "parasitic": cell.parasitic,
        "output": cell.output,
        "pins": [
            {
                "name": pin.name,
                "index": pin.index,
                "input_cap": pin.input_cap,
                "effort": pin.effort,
                "parasitic_weight": pin.parasitic_weight,
            }
            for pin in sorted(cell.pins, key=lambda p: p.index)
        ],
    })


def feed_corner(fp: Fingerprinter, corner) -> None:
    """Process-corner identity: all four α-power parameter sets."""
    fp.feed_json("corner", {
        "name": corner.name,
        "coupling": corner.coupling,
        "noise": corner.noise,
        "alpha_power": {
            edge: {"k": params.k, "vth": params.vth, "alpha": params.alpha}
            for edge, params in (
                ("rise_load", corner.rise_load),
                ("fall_load", corner.fall_load),
                ("rise_par", corner.rise_par),
                ("fall_par", corner.fall_par),
            )
        },
    })


def feed_space(fp: Fingerprinter, space) -> None:
    """Parameter-space bounds and nominal point (the normalizers)."""
    fp.feed_json("space", {
        "v_min": space.v_min,
        "v_max": space.v_max,
        "c_min": space.c_min,
        "c_max": space.c_max,
        "v_nom": space.v_nom,
    })


def characterization_fingerprint(cell, corner, space, flow: dict) -> str:
    """Coefficient-cache key for one cell's characterization.

    Two invocations get the same digest exactly when they would fit the
    same coefficient sets: same cell geometry, same process corner, same
    parameter space and the same flow settings (``flow`` is the JSON-able
    mode/order/budget bundle built by ``characterize_library``).  Purely
    operational knobs — worker count, cache directory — are excluded, per
    the module contract.
    """
    fp = Fingerprinter()
    feed_cell(fp, cell)
    feed_corner(fp, corner)
    feed_space(fp, space)
    fp.feed_json("charz_flow", flow)
    return fp.hexdigest()


def compatibility_fingerprint(
    compiled,
    config,
    kernel_table=None,
    variation=None,
    static_voltages: Optional[np.ndarray] = None,
) -> str:
    """Coalescing key: jobs with equal keys may share one slot plane.

    Everything but the stimuli and the plan — circuit, semantic config,
    kernel table and variation model.  In static-delay mode the distinct
    voltages are included too, because the engine (correctly) refuses to
    differentiate operating points without a kernel table: coalescing a
    0.7 V job with a 0.8 V one would turn two valid static jobs into one
    invalid plane.
    """
    fp = Fingerprinter()
    feed_compiled(fp, compiled)
    feed_config(fp, config)
    feed_kernel_table(fp, kernel_table)
    feed_variation(fp, variation)
    if kernel_table is None and static_voltages is not None:
        fp.feed_array("static_voltages", np.unique(static_voltages))
    return fp.hexdigest()
