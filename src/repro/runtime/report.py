"""Structured diagnostics of a fault-tolerant campaign run.

Every chunk of the slot plane records the full history of its execution
attempts — which engine ran it, at what waveform capacity and memory
budget, how long it took and how it failed — so a finished (or aborted)
campaign can answer "what actually happened" without log archaeology:
how many worker crashes were absorbed, which chunks degraded to the
in-process or event-driven engines, and how much waveform capacity had
to grow.  The report travels on
:attr:`repro.simulation.base.SimulationResult.report`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["AttemptReport", "ChunkReport", "RunReport"]

#: Engine identifiers used by the campaign runner, in degradation order.
ENGINE_WORKER = "worker"
ENGINE_IN_PROCESS = "in-process"
ENGINE_EVENT_DRIVEN = "event-driven"


@dataclass
class AttemptReport:
    """One execution attempt of one chunk.

    ``error`` is ``None`` for the successful attempt; failed attempts
    keep a one-line description of the exception (including worker
    crashes, which surface as broken-pool errors).
    """

    engine: str
    waveform_capacity: int
    memory_budget: int
    seconds: float = 0.0
    error: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        return self.error is None

    def to_dict(self) -> dict:
        return {
            "engine": self.engine,
            "waveform_capacity": self.waveform_capacity,
            "memory_budget": self.memory_budget,
            "seconds": self.seconds,
            "error": self.error,
        }


@dataclass
class ChunkReport:
    """Execution history of one slot-plane chunk."""

    index: int
    num_slots: int
    attempts: List[AttemptReport] = field(default_factory=list)
    from_checkpoint: bool = False

    @property
    def completed(self) -> bool:
        return self.from_checkpoint or any(a.succeeded for a in self.attempts)

    @property
    def retries(self) -> int:
        """Failed attempts before the final outcome."""
        return sum(1 for a in self.attempts if not a.succeeded)

    @property
    def final_engine(self) -> Optional[str]:
        """Engine that produced the chunk's waveforms (``None`` if it
        came from the checkpoint or never completed)."""
        for attempt in self.attempts:
            if attempt.succeeded:
                return attempt.engine
        return None

    @property
    def degraded(self) -> bool:
        """True when the chunk did not complete on the primary engine."""
        return self.final_engine not in (None, ENGINE_WORKER)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "num_slots": self.num_slots,
            "from_checkpoint": self.from_checkpoint,
            "completed": self.completed,
            "retries": self.retries,
            "final_engine": self.final_engine,
            "attempts": [a.to_dict() for a in self.attempts],
        }


@dataclass
class RunReport:
    """Campaign-level summary across all chunks."""

    circuit_name: str
    num_slots: int
    chunk_slots: int
    chunks: List[ChunkReport] = field(default_factory=list)
    wall_seconds: float = 0.0
    resumed: bool = False
    warnings: List[str] = field(default_factory=list)
    #: Compute backend resolved for the primary engine (``""`` for
    #: reports predating the backend layer).
    backend: str = ""
    #: Backend demotion steps (``"cext->numpy"``) taken while the run's
    #: chunks executed — the engine dropped to a safer kernel
    #: implementation after repeated native faults.  ``backend`` then
    #: names the post-demotion backend.
    backend_demotions: List[str] = field(default_factory=list)
    #: Activity-pruning counters aggregated across every chunk's engine
    #: stats: lanes dispatched to the compute backends vs quiet lanes
    #: settled by the truth-table lookup (0 for reports predating sparse
    #: evaluation, and for event-driven fallback chunks, which have no
    #: lane accounting).
    gate_evaluations: int = 0
    lanes_skipped: int = 0
    #: Lanes served by splicing a cached base arena instead of any
    #: dispatch or settle — nonzero only on the service's incremental
    #: re-simulation path (0 for reports predating delta evaluation).
    lanes_spliced: int = 0
    #: Level-plan resolutions avoided while this run executed: pooled
    #: engines and the fingerprint-keyed plan cache serving repeated
    #: sweeps/iterations of one circuit (0 for single-shot runs and
    #: reports predating the engine pool).
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: Per-phase engine wall time summed across chunks: ``delay``
    #: (online delay-kernel evaluation), ``merge`` (waveform merge
    #: kernels; in fused dispatch the lane backends evaluate delays
    #: inside the merge loop, so their delay share lands here) and
    #: ``pack`` (waveform unpack / logic settle).  Empty for reports
    #: predating the phase breakdown.
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    @property
    def active_fraction(self) -> float:
        """Dispatched share of all lanes (1.0 when nothing was skipped)."""
        total = self.gate_evaluations + self.lanes_skipped
        return 1.0 if total == 0 else self.gate_evaluations / total

    @property
    def delta_fraction(self) -> float:
        """Evaluated share of (evaluated + spliced) lanes — 1.0 when
        the run never spliced from a cached base."""
        total = self.gate_evaluations + self.lanes_spliced
        return 1.0 if total == 0 else self.gate_evaluations / total

    @property
    def chunks_from_checkpoint(self) -> int:
        return sum(1 for c in self.chunks if c.from_checkpoint)

    @property
    def chunks_executed(self) -> int:
        return sum(1 for c in self.chunks if c.attempts)

    @property
    def total_retries(self) -> int:
        return sum(c.retries for c in self.chunks)

    @property
    def degraded_chunks(self) -> int:
        return sum(1 for c in self.chunks if c.degraded)

    @property
    def max_capacity_used(self) -> int:
        """Largest waveform capacity any successful attempt ran at."""
        capacities = [a.waveform_capacity for c in self.chunks
                      for a in c.attempts if a.succeeded]
        return max(capacities, default=0)

    def engines_used(self) -> List[str]:
        seen: List[str] = []
        for chunk in self.chunks:
            engine = chunk.final_engine
            if engine is not None and engine not in seen:
                seen.append(engine)
        return seen

    def to_dict(self) -> dict:
        return {
            "circuit_name": self.circuit_name,
            "num_slots": self.num_slots,
            "chunk_slots": self.chunk_slots,
            "backend": self.backend,
            "backend_demotions": list(self.backend_demotions),
            "num_chunks": self.num_chunks,
            "chunks_executed": self.chunks_executed,
            "chunks_from_checkpoint": self.chunks_from_checkpoint,
            "total_retries": self.total_retries,
            "degraded_chunks": self.degraded_chunks,
            "max_capacity_used": self.max_capacity_used,
            "gate_evaluations": self.gate_evaluations,
            "lanes_skipped": self.lanes_skipped,
            "active_fraction": self.active_fraction,
            "lanes_spliced": self.lanes_spliced,
            "delta_fraction": self.delta_fraction,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "phase_seconds": dict(self.phase_seconds),
            "wall_seconds": self.wall_seconds,
            "resumed": self.resumed,
            "warnings": list(self.warnings),
            "chunks": [c.to_dict() for c in self.chunks],
        }

    def summary(self) -> str:
        """Human-readable multi-line digest for the CLI."""
        lines = [
            f"campaign {self.circuit_name}: {self.num_slots} slots in "
            f"{self.num_chunks} chunks of <= {self.chunk_slots}",
            f"  executed {self.chunks_executed}, from checkpoint "
            f"{self.chunks_from_checkpoint}"
            + (" (resumed)" if self.resumed else ""),
            f"  retries {self.total_retries}, degraded chunks "
            f"{self.degraded_chunks}, engines {self.engines_used() or ['-']}"
            + (f", backend {self.backend}" if self.backend else ""),
            f"  wall time {self.wall_seconds:.3f}s",
        ]
        if self.lanes_spliced:
            lines.insert(3, f"  delta: {self.lanes_spliced} lanes spliced "
                            f"(delta fraction {self.delta_fraction:.3f})")
        if self.plan_cache_hits:
            lines.append(f"  plan cache: {self.plan_cache_hits} hits, "
                         f"{self.plan_cache_misses} misses")
        if self.lanes_skipped:
            lines.insert(3, f"  lanes evaluated {self.gate_evaluations}, "
                            f"skipped {self.lanes_skipped} "
                            f"(active fraction {self.active_fraction:.3f})")
        if self.phase_seconds:
            phases = ", ".join(f"{name} {seconds:.3f}s"
                               for name, seconds in self.phase_seconds.items())
            lines.append(f"  engine phases: {phases}")
        if self.backend_demotions:
            lines.append("  backend demotions: "
                         + ", ".join(self.backend_demotions))
        for warning in self.warnings:
            lines.append(f"  warning: {warning}")
        return "\n".join(lines)
