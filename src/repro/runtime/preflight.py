"""Campaign preflight checks — fail fast, before any worker spawns.

A slot-plane campaign can burn hours of compute; every failure mode
that is knowable up front should abort the run *before* the process
pool starts.  :func:`validate_campaign` performs one pass over the
campaign inputs and raises :class:`repro.errors.PreflightError` with a
precise message on the first inconsistency:

* stimuli: non-empty, uniform width, width matches the circuit inputs,
* slot plan: indices non-negative and within the pattern set, voltages
  finite and positive,
* delay model: static mode cannot span several operating points; the
  kernel table (when given) must cover every cell type the compiled
  circuit uses with matching type ids and enough pins,
* SDF/library consistency: nominal delays finite and non-negative,
* memory: the waveform-memory budget must hold at least one slot at
  the configured capacity, and the capacity must be growable within
  :data:`repro.simulation.gpu.MAX_CAPACITY`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.delay_kernel import DelayKernelTable
from repro.errors import PreflightError
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.compiled import CompiledCircuit
from repro.simulation.gpu import DEFAULT_MEMORY_BUDGET, MAX_CAPACITY
from repro.simulation.grid import SlotPlan

__all__ = ["validate_campaign"]


def validate_campaign(
    compiled: CompiledCircuit,
    pairs: Sequence[PatternPair],
    plan: SlotPlan,
    *,
    config: Optional[SimulationConfig] = None,
    kernel_table: Optional[DelayKernelTable] = None,
    memory_budget: int = DEFAULT_MEMORY_BUDGET,
) -> None:
    """Validate a campaign; raises :class:`PreflightError` on the first
    problem, returns ``None`` when the campaign is runnable."""
    config = config or SimulationConfig()

    # -- stimuli ---------------------------------------------------------------
    if not pairs:
        raise PreflightError("campaign has no pattern pairs")
    widths = {pair.width for pair in pairs}
    if len(widths) > 1:
        raise PreflightError(
            f"pattern pairs have mixed widths {sorted(widths)}"
        )
    num_inputs = len(compiled.circuit.inputs)
    (width,) = widths
    if width != num_inputs:
        raise PreflightError(
            f"pattern width {width} does not match the circuit's "
            f"{num_inputs} inputs"
        )

    # -- slot plan -------------------------------------------------------------
    if int(plan.pattern_indices.min()) < 0:
        raise PreflightError("slot plan contains negative pattern indices")
    highest = int(plan.pattern_indices.max())
    if highest >= len(pairs):
        raise PreflightError(
            f"slot plan references pattern {highest} but only "
            f"{len(pairs)} pairs were given"
        )
    if not np.all(np.isfinite(plan.voltages)):
        raise PreflightError("slot plan contains non-finite voltages")
    if float(plan.voltages.min()) <= 0.0:
        raise PreflightError("slot plan contains non-positive voltages")

    # -- delay model -----------------------------------------------------------
    if kernel_table is None and plan.distinct_voltages().size > 1:
        raise PreflightError(
            "static delay mode cannot differentiate operating points; "
            "a kernel table is required for multi-voltage plans"
        )
    if kernel_table is not None:
        used_types = np.unique(compiled.gate_type_ids)
        for type_id in used_types.tolist():
            cell = compiled.library.cell_by_type_id(type_id)
            if type_id >= kernel_table.num_types:
                raise PreflightError(
                    f"kernel table has {kernel_table.num_types} cell types "
                    f"but the circuit uses type id {type_id} ({cell.name})"
                )
            if kernel_table.type_names[type_id] != cell.name:
                raise PreflightError(
                    f"kernel table type id {type_id} is "
                    f"{kernel_table.type_names[type_id]!r} but the library "
                    f"maps it to {cell.name!r} — table and library disagree"
                )
            max_arity = int(compiled.gate_arity[
                compiled.gate_type_ids == type_id].max())
            if int(kernel_table.pin_counts[type_id]) < max_arity:
                raise PreflightError(
                    f"kernel table covers {int(kernel_table.pin_counts[type_id])} "
                    f"pins of {cell.name} but the circuit drives {max_arity}"
                )

    # -- SDF / nominal delays --------------------------------------------------
    if not np.all(np.isfinite(compiled.nominal_delays)):
        raise PreflightError(
            "compiled circuit contains non-finite nominal delays "
            "(corrupt SDF annotation?)"
        )
    if float(compiled.nominal_delays.min()) < 0.0:
        raise PreflightError(
            "compiled circuit contains negative nominal delays "
            "(corrupt SDF annotation?)"
        )

    # -- memory budget ---------------------------------------------------------
    if config.waveform_capacity > MAX_CAPACITY:
        raise PreflightError(
            f"waveform capacity {config.waveform_capacity} exceeds the "
            f"engine ceiling {MAX_CAPACITY}"
        )
    per_slot = (compiled.num_nets + 1) * config.waveform_capacity * 8
    if per_slot > memory_budget:
        raise PreflightError(
            f"memory budget {memory_budget} B cannot hold a single slot "
            f"({per_slot} B at capacity {config.waveform_capacity}); "
            "raise the budget or lower the capacity"
        )
