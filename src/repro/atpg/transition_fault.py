"""Transition-fault model, fault simulation and pattern generation.

A *transition fault* makes one net slow-to-rise (STR) or slow-to-fall
(STF).  A pattern pair ``(v1, v2)`` detects it when

* **launch** — the net transitions in the right direction between the
  two vectors (0→1 for STR, 1→0 for STF), and
* **propagation** — with the net held at its ``v1`` value during the
  second cycle (the gross-delay approximation), at least one primary
  output differs from the good second-cycle response.

Fault simulation is serial-fault / parallel-pattern: 64 pattern pairs per
machine word, with re-simulation restricted to the fault's fanout cone.
:func:`generate_transition_patterns` wraps it into a greedy
coverage-driven ATPG: random candidate pairs are kept only when they
detect new faults — producing compact pattern sets like the commercial
tool the paper used (Table I column 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.cells.library import CellLibrary
from repro.errors import AtpgError
from repro.netlist.circuit import Circuit
from repro.simulation.base import PatternPair
from repro.atpg.patterns import PatternSet, random_pattern_set

__all__ = ["TransitionFault", "FaultSimulator", "generate_transition_patterns"]

_WORD_BITS = 64
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


@dataclass(frozen=True, order=True)
class TransitionFault:
    """One transition fault: a net that is slow to rise or fall.

    ``slow_to_rise=True`` models STR (needs a 0→1 launch), ``False``
    models STF.
    """

    net: str
    slow_to_rise: bool

    def __str__(self) -> str:
        return f"{self.net}:{'STR' if self.slow_to_rise else 'STF'}"


def _pack_columns(matrix: np.ndarray) -> np.ndarray:
    """Pack a (patterns, nets) 0/1 matrix into (words, nets) uint64."""
    patterns, nets = matrix.shape
    words = (patterns + _WORD_BITS - 1) // _WORD_BITS
    padded = np.zeros((words * _WORD_BITS, nets), dtype=np.uint8)
    padded[:patterns] = matrix
    lanes = padded.reshape(words, _WORD_BITS, nets).astype(np.uint64)
    shifts = np.arange(_WORD_BITS, dtype=np.uint64)[None, :, None]
    return np.bitwise_or.reduce(lanes << shifts, axis=1)


class FaultSimulator:
    """Serial-fault, parallel-pattern transition-fault simulator."""

    def __init__(self, circuit: Circuit, library: CellLibrary) -> None:
        circuit.validate(library)
        self.circuit = circuit
        self.library = library
        self._order = list(circuit.topological_gates())
        self._gate_pos = {gate.name: pos for pos, gate in enumerate(self._order)}
        # Fanout cone (gate positions in topological order) per net.
        self._cones: Dict[str, List[int]] = {}
        self._sinks: Dict[str, List[str]] = {}
        for gate in circuit.gates:
            for net in gate.inputs:
                self._sinks.setdefault(net, []).append(gate.name)

    # -- fault universe --------------------------------------------------------------

    def all_faults(self) -> List[TransitionFault]:
        """Both transition faults on every driven net."""
        faults: List[TransitionFault] = []
        for net in self.circuit.nets():
            faults.append(TransitionFault(net, slow_to_rise=True))
            faults.append(TransitionFault(net, slow_to_rise=False))
        return faults

    def _cone(self, net: str) -> List[int]:
        """Topologically sorted gate positions downstream of ``net``."""
        cached = self._cones.get(net)
        if cached is not None:
            return cached
        member: Set[str] = set()
        frontier = [net]
        while frontier:
            current = frontier.pop()
            for gate_name in self._sinks.get(current, ()):
                if gate_name not in member:
                    member.add(gate_name)
                    frontier.append(self._order[self._gate_pos[gate_name]].output)
        cone = sorted(self._gate_pos[name] for name in member)
        self._cones[net] = cone
        return cone

    # -- simulation --------------------------------------------------------------------

    def _good_values(self, vectors: np.ndarray) -> Dict[str, np.ndarray]:
        """Packed words for every net under the given vectors."""
        values: Dict[str, np.ndarray] = {}
        packed_inputs = _pack_columns(vectors)
        for index, net in enumerate(self.circuit.inputs):
            values[net] = packed_inputs[:, index].copy()
        for gate in self._order:
            cell = self.library[gate.cell]
            operands = [values[net] for net in gate.inputs]
            values[gate.output] = np.asarray(
                cell.evaluate(operands, mask=_ALL_ONES), dtype=np.uint64
            )
        return values

    def detecting_words(
        self,
        fault: TransitionFault,
        values_v1: Dict[str, np.ndarray],
        values_v2: Dict[str, np.ndarray],
    ) -> np.ndarray:
        """Bit-per-pattern detection words for one fault."""
        net = fault.net
        if net not in values_v2:
            raise AtpgError(f"fault on unknown net {net!r}")
        if fault.slow_to_rise:
            activation = ~values_v1[net] & values_v2[net]
            forced = np.zeros_like(values_v2[net])
        else:
            activation = values_v1[net] & ~values_v2[net]
            forced = np.full_like(values_v2[net], _ALL_ONES)
        if not activation.any():
            return activation  # all-zero words

        # Cone-limited faulty re-simulation of the second cycle.
        overlay: Dict[str, np.ndarray] = {net: forced}
        for position in self._cone(net):
            gate = self._order[position]
            cell = self.library[gate.cell]
            operands = [overlay.get(n, values_v2[n]) for n in gate.inputs]
            overlay[gate.output] = np.asarray(
                cell.evaluate(operands, mask=_ALL_ONES), dtype=np.uint64
            )
        detected = np.zeros_like(activation)
        for out in self.circuit.outputs:
            if out in overlay:
                detected |= overlay[out] ^ values_v2[out]
        return detected & activation

    def simulate(
        self,
        patterns: Sequence[PatternPair],
        faults: Optional[Sequence[TransitionFault]] = None,
    ) -> Dict[TransitionFault, int]:
        """Map each fault to the index of its first detecting pattern.

        Undetected faults are absent from the result.
        """
        if not patterns:
            return {}
        faults = list(faults) if faults is not None else self.all_faults()
        v1 = np.stack([p.v1 for p in patterns])
        v2 = np.stack([p.v2 for p in patterns])
        values_v1 = self._good_values(v1)
        values_v2 = self._good_values(v2)
        result: Dict[TransitionFault, int] = {}
        for fault in faults:
            words = self.detecting_words(fault, values_v1, values_v2)
            for word_index, word in enumerate(words):
                if word:
                    bit = int(word & (~word + np.uint64(1))).bit_length() - 1
                    pattern_index = word_index * _WORD_BITS + bit
                    if pattern_index < len(patterns):
                        result[fault] = pattern_index
                        break
        return result

    def coverage(
        self,
        patterns: Sequence[PatternPair],
        faults: Optional[Sequence[TransitionFault]] = None,
    ) -> float:
        """Transition-fault coverage of a pattern set (0..1)."""
        faults = list(faults) if faults is not None else self.all_faults()
        if not faults:
            return 1.0
        detected = self.simulate(patterns, faults)
        return len(detected) / len(faults)


def generate_transition_patterns(
    circuit: Circuit,
    library: CellLibrary,
    seed: int = 0,
    max_pairs: int = 256,
    chunk: int = 64,
    target_coverage: float = 0.95,
    fault_sample: Optional[int] = None,
) -> Tuple[PatternSet, float]:
    """Greedy coverage-driven transition-fault ATPG.

    Random candidate pairs are fault-simulated chunk-wise; a candidate is
    kept only when it detects at least one not-yet-detected fault.  Stops
    at ``target_coverage`` or ``max_pairs``.

    ``fault_sample`` caps the fault list (random sample) to keep the run
    tractable on large circuits — the returned coverage then refers to
    the sampled universe.

    Returns ``(patterns, coverage)``.
    """
    simulator = FaultSimulator(circuit, library)
    faults = simulator.all_faults()
    rng = np.random.default_rng(seed)
    if fault_sample is not None and fault_sample < len(faults):
        chosen = rng.choice(len(faults), size=fault_sample, replace=False)
        faults = [faults[i] for i in sorted(chosen)]

    remaining: Set[TransitionFault] = set(faults)
    total = len(faults)
    patterns = PatternSet(circuit_name=circuit.name)
    chunk_seed = seed
    while len(patterns) < max_pairs and remaining:
        coverage = 1.0 - len(remaining) / total
        if coverage >= target_coverage:
            break
        chunk_seed += 1
        candidates = random_pattern_set(circuit, min(chunk, max_pairs), seed=chunk_seed)
        detection = simulator.simulate(candidates.pairs, sorted(remaining))
        keep: Dict[int, List[TransitionFault]] = {}
        for fault, pattern_index in detection.items():
            keep.setdefault(pattern_index, []).append(fault)
        if not keep:
            break  # random patterns saturated
        for pattern_index in sorted(keep):
            if len(patterns) >= max_pairs:
                break
            newly = [f for f in keep[pattern_index] if f in remaining]
            if not newly:
                continue
            patterns.add(candidates[pattern_index], source="transition-fault")
            remaining.difference_update(newly)
    coverage = 1.0 - len(remaining) / total if total else 1.0
    return patterns, coverage
