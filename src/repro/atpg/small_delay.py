"""Small-delay fault simulation — the paper's motivating application.

The paper motivates glitch-accurate voltage-aware simulation with
*small delay fault testing* (refs. [13, 14]: variation-aware fault
grading and faster-than-at-speed test).  A small-delay fault adds an
extra propagation delay δ at one cell; it is detected by a pattern pair
when the outputs *sampled at the capture time* differ from the
fault-free response — which requires exactly the timing-accurate
waveforms this library computes.

Because the simulator is voltage-parametric, fault grading can be done
per operating point: a delay defect hidden at nominal voltage may be
exposed at a lower V_DD (longer path delays eat the slack) or by a
faster capture clock (FAST testing).  :meth:`minimum_detectable_delay`
quantifies test quality per fault by bisecting the detection threshold.

Two evaluation strategies are provided:

* **incremental** — the fault-free design is simulated once (all nets
  recorded); each fault then re-simulates only its *fanout cone*,
  reading unchanged waveforms from the golden run.  This is the classic
  concurrent-fault-simulation optimization and is exact: cone outputs
  depend only on cone inputs, which the fault cannot touch.
* **full** — every fault re-runs the whole circuit on the parallel
  engine (vectorized, so it wins when the cone covers most of the
  circuit).  The test suite checks both strategies produce identical
  verdicts.

The default picks per fault: incremental for cones smaller than a
quarter of the circuit (scalar cone replay beats a vectorized full
rerun there), full otherwise.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.cells.library import CellLibrary
from repro.core.delay_kernel import DelayKernelTable
from repro.errors import AtpgError
from repro.netlist.circuit import Circuit
from repro.simulation.base import PatternPair, SimulationConfig, SimulationResult
from repro.simulation.compiled import CompiledCircuit, compile_circuit
from repro.simulation.gpu import GpuWaveSim
from repro.simulation.kernels import merge_single
from repro.waveform.waveform import Waveform

__all__ = ["SmallDelayFault", "SmallDelayFaultSimulator"]


@dataclass(frozen=True, order=True)
class SmallDelayFault:
    """An extra propagation delay δ on one cell instance.

    The defect slows *every* pin-to-pin arc of the gate by
    ``extra_delay`` seconds (a resistive-open-like gross model; per-arc
    injection would only need a finer mask).
    """

    gate: str
    extra_delay: float

    def __post_init__(self) -> None:
        if self.extra_delay <= 0:
            raise AtpgError("small-delay fault needs a positive extra delay")


class SmallDelayFaultSimulator:
    """Capture-time-aware delay-fault grading on the parallel engine."""

    def __init__(
        self,
        circuit: Circuit,
        library: CellLibrary,
        compiled: Optional[CompiledCircuit] = None,
        config: Optional[SimulationConfig] = None,
        incremental: Optional[bool] = None,
    ) -> None:
        """``incremental``: force cone replay (True), full reruns
        (False), or pick per fault by cone size (None, default)."""
        self.compiled = compiled or compile_circuit(circuit, library)
        self.circuit = self.compiled.circuit
        self.library = library
        self.config = config or SimulationConfig()
        self.incremental = incremental
        self._gate_index = {
            gate.name: position
            for position, gate in enumerate(self.circuit.gates)
        }
        # net -> consuming gate indices (for cone construction)
        self._sinks: Dict[str, List[int]] = {}
        for position, gate in enumerate(self.circuit.gates):
            for net in gate.inputs:
                self._sinks.setdefault(net, []).append(position)
        # gate index -> position in a topological order
        self._topo_rank: Dict[int, int] = {}
        for rank, gate in enumerate(self.circuit.topological_gates()):
            self._topo_rank[self._gate_index[gate.name]] = rank
        self._golden_cache: Dict[tuple, tuple] = {}
        self._cone_cache: Dict[int, Tuple[List[int], List[str]]] = {}

    # -- golden (fault-free) simulation ------------------------------------------

    @staticmethod
    def _pairs_key(pairs: Sequence[PatternPair]) -> tuple:
        return tuple((p.v1.tobytes(), p.v2.tobytes()) for p in pairs)

    def _golden(self, pairs: Sequence[PatternPair], voltage: float,
                kernel_table: Optional[DelayKernelTable]):
        """Cached fault-free run (all nets) plus adapted base delays."""
        key = (self._pairs_key(pairs), voltage, id(kernel_table))
        cached = self._golden_cache.get(key)
        if cached is not None:
            return cached
        config = SimulationConfig(
            pulse_filtering=self.config.pulse_filtering,
            waveform_capacity=self.config.waveform_capacity,
            grow_on_overflow=self.config.grow_on_overflow,
            record_all_nets=True,
        )
        simulator = GpuWaveSim(self.circuit, self.library, config=config,
                               compiled=self.compiled)
        result = simulator.run(pairs, voltage=voltage,
                               kernel_table=kernel_table)
        if kernel_table is None:
            base_delays = self.compiled.nominal_delays
        else:
            base_delays = kernel_table.delays_for_gates(
                self.compiled.gate_type_ids,
                self.compiled.gate_loads,
                self.compiled.nominal_delays,
                np.asarray([voltage], dtype=np.float64),
            )[..., 0]
        value = (result, base_delays)
        self._golden_cache[key] = value
        return value

    def _sampled_responses(self, result: SimulationResult,
                           capture_time: float) -> np.ndarray:
        """Output values strobed at the capture time, (slots, outputs)."""
        rows = []
        for slot in range(result.num_slots):
            rows.append([
                result.waveform(slot, net).value_at(capture_time)
                for net in self.circuit.outputs
            ])
        return np.asarray(rows, dtype=np.uint8)

    # -- full re-simulation strategy (oracle) ----------------------------------------

    def _faulty_compiled(self, fault: SmallDelayFault) -> CompiledCircuit:
        """A compiled view with the fault's extra delay injected."""
        position = self._gate_index.get(fault.gate)
        if position is None:
            raise AtpgError(f"no gate named {fault.gate!r}")
        faulty = copy.copy(self.compiled)
        faulty.nominal_delays = self.compiled.nominal_delays.copy()
        arity = int(self.compiled.gate_arity[position])
        faulty.nominal_delays[position, :arity, :] += fault.extra_delay
        return faulty

    def _simulate_full(self, fault: SmallDelayFault,
                       pairs: Sequence[PatternPair], capture_time: float,
                       voltage: float,
                       kernel_table: Optional[DelayKernelTable],
                       golden_sample: np.ndarray) -> Optional[int]:
        simulator = GpuWaveSim(self.circuit, self.library, config=self.config,
                               compiled=self._faulty_compiled(fault))
        result = simulator.run(pairs, voltage=voltage,
                               kernel_table=kernel_table)
        faulty = np.asarray([
            [result.waveform(slot, net).value_at(capture_time)
             for net in self.circuit.outputs]
            for slot in range(result.num_slots)
        ], dtype=np.uint8)
        hits = np.where(np.any(faulty != golden_sample, axis=1))[0]
        return int(hits[0]) if hits.size else None

    # -- incremental (cone-limited) strategy --------------------------------------------

    def _cone(self, gate_position: int) -> Tuple[List[int], List[str]]:
        """Topologically sorted fanout cone + affected primary outputs."""
        cached = self._cone_cache.get(gate_position)
        if cached is not None:
            return cached
        member: Set[int] = {gate_position}
        frontier = [gate_position]
        while frontier:
            current = frontier.pop()
            out_net = self.circuit.gates[current].output
            for sink in self._sinks.get(out_net, ()):  # consuming gates
                if sink not in member:
                    member.add(sink)
                    frontier.append(sink)
        ordered = sorted(member, key=self._topo_rank.__getitem__)
        cone_nets = {self.circuit.gates[g].output for g in member}
        affected = [net for net in self.circuit.outputs if net in cone_nets]
        self._cone_cache[gate_position] = (ordered, affected)
        return ordered, affected

    def _faulty_gate_delays(self, fault: SmallDelayFault, position: int,
                            voltage: float,
                            kernel_table: Optional[DelayKernelTable]
                            ) -> np.ndarray:
        """The fault gate's adapted delays, computed through the same
        kernel path as a full rerun (bit-identical floats)."""
        arity = int(self.compiled.gate_arity[position])
        nominal = self.compiled.nominal_delays[position:position + 1].copy()
        nominal[0, :arity, :] += fault.extra_delay
        if kernel_table is None:
            return nominal[0]
        adapted = kernel_table.delays_for_gates(
            self.compiled.gate_type_ids[position:position + 1],
            self.compiled.gate_loads[position:position + 1],
            nominal,
            np.asarray([voltage], dtype=np.float64),
        )
        return adapted[0, :, :, 0]

    def _simulate_incremental(self, fault: SmallDelayFault,
                              pairs: Sequence[PatternPair],
                              capture_time: float,
                              voltage: float,
                              kernel_table: Optional[DelayKernelTable],
                              golden: SimulationResult,
                              base_delays: np.ndarray) -> Optional[int]:
        position = self._gate_index.get(fault.gate)
        if position is None:
            raise AtpgError(f"no gate named {fault.gate!r}")
        cone, affected = self._cone(position)
        if not affected:
            return None  # defect cannot reach any output structurally
        inertial = self.config.pulse_filtering == "inertial"
        gates = self.circuit.gates
        tables = self.compiled.truth_tables
        fault_delays = self._faulty_gate_delays(fault, position, voltage,
                                                kernel_table)

        for slot in range(len(pairs)):
            overlay: Dict[str, Waveform] = {}
            for gate_pos in cone:
                gate = gates[gate_pos]
                inputs = [
                    overlay.get(net) or golden.waveform(slot, net)
                    for net in gate.inputs
                ]
                if gate_pos == position:
                    delays = fault_delays[:len(gate.inputs), :]
                else:
                    delays = base_delays[gate_pos, :len(gate.inputs), :]
                overlay[gate.output] = merge_single(
                    inputs, delays, int(tables[gate_pos]), inertial=inertial)
            for net in affected:
                faulty_value = overlay[net].value_at(capture_time)
                if faulty_value != golden.waveform(slot, net).value_at(
                        capture_time):
                    return slot
        return None

    # -- public API -----------------------------------------------------------------

    def simulate(
        self,
        faults: Sequence[SmallDelayFault],
        pairs: Sequence[PatternPair],
        capture_time: float,
        voltage: float = 0.8,
        kernel_table: Optional[DelayKernelTable] = None,
    ) -> Dict[SmallDelayFault, Optional[int]]:
        """Grade the faults against a pattern set.

        Returns fault → index of the first detecting pattern, or ``None``
        when the fault escapes the test (its delay fits in the slack of
        every sensitized path, or no pattern sensitizes it).
        """
        if capture_time <= 0:
            raise AtpgError("capture time must be positive")
        golden, base_delays = self._golden(pairs, voltage, kernel_table)
        golden_sample: Optional[np.ndarray] = None
        verdicts: Dict[SmallDelayFault, Optional[int]] = {}
        cone_cutoff = max(1, self.compiled.num_gates // 4)
        for fault in faults:
            position = self._gate_index.get(fault.gate)
            if position is None:
                raise AtpgError(f"no gate named {fault.gate!r}")
            use_incremental = self.incremental
            if use_incremental is None:  # adaptive: small cones replay
                use_incremental = len(self._cone(position)[0]) <= cone_cutoff
            if use_incremental:
                verdicts[fault] = self._simulate_incremental(
                    fault, pairs, capture_time, voltage, kernel_table,
                    golden, base_delays)
            else:
                if golden_sample is None:
                    golden_sample = self._sampled_responses(golden,
                                                            capture_time)
                verdicts[fault] = self._simulate_full(
                    fault, pairs, capture_time, voltage, kernel_table,
                    golden_sample)
        return verdicts

    def coverage(
        self,
        faults: Sequence[SmallDelayFault],
        pairs: Sequence[PatternPair],
        capture_time: float,
        voltage: float = 0.8,
        kernel_table: Optional[DelayKernelTable] = None,
    ) -> float:
        """Fraction of the fault list detected by the pattern set."""
        if not faults:
            return 1.0
        verdicts = self.simulate(faults, pairs, capture_time, voltage,
                                 kernel_table)
        return sum(1 for v in verdicts.values() if v is not None) / len(faults)

    def minimum_detectable_delay(
        self,
        gate: str,
        pairs: Sequence[PatternPair],
        capture_time: float,
        voltage: float = 0.8,
        kernel_table: Optional[DelayKernelTable] = None,
        upper: float = 1e-9,
        iterations: int = 10,
    ) -> Optional[float]:
        """Bisect the smallest extra delay at ``gate`` the test detects.

        Returns ``None`` when even ``upper`` seconds of extra delay
        escape (the gate is untestable by this pattern set / capture
        clock).  Smaller results mean better test quality — exactly the
        metric faster-than-at-speed testing optimizes.
        """
        def detected(delta: float) -> bool:
            verdict = self.simulate(
                [SmallDelayFault(gate, delta)], pairs, capture_time,
                voltage, kernel_table)
            return next(iter(verdict.values())) is not None

        if not detected(upper):
            return None
        low, high = 0.0, upper
        for _ in range(iterations):
            mid = 0.5 * (low + high)
            if mid <= 0.0:
                break
            if detected(mid):
                high = mid
            else:
                low = mid
        return high
