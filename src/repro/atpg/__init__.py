"""Test pattern generation substrate.

The paper uses a commercial ATPG: transition-delay pattern pairs plus
timing-aware patterns targeting the 200 longest paths.  This package
provides the equivalent open pieces:

* :mod:`repro.atpg.patterns` — pattern-set containers and random
  generation,
* :mod:`repro.atpg.transition_fault` — transition-fault list, parallel
  fault simulation and coverage-driven pattern compaction,
* :mod:`repro.atpg.path_patterns` — timing-aware longest-path pattern
  generation with false-path detection (the source of the paper's ``*``
  footnote).
"""

from repro.atpg.patterns import PatternSet, random_pattern_set
from repro.atpg.transition_fault import (
    TransitionFault,
    FaultSimulator,
    generate_transition_patterns,
)
from repro.atpg.path_patterns import PathPatternResult, generate_path_patterns
from repro.atpg.small_delay import SmallDelayFault, SmallDelayFaultSimulator

__all__ = [
    "PatternSet",
    "random_pattern_set",
    "TransitionFault",
    "FaultSimulator",
    "generate_transition_patterns",
    "PathPatternResult",
    "generate_path_patterns",
    "SmallDelayFault",
    "SmallDelayFaultSimulator",
]
