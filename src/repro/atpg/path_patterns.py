"""Timing-aware pattern generation for the longest paths.

The paper tops its transition-fault sets up with patterns targeting the
200 longest paths of each design; for several designs *all* reported
longest paths turned out to be false paths and no patterns were added
(the ``*`` rows of Table I).  This module reproduces that flow:

1. enumerate the K longest polarity-aware paths
   (:func:`repro.timing.paths.k_longest_paths`),
2. per path, build the side-input sensitization constraints and justify
   them back to the primary inputs with a bounded backtracking search,
3. derive the launch vector by flipping the path's start input,
4. *validate* the candidate pair by time simulation — the pattern
   counts only when a transition actually arrives at the path's end net
   (non-robust sensitization can be masked); otherwise the path is
   recorded as false/untestable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cells.library import CellLibrary
from repro.netlist.circuit import Circuit, Gate
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.event_driven import EventDrivenSimulator
from repro.timing.paths import Path, k_longest_paths
from repro.atpg.patterns import PatternSet

__all__ = ["PathPatternResult", "generate_path_patterns"]


@dataclass
class PathPatternResult:
    """Outcome of timing-aware path pattern generation.

    Attributes
    ----------
    patterns:
        The validated timing-aware pattern pairs.
    tested_paths:
        Paths for which a validated pattern was generated.
    false_paths:
        Paths whose sensitization constraints are unsatisfiable or whose
        candidate patterns never propagated a transition to the path
        end — structurally reported but not functionally exercisable.
    """

    patterns: PatternSet
    tested_paths: List[Path] = field(default_factory=list)
    false_paths: List[Path] = field(default_factory=list)

    @property
    def all_false(self) -> bool:
        """The paper's ``*`` condition: every targeted path was false."""
        return bool(self.false_paths) and not self.tested_paths


class _Justifier:
    """Bounded backtracking line justification on a combinational netlist."""

    def __init__(self, circuit: Circuit, library: CellLibrary,
                 backtrack_limit: int = 400) -> None:
        self.circuit = circuit
        self.library = library
        self.backtrack_limit = backtrack_limit
        self._backtracks = 0

    def solve(self, requirements: Dict[str, int]) -> Optional[Dict[str, int]]:
        """Find a full-input assignment satisfying net=value requirements.

        Returns net→value for (at least) all primary inputs involved, or
        ``None`` when the requirements conflict within the backtrack
        budget.
        """
        self._backtracks = 0
        assignment: Dict[str, int] = {}
        for net, value in requirements.items():
            if not self._justify(net, value, assignment):
                return None
        return assignment

    def _justify(self, net: str, value: int, assignment: Dict[str, int]) -> bool:
        known = assignment.get(net)
        if known is not None:
            return known == value
        assignment[net] = value
        driver = self.circuit.driver(net)
        if driver is None:
            return True  # primary input: assignment stands
        if self._satisfy_gate(driver, value, assignment):
            return True
        del assignment[net]
        return False

    def _satisfy_gate(self, gate: Gate, value: int,
                      assignment: Dict[str, int]) -> bool:
        cell = self.library[gate.cell]
        arity = cell.num_inputs
        combos: List[Tuple[int, Tuple[int, ...]]] = []
        for bits in product((0, 1), repeat=arity):
            if (int(cell.evaluate(list(bits))) & 1) != value:
                continue
            unknown = conflict = 0
            for pin, bit in enumerate(bits):
                known = assignment.get(gate.inputs[pin])
                if known is None:
                    unknown += 1
                elif known != bit:
                    conflict += 1
            if conflict:
                continue
            combos.append((unknown, bits))
        combos.sort()  # fewest new decisions first

        for _, bits in combos:
            if self._backtracks > self.backtrack_limit:
                return False
            snapshot = dict(assignment)
            success = True
            for pin, bit in enumerate(bits):
                if not self._justify(gate.inputs[pin], bit, assignment):
                    success = False
                    break
            if success:
                return True
            assignment.clear()
            assignment.update(snapshot)
            self._backtracks += 1
        return False


def _side_input_requirements(
    circuit: Circuit, library: CellLibrary, path: Path
) -> Optional[Dict[str, int]]:
    """Net=value constraints that sensitize the path in the second cycle.

    For every on-path gate, each off-path input must hold the value that
    lets the on-path pin control the output:

    * (N)AND-like pins → side inputs 1; (N)OR-like → side inputs 0,
      derived generically by finding a side-input assignment under which
      the output follows (or inverts) the on-path pin,
    * XOR-like pins propagate under any side value (no constraint),
    * a MUX data pin requires the select to route it.

    Returns ``None`` when some gate offers no sensitizing side values
    (cannot happen for the library's cells, but guards custom ones).
    """
    requirements: Dict[str, int] = {}
    for hop, gate_name in enumerate(path.gates):
        gate = circuit.gate(gate_name)
        cell = library[gate.cell]
        pin = path.pins[hop]
        arity = cell.num_inputs
        if arity == 1:
            continue
        in_value_before = 1 - (0 if path.polarities[hop] == 0 else 1)
        # The on-path pin toggles; find side assignments where toggling
        # the pin toggles the output (i.e. the pin is observable).
        sensitizing: List[Tuple[int, ...]] = []
        for side in product((0, 1), repeat=arity - 1):
            bits_low = list(side[:pin]) + [0] + list(side[pin:])
            bits_high = list(side[:pin]) + [1] + list(side[pin:])
            out_low = int(cell.evaluate(bits_low)) & 1
            out_high = int(cell.evaluate(bits_high)) & 1
            if out_low != out_high:
                sensitizing.append(side)
        if not sensitizing:
            return None
        # Constrain only side pins whose value is forced across all
        # sensitizing assignments (unconstrained pins stay free).
        for side_pos in range(arity - 1):
            values = {side[side_pos] for side in sensitizing}
            if len(values) == 1:
                side_pin = side_pos if side_pos < pin else side_pos + 1
                net = gate.inputs[side_pin]
                required = values.pop()
                if requirements.get(net, required) != required:
                    return None
                requirements[net] = required
    return requirements


def generate_path_patterns(
    circuit: Circuit,
    library: CellLibrary,
    k: int = 200,
    backtrack_limit: int = 400,
    compiled=None,
) -> PathPatternResult:
    """Generate validated timing-aware patterns for the K longest paths."""
    paths = k_longest_paths(circuit, library, k=k, compiled=compiled)
    justifier = _Justifier(circuit, library, backtrack_limit=backtrack_limit)
    simulator = EventDrivenSimulator(
        circuit, library, compiled=compiled,
        config=SimulationConfig(record_all_nets=True),
    )
    result = PathPatternResult(patterns=PatternSet(circuit_name=circuit.name))
    width = len(circuit.inputs)
    input_index = {net: i for i, net in enumerate(circuit.inputs)}

    for path in paths:
        requirements = _side_input_requirements(circuit, library, path)
        if requirements is None:
            result.false_paths.append(path)
            continue
        # The path start is a primary input; its final (v2) value follows
        # the launch polarity (RISE -> ends at 1).
        final_value = 1 if int(path.polarities[0]) == 0 else 0
        requirements = dict(requirements)
        if requirements.get(path.start, final_value) != final_value:
            result.false_paths.append(path)
            continue
        requirements[path.start] = final_value
        assignment = justifier.solve(requirements)
        if assignment is None:
            result.false_paths.append(path)
            continue

        v2 = np.zeros(width, dtype=np.uint8)
        for net, value in assignment.items():
            position = input_index.get(net)
            if position is not None:
                v2[position] = value
        v1 = v2.copy()
        v1[input_index[path.start]] ^= 1
        pair = PatternPair(v1=v1, v2=v2)

        # Validation: a transition must actually reach the path end.
        run = simulator.run([pair])
        if run.waveform(0, path.end).num_transitions > 0:
            result.patterns.add(pair, source="timing-aware")
            result.tested_paths.append(path)
        else:
            result.false_paths.append(path)
    return result
