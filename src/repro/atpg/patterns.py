"""Pattern-set containers and random generation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

import numpy as np

from repro.netlist.circuit import Circuit
from repro.simulation.base import PatternPair

__all__ = ["PatternSet", "random_pattern_set"]


@dataclass
class PatternSet:
    """An ordered collection of transition-delay pattern pairs.

    ``source`` tags where each pair came from (``"random"``,
    ``"transition-fault"``, ``"timing-aware"`` …) so experiment reports
    can break down the pattern mix like the paper does.
    """

    circuit_name: str
    pairs: List[PatternPair] = field(default_factory=list)
    sources: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.sources) < len(self.pairs):
            self.sources.extend(
                ["unknown"] * (len(self.pairs) - len(self.sources))
            )

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[PatternPair]:
        return iter(self.pairs)

    def __getitem__(self, index: int) -> PatternPair:
        return self.pairs[index]

    def add(self, pair: PatternPair, source: str = "unknown") -> None:
        self.pairs.append(pair)
        self.sources.append(source)

    def extend(self, other: "PatternSet") -> None:
        self.pairs.extend(other.pairs)
        self.sources.extend(other.sources)

    def count_by_source(self) -> dict:
        counts: dict = {}
        for source in self.sources:
            counts[source] = counts.get(source, 0) + 1
        return counts

    def v1_matrix(self) -> np.ndarray:
        """All first vectors stacked, shape ``(pairs, inputs)``."""
        return np.stack([pair.v1 for pair in self.pairs])

    def v2_matrix(self) -> np.ndarray:
        """All second vectors stacked, shape ``(pairs, inputs)``."""
        return np.stack([pair.v2 for pair in self.pairs])


def random_pattern_set(
    circuit: Circuit,
    count: int,
    seed: int = 0,
    adjacent: bool = False,
) -> PatternSet:
    """Generate ``count`` random pattern pairs.

    ``adjacent=True`` derives ``v2`` from ``v1`` by flipping a single
    random input (launch-off-shift-like single-transition pairs);
    otherwise both vectors are independent (broadside-style).
    """
    if count < 1:
        raise ValueError("count must be positive")
    rng = np.random.default_rng(seed)
    width = len(circuit.inputs)
    patterns = PatternSet(circuit_name=circuit.name)
    for _ in range(count):
        v1 = rng.integers(0, 2, size=width, dtype=np.uint8)
        if adjacent:
            v2 = v1.copy()
            v2[rng.integers(width)] ^= 1
        else:
            v2 = rng.integers(0, 2, size=width, dtype=np.uint8)
        patterns.add(PatternPair(v1=v1, v2=v2), source="random")
    return patterns
