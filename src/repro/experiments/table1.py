"""Table I — circuit statistics and simulation performance (V_DD = 0.8 V).

For every suite circuit three simulators run the same pattern set:

1. the serial **event-driven** time simulator with static delays (the
   conventional-commercial-tool column; measured on a pattern subset and
   extrapolated linearly when the full set would take too long — the
   per-pattern cost of a serial simulator is constant),
2. the parallel engine with **static** delays (the [25] baseline),
3. the parallel engine with **parametric** polynomial delays — the
   proposed simulator (averaged over ``repeats`` runs like the paper's
   average of 10).

Reported per circuit: node count, pattern pairs, runtimes, throughput in
MEPS (million node evaluations per second) and the speedup of the
proposed simulator over the event-driven baseline.  The paper's values
are printed alongside.  Expected shape (not absolute numbers — NumPy
SIMT vs. a Tesla P100, see DESIGN.md §2): the parallel engine wins by
orders of magnitude, the gap grows with circuit size, and the parametric
delay kernels add no significant overhead over static delays.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.experiments.common import (
    default_kernel_table,
    format_runtime,
    format_table,
    meps,
)
from repro.experiments.paper_data import PAPER_TABLE1
from repro.experiments.workload import DEFAULT_SCALE, Workload, prepare_workload
from repro.netlist.suite import BENCHMARK_SUITE
from repro.simulation.event_driven import EventDrivenSimulator
from repro.simulation.gpu import GpuWaveSim

__all__ = ["Table1Row", "Table1Result", "run", "main"]

NOMINAL_VOLTAGE = 0.8


@dataclass(frozen=True)
class Table1Row:
    """Measured performance for one circuit."""

    name: str
    nodes: int
    pairs: int
    event_driven_seconds: float      # extrapolated to the full pattern set
    event_driven_measured_pairs: int
    event_driven_meps: float
    gpu_static_seconds: float
    proposed_seconds: float
    proposed_meps: float
    speedup: float
    all_longest_paths_false: bool


@dataclass(frozen=True)
class Table1Result:
    rows: Tuple[Table1Row, ...]
    scale: float

    @property
    def average_meps(self) -> float:
        return sum(r.proposed_meps for r in self.rows) / len(self.rows)

    @property
    def max_speedup(self) -> float:
        return max(r.speedup for r in self.rows)


def measure_circuit(
    workload: Workload,
    kernel_table,
    ed_max_pairs: int = 12,
    repeats: int = 3,
) -> Table1Row:
    """Run the three simulators on one workload and collect the row."""
    pairs = workload.patterns.pairs
    nodes = workload.nodes

    # 1. Serial event-driven baseline (static nominal delays).
    event_sim = EventDrivenSimulator(
        workload.circuit, default_library_of(workload), compiled=workload.compiled
    )
    subset = pairs[: max(1, min(len(pairs), ed_max_pairs))]
    start = time.perf_counter()
    event_sim.run(subset, voltage=NOMINAL_VOLTAGE)
    per_pattern = (time.perf_counter() - start) / len(subset)
    event_seconds = per_pattern * len(pairs)

    # 2./3. Parallel engine, static then parametric delays.
    gpu = GpuWaveSim(workload.circuit, default_library_of(workload),
                     compiled=workload.compiled)
    start = time.perf_counter()
    gpu.run(pairs, voltage=NOMINAL_VOLTAGE)
    static_seconds = time.perf_counter() - start

    proposed_times = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        gpu.run(pairs, voltage=NOMINAL_VOLTAGE, kernel_table=kernel_table)
        proposed_times.append(time.perf_counter() - start)
    proposed_seconds = sum(proposed_times) / len(proposed_times)

    return Table1Row(
        name=workload.name,
        nodes=nodes,
        pairs=len(pairs),
        event_driven_seconds=event_seconds,
        event_driven_measured_pairs=len(subset),
        event_driven_meps=meps(nodes, len(pairs), event_seconds),
        gpu_static_seconds=static_seconds,
        proposed_seconds=proposed_seconds,
        proposed_meps=meps(nodes, len(pairs), proposed_seconds),
        speedup=event_seconds / proposed_seconds,
        all_longest_paths_false=workload.all_longest_paths_false,
    )


def default_library_of(workload: Workload):
    """The library the workload was compiled against."""
    return workload.compiled.library


def run(
    circuits: Optional[Sequence[str]] = None,
    scale: float = DEFAULT_SCALE,
    n: int = 3,
    ed_max_pairs: int = 12,
    repeats: int = 3,
) -> Table1Result:
    """Execute the Table I experiment."""
    names = list(circuits) if circuits else list(BENCHMARK_SUITE)
    kernel_table = default_kernel_table(n)
    rows: List[Table1Row] = []
    for name in names:
        workload = prepare_workload(name, scale=scale)
        rows.append(
            measure_circuit(workload, kernel_table,
                            ed_max_pairs=ed_max_pairs, repeats=repeats)
        )
    return Table1Result(rows=tuple(rows), scale=scale)


def format_result(result: Table1Result) -> str:
    rows = []
    for row in result.rows:
        paper = PAPER_TABLE1.get(row.name)
        rows.append([
            row.name + ("*" if row.all_longest_paths_false else ""),
            row.nodes,
            row.pairs,
            format_runtime(row.event_driven_seconds),
            f"{row.event_driven_meps:.2f}",
            format_runtime(row.gpu_static_seconds),
            format_runtime(row.proposed_seconds),
            f"{row.proposed_meps:.1f}",
            f"{row.speedup:.0f}",
            f"{paper.speedup:.0f}" if paper else "-",
        ])
    table = format_table(
        ["circuit", "nodes", "pairs", "event-driven", "ED MEPS",
         "[25] static", "proposed", "MEPS", "speedup", "paper X"],
        rows,
        title=(
            f"Table I — simulation performance at {NOMINAL_VOLTAGE} V "
            f"(suite scale {result.scale}; event-driven extrapolated from a "
            f"pattern subset; '*' = all targeted longest paths false)"
        ),
    )
    summary = (
        f"\nAverage proposed throughput: {result.average_meps:.1f} MEPS "
        f"(paper: 1186 MEPS on a Tesla P100); max speedup "
        f"{result.max_speedup:.0f}x (paper: 1785x). Absolute factors differ "
        f"by design — NumPy SIMT vs CUDA — the shape (parallel >> serial, "
        f"growing with size, parametric ~ static) is the reproduced claim."
    )
    return table + summary


def main(argv: Sequence[str] = ()) -> Table1Result:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuits", nargs="+", default=None,
                        help="subset of suite circuit names")
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--ed-pairs", type=int, default=12,
                        help="pattern subset size for the event-driven baseline")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv or None)
    result = run(circuits=args.circuits, scale=args.scale,
                 ed_max_pairs=args.ed_pairs, repeats=args.repeats)
    print(format_result(result))
    return result


if __name__ == "__main__":
    main()
