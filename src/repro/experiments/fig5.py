"""Fig. 5 — polynomial surface vs SPICE for the NOR2_X2 rising delay.

Fits the rising propagation delay of the two-input NOR cell (first input
pin) with a surface polynomial of order ``2·N``, ``N = 3``, and compares
it against the linearly interpolated SPICE reference on a 64×64 grid.
The paper reports an average absolute error of ≈ 0.38 % and a maximum
deviation of 2.41 %.

Running as a script also dumps the two surfaces as CSV (for external
contour plotting) when ``--csv`` is given.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cells.cell import DrivePolarity
from repro.core.characterization import (PinCharacterization,
                                         characterize_cell_cached)
from repro.core.parameters import ParameterSpace
from repro.electrical.spice import AnalyticalSpice
from repro.experiments.common import default_charz_cache, default_library
from repro.experiments.paper_data import PAPER_FIG5

__all__ = ["Fig5Result", "run", "main"]


@dataclass(frozen=True)
class Fig5Result:
    """Surface comparison output.

    ``polynomial_surface`` and ``reference_surface`` are the delay
    *deviation* surfaces over the normalized 64×64 grid; errors are
    fractions of the nominal delay.
    """

    cell: str
    pin: str
    polarity: str
    n: int
    grid: int
    avg_abs_error: float
    max_abs_error: float
    voltages: np.ndarray
    loads: np.ndarray
    polynomial_surface: np.ndarray
    reference_surface: np.ndarray
    characterization: PinCharacterization


def run(cell_name: str = "NOR2_X2", pin_name: str = "A1", n: int = 3,
        grid: int = 64) -> Fig5Result:
    """Execute the Fig. 5 comparison."""
    library = default_library()
    cell = library[cell_name]
    pin = cell.pin(pin_name)
    space = ParameterSpace.paper_default()
    characterization = characterize_cell_cached(
        AnalyticalSpice(), cell, default_charz_cache(), space=space, n=n
    ).entry(pin.name, DrivePolarity.RISE)
    nv = np.linspace(0.0, 1.0, grid)
    nc = np.linspace(0.0, 1.0, grid)
    reference = characterization.reference(nv[:, None], nc[None, :])
    predicted = characterization.fit.polynomial.evaluate(nv[:, None], nc[None, :])
    error = np.abs(predicted - reference)
    return Fig5Result(
        cell=cell_name,
        pin=pin_name,
        polarity="rise",
        n=n,
        grid=grid,
        avg_abs_error=float(error.mean()),
        max_abs_error=float(error.max()),
        voltages=np.asarray(space.denormalize_voltage(nv)),
        loads=np.asarray(space.denormalize_load(nc)),
        polynomial_surface=np.asarray(predicted),
        reference_surface=np.asarray(reference),
        characterization=characterization,
    )


def format_result(result: Fig5Result) -> str:
    return "\n".join([
        f"Fig. 5 — {result.cell}/{result.pin} rising-delay surface, "
        f"order 2*{result.n}, {result.grid}x{result.grid} grid",
        f"  measured: avg abs error = {result.avg_abs_error*100:.3f}%, "
        f"max = {result.max_abs_error*100:.3f}%",
        f"  paper:    avg abs error = {PAPER_FIG5['avg_abs_error']*100:.2f}%, "
        f"max = {PAPER_FIG5['max_abs_error']*100:.2f}%",
    ])


def write_csv(result: Fig5Result, path: str) -> None:
    """Dump both surfaces as CSV rows (v, c, polynomial, reference)."""
    with open(path, "w", encoding="utf-8") as stream:
        stream.write("voltage,load_farads,polynomial_deviation,reference_deviation\n")
        for i, voltage in enumerate(result.voltages):
            for j, load in enumerate(result.loads):
                stream.write(
                    f"{voltage:.6f},{load:.6e},"
                    f"{result.polynomial_surface[i, j]:.8f},"
                    f"{result.reference_surface[i, j]:.8f}\n"
                )


def main(argv: Sequence[str] = ()) -> Fig5Result:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cell", default="NOR2_X2")
    parser.add_argument("--pin", default="A1")
    parser.add_argument("--order-n", type=int, default=3)
    parser.add_argument("--grid", type=int, default=64)
    parser.add_argument("--csv", default=None, help="dump surfaces to CSV")
    args = parser.parse_args(argv or None)
    result = run(cell_name=args.cell, pin_name=args.pin, n=args.order_n,
                 grid=args.grid)
    print(format_result(result))
    if args.csv:
        write_csv(result, args.csv)
        print(f"  surfaces written to {args.csv}")
    return result


if __name__ == "__main__":
    main()
