"""Fig. 4 — approximation-error distribution of cell delay polynomials.

For the Fig. 4 cell subset (AND, NAND, BUF, INV, OR, NOR — all drive
strengths) and polynomial orders ``2·N`` with ``N = 1…5``, every (cell,
pin, polarity) delay surface is fitted and its error against the linear
interpolation of the SPICE samples is measured on a 64×64 grid of
equidistant (normalized) operating points.

The paper's headline: the mean error is well below 1 % at every order;
for ``N ≥ 3`` the average stddev drops below 1 % and the average maximum
error below 2.7 % (worst single sample 5.35 %), at the cost of
``(N+1)²`` stored coefficients and slightly longer regression times
(1–40 ms per entry).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.cells.nangate15 import FIG4_FAMILIES
from repro.core.characterization import characterize_cell_cached
from repro.core.parameters import ParameterSpace
from repro.electrical.spice import AnalyticalSpice
from repro.experiments.common import (default_charz_cache, default_library,
                                      format_table)
from repro.experiments.paper_data import PAPER_FIG4

__all__ = ["Fig4Result", "OrderStats", "run", "main"]


@dataclass(frozen=True)
class OrderStats:
    """Error distribution over all fitted entries at one polynomial order.

    All error figures are fractions of the nominal delay (0.01 = 1 %).
    ``mean_errors`` / ``std_errors`` / ``max_errors`` hold one entry per
    fitted (cell, pin, polarity) surface — the distributions Fig. 4
    plots; the ``avg_*`` fields are their averages.
    """

    n: int
    num_entries: int
    mean_errors: Tuple[float, ...]
    std_errors: Tuple[float, ...]
    max_errors: Tuple[float, ...]
    avg_mean: float
    avg_std: float
    avg_max: float
    worst_max: float
    coefficients: int
    avg_regression_seconds: float


@dataclass(frozen=True)
class Fig4Result:
    """Full experiment output: stats per polynomial half-order."""

    orders: Tuple[OrderStats, ...]
    families: Tuple[str, ...]
    grid: int

    def stats_for(self, n: int) -> OrderStats:
        for stats in self.orders:
            if stats.n == n:
                return stats
        raise KeyError(f"order N={n} not evaluated")


def run(
    orders: Sequence[int] = (1, 2, 3, 4, 5),
    families: Sequence[str] = FIG4_FAMILIES,
    grid: int = 64,
    subsample_factor: int = 4,
) -> Fig4Result:
    """Execute the Fig. 4 study and return the error distributions."""
    library = default_library().select(families)
    space = ParameterSpace.paper_default()
    spice = AnalyticalSpice()
    cache = default_charz_cache()
    order_stats: List[OrderStats] = []
    for n in orders:
        means: List[float] = []
        stds: List[float] = []
        maxima: List[float] = []
        solve_times: List[float] = []
        for cell in library:
            characterization = characterize_cell_cached(
                spice, cell, cache,
                space=space, n=n, subsample_factor=subsample_factor,
            )
            for entry in characterization.pins:
                mean, std, maximum = entry.evaluation_error(grid)
                means.append(mean)
                stds.append(std)
                maxima.append(maximum)
                solve_times.append(entry.fit.solve_seconds)
        order_stats.append(
            OrderStats(
                n=n,
                num_entries=len(means),
                mean_errors=tuple(means),
                std_errors=tuple(stds),
                max_errors=tuple(maxima),
                avg_mean=float(np.mean(means)),
                avg_std=float(np.mean(stds)),
                avg_max=float(np.mean(maxima)),
                worst_max=float(np.max(maxima)),
                coefficients=(n + 1) ** 2,
                avg_regression_seconds=float(np.mean(solve_times)),
            )
        )
    return Fig4Result(orders=tuple(order_stats), families=tuple(families), grid=grid)


def format_result(result: Fig4Result) -> str:
    rows = []
    for stats in result.orders:
        rows.append([
            f"2*{stats.n}",
            stats.coefficients,
            f"{stats.avg_mean*100:.3f}%",
            f"{stats.avg_std*100:.3f}%",
            f"{stats.avg_max*100:.3f}%",
            f"{stats.worst_max*100:.3f}%",
            f"{stats.avg_regression_seconds*1e3:.1f}ms",
        ])
    table = format_table(
        ["order", "coeffs", "avg mean err", "avg stddev", "avg max err",
         "worst max", "avg regr. time"],
        rows,
        title=(
            f"Fig. 4 — polynomial approximation error over "
            f"{result.orders[0].num_entries} cell delay surfaces "
            f"({len(result.families)} families, {result.grid}x{result.grid} grid)"
        ),
    )
    paper = (
        f"\nPaper reference: mean << 1% at all orders; for N >= "
        f"{PAPER_FIG4['min_n_for_1pct_stddev']} avg stddev < 1% and avg max < "
        f"{PAPER_FIG4['avg_max_error_at_n3']*100:.1f}% "
        f"(worst sample {PAPER_FIG4['worst_sample_max_error']*100:.2f}%)."
    )
    return table + paper


def write_csv(result: Fig4Result, path: str) -> None:
    """Dump the raw per-entry error distributions (for box plotting)."""
    with open(path, "w", encoding="utf-8") as stream:
        stream.write("order,entry,mean_error,std_error,max_error\n")
        for stats in result.orders:
            for entry in range(stats.num_entries):
                stream.write(
                    f"{2*stats.n},{entry},{stats.mean_errors[entry]:.8f},"
                    f"{stats.std_errors[entry]:.8f},"
                    f"{stats.max_errors[entry]:.8f}\n"
                )


def main(argv: Sequence[str] = ()) -> Fig4Result:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--orders", type=int, nargs="+", default=[1, 2, 3, 4, 5])
    parser.add_argument("--grid", type=int, default=64)
    parser.add_argument("--csv", default=None,
                        help="dump the per-entry error distributions")
    args = parser.parse_args(argv or None)
    result = run(orders=args.orders, grid=args.grid)
    print(format_result(result))
    if args.csv:
        write_csv(result, args.csv)
        print(f"distributions written to {args.csv}")
    return result


if __name__ == "__main__":
    main()
