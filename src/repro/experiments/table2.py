"""Table II — circuit timing characteristics under a voltage sweep.

Per suite circuit:

* column 2 — the pessimistic longest-path delay from static timing
  analysis under nominal conditions,
* columns 3–8 — the latest transition arrival time observed at the
  outputs when simulating the full pattern set under supply voltages
  0.55 / 0.6 / 0.7 / 0.8 / 0.9 / 1.1 V (one parallel run: the whole
  voltage × pattern plane in a single slot grid),
* in parentheses at 0.8 V — the relative deviation of the parametric
  simulation against a static-nominal-delay simulation (the polynomial
  kernel's residual approximation error; paper: ≈ ±0.1 %).

Expected shape: monotone non-linear delay increase toward low voltages,
STA bound above (or near) the simulated arrivals, sub-percent nominal
deviation.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.arrival import latest_arrivals
from repro.experiments.common import default_kernel_table, format_table, si_format
from repro.experiments.paper_data import PAPER_TABLE2, TABLE2_VOLTAGES
from repro.experiments.workload import DEFAULT_SCALE, prepare_workload
from repro.netlist.suite import BENCHMARK_SUITE
from repro.simulation.gpu import GpuWaveSim
from repro.simulation.grid import SlotPlan
from repro.timing.sta import StaticTimingAnalysis

__all__ = ["Table2Row", "Table2Result", "run", "main"]

NOMINAL_VOLTAGE = 0.8


@dataclass(frozen=True)
class Table2Row:
    """Measured timing characteristics for one circuit."""

    name: str
    longest_path: float
    arrivals: Dict[float, float]
    nominal_vs_static: float  # relative deviation at 0.8 V

    def monotone_decreasing(self) -> bool:
        """Arrival times must shrink as the supply voltage rises."""
        ordered = [self.arrivals[v] for v in sorted(self.arrivals)]
        return all(a >= b for a, b in zip(ordered, ordered[1:]))


@dataclass(frozen=True)
class Table2Result:
    rows: Tuple[Table2Row, ...]
    voltages: Tuple[float, ...]
    scale: float


def measure_circuit(workload, kernel_table,
                    voltages: Sequence[float] = TABLE2_VOLTAGES) -> Table2Row:
    """STA + full voltage-sweep simulation for one circuit."""
    library = workload.compiled.library
    sta = StaticTimingAnalysis(workload.circuit, library,
                               compiled=workload.compiled)
    longest = sta.longest_path_delay()

    gpu = GpuWaveSim(workload.circuit, library, compiled=workload.compiled)
    pairs = workload.patterns.pairs
    plan = SlotPlan.cross(len(pairs), voltages)
    result = gpu.run(pairs, plan=plan, kernel_table=kernel_table)
    report = latest_arrivals(result, workload.circuit, plan=plan)
    arrivals = {float(v): report.at(v) for v in voltages}

    static = gpu.run(pairs, voltage=NOMINAL_VOLTAGE)
    static_report = latest_arrivals(static, workload.circuit)
    static_arrival = static_report.at(NOMINAL_VOLTAGE)
    deviation = arrivals[NOMINAL_VOLTAGE] / static_arrival - 1.0

    return Table2Row(
        name=workload.name,
        longest_path=longest,
        arrivals=arrivals,
        nominal_vs_static=deviation,
    )


def run(
    circuits: Optional[Sequence[str]] = None,
    scale: float = DEFAULT_SCALE,
    n: int = 3,
    voltages: Sequence[float] = TABLE2_VOLTAGES,
) -> Table2Result:
    """Execute the Table II experiment."""
    names = list(circuits) if circuits else list(BENCHMARK_SUITE)
    kernel_table = default_kernel_table(n)
    rows: List[Table2Row] = []
    for name in names:
        workload = prepare_workload(name, scale=scale)
        rows.append(measure_circuit(workload, kernel_table, voltages=voltages))
    return Table2Result(rows=tuple(rows), voltages=tuple(voltages), scale=scale)


def format_result(result: Table2Result) -> str:
    header = ["circuit", "longest path"] + [
        f"{v:.2f}V" for v in result.voltages
    ] + ["vs static", "paper@0.8V"]
    rows = []
    for row in result.rows:
        paper = PAPER_TABLE2.get(row.name)
        cells = [row.name, si_format(row.longest_path)]
        for voltage in result.voltages:
            text = si_format(row.arrivals[voltage])
            if abs(voltage - NOMINAL_VOLTAGE) < 1e-9:
                text += f" ({row.nominal_vs_static:+.2%})"
            cells.append(text)
        cells.append(f"{row.nominal_vs_static:+.2%}")
        paper_arrival = paper.arrivals.get(NOMINAL_VOLTAGE) if paper else None
        cells.append(si_format(paper_arrival) if paper_arrival else "-")
        rows.append(cells)
    table = format_table(
        header, rows,
        title=(
            f"Table II — latest transition arrival times under voltage sweep "
            f"(suite scale {result.scale}; times shrink with rising V_DD; "
            f"'vs static' is the parametric-kernel residual at nominal)"
        ),
    )
    avg_dev = sum(abs(r.nominal_vs_static) for r in result.rows) / len(result.rows)
    summary = (
        f"\nAverage |nominal vs static| deviation: {avg_dev:.2%} "
        f"(paper: ~0.10%). Low-voltage slowdown ratio "
        f"{result.rows[0].arrivals[min(result.voltages)] / result.rows[0].arrivals[NOMINAL_VOLTAGE]:.2f}x "
        f"for {result.rows[0].name} (paper s38584: 1.43x)."
    )
    return table + summary


def main(argv: Sequence[str] = ()) -> Table2Result:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuits", nargs="+", default=None)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    args = parser.parse_args(argv or None)
    result = run(circuits=args.circuits, scale=args.scale)
    print(format_result(result))
    return result


if __name__ == "__main__":
    main()
