"""Run every paper exhibit in sequence: ``python -m repro.experiments.run_all``.

Convenience driver for regenerating the full EXPERIMENTS.md record.
Accepts the same ``--scale`` / ``--circuits`` knobs as the table
harnesses; ``--quick`` selects a reduced configuration (three circuits,
small scale) that finishes in well under a minute.
"""

from __future__ import annotations

import argparse
import time
from typing import Optional, Sequence

from repro.experiments import fig4, fig5, table1, table2
from repro.experiments.workload import DEFAULT_SCALE

__all__ = ["main"]

QUICK_CIRCUITS = ("s38417", "b17", "p100k")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced circuit set and scale")
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--circuits", nargs="+", default=None)
    args = parser.parse_args(argv)

    scale = args.scale
    circuits = args.circuits
    if args.quick:
        scale = scale or 0.008
        circuits = circuits or list(QUICK_CIRCUITS)
    scale = scale or DEFAULT_SCALE

    start = time.perf_counter()

    print("=" * 72)
    result4 = fig4.run()
    print(fig4.format_result(result4))

    print("\n" + "=" * 72)
    result5 = fig5.run()
    print(fig5.format_result(result5))

    print("\n" + "=" * 72)
    result1 = table1.run(circuits=circuits, scale=scale,
                         ed_max_pairs=6, repeats=2)
    print(table1.format_result(result1))

    print("\n" + "=" * 72)
    result2 = table2.run(circuits=circuits, scale=scale)
    print(table2.format_result(result2))

    print(f"\nall exhibits regenerated in "
          f"{time.perf_counter() - start:.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
