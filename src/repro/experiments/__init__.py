"""Experiment harnesses regenerating every exhibit of the paper.

One module per exhibit, each runnable as a script and importable as a
function returning structured results:

* ``python -m repro.experiments.fig4``   — polynomial-order error study
* ``python -m repro.experiments.fig5``   — NOR2_X2 surface approximation
* ``python -m repro.experiments.table1`` — simulation performance
* ``python -m repro.experiments.table2`` — voltage-sweep arrival times

``repro.experiments.paper_data`` holds the numbers printed in the paper
so every run can report reproduction-vs-paper side by side.
"""

from repro.experiments.common import default_kernel_table, default_characterization

__all__ = ["default_kernel_table", "default_characterization"]
