"""Shared experiment infrastructure: cached characterization, formatting."""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.cells.library import CellLibrary
from repro.cells.nangate15 import make_nangate15_library
from repro.core.characterization import LibraryCharacterization, characterize_library
from repro.core.charz_cache import CoefficientCache
from repro.core.delay_kernel import DelayKernelTable
from repro.electrical.spice import AnalyticalSpice
from repro.units import format_runtime, meps, si_format

__all__ = [
    "default_library",
    "default_charz_cache",
    "default_characterization",
    "default_kernel_table",
    "format_table",
    "format_runtime",
    "meps",
    "si_format",
]

_LIBRARY: Optional[CellLibrary] = None
_CACHE: Optional[CoefficientCache] = None
_TABLES: Dict[int, DelayKernelTable] = {}


def default_library() -> CellLibrary:
    """The NanGate-15nm-like library, built once per process."""
    global _LIBRARY
    if _LIBRARY is None:
        _LIBRARY = make_nangate15_library()
    return _LIBRARY


def default_charz_cache() -> CoefficientCache:
    """The shared coefficient cache every experiment routes through."""
    global _CACHE
    if _CACHE is None:
        _CACHE = CoefficientCache()
    return _CACHE


def default_characterization(n: int = 3) -> LibraryCharacterization:
    """Library characterization at half-order ``n``.

    Cells come from the fingerprint-keyed coefficient cache (process
    memo + on-disk store), so repeated calls — including across worker
    *processes*, which the old per-process dict could not serve — cost
    zero SPICE evaluations once the cache is warm.
    """
    return characterize_library(
        default_library(), AnalyticalSpice(), n=n, cache=default_charz_cache()
    )


def default_kernel_table(n: int = 3) -> DelayKernelTable:
    """Compiled delay kernels at half-order ``n``, cached per process."""
    if n not in _TABLES:
        _TABLES[n] = default_characterization(n).compile()
    return _TABLES[n]


def format_table(header: Sequence[str], rows: Sequence[Sequence[str]],
                 title: str = "") -> str:
    """Fixed-width ASCII table in the paper's layout style."""
    columns = len(header)
    widths = [len(str(header[i])) for i in range(columns)]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(header[i]).ljust(widths[i]) for i in range(columns)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(str(row[i]).rjust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


class Stopwatch:
    """Tiny context-manager timer used across the harnesses."""

    def __enter__(self) -> "Stopwatch":
        self.start = time.perf_counter()
        self.elapsed = 0.0
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self.start
