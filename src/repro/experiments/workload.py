"""Workload preparation shared by the Table I / Table II harnesses.

For every suite circuit this builds the scaled synthetic netlist, the
compiled simulation model and a transition-delay pattern set the way the
paper's flow does: a transition-fault ATPG base set topped up with
timing-aware patterns for the longest paths (small circuits), or random
transition pairs when the circuit is too large for the pure-Python ATPG
to stay in budget.  Results are cached per (name, scale) so the two
table harnesses and the benchmarks share one preparation pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.atpg.patterns import PatternSet, random_pattern_set
from repro.atpg.path_patterns import generate_path_patterns
from repro.atpg.transition_fault import generate_transition_patterns
from repro.experiments.common import default_library
from repro.netlist.circuit import Circuit
from repro.netlist.suite import (
    BENCHMARK_SUITE,
    DEFAULT_SCALE,
    build_suite_circuit,
    scaled_pattern_count,
)
from repro.simulation.compiled import CompiledCircuit, compile_circuit

__all__ = ["Workload", "prepare_workload", "DEFAULT_SCALE"]

#: Run the full ATPG flow (fault-targeted + timing-aware) only below this
#: gate count; larger stand-ins get random transition pairs.
ATPG_GATE_LIMIT = 1500

#: Longest paths targeted by the timing-aware top-up (paper: 200).
PATH_TARGET = 200


@dataclass
class Workload:
    """Everything the table harnesses need for one circuit."""

    name: str
    circuit: Circuit
    compiled: CompiledCircuit
    patterns: PatternSet
    all_longest_paths_false: bool
    atpg_used: bool

    @property
    def num_pairs(self) -> int:
        return len(self.patterns)

    @property
    def nodes(self) -> int:
        return self.circuit.num_nodes


_CACHE: Dict[Tuple[str, float], Workload] = {}


def prepare_workload(name: str, scale: float = DEFAULT_SCALE,
                     seed: int = 0) -> Workload:
    """Build (or fetch the cached) workload for a suite circuit."""
    key = (name, scale)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached

    entry = BENCHMARK_SUITE[name]
    library = default_library()
    circuit = build_suite_circuit(name, scale=scale)
    compiled = compile_circuit(circuit, library)
    target_pairs = scaled_pattern_count(name, scale=scale)

    all_false = entry.false_paths_only
    atpg_used = circuit.num_gates <= ATPG_GATE_LIMIT
    if atpg_used:
        patterns, _coverage = generate_transition_patterns(
            circuit, library,
            seed=seed + entry.seed,
            max_pairs=target_pairs,
            fault_sample=min(2000, 2 * circuit.num_nodes),
        )
        path_result = generate_path_patterns(
            circuit, library,
            k=min(PATH_TARGET, max(20, target_pairs)),
            compiled=compiled,
        )
        all_false = path_result.all_false
        patterns.extend(path_result.patterns)
        if len(patterns) < target_pairs:
            filler = random_pattern_set(
                circuit, target_pairs - len(patterns), seed=seed + 1
            )
            patterns.extend(filler)
    else:
        patterns = random_pattern_set(circuit, target_pairs, seed=seed + entry.seed)

    workload = Workload(
        name=name,
        circuit=circuit,
        compiled=compiled,
        patterns=patterns,
        all_longest_paths_false=all_false,
        atpg_used=atpg_used,
    )
    _CACHE[key] = workload
    return workload
