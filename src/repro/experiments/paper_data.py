"""Reference numbers transcribed from the paper (for comparison output).

All values are as printed in Schneider & Wunderlich, DATE'20.  They are
*not* targets to match numerically — the reproduction runs on a NumPy
SIMT model and scaled synthetic circuits (see DESIGN.md §2) — but every
experiment prints them next to the measured values so shape fidelity can
be judged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["PAPER_TABLE1", "PAPER_TABLE2", "Table1Row", "Table2Row",
           "PAPER_FIG4", "PAPER_FIG5", "TABLE2_VOLTAGES"]

#: Voltages of Table II columns 3–8.
TABLE2_VOLTAGES: Tuple[float, ...] = (0.55, 0.60, 0.70, 0.80, 0.90, 1.10)


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table I."""

    nodes: int
    pairs: int
    event_driven_seconds: float
    event_driven_meps: float
    gpu_static_seconds: float     # Holst et al. [25], static delays
    proposed_seconds: float
    proposed_meps: float
    speedup: float


PAPER_TABLE1: Dict[str, Table1Row] = {
    "s38417": Table1Row(18999, 173, 1.93, 1.70, 0.006, 0.005, 557.1, 328),
    "s38584": Table1Row(23053, 194, 2.85, 1.57, 0.006, 0.009, 486.1, 310),
    "b17": Table1Row(42779, 818, 16.31, 2.15, 0.018, 0.025, 1351.1, 630),
    "b18": Table1Row(125305, 961, 140.0, 0.86, 0.064, 0.078, 1528.1, 1785),
    "b19": Table1Row(250232, 1916, 464.0, 1.03, 0.207, 0.267, 1792.3, 1737),
    "b22": Table1Row(27847, 692, 16.22, 1.19, 0.013, 0.016, 1204.4, 1014),
    "p35k": Table1Row(47997, 3298, 76.0, 2.08, 0.069, 0.086, 1825.8, 878),
    "p45k": Table1Row(44098, 2320, 45.67, 2.24, 0.056, 0.069, 1474.2, 659),
    "p100k": Table1Row(96172, 2211, 142.0, 1.49, 0.100, 0.126, 1684.9, 1133),
    "p141k": Table1Row(178063, 995, 150.0, 1.18, 0.100, 0.117, 1504.0, 1279),
    "p418k": Table1Row(440277, 1516, 491.0, 1.36, 0.503, 0.502, 1329.3, 979),
    "p500k": Table1Row(527006, 3820, 2940.0, 0.68, 1.68, 1.91, 1052.4, 1552),
    "p533k": Table1Row(676611, 1940, 1740.0, 0.74, 1.62, 2.44, 538.0, 729),
    "p951k": Table1Row(1090419, 4080, 4080.0, 1.09, 7.97, 7.26, 612.6, 564),
    "p1522k": Table1Row(1088421, 8021, 8280.0, 1.05, 9.72, 10.35, 843.2, 802),
}


@dataclass(frozen=True)
class Table2Row:
    """One row of the paper's Table II (times in seconds).

    ``arrivals`` maps the six swept voltages to latest transition
    arrival times; ``nominal_vs_static`` is the relative deviation of
    the 0.8 V parametric simulation against static nominal delays.
    Entries missing in the paper (p1522k low voltages) are ``None``.
    """

    longest_path: Optional[float]
    arrivals: Dict[float, Optional[float]]
    nominal_vs_static: float  # fraction, e.g. -0.0015 for -0.15 %


def _row(longest, a055, a060, a070, a080, a090, a110, dev) -> Table2Row:
    return Table2Row(
        longest_path=longest,
        arrivals={0.55: a055, 0.60: a060, 0.70: a070,
                  0.80: a080, 0.90: a090, 1.10: a110},
        nominal_vs_static=dev,
    )


_P = 1e-12
_N = 1e-9

PAPER_TABLE2: Dict[str, Table2Row] = {
    "s38417": _row(145.3*_P, 164.5*_P, 154.5*_P, 139.3*_P, 129.6*_P, 123.4*_P, 115.0*_P, -0.0015),
    "s38584": _row(610.9*_P, 846.0*_P, 772.4*_P, 661.9*_P, 590.1*_P, 544.7*_P, 485.0*_P, -0.0001),
    "b17": _row(571.2*_P, 548.5*_P, 521.0*_P, 479.7*_P, 452.9*_P, 436.0*_P, 413.8*_P, +0.0003),
    "b18": _row(708.7*_P, 736.2*_P, 709.9*_P, 670.4*_P, 645.3*_P, 630.5*_P, 611.1*_P, -0.0001),
    "b19": _row(744.1*_P, 741.5*_P, 717.8*_P, 683.6*_P, 659.8*_P, 645.6*_P, 627.3*_P, +0.0002),
    "b22": _row(606.2*_P, 685.2*_P, 651.8*_P, 601.8*_P, 569.5*_P, 549.2*_P, 522.9*_P, +0.0004),
    "p35k": _row(275.5*_P, 359.6*_P, 333.7*_P, 294.6*_P, 268.8*_P, 252.1*_P, 228.7*_P, -0.0021),
    "p45k": _row(2.234*_N, 3.095*_N, 2.847*_N, 2.474*_N, 2.231*_N, 2.078*_N, 1.878*_N, -0.0014),
    "p100k": _row(2.234*_N, 3.095*_N, 2.847*_N, 2.474*_N, 2.231*_N, 2.078*_N, 1.878*_N, -0.0014),
    "p141k": _row(640.0*_P, 867.9*_P, 795.8*_P, 687.3*_P, 616.5*_P, 581.8*_P, 578.3*_P, -0.0010),
    "p418k": _row(1.537*_N, 1.575*_N, 1.539*_N, 1.486*_N, 1.452*_N, 1.430*_N, 1.401*_N, -0.0003),
    "p500k": _row(660.8*_P, 795.1*_P, 734.4*_P, 643.3*_P, 584.2*_P, 547.0*_P, 496.9*_P, -0.0025),
    "p533k": _row(2.348*_N, 2.926*_N, 2.760*_N, 2.510*_N, 2.347*_N, 2.244*_N, 2.108*_N, -0.0006),
    "p951k": _row(708.0*_P, 1.012*_N, 924.3*_P, 793.0*_P, 707.8*_P, 653.9*_P, 582.3*_P, -0.0003),
    "p1522k": _row(None, None, None, None, 1.972*_N, 1.862*_N, 1.721*_N, -0.0004),
}

#: Fig. 4 headline statements: for polynomial order 2·N with N ≥ 3, the
#: average stddev of the error falls below 1 % and the average maximum
#: error below 2.7 % (worst single sample 5.35 %); the mean error stays
#: well below 1 % for every order shown.
PAPER_FIG4 = {
    "min_n_for_1pct_stddev": 3,
    "avg_max_error_at_n3": 0.027,
    "worst_sample_max_error": 0.0535,
}

#: Fig. 5 headline numbers for the NOR2_X2 rising-delay surface, N = 3.
PAPER_FIG5 = {
    "avg_abs_error": 0.0038,
    "max_abs_error": 0.0241,
}
