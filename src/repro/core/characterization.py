"""The offline cell-characterization flow (paper Fig. 1, steps A–D).

For every cell type, input pin and output transition polarity:

A. run a SPICE parameter sweep over the operating-point grid,
B. normalize (φ_V, φ_C, φ_D) and densify the sample grid by bilinear
   sub-sampling,
C. fit a surface polynomial by multivariable linear regression,
D. compile the coefficients into a delay-kernel table for the GPU.

This flow runs **once per cell library**; the compiled kernels are reused
by every simulation (the paper reports 1–40 ms of regression time per
entry, a negligible preprocessing cost).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.cells.cell import Cell, CellPin, DrivePolarity
from repro.cells.library import CellLibrary
from repro.core.interpolation import GridInterpolator, subsample
from repro.core.parameters import ParameterSpace
from repro.core.regression import FitResult, fit_polynomial
from repro.electrical.spice import AnalyticalSpice, DelayGrid
from repro.errors import CharacterizationError

__all__ = [
    "PinCharacterization",
    "CellCharacterization",
    "LibraryCharacterization",
    "characterize_pin",
    "characterize_cell",
    "characterize_library",
]


@dataclass(frozen=True)
class PinCharacterization:
    """Characterization result for one (cell, pin, polarity) entry.

    Attributes
    ----------
    fit:
        The regression result; ``fit.polynomial`` is the delay kernel
        operating on normalized ``(φ_V, φ_C)`` coordinates and returning
        the relative deviation ``d/d_nom − 1``.
    reference:
        Bilinear interpolator of the *normalized deviation* samples —
        the "linear approximation of the SPICE results" used as the
        error reference in Sec. V-A.
    nominal_delays:
        Interpolator of the nominal (v = v_nom) absolute delay versus
        normalized load, used to derive SDF annotations.
    sweep:
        The raw SPICE delay grid (step A output).
    """

    cell_name: str
    pin_name: str
    pin_index: int
    polarity: DrivePolarity
    space: ParameterSpace
    fit: FitResult
    reference: GridInterpolator = field(repr=False)
    nominal_delays: np.ndarray = field(repr=False)
    sweep: DelayGrid = field(repr=False)

    def deviation(self, v, c):
        """Predicted relative deviation at raw ``(v, c)`` operating points."""
        nv = self.space.normalize_voltage(v)
        nc = self.space.normalize_load(c)
        return self.fit.polynomial.evaluate(nv, nc)

    def nominal_delay(self, c) -> float:
        """Nominal absolute delay at load ``c`` (linear in φ_C)."""
        nc = np.asarray(self.space.normalize_load(c), dtype=np.float64)
        nc_axis = self.space.normalize_load(self.sweep.loads)
        return np.interp(nc, nc_axis, self.nominal_delays)

    def delay(self, v, c):
        """Absolute delay ``d' = d_nom(c) · (1 + f(φ_V(v), φ_C(c)))`` (Eq. 9)."""
        return self.nominal_delay(c) * (1.0 + self.deviation(v, c))

    def evaluation_error(self, grid: int = 64) -> Tuple[float, float, float]:
        """Approximation error vs the linear reference on a dense grid.

        Returns ``(mean_abs, std, max_abs)`` of the deviation error over a
        ``grid × grid`` equidistant sample of the normalized space — the
        paper's Fig. 4/5 metric.  Units are fractions of d_nom.
        """
        nv = np.linspace(0.0, 1.0, grid)
        nc = np.linspace(0.0, 1.0, grid)
        reference = self.reference(nv[:, None], nc[None, :])
        predicted = self.fit.polynomial.evaluate(nv[:, None], nc[None, :])
        error = np.abs(predicted - reference)
        return float(error.mean()), float(error.std()), float(error.max())


def characterize_pin(
    spice: AnalyticalSpice,
    cell: Cell,
    pin: CellPin,
    polarity: DrivePolarity,
    space: Optional[ParameterSpace] = None,
    n: int = 3,
    subsample_factor: int = 4,
    method: str = "auto",
) -> PinCharacterization:
    """Run the Fig. 1 flow (steps A–C) for a single pin/polarity entry.

    Parameters
    ----------
    n:
        Polynomial half-order N (polynomial order is 2·N).
    subsample_factor:
        Densification factor for step B; 1 disables sub-sampling.
    """
    space = space or ParameterSpace.paper_default()

    # Step A: SPICE parameter sweep over the grid implied by the space.
    voltages = _paper_like_voltages(space)
    loads = _paper_like_loads(space)
    grid = spice.sweep(cell, pin, polarity, voltages, loads)

    # Normalization: deviations relative to the nominal-voltage row.
    nominal_row = _nominal_row(grid, space.v_nom)
    if np.any(nominal_row <= 0):
        raise CharacterizationError(
            f"{cell.name}/{pin.name}: non-positive nominal delay in sweep"
        )
    deviations = grid.delays / nominal_row[None, :] - 1.0
    nv_axis = np.asarray(space.normalize_voltage(grid.voltages))
    nc_axis = np.asarray(space.normalize_load(grid.loads))

    # Step B: bilinear sub-sampling on the normalized grid.
    base = GridInterpolator(nv_axis, nc_axis, deviations)
    nv_dense, nc_dense, dense = subsample(base, subsample_factor)

    # Step C: multivariable linear regression.
    v_samples, c_samples = np.meshgrid(nv_dense, nc_dense, indexing="ij")
    fit = fit_polynomial(v_samples, c_samples, dense, n=n, method=method)

    return PinCharacterization(
        cell_name=cell.name,
        pin_name=pin.name,
        pin_index=pin.index,
        polarity=polarity,
        space=space,
        fit=fit,
        reference=base,
        nominal_delays=nominal_row,
        sweep=grid,
    )


@dataclass(frozen=True)
class CellCharacterization:
    """All pin/polarity characterizations of one cell."""

    cell: Cell
    pins: Tuple[PinCharacterization, ...]
    elapsed_seconds: float

    def entry(self, pin_name: str, polarity: DrivePolarity) -> PinCharacterization:
        for item in self.pins:
            if item.pin_name == pin_name and item.polarity == polarity:
                return item
        raise KeyError(f"no characterization for {self.cell.name}/{pin_name}/{polarity.name}")

    def worst_fit_error(self) -> float:
        return max(item.fit.max_abs_error for item in self.pins)


def characterize_cell(
    spice: AnalyticalSpice,
    cell: Cell,
    space: Optional[ParameterSpace] = None,
    n: int = 3,
    subsample_factor: int = 4,
    method: str = "auto",
) -> CellCharacterization:
    """Characterize every (pin, polarity) of a cell."""
    start = time.perf_counter()
    results: List[PinCharacterization] = []
    for pin in sorted(cell.pins, key=lambda p: p.index):
        for polarity in (DrivePolarity.RISE, DrivePolarity.FALL):
            results.append(
                characterize_pin(
                    spice, cell, pin, polarity,
                    space=space, n=n,
                    subsample_factor=subsample_factor, method=method,
                )
            )
    return CellCharacterization(
        cell=cell,
        pins=tuple(results),
        elapsed_seconds=time.perf_counter() - start,
    )


@dataclass
class LibraryCharacterization:
    """Characterization of a whole cell library (keyed by cell name)."""

    library: CellLibrary
    space: ParameterSpace
    n: int
    cells: Dict[str, CellCharacterization]

    def entry(self, cell_name: str, pin_name: str, polarity: DrivePolarity) -> PinCharacterization:
        return self.cells[cell_name].entry(pin_name, polarity)

    def all_entries(self) -> Iterable[PinCharacterization]:
        for cell_char in self.cells.values():
            yield from cell_char.pins

    def compile(self):
        """Step D: compile into a :class:`~repro.core.delay_kernel.DelayKernelTable`."""
        from repro.core.delay_kernel import DelayKernelTable

        return DelayKernelTable.from_characterization(self)


def characterize_library(
    library: CellLibrary,
    spice: Optional[AnalyticalSpice] = None,
    space: Optional[ParameterSpace] = None,
    n: int = 3,
    subsample_factor: int = 4,
    method: str = "auto",
) -> LibraryCharacterization:
    """Characterize every cell of a library (the full preprocessing pass)."""
    spice = spice or AnalyticalSpice()
    space = space or ParameterSpace.paper_default()
    cells = {
        cell.name: characterize_cell(
            spice, cell, space=space, n=n,
            subsample_factor=subsample_factor, method=method,
        )
        for cell in library
    }
    return LibraryCharacterization(library=library, space=space, n=n, cells=cells)


# -- grid construction helpers ---------------------------------------------------


def _paper_like_voltages(space: ParameterSpace, step: float = 0.05) -> np.ndarray:
    """Voltage sweep points: ``step`` spacing, always including v_nom."""
    count = int(round((space.v_max - space.v_min) / step)) + 1
    voltages = np.linspace(space.v_min, space.v_max, count)
    if not np.any(np.isclose(voltages, space.v_nom)):
        voltages = np.sort(np.append(voltages, space.v_nom))
    return voltages


def _paper_like_loads(space: ParameterSpace) -> np.ndarray:
    """Load sweep points: powers of two spanning the space."""
    lo = np.log2(space.c_min)
    hi = np.log2(space.c_max)
    count = int(round(hi - lo)) + 1
    return np.exp2(np.linspace(lo, hi, max(count, 2)))


def _nominal_row(grid: DelayGrid, v_nom: float) -> np.ndarray:
    """Delay row at the nominal voltage, interpolating when off-grid."""
    idx = np.where(np.isclose(grid.voltages, v_nom))[0]
    if idx.size:
        return grid.delays[int(idx[0]), :].copy()
    if not grid.voltages[0] <= v_nom <= grid.voltages[-1]:
        raise CharacterizationError(
            f"nominal voltage {v_nom} outside swept range "
            f"[{grid.voltages[0]}, {grid.voltages[-1]}]"
        )
    return np.asarray(
        [np.interp(v_nom, grid.voltages, grid.delays[:, j])
         for j in range(len(grid.loads))]
    )
