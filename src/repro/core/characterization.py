"""The offline cell-characterization flow (paper Fig. 1, steps A–D).

For every cell type, input pin and output transition polarity:

A. run a SPICE parameter sweep over the operating-point grid,
B. normalize (φ_V, φ_C, φ_D) and densify the sample grid by bilinear
   sub-sampling,
C. fit a surface polynomial by multivariable linear regression,
D. compile the coefficients into a delay-kernel table for the GPU.

This flow runs **once per cell library**; the compiled kernels are reused
by every simulation (the paper reports 1–40 ms of regression time per
entry, a negligible preprocessing cost).

Two sampling strategies feed step A:

* the **fixed grid** of the paper's Sec. V setup (12 voltages × 9 loads
  per entry), and
* an **error-driven adaptive** flow (:class:`AdaptiveConfig`): a coarse
  curvature-aware seed grid is refined by whole axis lines — the grid
  stays rectilinear, so bilinear sub-sampling and the LUT comparator keep
  working — where the fitted polynomial disagrees most with the bilinear
  reference of the samples gathered so far.  Refinement stops when both
  the probe residual *and* the measured error on freshly sampled lines
  drop below a target, or when the per-entry evaluation budget runs out.
  The polynomial half-order is then picked per entry by cross-validated
  error (:func:`repro.core.regression.select_half_order`).

``characterize_library`` can fan cells out over a supervised worker pool
and persist/reuse fitted coefficients through the fingerprint-keyed
:class:`~repro.core.charz_cache.CoefficientCache`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro import faults
from repro.cells.cell import Cell, CellPin, DrivePolarity
from repro.cells.library import CellLibrary
from repro.core.charz_cache import CoefficientCache
from repro.core.interpolation import GridInterpolator, subsample
from repro.core.parameters import ParameterSpace
from repro.core.regression import FitResult, fit_polynomial, select_half_order
from repro.electrical.spice import AnalyticalSpice, DelayGrid
from repro.errors import CharacterizationError

__all__ = [
    "AdaptiveConfig",
    "PinCharacterization",
    "CellCharacterization",
    "LibraryCharacterization",
    "characterize_pin",
    "characterize_cell",
    "characterize_cell_cached",
    "characterize_library",
]

#: Evaluation count of the paper's fixed per-entry grid (12 × 9) — the
#: baseline adaptive sampling is measured against.
FIXED_GRID_EVALUATIONS = 108


@dataclass(frozen=True)
class AdaptiveConfig:
    """Settings of the error-driven adaptive sampling loop.

    The defaults reach fixed-grid accuracy parity on the Nangate15
    library with a bit over 3x fewer SPICE delay evaluations (gated in
    ``BENCH_kernels.json``); they are the tuned operating point, not
    arbitrary knobs.

    Attributes
    ----------
    target_error:
        Stopping target (fraction of d_nom) for both the probe residual
        against the bilinear reference of the gathered samples and the
        measured error at freshly sampled lines.
    budget:
        Hard per-entry cap on SPICE delay evaluations.  A refinement
        line that would exceed it is skipped and the current fit kept.
    probe_grid:
        Residual-probe resolution per axis (no SPICE cost).
    max_order:
        Largest half-order considered, both while refining and by the
        final cross-validated order selection.
    order:
        Fixed half-order; ``None`` (default) selects per entry by
        cross-validated error, never accepting a lower order that fails
        the probe-residual criterion the full order meets.
    subsample_factor:
        Step-B densification factor applied before every fit.
    cv_folds, cv_tolerance:
        Cross-validation settings for the final order selection.
    seed_voltage_fractions:
        Normalized φ_V seed positions (φ_V of v_nom is always added) —
        biased toward low voltage where the α-power surface curves most.
    seed_load_fractions:
        Normalized φ_C seed positions; the load axis is close to linear
        in φ_C, so three lines suffice to seed it.
    """

    target_error: float = 0.012
    budget: int = 36
    probe_grid: int = 33
    max_order: int = 4
    order: Optional[int] = None
    subsample_factor: int = 4
    cv_folds: int = 4
    cv_tolerance: float = 0.05
    seed_voltage_fractions: Tuple[float, ...] = (0.0, 0.12, 0.28, 1.0)
    seed_load_fractions: Tuple[float, ...] = (0.0, 0.5, 1.0)

    def __post_init__(self) -> None:
        if not 0 < self.target_error < 1:
            raise CharacterizationError("target_error must be in (0, 1)")
        if self.budget < (len(self.seed_voltage_fractions) + 1) * len(self.seed_load_fractions):
            raise CharacterizationError(
                "budget smaller than the seed grid itself")
        if self.probe_grid < 4:
            raise CharacterizationError("probe_grid must be at least 4")
        if self.max_order < 1:
            raise CharacterizationError("max_order must be >= 1")
        if self.order is not None and not 1 <= self.order <= self.max_order:
            raise CharacterizationError("order must be in [1, max_order]")


@dataclass(frozen=True)
class PinCharacterization:
    """Characterization result for one (cell, pin, polarity) entry.

    Attributes
    ----------
    fit:
        The regression result; ``fit.polynomial`` is the delay kernel
        operating on normalized ``(φ_V, φ_C)`` coordinates and returning
        the relative deviation ``d/d_nom − 1``.
    reference:
        Bilinear interpolator of the *normalized deviation* samples —
        the "linear approximation of the SPICE results" used as the
        error reference in Sec. V-A.
    nominal_delays:
        Interpolator of the nominal (v = v_nom) absolute delay versus
        normalized load, used to derive SDF annotations.
    sweep:
        The raw SPICE delay grid (step A output; for the adaptive flow,
        the final refined grid).
    evaluations:
        SPICE delay evaluations spent on this entry (108 for the fixed
        grid; at most ``AdaptiveConfig.budget`` adaptively).
    """

    cell_name: str
    pin_name: str
    pin_index: int
    polarity: DrivePolarity
    space: ParameterSpace
    fit: FitResult
    reference: GridInterpolator = field(repr=False)
    nominal_delays: np.ndarray = field(repr=False)
    sweep: DelayGrid = field(repr=False)
    evaluations: int = FIXED_GRID_EVALUATIONS

    def deviation(self, v, c):
        """Predicted relative deviation at raw ``(v, c)`` operating points."""
        nv = self.space.normalize_voltage(v)
        nc = self.space.normalize_load(c)
        return self.fit.polynomial.evaluate(nv, nc)

    def nominal_delay(self, c) -> float:
        """Nominal absolute delay at load ``c`` (linear in φ_C)."""
        nc = np.asarray(self.space.normalize_load(c), dtype=np.float64)
        nc_axis = self.space.normalize_load(self.sweep.loads)
        return np.interp(nc, nc_axis, self.nominal_delays)

    def delay(self, v, c):
        """Absolute delay ``d' = d_nom(c) · (1 + f(φ_V(v), φ_C(c)))`` (Eq. 9)."""
        return self.nominal_delay(c) * (1.0 + self.deviation(v, c))

    def evaluation_error(self, grid: int = 64) -> Tuple[float, float, float]:
        """Approximation error vs the linear reference on a dense grid.

        Returns ``(mean_abs, std, max_abs)`` of the deviation error over a
        ``grid × grid`` equidistant sample of the normalized space — the
        paper's Fig. 4/5 metric.  Units are fractions of d_nom.
        """
        nv = np.linspace(0.0, 1.0, grid)
        nc = np.linspace(0.0, 1.0, grid)
        reference = self.reference(nv[:, None], nc[None, :])
        predicted = self.fit.polynomial.evaluate(nv[:, None], nc[None, :])
        error = np.abs(predicted - reference)
        return float(error.mean()), float(error.std()), float(error.max())


def characterize_pin(
    spice: AnalyticalSpice,
    cell: Cell,
    pin: CellPin,
    polarity: DrivePolarity,
    space: Optional[ParameterSpace] = None,
    n: int = 3,
    subsample_factor: int = 4,
    method: str = "auto",
    adaptive: Optional[AdaptiveConfig] = None,
) -> PinCharacterization:
    """Run the Fig. 1 flow (steps A–C) for a single pin/polarity entry.

    Parameters
    ----------
    n:
        Polynomial half-order N (polynomial order is 2·N) for the fixed
        flow; ignored when ``adaptive`` is given.
    subsample_factor:
        Densification factor for step B; 1 disables sub-sampling.
    adaptive:
        When given, replace the fixed sweep with the error-driven
        adaptive sampling loop.
    """
    space = space or ParameterSpace.paper_default()
    if adaptive is not None:
        return _characterize_pin_adaptive(spice, cell, pin, polarity, space, adaptive)

    # Step A: SPICE parameter sweep over the grid implied by the space.
    voltages = _paper_like_voltages(space)
    loads = _paper_like_loads(space)
    grid = spice.sweep(cell, pin, polarity, voltages, loads)

    # Normalization: deviations relative to the nominal-voltage row.
    nominal_row = _nominal_row(grid, space.v_nom)
    if np.any(nominal_row <= 0):
        raise CharacterizationError(
            f"{cell.name}/{pin.name}: non-positive nominal delay in sweep"
        )
    base = _deviation_reference(grid, nominal_row, space)

    # Step B: bilinear sub-sampling on the normalized grid.
    nv_dense, nc_dense, dense = subsample(base, subsample_factor)

    # Step C: multivariable linear regression.
    faults.trip("charz.fit")
    v_samples, c_samples = np.meshgrid(nv_dense, nc_dense, indexing="ij")
    fit = fit_polynomial(v_samples, c_samples, dense, n=n, method=method)

    return PinCharacterization(
        cell_name=cell.name,
        pin_name=pin.name,
        pin_index=pin.index,
        polarity=polarity,
        space=space,
        fit=fit,
        reference=base,
        nominal_delays=nominal_row,
        sweep=grid,
        evaluations=int(grid.delays.size),
    )


def _characterize_pin_adaptive(
    spice: AnalyticalSpice,
    cell: Cell,
    pin: CellPin,
    polarity: DrivePolarity,
    space: ParameterSpace,
    config: AdaptiveConfig,
) -> PinCharacterization:
    """Error-driven adaptive sampling for one entry.

    The grid is refined by whole axis lines, keeping it rectilinear:
    the probe residual (fit vs bilinear reference of the samples so far)
    is projected onto each axis, and the axis whose projected peak —
    weighted by the width of the interval it falls into and discounted
    by the cost of a line on that axis — wins gets a new line bisecting
    that interval in normalized coordinates.  Every fresh line doubles
    as a validation set: the current fit's error at the new, unseen
    samples must also meet the target before the loop stops, which
    protects against the bilinear reference flattering the fit where
    samples are still sparse.
    """
    nv_nom = float(space.normalize_voltage(space.v_nom))
    seed_v = sorted(set(config.seed_voltage_fractions) | {nv_nom})
    v_axis = np.asarray(space.denormalize_voltage(np.asarray(seed_v)))
    c_axis = np.asarray(space.denormalize_load(
        np.asarray(sorted(set(config.seed_load_fractions)))))

    v_mesh, c_mesh = np.meshgrid(v_axis, c_axis, indexing="ij")
    delays = spice.delays_at(
        cell, pin, polarity,
        np.column_stack([v_mesh.ravel(), c_mesh.ravel()]),
    ).reshape(v_axis.size, c_axis.size)
    evaluations = int(delays.size)
    fresh_error = np.inf
    probe = np.linspace(0.0, 1.0, config.probe_grid)

    while True:
        grid = DelayGrid(voltages=v_axis, loads=c_axis, delays=delays)
        nominal_row = _nominal_row(grid, space.v_nom)
        if np.any(nominal_row <= 0):
            raise CharacterizationError(
                f"{cell.name}/{pin.name}: non-positive nominal delay in sweep"
            )
        nv_axis = np.asarray(space.normalize_voltage(v_axis))
        nc_axis = np.asarray(space.normalize_load(c_axis))
        base = GridInterpolator(nv_axis, nc_axis,
                                grid.delays / nominal_row[None, :] - 1.0)
        nv_dense, nc_dense, dense = subsample(base, config.subsample_factor)
        v_samples, c_samples = np.meshgrid(nv_dense, nc_dense, indexing="ij")

        n_fit = config.order if config.order is not None else config.max_order
        while (n_fit + 1) ** 2 > v_axis.size * c_axis.size and n_fit > 1:
            n_fit -= 1
        faults.trip("charz.fit")
        fit = fit_polynomial(v_samples, c_samples, dense, n=n_fit, method="auto")

        residual = np.abs(
            fit.polynomial.evaluate(probe[:, None], probe[None, :])
            - base(probe[:, None], probe[None, :])
        )
        if fresh_error <= config.target_error and residual.max() <= config.target_error:
            break

        # Project the residual onto each axis and score the candidate
        # refinements: projected peak × enclosing-interval width, per
        # line cost (a voltage line costs one evaluation per load and
        # vice versa).
        v_profile = residual.max(axis=1)
        c_profile = residual.max(axis=0)
        vi = int(np.clip(np.searchsorted(
            nv_axis, probe[int(np.argmax(v_profile))], side="right") - 1,
            0, nv_axis.size - 2))
        ci = int(np.clip(np.searchsorted(
            nc_axis, probe[int(np.argmax(c_profile))], side="right") - 1,
            0, nc_axis.size - 2))
        v_score = float(v_profile.max()) * float(nv_axis[vi + 1] - nv_axis[vi])
        c_score = float(c_profile.max()) * float(nc_axis[ci + 1] - nc_axis[ci])

        if v_score / c_axis.size >= c_score / v_axis.size:
            cost = int(c_axis.size)
            if evaluations + cost > config.budget:
                break
            new_v = float(space.denormalize_voltage(
                0.5 * (nv_axis[vi] + nv_axis[vi + 1])))
            line = spice.delays_at(
                cell, pin, polarity,
                np.column_stack([np.full(c_axis.size, new_v), c_axis]))
            fresh_dev = line / nominal_row - 1.0
            predicted = fit.polynomial.evaluate(
                np.full(c_axis.size, float(space.normalize_voltage(new_v))), nc_axis)
            fresh_error = float(np.abs(predicted - fresh_dev).max())
            k = int(np.searchsorted(v_axis, new_v))
            v_axis = np.insert(v_axis, k, new_v)
            delays = np.insert(delays, k, line, axis=0)
        else:
            cost = int(v_axis.size)
            if evaluations + cost > config.budget:
                break
            new_c = float(space.denormalize_load(
                0.5 * (nc_axis[ci] + nc_axis[ci + 1])))
            line = spice.delays_at(
                cell, pin, polarity,
                np.column_stack([v_axis, np.full(v_axis.size, new_c)]))
            new_nominal = float(np.interp(
                float(space.normalize_load(new_c)), nc_axis, nominal_row))
            fresh_dev = line / new_nominal - 1.0
            predicted = fit.polynomial.evaluate(
                nv_axis, np.full(v_axis.size, float(space.normalize_load(new_c))))
            fresh_error = float(np.abs(predicted - fresh_dev).max())
            k = int(np.searchsorted(c_axis, new_c))
            c_axis = np.insert(c_axis, k, new_c)
            delays = np.insert(delays, k, line, axis=1)
        evaluations += cost

    if config.order is None:
        fit = _auto_order_fit(
            fit, v_samples, c_samples, dense, base, probe, config)

    return PinCharacterization(
        cell_name=cell.name,
        pin_name=pin.name,
        pin_index=pin.index,
        polarity=polarity,
        space=space,
        fit=fit,
        reference=base,
        nominal_delays=nominal_row,
        sweep=DelayGrid(voltages=v_axis, loads=c_axis, delays=delays),
        evaluations=evaluations,
    )


def _auto_order_fit(
    full_fit: FitResult,
    v_samples: np.ndarray,
    c_samples: np.ndarray,
    dense: np.ndarray,
    base: GridInterpolator,
    probe: np.ndarray,
    config: AdaptiveConfig,
) -> FitResult:
    """Cross-validated half-order selection for the final adaptive fit.

    The CV winner replaces the full-order fit only when it keeps the
    probe residual at least as good as ``max(full-order residual,
    target)`` — parsimony must never cost the accuracy the refinement
    loop just paid evaluations for.
    """
    full_n = full_fit.polynomial.n
    selection = select_half_order(
        v_samples, c_samples, dense,
        candidates=tuple(range(1, full_n + 1)),
        folds=config.cv_folds,
        tolerance=config.cv_tolerance,
    )
    if selection.n >= full_n:
        return full_fit
    candidate = fit_polynomial(v_samples, c_samples, dense,
                               n=selection.n, method="auto")
    reference = base(probe[:, None], probe[None, :])
    full_residual = np.abs(
        full_fit.polynomial.evaluate(probe[:, None], probe[None, :]) - reference
    ).max()
    candidate_residual = np.abs(
        candidate.polynomial.evaluate(probe[:, None], probe[None, :]) - reference
    ).max()
    if candidate_residual <= max(full_residual, config.target_error):
        return candidate
    return full_fit


@dataclass(frozen=True)
class CellCharacterization:
    """All pin/polarity characterizations of one cell."""

    cell: Cell
    pins: Tuple[PinCharacterization, ...]
    elapsed_seconds: float

    def entry(self, pin_name: str, polarity: DrivePolarity) -> PinCharacterization:
        for item in self.pins:
            if item.pin_name == pin_name and item.polarity == polarity:
                return item
        raise KeyError(f"no characterization for {self.cell.name}/{pin_name}/{polarity.name}")

    def worst_fit_error(self) -> float:
        return max(item.fit.max_abs_error for item in self.pins)

    @property
    def evaluations(self) -> int:
        """Total SPICE delay evaluations spent on this cell."""
        return sum(item.evaluations for item in self.pins)


def characterize_cell(
    spice: AnalyticalSpice,
    cell: Cell,
    space: Optional[ParameterSpace] = None,
    n: int = 3,
    subsample_factor: int = 4,
    method: str = "auto",
    adaptive: Optional[AdaptiveConfig] = None,
) -> CellCharacterization:
    """Characterize every (pin, polarity) of a cell."""
    start = time.perf_counter()
    results: List[PinCharacterization] = []
    for pin in sorted(cell.pins, key=lambda p: p.index):
        for polarity in (DrivePolarity.RISE, DrivePolarity.FALL):
            results.append(
                characterize_pin(
                    spice, cell, pin, polarity,
                    space=space, n=n,
                    subsample_factor=subsample_factor, method=method,
                    adaptive=adaptive,
                )
            )
    return CellCharacterization(
        cell=cell,
        pins=tuple(results),
        elapsed_seconds=time.perf_counter() - start,
    )


def characterize_cell_cached(
    spice: AnalyticalSpice,
    cell: Cell,
    cache: Optional[CoefficientCache],
    space: Optional[ParameterSpace] = None,
    n: int = 3,
    subsample_factor: int = 4,
    method: str = "auto",
    adaptive: Optional[AdaptiveConfig] = None,
) -> CellCharacterization:
    """:func:`characterize_cell` through the fingerprint-keyed cache."""
    space = space or ParameterSpace.paper_default()
    if cache is None:
        return characterize_cell(
            spice, cell, space=space, n=n,
            subsample_factor=subsample_factor, method=method, adaptive=adaptive)

    from repro.runtime.fingerprint import characterization_fingerprint

    key = characterization_fingerprint(
        cell, spice.model.corner, space,
        _flow_signature(n, subsample_factor, method, adaptive))
    hit = cache.get(key, cell, space)
    if hit is not None:
        return hit
    result = characterize_cell(
        spice, cell, space=space, n=n,
        subsample_factor=subsample_factor, method=method, adaptive=adaptive)
    cache.put(key, result)
    return result


@dataclass
class LibraryCharacterization:
    """Characterization of a whole cell library (keyed by cell name)."""

    library: CellLibrary
    space: ParameterSpace
    n: int
    cells: Dict[str, CellCharacterization]

    def entry(self, cell_name: str, pin_name: str, polarity: DrivePolarity) -> PinCharacterization:
        return self.cells[cell_name].entry(pin_name, polarity)

    def all_entries(self) -> Iterable[PinCharacterization]:
        for cell_char in self.cells.values():
            yield from cell_char.pins

    def total_evaluations(self) -> int:
        """SPICE delay evaluations represented by this characterization.

        Counts what the entries *cost to produce* — a cache hit carries
        the evaluations its original fit spent, even though replaying it
        performed none.
        """
        return sum(cell.evaluations for cell in self.cells.values())

    def compile(self):
        """Step D: compile into a :class:`~repro.core.delay_kernel.DelayKernelTable`."""
        from repro.core.delay_kernel import DelayKernelTable

        return DelayKernelTable.from_characterization(self)


class _CharzTask:
    """One cell's characterization riding through the engine pool."""

    __slots__ = ("cell", "key", "result", "error", "requeued")

    def __init__(self, cell: Cell, key: Optional[str]) -> None:
        self.cell = cell
        self.key = key
        self.result: Optional[CellCharacterization] = None
        self.error: Optional[BaseException] = None
        self.requeued = False


def _flow_signature(
    n: int,
    subsample_factor: int,
    method: str,
    adaptive: Optional[AdaptiveConfig],
) -> dict:
    """The JSON-able flow identity fed into the cache fingerprint."""
    if adaptive is None:
        return {
            "mode": "fixed",
            "n": n,
            "subsample_factor": subsample_factor,
            "method": method,
        }
    return {
        "mode": "adaptive",
        "target_error": adaptive.target_error,
        "budget": adaptive.budget,
        "probe_grid": adaptive.probe_grid,
        "max_order": adaptive.max_order,
        "order": adaptive.order,
        "subsample_factor": adaptive.subsample_factor,
        "cv_folds": adaptive.cv_folds,
        "cv_tolerance": adaptive.cv_tolerance,
        "seed_voltage_fractions": list(adaptive.seed_voltage_fractions),
        "seed_load_fractions": list(adaptive.seed_load_fractions),
    }


def characterize_library(
    library: CellLibrary,
    spice: Optional[AnalyticalSpice] = None,
    space: Optional[ParameterSpace] = None,
    n: int = 3,
    subsample_factor: int = 4,
    method: str = "auto",
    adaptive: Optional[AdaptiveConfig] = None,
    workers: int = 1,
    cache: Union[CoefficientCache, str, os.PathLike, None] = None,
) -> LibraryCharacterization:
    """Characterize every cell of a library (the full preprocessing pass).

    Parameters
    ----------
    adaptive:
        Adaptive-sampling settings; ``None`` keeps the paper's fixed
        grid.
    workers:
        Fan cells out over this many supervised pool workers (worker
        death and hangs are recovered with the re-queue-once policy of
        :class:`~repro.service.pool.EnginePool`).  1 runs inline.
    cache:
        A :class:`~repro.core.charz_cache.CoefficientCache` (or a cache
        directory path) keyed by cell/corner/space/flow fingerprints;
        hits skip SPICE entirely.
    """
    spice = spice or AnalyticalSpice()
    space = space or ParameterSpace.paper_default()
    if cache is not None and not isinstance(cache, CoefficientCache):
        cache = CoefficientCache(os.fspath(cache))
    flow = _flow_signature(n, subsample_factor, method, adaptive)

    from repro.runtime.fingerprint import characterization_fingerprint

    cells: Dict[str, CellCharacterization] = {}
    pending: List[_CharzTask] = []
    for cell in library:
        key = None
        if cache is not None:
            key = characterization_fingerprint(cell, spice.model.corner, space, flow)
            hit = cache.get(key, cell, space)
            if hit is not None:
                cells[cell.name] = hit
                continue
        pending.append(_CharzTask(cell, key))

    def work(task: _CharzTask) -> None:
        task.result = characterize_cell(
            spice, task.cell, space=space, n=n,
            subsample_factor=subsample_factor, method=method,
            adaptive=adaptive,
        )

    if workers > 1 and len(pending) > 1:
        _run_pooled(pending, work, workers)
    else:
        for task in pending:
            work(task)

    for task in pending:
        if task.error is not None:
            raise CharacterizationError(
                f"characterization of {task.cell.name} failed: {task.error}"
            ) from task.error
        if task.result is None:
            raise CharacterizationError(
                f"characterization of {task.cell.name} was lost")
        if cache is not None and task.key is not None:
            cache.put(task.key, task.result)
        cells[task.cell.name] = task.result

    ordered = {cell.name: cells[cell.name] for cell in library}
    if adaptive is not None:
        n_out = max((entry.fit.polynomial.n
                     for cell_char in ordered.values()
                     for entry in cell_char.pins), default=n)
    else:
        n_out = n
    return LibraryCharacterization(
        library=library, space=space, n=n_out, cells=ordered)


def _run_pooled(pending: List[_CharzTask], work, workers: int) -> None:
    """Execute the tasks on a supervised :class:`EnginePool`.

    A handler exception fails only that task (surfaced after the drain);
    an injected worker death is recovered by the pool's replace-and-
    re-queue-once supervision, so a single ``charz.fit:die`` still
    yields a complete library.
    """
    from repro.service.pool import EnginePool

    def lost(task: _CharzTask, error: BaseException) -> None:
        task.error = error

    pool = EnginePool(
        workers=min(workers, len(pending)),
        handler=work,
        on_batch_lost=lost,
        hang_timeout_s=300.0,
        name="repro-charz",
    )
    try:
        for task in pending:
            pool.submit(task)
    finally:
        pool.close()


# -- grid construction helpers ---------------------------------------------------


def _deviation_reference(grid: DelayGrid, nominal_row: np.ndarray,
                         space: ParameterSpace) -> GridInterpolator:
    """Bilinear interpolator of normalized deviations over a sweep grid."""
    deviations = grid.delays / nominal_row[None, :] - 1.0
    return GridInterpolator(
        np.asarray(space.normalize_voltage(grid.voltages)),
        np.asarray(space.normalize_load(grid.loads)),
        deviations,
    )


def _paper_like_voltages(space: ParameterSpace, step: float = 0.05) -> np.ndarray:
    """Voltage sweep points: ``step`` spacing, always including v_nom."""
    count = int(round((space.v_max - space.v_min) / step)) + 1
    voltages = np.linspace(space.v_min, space.v_max, count)
    if not np.any(np.isclose(voltages, space.v_nom)):
        voltages = np.sort(np.append(voltages, space.v_nom))
    return voltages


def _paper_like_loads(space: ParameterSpace) -> np.ndarray:
    """Load sweep points: powers of two spanning the space."""
    lo = np.log2(space.c_min)
    hi = np.log2(space.c_max)
    count = int(round(hi - lo)) + 1
    return np.exp2(np.linspace(lo, hi, max(count, 2)))


def _nominal_row(grid: DelayGrid, v_nom: float) -> np.ndarray:
    """Delay row at the nominal voltage, interpolating when off-grid."""
    idx = np.where(np.isclose(grid.voltages, v_nom))[0]
    if idx.size:
        return grid.delays[int(idx[0]), :].copy()
    if not grid.voltages[0] <= v_nom <= grid.voltages[-1]:
        raise CharacterizationError(
            f"nominal voltage {v_nom} outside swept range "
            f"[{grid.voltages[0]}, {grid.voltages[-1]}]"
        )
    return np.asarray(
        [np.interp(v_nom, grid.voltages, grid.delays[:, j])
         for j in range(len(grid.loads))]
    )
