"""Grid interpolation and sub-sampling (paper Fig. 1 step B).

The SPICE sweep samples the operating-point space on a coarse grid (12
voltages × 9 loads in the paper).  Before regression, *linear
interpolation and sub-sampling on normalized data points* increases the
density of the sample grid.  The same bilinear interpolator also serves
as the *reference* against which the paper measures polynomial
approximation error ("compared to a linear approximation of the SPICE
results", Sec. V-A) — and, packaged as :class:`LutDelayModel`, as the
conventional look-up-table delay model of Sec. II that the polynomial
approach competes with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["GridInterpolator", "LutDelayModel", "subsample"]


@dataclass(frozen=True)
class GridInterpolator:
    """Bilinear interpolation of values sampled on a rectilinear grid.

    Axes are arbitrary strictly-increasing coordinates (the
    characterization flow uses *normalized* coordinates, making the
    power-of-two load axis equidistant).
    """

    x_axis: np.ndarray
    y_axis: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        x = np.asarray(self.x_axis, dtype=np.float64)
        y = np.asarray(self.y_axis, dtype=np.float64)
        z = np.asarray(self.values, dtype=np.float64)
        if z.shape != (len(x), len(y)):
            raise ValueError(
                f"value grid {z.shape} does not match axes ({len(x)}, {len(y)})"
            )
        if len(x) < 1 or len(y) < 1:
            raise ValueError("interpolation grid needs at least 1x1 samples")
        if np.any(np.diff(x) <= 0) or np.any(np.diff(y) <= 0):
            raise ValueError("grid axes must be strictly increasing")
        object.__setattr__(self, "x_axis", x)
        object.__setattr__(self, "y_axis", y)
        object.__setattr__(self, "values", z)

    def __call__(self, x, y):
        """Interpolate at ``(x, y)``; scalars or broadcastable arrays.

        Queries outside the grid are clamped to the boundary (flat
        extrapolation), mirroring how LUT-based tools treat out-of-corner
        parameters.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        scalar = np.ndim(x) == 0 and np.ndim(y) == 0
        x_b, y_b = np.broadcast_arrays(x, y)

        xi, xj, tx = self._locate(self.x_axis, x_b)
        yi, yj, ty = self._locate(self.y_axis, y_b)

        v00 = self.values[xi, yi]
        v01 = self.values[xi, yj]
        v10 = self.values[xj, yi]
        v11 = self.values[xj, yj]
        result = (
            v00 * (1 - tx) * (1 - ty)
            + v10 * tx * (1 - ty)
            + v01 * (1 - tx) * ty
            + v11 * tx * ty
        )
        return float(result) if scalar else result

    @staticmethod
    def _locate(axis: np.ndarray, queries: np.ndarray):
        """Cell index pair and interpolation weight along one axis.

        A single-sample axis is *flat*: every query maps to the lone
        sample with zero weight toward the (identical) upper neighbor,
        which makes single-row/-column grids interpolate as constants
        along that axis.
        """
        if len(axis) == 1:
            zero = np.zeros(queries.shape, dtype=np.intp)
            return zero, zero, np.zeros(queries.shape, dtype=np.float64)
        lo = np.clip(np.searchsorted(axis, queries, side="right") - 1, 0,
                     len(axis) - 2)
        hi = lo + 1
        t = np.clip((queries - axis[lo]) / (axis[hi] - axis[lo]), 0.0, 1.0)
        return lo, hi, t


def subsample(interpolator: GridInterpolator, factor: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Densify a grid by bilinear sub-sampling (Fig. 1 step B).

    Each original cell is split into ``factor`` sub-cells per axis.
    Returns the new ``(x_axis, y_axis, values)`` with the original
    samples preserved at their positions.
    """
    if factor < 1:
        raise ValueError("subsample factor must be >= 1")
    x_old = interpolator.x_axis
    y_old = interpolator.y_axis
    x_new = _densify(x_old, factor)
    y_new = _densify(y_old, factor)
    values = interpolator(x_new[:, None], y_new[None, :])
    return x_new, y_new, values


def _densify(axis: np.ndarray, factor: int) -> np.ndarray:
    """Insert ``factor − 1`` equidistant points inside every axis segment."""
    if factor == 1:
        return axis.copy()
    pieces = []
    for left, right in zip(axis[:-1], axis[1:]):
        pieces.append(np.linspace(left, right, factor, endpoint=False))
    pieces.append(np.asarray([axis[-1]]))
    return np.concatenate(pieces)


class LutDelayModel:
    """Conventional LUT delay model: bilinear interpolation of raw delays.

    This is the Sec. II state-of-the-art comparator: per (cell, pin,
    polarity) a table of absolute delays over parameter corners,
    interpolated at simulation time.  It trades memory (full grid per
    entry) for lookup cost, whereas the polynomial kernel stores
    ``(N+1)²`` coefficients.
    """

    def __init__(self, voltages: np.ndarray, loads: np.ndarray, delays: np.ndarray) -> None:
        # Interpolate linearly in (v, log2 c) like real liberty tables.
        self._interp = GridInterpolator(
            x_axis=np.asarray(voltages, dtype=np.float64),
            y_axis=np.log2(np.asarray(loads, dtype=np.float64)),
            values=np.asarray(delays, dtype=np.float64),
        )
        self.table_entries = self._interp.values.size

    def delay(self, v, c):
        """Absolute propagation delay at ``(v, c)`` in seconds."""
        return self._interp(v, np.log2(np.asarray(c, dtype=np.float64)))
