"""Two-dimensional surface polynomials (paper Eq. 4).

A delay-deviation surface is approximated by

    f(P) = Σ_{i=0}^{N} Σ_{j=0}^{N} β_{i,j} · v^i · c^j ,   P = (v, c),

over *normalized* predictors ``v = φ_V(voltage)`` and ``c = φ_C(load)``.
The polynomial has order ``2·N`` and ``(N+1)²`` coefficients.

Evaluation is offered in two forms:

* :meth:`SurfacePolynomial.evaluate_naive` — the textbook double sum with
  explicit powers; used as a cross-check oracle in tests,
* :meth:`SurfacePolynomial.evaluate` — nested Horner form.  Following the
  paper's Sec. IV, Horner's method with reuse of previously computed
  terms turns the evaluation into a chain of fused multiply-adds, which
  is also the fastest formulation for NumPy array inputs.

All arithmetic is double precision; the paper notes (Sec. III-D) that the
approximation is highly sensitive to coefficient perturbations, so no
single-precision path is provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["SurfacePolynomial", "design_matrix", "term_exponents"]


def term_exponents(n: int) -> Tuple[Tuple[int, int], ...]:
    """Exponent pairs ``(i, j)`` in coefficient-vector order.

    The flattening is row-major over the ``(N+1) × (N+1)`` coefficient
    grid: ``(0,0), (0,1), …, (0,N), (1,0), …, (N,N)`` — the same layout as
    the matrix columns in the paper's Eq. 6.
    """
    if n < 0:
        raise ValueError("polynomial half-order N must be >= 0")
    return tuple((i, j) for i in range(n + 1) for j in range(n + 1))


def design_matrix(v: np.ndarray, c: np.ndarray, n: int) -> np.ndarray:
    """Regression design matrix ``X`` (paper Eq. 6).

    Row ``k`` holds the power terms ``v_k^i · c_k^j`` of the ``k``-th
    sample, columns ordered like :func:`term_exponents`.  The first
    column is the zero-degree term and therefore all ones.
    """
    v = np.asarray(v, dtype=np.float64).ravel()
    c = np.asarray(c, dtype=np.float64).ravel()
    if v.shape != c.shape:
        raise ValueError("v and c sample vectors must have the same length")
    # Precompute power tables: shape (m, N+1).
    v_pows = np.vander(v, n + 1, increasing=True)
    c_pows = np.vander(c, n + 1, increasing=True)
    # Row-major combination -> (m, (N+1)**2).
    return np.einsum("mi,mj->mij", v_pows, c_pows).reshape(len(v), (n + 1) ** 2)


@dataclass(frozen=True)
class SurfacePolynomial:
    """An ``(N+1) × (N+1)`` coefficient grid defining ``f(v, c)``.

    ``coefficients[i, j]`` is ``β_{i,j}``, multiplying ``v^i · c^j``.
    """

    coefficients: np.ndarray

    def __post_init__(self) -> None:
        coeffs = np.asarray(self.coefficients, dtype=np.float64)
        if coeffs.ndim != 2 or coeffs.shape[0] != coeffs.shape[1]:
            raise ValueError(f"coefficient grid must be square, got {coeffs.shape}")
        object.__setattr__(self, "coefficients", coeffs)

    # -- structure ---------------------------------------------------------------

    @property
    def n(self) -> int:
        """Half-order ``N`` (each variable appears with powers 0…N)."""
        return self.coefficients.shape[0] - 1

    @property
    def order(self) -> int:
        """Total polynomial order ``2·N`` as the paper counts it."""
        return 2 * self.n

    @property
    def num_coefficients(self) -> int:
        """``(N+1)²`` — the storage cost per pin-delay (Sec. V-A)."""
        return self.coefficients.size

    def to_vector(self) -> np.ndarray:
        """Flatten to the β-vector of Eq. 6 (row-major)."""
        return self.coefficients.ravel().copy()

    @classmethod
    def from_vector(cls, beta: Sequence[float]) -> "SurfacePolynomial":
        beta = np.asarray(beta, dtype=np.float64)
        side = int(round(np.sqrt(beta.size)))
        if side * side != beta.size:
            raise ValueError(f"coefficient vector length {beta.size} is not square")
        return cls(beta.reshape(side, side))

    # -- evaluation ----------------------------------------------------------------

    def evaluate(self, v, c):
        """Evaluate ``f(v, c)`` in nested Horner form.

        ``v`` and ``c`` are normalized predictors (scalars or
        broadcastable arrays).  For each power of ``v`` the inner
        polynomial in ``c`` is folded first, then the outer polynomial in
        ``v`` — every step a single multiply-add.
        """
        v = np.asarray(v, dtype=np.float64)
        c = np.asarray(c, dtype=np.float64)
        coeffs = self.coefficients
        n1 = coeffs.shape[0]
        result = np.zeros(np.broadcast(v, c).shape, dtype=np.float64)
        for i in range(n1 - 1, -1, -1):
            inner = np.zeros_like(result)
            for j in range(n1 - 1, -1, -1):
                inner = inner * c + coeffs[i, j]
            result = result * v + inner
        if np.ndim(v) == 0 and np.ndim(c) == 0:
            return float(result)
        return result

    def evaluate_naive(self, v, c):
        """Textbook double-sum evaluation (test oracle for Horner)."""
        v = np.asarray(v, dtype=np.float64)
        c = np.asarray(c, dtype=np.float64)
        total = np.zeros(np.broadcast(v, c).shape, dtype=np.float64)
        for i, j in term_exponents(self.n):
            total = total + self.coefficients[i, j] * np.power(v, i) * np.power(c, j)
        if np.ndim(v) == 0 and np.ndim(c) == 0:
            return float(total)
        return total

    def __call__(self, v, c):
        return self.evaluate(v, c)

    # -- calculus / algebra -----------------------------------------------------------

    def partial_v(self) -> "SurfacePolynomial":
        """Partial derivative ∂f/∂v as a new polynomial (same grid size)."""
        coeffs = self.coefficients
        out = np.zeros_like(coeffs)
        for i in range(1, coeffs.shape[0]):
            out[i - 1, :] += i * coeffs[i, :]
        return SurfacePolynomial(out)

    def partial_c(self) -> "SurfacePolynomial":
        """Partial derivative ∂f/∂c as a new polynomial."""
        coeffs = self.coefficients
        out = np.zeros_like(coeffs)
        for j in range(1, coeffs.shape[1]):
            out[:, j - 1] += j * coeffs[:, j]
        return SurfacePolynomial(out)

    def __add__(self, other: "SurfacePolynomial") -> "SurfacePolynomial":
        a, b = self.coefficients, other.coefficients
        side = max(a.shape[0], b.shape[0])
        out = np.zeros((side, side))
        out[: a.shape[0], : a.shape[1]] += a
        out[: b.shape[0], : b.shape[1]] += b
        return SurfacePolynomial(out)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SurfacePolynomial(order={self.order}, coefficients={self.num_coefficients})"
