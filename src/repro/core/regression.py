"""Multivariable linear regression for delay surfaces (paper Sec. III-C).

Given ``m`` samples ``(v_k, c_k) → y_k`` (normalized predictors and
relative delay deviations) the regression solves the ordinary
least-squares problem

    β̂ = argmin_β ‖y − X·β‖²₂                        (Eq. 7)

by the normal equations

    β̂ = (XᵀX)⁻¹ Xᵀ y                                (Eq. 8)

with a numerically robust SVD-based ``lstsq`` fallback when XᵀX is badly
conditioned (which happens for high orders with few samples).  An
optional ridge term is provided for ablation studies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.core.polynomial import SurfacePolynomial, design_matrix
from repro.errors import RegressionError

__all__ = ["FitResult", "OrderSelection", "fit_polynomial", "select_half_order"]


@dataclass(frozen=True)
class FitResult:
    """A fitted surface polynomial plus regression diagnostics.

    Error statistics are computed on the *training* samples in deviation
    units (i.e. fractions of the nominal delay; 0.01 means 1 % of d_nom).
    """

    polynomial: SurfacePolynomial
    mean_abs_error: float
    rms_error: float
    max_abs_error: float
    r_squared: float
    condition_number: float
    sample_count: int
    solve_seconds: float
    method: str

    @property
    def order(self) -> int:
        return self.polynomial.order


def fit_polynomial(
    v: np.ndarray,
    c: np.ndarray,
    y: np.ndarray,
    n: int,
    method: str = "normal",
    ridge: float = 0.0,
) -> FitResult:
    """Fit a half-order-``n`` surface polynomial to deviation samples.

    Parameters
    ----------
    v, c:
        Normalized predictor samples (``φ_V``, ``φ_C``), flattened.
    y:
        Relative delay deviations (``φ_D``), same length.
    n:
        Polynomial half-order N; the fitted polynomial has order ``2·N``
        and ``(N+1)²`` coefficients.
    method:
        ``"normal"`` (paper Eq. 8), ``"lstsq"`` (SVD least squares) or
        ``"auto"`` (normal equations with lstsq fallback).
    ridge:
        Optional Tikhonov regularization λ added as ``λ·I`` to XᵀX.
    """
    v = np.asarray(v, dtype=np.float64).ravel()
    c = np.asarray(c, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if not (len(v) == len(c) == len(y)):
        raise RegressionError("v, c and y must have equal sample counts")
    num_coefficients = (n + 1) ** 2
    if len(y) < num_coefficients:
        raise RegressionError(
            f"need at least {num_coefficients} samples for order 2*{n}, got {len(y)}"
        )
    if method not in ("normal", "lstsq", "auto"):
        raise RegressionError(f"unknown regression method: {method!r}")

    x_matrix = design_matrix(v, c, n)
    start = time.perf_counter()
    used = method
    if method in ("normal", "auto"):
        gram = x_matrix.T @ x_matrix
        if ridge:
            gram = gram + ridge * np.eye(num_coefficients)
        rhs = x_matrix.T @ y
        try:
            beta = np.linalg.solve(gram, rhs)
            used = "normal"
        except np.linalg.LinAlgError:
            if method == "normal":
                raise RegressionError(
                    "normal equations are singular; use method='auto' or 'lstsq'"
                ) from None
            beta, *_ = np.linalg.lstsq(x_matrix, y, rcond=None)
            used = "lstsq"
    else:
        beta, *_ = np.linalg.lstsq(x_matrix, y, rcond=None)
    solve_seconds = time.perf_counter() - start

    residuals = y - x_matrix @ beta
    abs_res = np.abs(residuals)
    total_var = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 - float(np.sum(residuals**2)) / total_var if total_var > 0 else 1.0
    condition = float(np.linalg.cond(x_matrix))

    return FitResult(
        polynomial=SurfacePolynomial.from_vector(beta),
        mean_abs_error=float(abs_res.mean()),
        rms_error=float(np.sqrt(np.mean(residuals**2))),
        max_abs_error=float(abs_res.max()),
        r_squared=r_squared,
        condition_number=condition,
        sample_count=len(y),
        solve_seconds=solve_seconds,
        method=used,
    )


@dataclass(frozen=True)
class OrderSelection:
    """Cross-validated half-order choice plus the per-candidate scores."""

    n: int
    cv_errors: Dict[int, float]


def select_half_order(
    v: np.ndarray,
    c: np.ndarray,
    y: np.ndarray,
    candidates: Sequence[int] = (1, 2, 3, 4),
    folds: int = 4,
    tolerance: float = 0.05,
) -> OrderSelection:
    """Pick a polynomial half-order by deterministic K-fold cross-validation.

    Every candidate ``n`` is scored by the mean held-out RMS error over
    ``folds`` strided folds (fold ``k`` holds out samples ``k, k+folds,
    k+2·folds, …`` — deterministic, no RNG, so selection is reproducible
    across processes).  Candidates whose coefficient count exceeds the
    training-fold size are skipped.  The winner is the *smallest* order
    whose CV error is within ``tolerance`` (relative) of the best score
    — the parsimony rule that keeps kernels cheap when a low order
    already explains the surface.
    """
    v = np.asarray(v, dtype=np.float64).ravel()
    c = np.asarray(c, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if not (len(v) == len(c) == len(y)):
        raise RegressionError("v, c and y must have equal sample counts")
    if folds < 2:
        raise RegressionError("cross-validation needs at least 2 folds")
    folds = min(folds, len(y))
    indices = np.arange(len(y))
    scores: Dict[int, float] = {}
    for n in sorted(set(int(k) for k in candidates)):
        if n < 0:
            raise RegressionError("half-order candidates must be >= 0")
        coefficients = (n + 1) ** 2
        fold_errors = []
        feasible = True
        for k in range(folds):
            test = indices % folds == k
            train = ~test
            if int(train.sum()) < coefficients or not test.any():
                feasible = False
                break
            fit = fit_polynomial(v[train], c[train], y[train], n=n, method="auto")
            predicted = fit.polynomial.evaluate(v[test], c[test])
            fold_errors.append(float(np.sqrt(np.mean((predicted - y[test]) ** 2))))
        if feasible:
            scores[n] = float(np.mean(fold_errors))
    if not scores:
        raise RegressionError(
            f"no feasible half-order among {tuple(candidates)} for "
            f"{len(y)} samples in {folds} folds"
        )
    best = min(scores.values())
    ceiling = best * (1.0 + tolerance) + 1e-12
    chosen = min(n for n, score in scores.items() if score <= ceiling)
    return OrderSelection(n=chosen, cv_errors=scores)
