"""The paper's primary contribution: parametric voltage-aware delay modeling.

This package implements Sec. III of the paper end to end:

* :mod:`repro.core.parameters` — operating points, the constrained 2-D
  parameter space and the φ_V / φ_C / φ_D normalizations,
* :mod:`repro.core.polynomial` — two-dimensional surface polynomials
  (Eq. 4) with Horner-form evaluation,
* :mod:`repro.core.regression` — multivariable OLS regression via the
  normal equations (Eq. 5–8),
* :mod:`repro.core.interpolation` — grid interpolation / sub-sampling
  (Fig. 1 step B) and a conventional LUT delay model for comparison,
* :mod:`repro.core.characterization` — the full Fig. 1 flow A→D,
* :mod:`repro.core.delay_kernel` — compiled coefficient tables evaluated
  on-the-fly during simulation (Sec. IV-A, Eq. 9).
"""

from repro.core.parameters import OperatingPoint, ParameterSpace
from repro.core.polynomial import SurfacePolynomial, design_matrix
from repro.core.regression import FitResult, fit_polynomial
from repro.core.interpolation import GridInterpolator, LutDelayModel, subsample
from repro.core.characterization import (
    PinCharacterization,
    CellCharacterization,
    LibraryCharacterization,
    characterize_pin,
    characterize_cell,
    characterize_library,
)
from repro.core.delay_kernel import DelayKernelTable
from repro.core.backends import AnalyticalDelayBackend, LutDelayBackend

__all__ = [
    "OperatingPoint",
    "ParameterSpace",
    "SurfacePolynomial",
    "design_matrix",
    "FitResult",
    "fit_polynomial",
    "GridInterpolator",
    "LutDelayModel",
    "subsample",
    "PinCharacterization",
    "CellCharacterization",
    "LibraryCharacterization",
    "characterize_pin",
    "characterize_cell",
    "characterize_library",
    "DelayKernelTable",
    "AnalyticalDelayBackend",
    "LutDelayBackend",
]
