"""Operating points, parameter space and normalizations (paper Sec. III).

All cell delays are parametrized by supply voltage ``v`` and load
capacitance ``c``.  Both are constrained to intervals which together form
the continuous two-dimensional parameter space ``P ⊆ R²``; each point
``P = (v, c)`` is an *operating point*.

Prior to regression the predictors are normalized to ``[0, 1]`` to evenly
weight them and prevent over-fitting (Sec. III-C):

* ``φ_V(v) = (v − V_min) / (V_max − V_min)`` — linear in voltage,
* ``φ_C(c) = (log₂ c − log₂ C_min) / (log₂ C_max − log₂ C_min)`` —
  logarithmic in capacitance, because library sweeps sample loads in
  powers of two,
* ``φ_D(d) = d / d_nom − 1`` — delays become *relative deviations* from
  the nominal operating point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.units import FF

__all__ = ["OperatingPoint", "ParameterSpace"]


@dataclass(frozen=True, order=True)
class OperatingPoint:
    """A point ``P = (v, c)`` of the parameter space.

    Attributes
    ----------
    voltage:
        Supply voltage in volts.
    load:
        Output load capacitance in farads.
    """

    voltage: float
    load: float

    def __post_init__(self) -> None:
        if self.voltage <= 0:
            raise ParameterError(f"voltage must be positive, got {self.voltage}")
        if self.load <= 0:
            raise ParameterError(f"load must be positive, got {self.load}")

    def __str__(self) -> str:
        return f"({self.voltage:.3f} V, {self.load / FF:.3g} fF)"


@dataclass(frozen=True)
class ParameterSpace:
    """The constrained parameter (sub-)space ``P ⊆ R²`` with normalizers.

    Attributes
    ----------
    v_min, v_max:
        Supply-voltage interval ``[V_min, V_max]`` in volts.
    c_min, c_max:
        Load-capacitance interval ``[C_min, C_max]`` in farads.
    v_nom:
        Nominal supply voltage; the nominal operating point of a gate is
        ``(v_nom, c)`` with ``c`` the gate's actual load.
    """

    v_min: float = 0.55
    v_max: float = 1.10
    c_min: float = 0.5 * FF
    c_max: float = 128.0 * FF
    v_nom: float = 0.80

    def __post_init__(self) -> None:
        if not 0 < self.v_min < self.v_max:
            raise ParameterError("need 0 < v_min < v_max")
        if not 0 < self.c_min < self.c_max:
            raise ParameterError("need 0 < c_min < c_max")
        if not self.v_min <= self.v_nom <= self.v_max:
            raise ParameterError(
                f"nominal voltage {self.v_nom} outside [{self.v_min}, {self.v_max}]"
            )

    # -- membership -------------------------------------------------------------

    def contains(self, point: OperatingPoint, tolerance: float = 1e-9) -> bool:
        """True when the operating point lies inside the space."""
        return (
            self.v_min - tolerance <= point.voltage <= self.v_max + tolerance
            and self.c_min * (1 - 1e-9) <= point.load <= self.c_max * (1 + 1e-9)
        )

    def require(self, point: OperatingPoint) -> OperatingPoint:
        """Validate membership; raise :class:`ParameterError` otherwise."""
        if not self.contains(point):
            raise ParameterError(f"operating point {point} outside parameter space")
        return point

    # -- normalizations (φ_V, φ_C, φ_D) ------------------------------------------

    def normalize_voltage(self, v):
        """``φ_V``: map ``[V_min, V_max] → [0, 1]`` linearly."""
        return (np.asarray(v, dtype=np.float64) - self.v_min) / (self.v_max - self.v_min)

    def denormalize_voltage(self, nv):
        return np.asarray(nv, dtype=np.float64) * (self.v_max - self.v_min) + self.v_min

    def normalize_load(self, c):
        """``φ_C``: map ``[C_min, C_max] → [0, 1]`` logarithmically."""
        log_min = math.log2(self.c_min)
        log_max = math.log2(self.c_max)
        return (np.log2(np.asarray(c, dtype=np.float64)) - log_min) / (log_max - log_min)

    def denormalize_load(self, nc):
        log_min = math.log2(self.c_min)
        log_max = math.log2(self.c_max)
        return np.exp2(np.asarray(nc, dtype=np.float64) * (log_max - log_min) + log_min)

    @staticmethod
    def normalize_delay(d, d_nom):
        """``φ_D``: relative delay deviation ``d / d_nom − 1``."""
        return np.asarray(d, dtype=np.float64) / np.asarray(d_nom, dtype=np.float64) - 1.0

    @staticmethod
    def denormalize_delay(deviation, d_nom):
        """Invert ``φ_D`` (this is the paper's Eq. 9: ``d' = d_nom·(1+f)``)."""
        return np.asarray(d_nom, dtype=np.float64) * (1.0 + np.asarray(deviation, dtype=np.float64))

    def normalize_point(self, point: OperatingPoint):
        """Normalized coordinates ``(φ_V(v), φ_C(c))`` of an operating point."""
        return (
            float(self.normalize_voltage(point.voltage)),
            float(self.normalize_load(point.load)),
        )

    # -- grids --------------------------------------------------------------------

    def voltage_grid(self, count: int) -> np.ndarray:
        """``count`` equidistant voltages spanning the space."""
        if count < 2:
            raise ParameterError("grid needs at least 2 points")
        return np.linspace(self.v_min, self.v_max, count)

    def load_grid(self, count: int) -> np.ndarray:
        """``count`` log-equidistant loads spanning the space."""
        if count < 2:
            raise ParameterError("grid needs at least 2 points")
        return np.exp2(np.linspace(math.log2(self.c_min), math.log2(self.c_max), count))

    def evaluation_grid(self, count: int = 64):
        """The paper's ``count × count`` equidistant evaluation grid.

        Returns ``(voltages, loads)`` where voltages are equidistant in v
        and loads equidistant in φ_C (log₂ c), matching how the paper's
        64×64 error grids are laid out.
        """
        return self.voltage_grid(count), self.load_grid(count)

    @classmethod
    def paper_default(cls) -> "ParameterSpace":
        """The exact space used in the paper's experiments (Sec. V)."""
        return cls()
