"""Compiled delay-kernel tables (paper Sec. III-D / IV-A).

After characterization, each (cell type, input pin, transition polarity)
entry is represented *solely* by its ``(N+1)²`` polynomial coefficients.
The table stores them in one dense double-precision array indexed by

    ``coefficients[type_id, pin_index, polarity]  →  (N+1, N+1)``

mirroring the "constant double-precision floating-point array structure
in the global memory" of the GPU implementation.  The evaluation methods
are the *delay computation kernels*: the same Horner-form function for
every thread, parameterized only by the selected coefficients, so no
thread divergence arises across parallel circuit instances (Sec. IV-B).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

import numpy as np

from repro.cells.cell import DrivePolarity
from repro.core.parameters import ParameterSpace
from repro.errors import CharacterizationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.characterization import LibraryCharacterization

__all__ = ["DelayKernelTable", "horner2d"]

#: Delays are clipped to this floor (seconds) so numerical extrapolation
#: can never produce a zero or negative propagation delay.
MIN_DELAY = 1e-15


def horner2d(coefficients: np.ndarray, v, c):
    """Evaluate 2-D polynomial(s) in nested Horner form.

    ``coefficients`` has shape ``(..., N+1, N+1)``; ``v`` and ``c``
    broadcast against the leading dimensions.  Every step is one
    multiply-add — the FMA-friendly formulation of Sec. IV.
    """
    coefficients = np.asarray(coefficients, dtype=np.float64)
    n1 = coefficients.shape[-1]
    v = np.asarray(v, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    shape = np.broadcast(coefficients[..., 0, 0], v, c).shape
    result = np.zeros(shape, dtype=np.float64)
    for i in range(n1 - 1, -1, -1):
        inner = np.zeros(shape, dtype=np.float64)
        for j in range(n1 - 1, -1, -1):
            inner = inner * c + coefficients[..., i, j]
        result = result * v + inner
    return result


@dataclass
class DelayKernelTable:
    """Dense coefficient storage plus the delay-computation kernel.

    Attributes
    ----------
    coefficients:
        Shape ``(num_types, max_pins, 2, N+1, N+1)`` float64.  Unused pin
        slots are zero-filled (they evaluate to zero deviation but are
        never selected by a well-formed netlist).
    pin_counts:
        Number of input pins per type id, shape ``(num_types,)``.
    type_names:
        Cell name per type id (same order as the source library).
    space:
        Parameter space whose normalizations the kernels expect.
    """

    coefficients: np.ndarray
    pin_counts: np.ndarray
    type_names: Tuple[str, ...]
    space: ParameterSpace

    def __post_init__(self) -> None:
        coeffs = np.asarray(self.coefficients, dtype=np.float64)
        if coeffs.ndim != 5 or coeffs.shape[2] != 2 or coeffs.shape[3] != coeffs.shape[4]:
            raise CharacterizationError(
                f"kernel table has invalid shape {coeffs.shape}"
            )
        if len(self.type_names) != coeffs.shape[0]:
            raise CharacterizationError("type_names length mismatch")
        self.coefficients = coeffs
        self.pin_counts = np.asarray(self.pin_counts, dtype=np.int64)

    # -- structure -------------------------------------------------------------

    @property
    def num_types(self) -> int:
        return self.coefficients.shape[0]

    @property
    def max_pins(self) -> int:
        return self.coefficients.shape[1]

    @property
    def n(self) -> int:
        """Polynomial half-order N."""
        return self.coefficients.shape[-1] - 1

    @property
    def order(self) -> int:
        return 2 * self.n

    @property
    def memory_bytes(self) -> int:
        """Coefficient storage footprint (Sec. V-A memory discussion)."""
        return self.coefficients.nbytes

    def type_id(self, cell_name: str) -> int:
        try:
            return self.type_names.index(cell_name)
        except ValueError:
            raise CharacterizationError(
                f"cell {cell_name!r} not in kernel table"
            ) from None

    # -- kernels -----------------------------------------------------------------

    def deviation(self, type_id: int, pin_index: int, polarity: DrivePolarity, v, c):
        """Relative delay deviation ``f(P)`` at raw operating points."""
        nv = self.space.normalize_voltage(v)
        nc = self.space.normalize_load(c)
        coeffs = self.coefficients[type_id, pin_index, int(polarity)]
        return horner2d(coeffs, nv, nc)

    def delay(self, d_nom, type_id: int, pin_index: int, polarity: DrivePolarity, v, c):
        """Adapted delay ``d' = d_nom · (1 + f(P))`` (paper Eq. 9)."""
        deviation = self.deviation(type_id, pin_index, polarity, v, c)
        return np.maximum(np.asarray(d_nom, dtype=np.float64) * (1.0 + deviation),
                          MIN_DELAY)

    def delays_for_gates(
        self,
        type_ids: np.ndarray,
        loads: np.ndarray,
        nominal_delays: np.ndarray,
        voltages: np.ndarray,
    ) -> np.ndarray:
        """Batch kernel: per-gate, per-pin, per-polarity, per-slot delays.

        This is the online delay-calculation phase of Sec. IV-A executed
        for a whole gate batch at once.

        Parameters
        ----------
        type_ids:
            Gate cell-type ids, shape ``(G,)``.
        loads:
            Gate output load capacitances in farads, shape ``(G,)``.
        nominal_delays:
            SDF nominal pin-to-pin delays, shape ``(G, pins, 2)``; the
            pin dimension may be narrower than the table's ``max_pins``
            (a circuit without 4-input cells compiles to fewer pins).
        voltages:
            Slot supply voltages, shape ``(S,)`` — one per parallel
            circuit instance.

        Returns
        -------
        Array of shape ``(G, pins, 2, S)`` with adapted delays.
        """
        nv = np.asarray(self.space.normalize_voltage(voltages), dtype=np.float64)
        nc = np.asarray(self.space.normalize_load(loads), dtype=np.float64)
        return self.delays_from_normalized(type_ids, nv, nc, nominal_delays)

    def delays_from_normalized(
        self,
        type_ids: np.ndarray,
        nv: np.ndarray,
        nc: np.ndarray,
        nominal_delays: np.ndarray,
    ) -> np.ndarray:
        """:meth:`delays_for_gates` with pre-normalized predictors.

        ``nv`` is ``φ_V`` of the slot voltages, ``nc`` is ``φ_C`` of the
        per-gate loads.  The fused level-plan path caches both on the
        compiled circuit (:class:`~repro.simulation.compiled.CircuitPlans`)
        so repeated jobs skip the normalization pass; evaluation here is
        the exact op sequence of :meth:`delays_for_gates`, so results
        stay bit-identical.
        """
        type_ids = np.asarray(type_ids, dtype=np.int64)
        nominal_delays = np.asarray(nominal_delays, dtype=np.float64)
        pins = nominal_delays.shape[1]
        if pins > self.max_pins:
            raise CharacterizationError(
                f"gates have {pins} pins but the kernel table holds "
                f"{self.max_pins}"
            )
        nv = np.asarray(nv, dtype=np.float64)
        nc = np.asarray(nc, dtype=np.float64)
        # Follow the caller's pin dimension and insert a slot axis so the
        # coefficient dims (G, P, 2, 1) broadcast against the slot
        # voltages (S,) and per-gate loads (G, 1, 1, 1).
        coeffs = self.coefficients[type_ids][:, :pins, :, None]  # (G, P, 2, 1, n1, n1)
        deviation = horner2d(
            coeffs,
            nv[None, None, None, :],
            nc[:, None, None, None],
        )  # (G, P, 2, S)
        d_nom = nominal_delays[..., None]
        return np.maximum(d_nom * (1.0 + deviation), MIN_DELAY)

    # -- construction ---------------------------------------------------------------

    @classmethod
    def from_characterization(cls, characterization: "LibraryCharacterization") -> "DelayKernelTable":
        """Compile step D: pack all fitted polynomials into one table."""
        library = characterization.library
        names = tuple(library.names())
        max_pins = max(cell.num_inputs for cell in library)
        # Entries may carry different half-orders (the adaptive flow
        # selects per entry); the dense table is sized for the largest
        # and smaller grids are zero-padded at the high-power end, which
        # evaluates bit-identically under Horner.
        n1 = max(
            [characterization.n + 1]
            + [entry.fit.polynomial.coefficients.shape[0]
               for entry in characterization.all_entries()]
        )
        coefficients = np.zeros((len(names), max_pins, 2, n1, n1), dtype=np.float64)
        pin_counts = np.zeros(len(names), dtype=np.int64)
        for type_id, name in enumerate(names):
            cell_char = characterization.cells[name]
            pin_counts[type_id] = cell_char.cell.num_inputs
            for entry in cell_char.pins:
                grid = entry.fit.polynomial.coefficients
                side = grid.shape[0]
                coefficients[type_id, entry.pin_index, int(entry.polarity),
                             :side, :side] = grid
        return cls(
            coefficients=coefficients,
            pin_counts=pin_counts,
            type_names=names,
            space=characterization.space,
        )

    # -- persistence -------------------------------------------------------------------

    def save(self, path: str) -> None:
        """Persist to an ``.npz`` archive."""
        meta = {
            "type_names": list(self.type_names),
            "space": {
                "v_min": self.space.v_min,
                "v_max": self.space.v_max,
                "c_min": self.space.c_min,
                "c_max": self.space.c_max,
                "v_nom": self.space.v_nom,
            },
        }
        np.savez(
            path,
            coefficients=self.coefficients,
            pin_counts=self.pin_counts,
            meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        )

    @classmethod
    def load(cls, path: str) -> "DelayKernelTable":
        with np.load(path) as archive:
            meta = json.loads(bytes(archive["meta"].tobytes()).decode("utf-8"))
            space = ParameterSpace(**meta["space"])
            return cls(
                coefficients=archive["coefficients"],
                pin_counts=archive["pin_counts"],
                type_names=tuple(meta["type_names"]),
                space=space,
            )
