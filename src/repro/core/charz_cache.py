"""Persistent coefficient cache for cell characterizations.

Characterizing a library is the dominant preprocessing cost (the paper
reports minutes of SPICE per cell); the results are pure functions of
the cell geometry, the process corner, the parameter space and the flow
settings.  This module keys fitted coefficient sets by exactly that
identity (:func:`repro.runtime.fingerprint.characterization_fingerprint`)
and stores them in two layers:

* a **process-wide memo** — repeated ``characterize_library`` calls in
  one process (experiments, the service, the AVFS loop) share the same
  :class:`~repro.core.characterization.CellCharacterization` objects;
* an **on-disk store** — one ``.npz`` per cell under a cache directory
  (``REPRO_CHARZ_CACHE`` or ``~/.cache/repro/charz``), written atomically
  (tmp + ``os.replace``) so concurrent writers and crashes can never
  leave a torn file.  A warm disk cache makes re-characterization of an
  unchanged library **zero** SPICE evaluations in a fresh process.

Corrupt or unreadable cache files are treated as misses (and removed
when possible): the cache can only ever cost a re-characterization,
never wrong coefficients.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from typing import Dict, Optional

import numpy as np

__all__ = ["CACHE_ENV", "CoefficientCache", "default_cache_dir"]

#: Environment variable overriding the default on-disk cache directory.
CACHE_ENV = "REPRO_CHARZ_CACHE"

#: Bump when the stored payload or its semantics change: old entries
#: become misses instead of deserialization errors.
_SCHEMA = 1

_MEMO: Dict[str, object] = {}
_MEMO_LOCK = threading.Lock()


def default_cache_dir() -> str:
    """``$REPRO_CHARZ_CACHE`` or the per-user cache directory."""
    override = os.environ.get(CACHE_ENV, "").strip()
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "charz")


class CoefficientCache:
    """Two-layer (memo + disk) cache of per-cell characterizations."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = str(directory) if directory is not None else default_cache_dir()
        self.memo_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self._lock = threading.Lock()

    # -- bookkeeping ----------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "memo_hits": self.memo_hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "directory": self.directory,
            }

    @staticmethod
    def clear_memo() -> None:
        """Drop the process-wide memo (tests; disk entries survive)."""
        with _MEMO_LOCK:
            _MEMO.clear()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], f"{key}.npz")

    # -- lookup ---------------------------------------------------------------

    def get(self, key: str, cell, space):
        """The cached characterization of ``cell`` under ``key``, or None."""
        with _MEMO_LOCK:
            hit = _MEMO.get(key)
        if hit is not None:
            with self._lock:
                self.memo_hits += 1
            return hit
        loaded = self._load(key, cell, space)
        if loaded is not None:
            with _MEMO_LOCK:
                _MEMO.setdefault(key, loaded)
            with self._lock:
                self.disk_hits += 1
            return loaded
        with self._lock:
            self.misses += 1
        return None

    def put(self, key: str, cell_characterization) -> None:
        """Memoize and persist one cell's characterization under ``key``."""
        with _MEMO_LOCK:
            _MEMO[key] = cell_characterization
        try:
            self._store(key, cell_characterization)
        except OSError:
            # An unwritable cache directory degrades to memo-only.
            pass

    # -- disk layer -----------------------------------------------------------

    def _store(self, key: str, cell_char) -> None:
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entries = []
        arrays: Dict[str, np.ndarray] = {}
        for i, pin in enumerate(cell_char.pins):
            entries.append({
                "pin_name": pin.pin_name,
                "pin_index": pin.pin_index,
                "polarity": int(pin.polarity),
                "evaluations": pin.evaluations,
                "fit": {
                    "mean_abs_error": pin.fit.mean_abs_error,
                    "rms_error": pin.fit.rms_error,
                    "max_abs_error": pin.fit.max_abs_error,
                    "r_squared": pin.fit.r_squared,
                    "condition_number": pin.fit.condition_number,
                    "sample_count": pin.fit.sample_count,
                    "method": pin.fit.method,
                },
            })
            arrays[f"p{i}_coefficients"] = pin.fit.polynomial.coefficients
            arrays[f"p{i}_nominal"] = pin.nominal_delays
            arrays[f"p{i}_sweep_voltages"] = pin.sweep.voltages
            arrays[f"p{i}_sweep_loads"] = pin.sweep.loads
            arrays[f"p{i}_sweep_delays"] = pin.sweep.delays
        meta = {
            "schema": _SCHEMA,
            "cell": cell_char.cell.name,
            "elapsed_seconds": cell_char.elapsed_seconds,
            "entries": entries,
        }
        arrays["meta"] = np.frombuffer(
            json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".npz")
        try:
            with os.fdopen(fd, "wb") as stream:
                np.savez(stream, **arrays)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _load(self, key: str, cell, space):
        from repro.cells.cell import DrivePolarity
        from repro.core.characterization import (
            CellCharacterization,
            PinCharacterization,
            _deviation_reference,
        )
        from repro.core.polynomial import SurfacePolynomial
        from repro.core.regression import FitResult
        from repro.electrical.spice import DelayGrid

        path = self._path(key)
        if not os.path.exists(path):
            return None
        try:
            with np.load(path) as archive:
                meta = json.loads(bytes(archive["meta"].tobytes()).decode("utf-8"))
                if meta.get("schema") != _SCHEMA or meta.get("cell") != cell.name:
                    return None
                pins = []
                for i, entry in enumerate(meta["entries"]):
                    sweep = DelayGrid(
                        voltages=archive[f"p{i}_sweep_voltages"],
                        loads=archive[f"p{i}_sweep_loads"],
                        delays=archive[f"p{i}_sweep_delays"],
                    )
                    nominal = archive[f"p{i}_nominal"]
                    stats = entry["fit"]
                    fit = FitResult(
                        polynomial=SurfacePolynomial(archive[f"p{i}_coefficients"]),
                        mean_abs_error=stats["mean_abs_error"],
                        rms_error=stats["rms_error"],
                        max_abs_error=stats["max_abs_error"],
                        r_squared=stats["r_squared"],
                        condition_number=stats["condition_number"],
                        sample_count=stats["sample_count"],
                        solve_seconds=0.0,
                        method=stats["method"],
                    )
                    pins.append(PinCharacterization(
                        cell_name=cell.name,
                        pin_name=entry["pin_name"],
                        pin_index=entry["pin_index"],
                        polarity=DrivePolarity(entry["polarity"]),
                        space=space,
                        fit=fit,
                        reference=_deviation_reference(sweep, nominal, space),
                        nominal_delays=nominal,
                        sweep=sweep,
                        evaluations=entry["evaluations"],
                    ))
                return CellCharacterization(
                    cell=cell,
                    pins=tuple(pins),
                    elapsed_seconds=float(meta.get("elapsed_seconds", 0.0)),
                )
        except Exception:
            # Torn, truncated or stale-format file: drop it and re-fit.
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
