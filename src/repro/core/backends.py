"""Alternative delay-model backends (paper Sec. IV-B closing remark).

    "Note that although this work utilizes polynomials for the delay
     calculation [20], analytical models [17, 18] and other types of
     approximations [21] can be applied as well."

Every simulation engine only requires the ``delays_for_gates`` protocol
(the :class:`~repro.core.delay_kernel.DelayKernelTable` batch kernel),
so delay models are pluggable.  This module provides the two families
the paper cites as alternatives:

* :class:`LutDelayBackend` — the *conventional* approach of Sec. II:
  per-entry look-up tables over the operating-point grid, bilinearly
  interpolated at simulation time.  Accurate but memory-hungry (a full
  grid per entry instead of ``(N+1)²`` coefficients).
* :class:`AnalyticalDelayBackend` — a closed-form α-power-law derating
  (refs. [16–18]): one rational voltage function per transition
  polarity, shared by *all* cells and loads.  Tiny and fast, but blind
  to per-cell and load-dependent sensitivity differences — the accuracy
  compromise the paper's learned kernels remove.

``benchmarks/bench_lut_vs_poly.py`` quantifies the trade-offs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

import numpy as np

from repro.cells.cell import DrivePolarity
from repro.core.delay_kernel import MIN_DELAY
from repro.core.parameters import ParameterSpace
from repro.electrical.alpha_power import AlphaPowerParams
from repro.errors import CharacterizationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.characterization import LibraryCharacterization

__all__ = ["LutDelayBackend", "AnalyticalDelayBackend"]


class LutDelayBackend:
    """Conventional LUT delay model, drop-in for the kernel table.

    Stores the characterization's *reference* deviation grids (the
    linearly interpolated SPICE samples) for every (cell type, pin,
    polarity) and answers delay queries by bilinear interpolation over
    normalized ``(φ_V, φ_C)`` — the Sec. II state of the art, running
    inside the same parallel engine.
    """

    def __init__(self, grids: np.ndarray, nv_axis: np.ndarray,
                 nc_axis: np.ndarray, space: ParameterSpace,
                 type_names: Tuple[str, ...]) -> None:
        if grids.ndim != 5 or grids.shape[2] != 2:
            raise CharacterizationError(f"bad LUT grid shape {grids.shape}")
        self.grids = grids                      # (types, pins, 2, NV, NC)
        self.nv_axis = nv_axis
        self.nc_axis = nc_axis
        self.space = space
        self.type_names = type_names

    @classmethod
    def from_characterization(
        cls, characterization: "LibraryCharacterization"
    ) -> "LutDelayBackend":
        library = characterization.library
        names = tuple(library.names())
        max_pins = max(cell.num_inputs for cell in library)
        first = next(iter(characterization.all_entries()))
        nv_axis = first.reference.x_axis
        nc_axis = first.reference.y_axis
        grids = np.zeros(
            (len(names), max_pins, 2, nv_axis.size, nc_axis.size))
        for type_id, name in enumerate(names):
            for entry in characterization.cells[name].pins:
                if (entry.reference.x_axis.shape != nv_axis.shape
                        or entry.reference.y_axis.shape != nc_axis.shape):
                    raise CharacterizationError(
                        "inconsistent sweep grids across entries")
                grids[type_id, entry.pin_index, int(entry.polarity)] = \
                    entry.reference.values
        return cls(grids, nv_axis, nc_axis, characterization.space, names)

    @property
    def memory_bytes(self) -> int:
        return self.grids.nbytes

    def delays_for_gates(
        self,
        type_ids: np.ndarray,
        loads: np.ndarray,
        nominal_delays: np.ndarray,
        voltages: np.ndarray,
    ) -> np.ndarray:
        """Same contract as :meth:`DelayKernelTable.delays_for_gates`."""
        type_ids = np.asarray(type_ids, dtype=np.int64)
        nominal_delays = np.asarray(nominal_delays, dtype=np.float64)
        pins = nominal_delays.shape[1]
        nv = np.clip(np.asarray(self.space.normalize_voltage(voltages)),
                     self.nv_axis[0], self.nv_axis[-1])
        nc = np.clip(np.asarray(self.space.normalize_load(loads)),
                     self.nc_axis[0], self.nc_axis[-1])

        iv = np.clip(np.searchsorted(self.nv_axis, nv, side="right") - 1,
                     0, self.nv_axis.size - 2)
        tv = (nv - self.nv_axis[iv]) / (self.nv_axis[iv + 1] - self.nv_axis[iv])
        ic = np.clip(np.searchsorted(self.nc_axis, nc, side="right") - 1,
                     0, self.nc_axis.size - 2)
        tc = (nc - self.nc_axis[ic]) / (self.nc_axis[ic + 1] - self.nc_axis[ic])

        grids = self.grids[type_ids, :pins]              # (G, P, 2, NV, NC)
        low = grids[:, :, :, iv, :]                      # (G, P, 2, V, NC)
        high = grids[:, :, :, iv + 1, :]
        along_v = low * (1.0 - tv)[None, None, None, :, None] + \
            high * tv[None, None, None, :, None]

        ic_sel = ic[:, None, None, None, None]
        c0 = np.take_along_axis(along_v, ic_sel, axis=4)[..., 0]
        c1 = np.take_along_axis(along_v, ic_sel + 1, axis=4)[..., 0]
        deviation = c0 * (1.0 - tc)[:, None, None, None] + \
            c1 * tc[:, None, None, None]                 # (G, P, 2, V)

        return np.maximum(nominal_delays[..., None] * (1.0 + deviation),
                          MIN_DELAY)


@dataclass
class AnalyticalDelayBackend:
    """Closed-form α-power derating shared by every cell and load.

    The deviation is the pure supply-voltage factor of the paper's Eq. 1:
    ``f(v) = τ(v) / τ(v_nom) − 1`` with one :class:`AlphaPowerParams`
    per output polarity.  Cheap (no per-cell storage at all) but it
    cannot express per-cell, per-pin or load-dependent sensitivity —
    the simplification typical of analytical timing models.
    """

    rise: AlphaPowerParams
    fall: AlphaPowerParams
    space: ParameterSpace

    @classmethod
    def from_corner(cls, corner, space: ParameterSpace) -> "AnalyticalDelayBackend":
        """Use a corner's load time constants as the derating functions."""
        return cls(
            rise=corner.load_params(DrivePolarity.RISE),
            fall=corner.load_params(DrivePolarity.FALL),
            space=space,
        )

    def delays_for_gates(
        self,
        type_ids: np.ndarray,
        loads: np.ndarray,
        nominal_delays: np.ndarray,
        voltages: np.ndarray,
    ) -> np.ndarray:
        nominal_delays = np.asarray(nominal_delays, dtype=np.float64)
        voltages = np.asarray(voltages, dtype=np.float64)
        deviation = np.stack(
            [params(voltages) / params(self.space.v_nom) - 1.0
             for params in (self.rise, self.fall)]
        )                                                  # (2, V)
        adapted = nominal_delays[..., None] * \
            (1.0 + deviation[None, None, :, :])            # (G, P, 2, V)
        return np.maximum(adapted, MIN_DELAY)
