"""The :class:`Waveform` type — a signal's full switching history.

Following the waveform representation of Holst et al. (the paper's
baseline [25]), a waveform is an **initial logic value** plus a strictly
increasing sequence of **toggle times**: every listed time flips the
signal.  This compact form carries complete glitch information — exactly
what the paper needs for glitch-accurate switching-activity analysis —
while staying trivially mappable to fixed-capacity GPU memory
(:mod:`repro.waveform.packed`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

__all__ = ["Waveform"]


@dataclass(frozen=True)
class Waveform:
    """An immutable binary waveform.

    Attributes
    ----------
    initial:
        Logic value (0/1) before the first toggle.
    times:
        Strictly increasing toggle times in seconds (float64 array).
        At each listed time the value flips; the new value holds *at*
        that time (left-closed semantics).
    """

    initial: int
    times: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.float64))

    def __post_init__(self) -> None:
        if self.initial not in (0, 1):
            raise ValueError(f"initial value must be 0 or 1, got {self.initial!r}")
        times = np.asarray(self.times, dtype=np.float64)
        if times.ndim != 1:
            raise ValueError("toggle times must be one-dimensional")
        if np.any(~np.isfinite(times)):
            raise ValueError("toggle times must be finite")
        if times.size > 1 and np.any(np.diff(times) <= 0):
            raise ValueError("toggle times must be strictly increasing")
        object.__setattr__(self, "times", times)

    # -- constructors -----------------------------------------------------------

    @classmethod
    def constant(cls, value: int) -> "Waveform":
        """A waveform that never switches."""
        return cls(initial=value)

    @classmethod
    def trusted(cls, initial: int, times: np.ndarray) -> "Waveform":
        """Validation-free constructor for engine-internal use.

        The simulation engines produce toggle arrays that satisfy the
        invariants by construction; skipping ``__post_init__`` keeps bulk
        waveform extraction out of the hot path.  ``times`` must already
        be a strictly increasing float64 array owned by the caller.
        """
        waveform = object.__new__(cls)
        object.__setattr__(waveform, "initial", initial)
        object.__setattr__(waveform, "times", times)
        return waveform

    @classmethod
    def step(cls, value_after: int, at: float) -> "Waveform":
        """A single transition to ``value_after`` at time ``at``."""
        return cls(initial=1 - value_after, times=np.asarray([at], dtype=np.float64))

    @classmethod
    def from_transitions(cls, initial: int,
                         transitions: Iterable[Tuple[float, int]]) -> "Waveform":
        """Build from ``(time, new_value)`` pairs; redundant entries dropped."""
        times: List[float] = []
        value = initial
        for time, new_value in transitions:
            if new_value not in (0, 1):
                raise ValueError(f"transition value must be 0/1, got {new_value!r}")
            if new_value != value:
                times.append(time)
                value = new_value
        return cls(initial=initial, times=np.asarray(times, dtype=np.float64))

    # -- queries -----------------------------------------------------------------

    @property
    def num_transitions(self) -> int:
        return int(self.times.size)

    @property
    def final_value(self) -> int:
        return self.initial ^ (self.num_transitions & 1)

    def value_at(self, time: float) -> int:
        """Logic value at ``time`` (transitions take effect at their time)."""
        count = int(np.searchsorted(self.times, time, side="right"))
        return self.initial ^ (count & 1)

    def transitions(self) -> Iterator[Tuple[float, int]]:
        """Iterate ``(time, new_value)`` pairs."""
        value = self.initial
        for time in self.times:
            value ^= 1
            yield float(time), value

    def latest_transition(self) -> float:
        """Time of the last toggle; ``-inf`` for constant waveforms."""
        if self.times.size == 0:
            return float("-inf")
        return float(self.times[-1])

    def pulse_widths(self) -> np.ndarray:
        """Durations between consecutive toggles."""
        if self.times.size < 2:
            return np.empty(0, dtype=np.float64)
        return np.diff(self.times)

    def min_pulse_width(self) -> float:
        widths = self.pulse_widths()
        return float(widths.min()) if widths.size else float("inf")

    # -- algebra --------------------------------------------------------------------

    def shifted(self, delta: float) -> "Waveform":
        """The same waveform delayed by ``delta`` seconds."""
        return Waveform(initial=self.initial, times=self.times + delta)

    def inverted(self) -> "Waveform":
        """Logical complement (same toggle times)."""
        return Waveform(initial=1 - self.initial, times=self.times.copy())

    def sampled(self, times: Sequence[float]) -> np.ndarray:
        """Vector of values at the given sample times."""
        counts = np.searchsorted(self.times, np.asarray(times, dtype=np.float64),
                                 side="right")
        return (self.initial ^ (counts & 1)).astype(np.uint8)

    def equivalent(self, other: "Waveform", tolerance: float = 0.0) -> bool:
        """Equality up to a per-toggle time tolerance."""
        if self.initial != other.initial or self.num_transitions != other.num_transitions:
            return False
        if self.num_transitions == 0:
            return True
        return bool(np.all(np.abs(self.times - other.times) <= tolerance))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Waveform):
            return NotImplemented
        return self.equivalent(other)

    def __hash__(self) -> int:
        return hash((self.initial, self.times.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        shown = ", ".join(f"{t:.3e}" for t in self.times[:4])
        suffix = ", …" if self.num_transitions > 4 else ""
        return f"Waveform(initial={self.initial}, times=[{shown}{suffix}])"
