"""VCD (Value Change Dump) export of simulation waveforms.

Glitch-accurate switching histories are most useful when they can be
inspected in a standard waveform viewer (GTKWave & co.).  This module
dumps one simulation slot — or several slots side by side — as IEEE 1364
VCD text, with configurable timescale quantization.

VCD is a change-dump format: each signal gets a short identifier code and
every toggle becomes a ``<value><code>`` line under its ``#<time>``
stamp, which maps one-to-one onto the library's toggle-time waveforms.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.units import FS
from repro.waveform.waveform import Waveform

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.simulation.base import SimulationResult

__all__ = ["dump_vcd", "result_to_vcd"]

#: Printable VCD identifier characters (IEEE 1364: '!' … '~').
_ID_FIRST = 33
_ID_LAST = 126
_ID_RANGE = _ID_LAST - _ID_FIRST + 1


def _identifier(index: int) -> str:
    """Short unique identifier code for the ``index``-th signal."""
    code = ""
    index += 1
    while index > 0:
        index, digit = divmod(index - 1, _ID_RANGE)
        code = chr(_ID_FIRST + digit) + code
    return code


def _timescale_label(timescale: float) -> Tuple[int, str]:
    """Map a timescale in seconds onto VCD's ``<1|10|100> <unit>`` form."""
    for unit_seconds, label in ((1e-15, "fs"), (1e-12, "ps"), (1e-9, "ns"),
                                (1e-6, "us"), (1e-3, "ms"), (1.0, "s")):
        for multiplier in (1, 10, 100):
            if abs(timescale / (multiplier * unit_seconds) - 1.0) < 1e-6:
                return multiplier, label
    raise SimulationError(
        f"timescale {timescale} is not 1/10/100 of a standard VCD unit"
    )


def dump_vcd(
    waveforms: Mapping[str, Waveform],
    timescale: float = FS,
    date: str = "",
    scope: str = "dut",
) -> str:
    """Serialize named waveforms as VCD text.

    Parameters
    ----------
    waveforms:
        Net name → :class:`Waveform`.  Net names become VCD variable
        names (``$var wire 1 <code> <name> $end``).
    timescale:
        VCD time unit in seconds; toggle times are rounded to integer
        multiples of it (default 1 fs — lossless for this library's
        picosecond-scale delays).
    """
    if not waveforms:
        raise SimulationError("nothing to dump")
    if timescale <= 0:
        raise SimulationError("timescale must be positive")

    unit, label = _timescale_label(timescale)
    lines: List[str] = []
    if date:
        lines += ["$date", f"  {date}", "$end"]
    lines += [
        "$version", "  repro waveform dump", "$end",
        f"$timescale {unit} {label} $end",
        f"$scope module {scope} $end",
    ]
    codes: Dict[str, str] = {}
    for index, net in enumerate(waveforms):
        codes[net] = _identifier(index)
        lines.append(f"$var wire 1 {codes[net]} {net} $end")
    lines += ["$upscope $end", "$enddefinitions $end"]

    # Initial values.
    lines.append("$dumpvars")
    for net, waveform in waveforms.items():
        lines.append(f"{waveform.initial}{codes[net]}")
    lines.append("$end")

    # Merge all toggles into one global time order.
    events: List[Tuple[int, str, int]] = []
    for net, waveform in waveforms.items():
        for time, value in waveform.transitions():
            events.append((int(round(time / timescale)), codes[net], value))
    events.sort(key=lambda item: (item[0], item[1]))

    current_stamp: Optional[int] = None
    for stamp, code, value in events:
        if stamp != current_stamp:
            lines.append(f"#{stamp}")
            current_stamp = stamp
        lines.append(f"{value}{code}")
    return "\n".join(lines) + "\n"


def result_to_vcd(
    result: "SimulationResult",
    slot: int,
    nets: Optional[Sequence[str]] = None,
    timescale: float = FS,
) -> str:
    """Dump one slot of a simulation result as VCD.

    ``nets`` defaults to everything the result recorded for the slot.
    """
    if not 0 <= slot < result.num_slots:
        raise SimulationError(f"slot {slot} out of range")
    recorded = result.waveforms[slot]
    chosen: Iterable[str] = nets if nets is not None else recorded.keys()
    waveforms = {net: result.waveform(slot, net) for net in chosen}
    pattern, voltage = result.slot_labels[slot]
    return dump_vcd(
        waveforms,
        timescale=timescale,
        date=(f"{result.circuit_name} pattern {pattern} @ {voltage:.2f} V "
              f"({result.engine})"),
        scope=result.circuit_name,
    )
