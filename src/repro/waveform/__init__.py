"""Waveform data structures: switching histories with full glitch support."""

from repro.waveform.waveform import Waveform
from repro.waveform.inertial import cancel_monotonic, filter_inertial
from repro.waveform.packed import PackedWaveforms
from repro.waveform.vcd import dump_vcd, result_to_vcd

__all__ = ["Waveform", "cancel_monotonic", "filter_inertial",
           "PackedWaveforms", "dump_vcd", "result_to_vcd"]
