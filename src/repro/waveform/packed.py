"""Packed waveform storage — the GPU waveform memory layout.

The GPU engine stores one net's switching history for *all* parallel
slots (stimuli × operating points, Sec. IV-B) as a dense float64 array of
shape ``(num_slots, capacity)``:

* row ``s`` holds the toggle times of slot ``s`` in increasing order,
* unused tail entries are padded with ``+inf`` (the paper's waveform
  memory works the same way: a terminator after the last transition),
* a separate ``(num_slots,)`` array holds the initial values.

The paper notes that overall GPU runtime is dominated by waveform memory;
:class:`PackedWaveforms` therefore tracks overflow so the engine can
re-run a net with a larger capacity instead of silently dropping
glitches.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import WaveformOverflowError
from repro.waveform.waveform import Waveform

__all__ = ["PackedWaveforms"]

INF = np.float64(np.inf)


class PackedWaveforms:
    """Fixed-capacity toggle-time storage for a plane of slots."""

    def __init__(self, num_slots: int, capacity: int,
                 initial: Optional[np.ndarray] = None) -> None:
        if num_slots < 1:
            raise ValueError("need at least one slot")
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.times = np.full((num_slots, capacity), INF, dtype=np.float64)
        if initial is None:
            self.initial = np.zeros(num_slots, dtype=np.uint8)
        else:
            initial = np.asarray(initial, dtype=np.uint8)
            if initial.shape != (num_slots,):
                raise ValueError(
                    f"initial values shape {initial.shape} != ({num_slots},)"
                )
            if np.any(initial > 1):
                raise ValueError("initial values must be 0/1")
            self.initial = initial.copy()
        self.overflow = np.zeros(num_slots, dtype=bool)

    # -- structure -------------------------------------------------------------

    @property
    def num_slots(self) -> int:
        return self.times.shape[0]

    @property
    def capacity(self) -> int:
        return self.times.shape[1]

    @property
    def nbytes(self) -> int:
        return self.times.nbytes + self.initial.nbytes + self.overflow.nbytes

    # -- conversions ------------------------------------------------------------

    @classmethod
    def from_waveforms(cls, waveforms: Sequence[Waveform],
                       capacity: Optional[int] = None) -> "PackedWaveforms":
        """Pack per-slot :class:`Waveform` objects into one array."""
        if not waveforms:
            raise ValueError("need at least one waveform")
        needed = max(w.num_transitions for w in waveforms)
        capacity = max(capacity or 0, needed, 1)
        packed = cls(
            num_slots=len(waveforms),
            capacity=capacity,
            initial=np.asarray([w.initial for w in waveforms], dtype=np.uint8),
        )
        for slot, waveform in enumerate(waveforms):
            count = waveform.num_transitions
            packed.times[slot, :count] = waveform.times
        return packed

    def to_waveform(self, slot: int) -> Waveform:
        """Unpack one slot (raises on overflowed slots)."""
        if self.overflow[slot]:
            raise WaveformOverflowError(
                f"slot {slot} overflowed capacity {self.capacity}"
            )
        row = self.times[slot]
        count = int(np.searchsorted(row, INF))
        return Waveform(initial=int(self.initial[slot]), times=row[:count].copy())

    def to_waveforms(self) -> List[Waveform]:
        return [self.to_waveform(slot) for slot in range(self.num_slots)]

    # -- bulk queries -------------------------------------------------------------

    def transition_counts(self) -> np.ndarray:
        """Number of toggles per slot (glitch-accurate switching activity)."""
        return np.sum(np.isfinite(self.times), axis=1).astype(np.int64)

    def final_values(self) -> np.ndarray:
        """Settled logic value per slot."""
        return (self.initial ^ (self.transition_counts() & 1).astype(np.uint8))

    def values_at(self, time: float) -> np.ndarray:
        """Logic value per slot at a given sample time."""
        counts = np.sum(self.times <= time, axis=1)
        return (self.initial ^ (counts & 1).astype(np.uint8))

    def latest_times(self) -> np.ndarray:
        """Last toggle time per slot; ``-inf`` where constant."""
        counts = self.transition_counts()
        result = np.full(self.num_slots, -np.inf, dtype=np.float64)
        nonzero = counts > 0
        result[nonzero] = self.times[nonzero, counts[nonzero] - 1]
        return result

    def grown(self, new_capacity: int) -> "PackedWaveforms":
        """A copy with larger capacity (overflow recovery)."""
        if new_capacity <= self.capacity:
            raise ValueError("new capacity must exceed the current one")
        bigger = PackedWaveforms(self.num_slots, new_capacity, self.initial)
        bigger.times[:, : self.capacity] = self.times
        bigger.overflow[:] = self.overflow
        return bigger

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PackedWaveforms({self.num_slots} slots x {self.capacity} cap, "
            f"{int(self.overflow.sum())} overflowed)"
        )
