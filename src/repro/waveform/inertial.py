"""Pulse filtering: transition cancellation and inertial delay.

Two physical effects bound which generated output transitions survive:

* **Cancellation** — pin-to-pin delays differ per pin and polarity, so a
  later input event can schedule an output toggle at or before the
  previously scheduled one.  The two toggles annihilate (the output
  never actually moved).  This keeps toggle sequences strictly
  increasing.
* **Inertial filtering** — a gate cannot propagate a pulse shorter than
  its inertial delay; such glitches are absorbed.  Following the paper,
  the inertial delay of a cell equals its propagation delay.

Both rules are implemented as a single left-to-right stack scan, the same
logic the simulation kernels apply incrementally while emitting output
transitions.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.waveform.waveform import Waveform

__all__ = ["cancel_monotonic", "filter_inertial"]


def cancel_monotonic(times: Sequence[float]) -> np.ndarray:
    """Annihilate out-of-order toggle pairs.

    ``times`` is the sequence of scheduled output toggle times in
    generation order (not necessarily increasing).  Whenever a toggle is
    scheduled at or before the previously surviving one, both cancel.
    The result is strictly increasing.
    """
    return filter_inertial(times, 0.0)


def filter_inertial(times: Sequence[float], min_width: float) -> np.ndarray:
    """Cancellation plus inertial pulse filtering in one pass.

    A toggle closer than ``min_width`` to the previous surviving toggle
    annihilates together with it (the pulse between them is too short to
    propagate).  ``min_width = 0`` gives pure cancellation.
    """
    if min_width < 0:
        raise ValueError("minimum pulse width must be non-negative")
    stack: List[float] = []
    for time in times:
        if stack and time - stack[-1] <= min_width:
            stack.pop()
        else:
            stack.append(float(time))
    return np.asarray(stack, dtype=np.float64)


def filter_waveform(waveform: Waveform, min_width: float) -> Waveform:
    """Apply inertial filtering to an existing waveform."""
    return Waveform(initial=waveform.initial,
                    times=filter_inertial(waveform.times, min_width))
