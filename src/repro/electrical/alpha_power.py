"""α-power-law MOSFET time constants (paper Eq. 1, ref. [16]).

Sakurai and Newton's α-power law models the drain saturation current of a
short-channel MOSFET as ``I_D ∝ (V_DD − V_th)^α`` with the velocity
saturation index ``α ∈ [1, 2]``.  The time needed to (dis)charge a load
through the transistor is then proportional to

    τ(V_DD) = K · V_DD / (V_DD − V_th)^α

which is the relation the paper quotes: the charge to move scales with
``V_DD`` while the available current scales with ``(V_DD − V_th)^α``.
This rational dependence on the supply voltage is what the polynomial
delay kernels of Sec. III must approximate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError

__all__ = ["AlphaPowerParams", "time_constant"]


@dataclass(frozen=True)
class AlphaPowerParams:
    """Parameters of one α-power-law time constant.

    Attributes
    ----------
    k:
        Proportionality constant in seconds; equals the time constant that
        the bare ``v/(v−vth)^α`` factor is scaled by.
    vth:
        Effective threshold voltage in volts.
    alpha:
        Velocity-saturation index, between 1 (fully velocity saturated)
        and 2 (long-channel square law).
    """

    k: float
    vth: float
    alpha: float

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ParameterError(f"alpha-power k must be positive, got {self.k}")
        if not 0.0 <= self.vth < 2.0:
            raise ParameterError(f"vth out of range: {self.vth}")
        if not 0.5 <= self.alpha <= 2.5:
            raise ParameterError(f"alpha out of range: {self.alpha}")

    def __call__(self, v):
        return time_constant(v, self)


def time_constant(v, params: AlphaPowerParams):
    """Evaluate ``τ(v) = k · v / (v − vth)^α``.

    Accepts scalars or NumPy arrays.  Voltages at or below the threshold
    have no meaningful saturation current; they raise
    :class:`~repro.errors.ParameterError` because a simulation requesting
    them indicates a mis-configured operating point, not a numerical
    corner to clamp silently.
    """
    v_arr = np.asarray(v, dtype=np.float64)
    overdrive = v_arr - params.vth
    if np.any(overdrive <= 0):
        raise ParameterError(
            f"supply voltage {np.min(v_arr):.3f} V is at or below the "
            f"effective threshold {params.vth:.3f} V"
        )
    tau = params.k * v_arr / np.power(overdrive, params.alpha)
    if np.isscalar(v) or np.ndim(v) == 0:
        return float(tau)
    return tau
