"""The "SPICE" front end: parameter sweeps producing delay sample grids.

:class:`AnalyticalSpice` plays the role of the commercial SPICE tool in
the paper's Fig. 1 step A: for a cell, input pin and transition polarity
it runs a transient-analysis *parameter sweep* over a finite grid of
operating points and returns the measured propagation delays as a
:class:`DelayGrid`.

The default sweep grid matches the paper's Sec. V setup exactly:
``V_DD ∈ [0.55 V, 1.1 V]`` in steps of 0.05 V (nominal 0.8 V) and output
loads ``C ∈ {2^i fF | i = −1 … 7}``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.cells.cell import Cell, CellPin, DrivePolarity
from repro.electrical.model import ElectricalModel, TransistorCorner
from repro.units import FF

__all__ = ["AnalyticalSpice", "DelayGrid", "PAPER_VOLTAGES", "PAPER_LOADS",
           "NOMINAL_VOLTAGE"]

#: The paper's regression sweep: 0.55 V … 1.10 V in 0.05 V steps.
PAPER_VOLTAGES: Tuple[float, ...] = tuple(
    round(0.55 + 0.05 * i, 2) for i in range(12)
)

#: The paper's output loads: 2^i fF for i = −1 … 7 (0.5 fF … 128 fF).
PAPER_LOADS: Tuple[float, ...] = tuple(2.0 ** i * FF for i in range(-1, 8))

#: Nominal supply voltage (paper Sec. V).
NOMINAL_VOLTAGE = 0.8


@dataclass(frozen=True)
class DelayGrid:
    """Sampled propagation delays over a (voltage × load) grid.

    Attributes
    ----------
    voltages:
        Strictly increasing supply voltages, shape ``(nv,)``.
    loads:
        Strictly increasing load capacitances, shape ``(nc,)``.
    delays:
        Propagation delays in seconds, shape ``(nv, nc)``;
        ``delays[i, j]`` is the delay at ``(voltages[i], loads[j])``.
    """

    voltages: np.ndarray
    loads: np.ndarray
    delays: np.ndarray

    def __post_init__(self) -> None:
        if self.delays.shape != (len(self.voltages), len(self.loads)):
            raise ValueError(
                f"delay grid shape {self.delays.shape} does not match "
                f"{len(self.voltages)} voltages x {len(self.loads)} loads"
            )
        if np.any(np.diff(self.voltages) <= 0) or np.any(np.diff(self.loads) <= 0):
            raise ValueError("grid axes must be strictly increasing")

    @property
    def shape(self) -> Tuple[int, int]:
        return self.delays.shape

    def delay_at(self, v: float, c: float) -> float:
        """Exact sample lookup; ``(v, c)`` must be grid points."""
        i = int(np.argmin(np.abs(self.voltages - v)))
        j = int(np.argmin(np.abs(self.loads - c)))
        if not np.isclose(self.voltages[i], v, rtol=1e-9, atol=0.0) or \
                not np.isclose(self.loads[j], c, rtol=1e-9, atol=0.0):
            raise KeyError(f"({v}, {c}) is not a grid point")
        return float(self.delays[i, j])

    def column(self, c: float) -> np.ndarray:
        """Delay-vs-voltage column for one load value."""
        j = int(np.argmin(np.abs(self.loads - c)))
        if not np.isclose(self.loads[j], c, rtol=1e-9, atol=0.0):
            raise KeyError(f"{c} is not a sampled load")
        return self.delays[:, j].copy()


class AnalyticalSpice:
    """Transient-analysis sweep driver over the analytical model.

    Parameters
    ----------
    corner:
        Process corner; defaults to the typical corner.
    """

    def __init__(self, corner: Optional[TransistorCorner] = None) -> None:
        self.model = ElectricalModel(corner or TransistorCorner())
        #: Number of transient analyses "run" so far (sweep bookkeeping,
        #: matches the paper's observation that a full sweep takes a few
        #: minutes per cell on real SPICE).
        self.transient_runs = 0
        #: Number of delay points evaluated so far.  The adaptive
        #: characterization flow budgets and reports against this counter
        #: (its whole point is doing fewer of these); it equals
        #: ``transient_runs`` because every transient analysis measures
        #: exactly one delay point.
        self.delay_evaluations = 0
        # Counters are guarded: characterize_library fans one spice out
        # across pool workers, and ``+=`` is not atomic.
        self._lock = threading.Lock()

    # -- single measurements ----------------------------------------------------

    def measure(self, cell: Cell, pin: CellPin, polarity: DrivePolarity,
                v: float, c: float) -> float:
        """One transient analysis: the pin-to-pin delay at ``(v, c)``."""
        return float(self.delays_at(cell, pin, polarity, [(v, c)])[0])

    def delays_at(self, cell: Cell, pin: CellPin, polarity: DrivePolarity,
                  points) -> np.ndarray:
        """Batched transient analyses at arbitrary operating points.

        ``points`` is an ``(m, 2)`` array-like of ``(v, c)`` pairs; the
        return value is the ``(m,)`` array of propagation delays.  One
        transient analysis is counted per point, so adaptive sampling
        cost is measured exactly.
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ValueError(
                f"points must have shape (m, 2), got {pts.shape}")
        with self._lock:
            self.transient_runs += pts.shape[0]
            self.delay_evaluations += pts.shape[0]
        return np.asarray(
            self.model.pin_delay(cell, pin, polarity, pts[:, 0], pts[:, 1]),
            dtype=np.float64,
        )

    # -- sweeps -----------------------------------------------------------------

    def sweep(self, cell: Cell, pin: CellPin, polarity: DrivePolarity,
              voltages: Sequence[float] = PAPER_VOLTAGES,
              loads: Sequence[float] = PAPER_LOADS) -> DelayGrid:
        """Parameter sweep over a (voltage × load) grid (Fig. 1 step A)."""
        v_arr = np.asarray(voltages, dtype=np.float64)
        c_arr = np.asarray(loads, dtype=np.float64)
        v_mesh, c_mesh = np.meshgrid(v_arr, c_arr, indexing="ij")
        delays = self.delays_at(
            cell, pin, polarity, np.column_stack([v_mesh.ravel(), c_mesh.ravel()])
        ).reshape(v_arr.size, c_arr.size)
        return DelayGrid(voltages=v_arr, loads=c_arr, delays=delays)

    def sweep_cell(self, cell: Cell,
                   voltages: Sequence[float] = PAPER_VOLTAGES,
                   loads: Sequence[float] = PAPER_LOADS):
        """Sweep every (pin, polarity) combination of a cell.

        Yields ``(pin, polarity, grid)`` tuples in pin order, rise first —
        the iteration order of the characterization flow.
        """
        for pin in sorted(cell.pins, key=lambda p: p.index):
            for polarity in (DrivePolarity.RISE, DrivePolarity.FALL):
                yield pin, polarity, self.sweep(cell, pin, polarity, voltages, loads)
