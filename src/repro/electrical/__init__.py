"""Analytical transistor-level delay modeling (the SPICE substitute).

The paper extracts pin-to-pin propagation delays from commercial SPICE
transient analyses of NanGate 15 nm cells.  Those decks are proprietary,
so this package provides :class:`~repro.electrical.spice.AnalyticalSpice`,
a drop-in "electrical simulator" built on the α-power-law MOSFET model the
paper itself cites (Sakurai & Newton, ref. [16]) combined with the
logical-effort delay decomposition (Eq. 2).  It produces smooth,
non-polynomial (rational) delay surfaces ``d(v, c)`` per cell, pin and
transition polarity — exactly the kind of data the regression pipeline of
Sec. III has to approximate.
"""

from repro.electrical.alpha_power import AlphaPowerParams, time_constant
from repro.electrical.model import ElectricalModel, TransistorCorner
from repro.electrical.spice import AnalyticalSpice, DelayGrid

__all__ = [
    "AlphaPowerParams",
    "time_constant",
    "ElectricalModel",
    "TransistorCorner",
    "AnalyticalSpice",
    "DelayGrid",
]
