"""Per-cell analytical pin-to-pin delay model.

The propagation delay of a cell output transition is decomposed following
the logical-effort formulation the paper quotes as Eq. 2,

    d = τ · (g·h + p),

with the two components given *separate* α-power-law time constants:

* the **load-driven** term ``τ_load(v) · g · h`` — charging the external
  load ``c`` through the switching transistor network (``h = c / c_in``
  is the electrical effort of the pin), and
* the **parasitic** term ``τ_par(v) · p`` — charging the cell's internal
  diffusion capacitance.

Using slightly different threshold voltages and α indices for the two
terms reflects reality (internal nodes see different effective drive than
the output rail) and makes the *relative* delay deviation
``d(v,c)/d(v_nom,c) − 1`` genuinely two-dimensional: how strongly a gate
slows down at low voltage depends on how load-dominated it is.  This is
the surface shape the paper's Fig. 5 shows.

A small voltage–load cross term models drive weakening for heavily loaded
gates near threshold, and an optional deterministic "measurement ripple"
emulates SPICE numerical noise so that regression errors have a realistic
floor instead of collapsing to machine precision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.cells.cell import Cell, CellPin, DrivePolarity
from repro.electrical.alpha_power import AlphaPowerParams
from repro.units import PS

__all__ = ["TransistorCorner", "ElectricalModel"]


@dataclass(frozen=True)
class TransistorCorner:
    """α-power parameters of the pull-up/pull-down networks of a process.

    One corner bundles the four time constants the model needs: the
    load-driven and parasitic constants for rising (PMOS pull-up) and
    falling (NMOS pull-down) output transitions.
    """

    name: str = "typical"
    rise_load: AlphaPowerParams = field(
        default_factory=lambda: AlphaPowerParams(k=1.05 * PS, vth=0.27, alpha=1.20)
    )
    fall_load: AlphaPowerParams = field(
        default_factory=lambda: AlphaPowerParams(k=0.97 * PS, vth=0.24, alpha=1.12)
    )
    rise_par: AlphaPowerParams = field(
        default_factory=lambda: AlphaPowerParams(k=0.62 * PS, vth=0.29, alpha=1.30)
    )
    fall_par: AlphaPowerParams = field(
        default_factory=lambda: AlphaPowerParams(k=0.58 * PS, vth=0.26, alpha=1.22)
    )
    #: Strength of the voltage–load cross term (dimensionless).
    coupling: float = 0.03
    #: Relative amplitude of the deterministic measurement ripple.
    noise: float = 0.0012

    def load_params(self, polarity: DrivePolarity) -> AlphaPowerParams:
        return self.rise_load if polarity is DrivePolarity.RISE else self.fall_load

    def parasitic_params(self, polarity: DrivePolarity) -> AlphaPowerParams:
        return self.rise_par if polarity is DrivePolarity.RISE else self.fall_par

    def scaled(self, name: str, k_factor: float, vth_shift: float) -> "TransistorCorner":
        """Derive a process corner by scaling drive and shifting V_th."""
        def adjust(params: AlphaPowerParams) -> AlphaPowerParams:
            return AlphaPowerParams(
                k=params.k * k_factor,
                vth=params.vth + vth_shift,
                alpha=params.alpha,
            )

        return TransistorCorner(
            name=name,
            rise_load=adjust(self.rise_load),
            fall_load=adjust(self.fall_load),
            rise_par=adjust(self.rise_par),
            fall_par=adjust(self.fall_par),
            coupling=self.coupling,
            noise=self.noise,
        )

    @classmethod
    def typical(cls) -> "TransistorCorner":
        """The TT corner (all defaults)."""
        return cls()

    @classmethod
    def slow(cls) -> "TransistorCorner":
        """SS corner: weaker drive, higher thresholds (worst-case timing)."""
        return cls().scaled("slow", k_factor=1.18, vth_shift=+0.03)

    @classmethod
    def fast(cls) -> "TransistorCorner":
        """FF corner: stronger drive, lower thresholds (best-case timing)."""
        return cls().scaled("fast", k_factor=0.86, vth_shift=-0.03)

    def at_temperature(self, celsius: float) -> "TransistorCorner":
        """Derate this corner to a junction temperature.

        Two standard, opposing effects (the temperature axis the paper's
        related work [17, 21] models alongside voltage):

        * carrier mobility degrades, ``k ∝ (T/T₀)^1.2`` — slower when
          hot at strong overdrive,
        * the threshold voltage drops ≈ 1.2 mV/K — *faster* when hot
          near threshold.

        Their competition produces the well-known temperature-inversion
        behaviour: at low supply voltages high temperature hurts much
        less (or even helps), which matters for near-threshold AVFS
        operating points.  Reference temperature is 25 °C.
        """
        if not -55.0 <= celsius <= 175.0:
            raise ValueError(f"junction temperature {celsius} °C out of range")
        t_ref = 298.15
        t = celsius + 273.15
        k_factor = (t / t_ref) ** 1.2
        vth_shift = -1.2e-3 * (t - t_ref)
        return self.scaled(f"{self.name}@{celsius:g}C", k_factor, vth_shift)


def _ripple(seed: int, v, c_norm):
    """Smooth deterministic pseudo-noise over the operating-point plane.

    A short sum of incommensurate sinusoids whose phases derive from
    ``seed``; continuous in (v, c) so interpolation behaves like it would
    on real, slightly noisy SPICE data.  Zero-mean, unit amplitude.
    """
    phase1 = (seed * 0.6180339887) % 1.0 * 2.0 * math.pi
    phase2 = (seed * 0.7548776662) % 1.0 * 2.0 * math.pi
    phase3 = (seed * 0.5698402910) % 1.0 * 2.0 * math.pi
    return (
        np.sin(23.0 * v + phase1)
        + np.sin(17.0 * c_norm + phase2)
        + np.sin(13.0 * v + 11.0 * c_norm + phase3)
    ) / 3.0


class ElectricalModel:
    """Analytical pin-to-pin delay evaluator for a process corner."""

    def __init__(self, corner: TransistorCorner = TransistorCorner()) -> None:
        self.corner = corner

    # -- main entry point -----------------------------------------------------

    def pin_delay(self, cell: Cell, pin: CellPin, polarity: DrivePolarity, v, c):
        """Propagation delay of ``cell`` from ``pin`` to the output.

        Parameters
        ----------
        polarity:
            Output transition polarity (:class:`DrivePolarity`).
        v, c:
            Supply voltage [V] and output load capacitance [F]; scalars or
            broadcastable NumPy arrays.

        Returns
        -------
        Delay in seconds, matching the broadcast shape of ``v`` and ``c``.
        """
        v_arr = np.asarray(v, dtype=np.float64)
        c_arr = np.asarray(c, dtype=np.float64)
        if np.any(c_arr <= 0):
            raise ValueError("load capacitance must be positive")

        tau_load = self.corner.load_params(polarity)(v_arr)
        tau_par = self.corner.parasitic_params(polarity)(v_arr)

        effort_h = c_arr / pin.input_cap
        load_term = tau_load * pin.effort * effort_h
        par_term = tau_par * cell.parasitic * pin.parasitic_weight

        # Voltage-load coupling: a heavily loaded gate loses proportionally
        # more drive when the rail drops below nominal (slew degradation).
        v_nom = 0.8
        coupling = 1.0 + self.corner.coupling * (v_nom / v_arr - 1.0) * np.log2(
            1.0 + effort_h
        ) / 8.0

        delay = (load_term + par_term) * coupling

        if self.corner.noise:
            seed = self._seed(cell, pin, polarity)
            c_norm = np.log2(c_arr / 1e-15)  # femtofarad exponent
            delay = delay * (1.0 + self.corner.noise * _ripple(seed, v_arr, c_norm))

        if np.ndim(v) == 0 and np.ndim(c) == 0:
            return float(delay)
        return delay

    def cell_delays(self, cell: Cell, v, c) -> Tuple[Tuple[float, float], ...]:
        """All pin-to-pin delays of a cell at a scalar operating point.

        Returns one ``(rise, fall)`` pair per input pin, in pin order —
        the structure an SDF ``IOPATH`` annotation stores.
        """
        result = []
        for pin in sorted(cell.pins, key=lambda p: p.index):
            rise = self.pin_delay(cell, pin, DrivePolarity.RISE, v, c)
            fall = self.pin_delay(cell, pin, DrivePolarity.FALL, v, c)
            result.append((rise, fall))
        return tuple(result)

    # -- internals -------------------------------------------------------------

    @staticmethod
    def _seed(cell: Cell, pin: CellPin, polarity: DrivePolarity) -> int:
        """Stable per-(cell, pin, polarity) seed for the noise ripple."""
        text = f"{cell.name}/{pin.name}/{polarity.name}"
        seed = 2166136261
        for char in text:
            seed = ((seed ^ ord(char)) * 16777619) & 0xFFFFFFFF
        return seed
