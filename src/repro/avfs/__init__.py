"""AVFS system layer: voltage–frequency management built on the simulator.

This is the application the paper enables: *large-scale design space
exploration of AVFS-based systems*.  The explorer sweeps operating
points through the parallel simulator; the controller turns the results
into voltage–frequency operating tables and runtime scaling decisions.
"""

from repro.avfs.scaling import VoltageFrequencyPoint, VoltageFrequencyTable
from repro.avfs.controller import AvfsController
from repro.avfs.explorer import DesignSpaceExplorer, OperatingPointResult
from repro.avfs.loop import (ClosedLoopRunner, DisturbanceModel, LoopConfig,
                             LoopReport, LoopStep, TemperatureDrift,
                             VoltageDroop)

__all__ = [
    "VoltageFrequencyPoint",
    "VoltageFrequencyTable",
    "AvfsController",
    "DesignSpaceExplorer",
    "OperatingPointResult",
    "ClosedLoopRunner",
    "DisturbanceModel",
    "LoopConfig",
    "LoopReport",
    "LoopStep",
    "TemperatureDrift",
    "VoltageDroop",
]
