"""Closed-loop AVFS scenario engine: simulate → measure → decide → repeat.

The runner closes the loop the paper's design-space exploration only
opens: instead of sweeping a static grid, it *plays* an AVFS system —
each iteration simulates the full pattern set at the currently commanded
(and disturbance-perturbed) supply, measures the latest transition
arrival and switching energy, and hands the measurement to the
:class:`~repro.avfs.controller.AvfsController`, whose
:meth:`~repro.avfs.controller.AvfsController.decide` policy walks the
regulator one characterized grid level up or down.  The trajectory of
``(voltage, frequency, slack, energy, violations)`` is the result.

Performance leans on the PR 5–8 stack end to end:

* the engine comes from the process-wide pool
  (:func:`~repro.simulation.pool.pooled_engine`), so level plans and
  waveform arenas stay warm across iterations and across an explorer
  characterization of the same circuit;
* every simulated operating point is captured as a
  :class:`~repro.simulation.delta.BaseArena`; when the trajectory
  revisits a (quantized) supply — which is every iteration once the loop
  settles — :func:`~repro.simulation.delta.select_delta` maps the new
  plane onto the cached base and the engine splices instead of
  simulating, bit-identical by construction;
* disturbances are applied so the splice stays legal: droop perturbs the
  *commanded* voltage (quantized to the regulator step, so disturbed
  supplies repeat exactly), drift scales the *measurement* (see
  :mod:`repro.avfs.loop.disturbance`).

Fault tolerance mirrors the campaign runner: each iteration crosses the
``loop.step`` fault seam and is checkpointed as one JSON step file under
a fingerprint-pinned manifest, so a crashed (or fault-injected) loop
resumes mid-trajectory.  Cached base arenas are deliberately *not*
persisted — a resumed loop re-warms its delta ring, trading a few full
iterations for a checkpoint format that stays small and
corruption-tolerant.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import time as _time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro import faults
from repro.analysis.activity import switching_activity
from repro.analysis.arrival import latest_arrivals
from repro.analysis.power import dynamic_power
from repro.avfs.controller import AvfsController
from repro.avfs.loop.disturbance import DisturbanceModel
from repro.avfs.loop.report import LoopReport, LoopStep
from repro.cells.library import CellLibrary
from repro.core.delay_kernel import DelayKernelTable
from repro.errors import CheckpointError, ParameterError
from repro.netlist.circuit import Circuit
from repro.runtime.fingerprint import (Fingerprinter, feed_compiled,
                                       feed_config, feed_kernel_table,
                                       feed_stimuli, feed_variation)
from repro.runtime.report import AttemptReport, ChunkReport, RunReport
from repro.simulation.base import (PatternPair, SimulationConfig,
                                   SimulationResult)
from repro.simulation.compiled import level_plan_cache_stats
from repro.simulation.delta import DeltaPlan, select_delta
from repro.simulation.gpu import GpuWaveSim
from repro.simulation.grid import SlotPlan
from repro.simulation.pool import engine_pool_stats, pooled_engine

__all__ = ["LoopConfig", "ClosedLoopRunner", "LOOP_MANIFEST_NAME"]

LOOP_MANIFEST_NAME = "loop_manifest.json"

#: Bumped whenever the step or manifest layout changes incompatibly.
LOOP_FORMAT_VERSION = 1


@dataclass(frozen=True)
class LoopConfig:
    """Policy knobs of one closed-loop run.

    Attributes
    ----------
    period:
        Clock period the system must meet (seconds).
    max_iterations:
        Iteration budget; the loop stops here even without convergence.
    settle_iterations:
        Consecutive stable, violation-free iterations (controller
        commands the same supply it measured at) that count as
        convergence.  Set it above ``max_iterations`` to force a
        full-length trajectory (benchmarks do).
    initial_voltage:
        First commanded supply; defaults to the table's top point.
    use_delta:
        Splice cached base arenas when the trajectory revisits an
        operating point (bit-identical; off = always simulate fully).
    delta_threshold:
        Changed-fraction ceiling passed to
        :func:`~repro.simulation.delta.select_delta`.
    max_bases:
        Base arenas retained, one per distinct visited supply (LRU).
    regulator_step:
        Supply quantization (volts): disturbed voltages snap to this
        grid, like a real regulator's discrete levels — and exactly
        repeating levels are what makes delta reuse possible.
    record_energy:
        Record all nets and account per-iteration switching energy
        (needed by activity-coupled droop models).
    """

    period: float
    max_iterations: int = 20
    settle_iterations: int = 3
    initial_voltage: Optional[float] = None
    use_delta: bool = True
    delta_threshold: float = 0.45
    max_bases: int = 4
    regulator_step: float = 0.005
    record_energy: bool = True

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ParameterError("clock period must be positive")
        if self.max_iterations < 1:
            raise ParameterError("need at least one iteration")
        if self.settle_iterations < 1:
            raise ParameterError("settle_iterations must be >= 1")
        if not 0.0 < self.delta_threshold <= 1.0:
            raise ParameterError("delta threshold must be in (0, 1]")
        if self.max_bases < 1:
            raise ParameterError("max_bases must be >= 1")
        if self.regulator_step <= 0:
            raise ParameterError("regulator step must be positive")


class ClosedLoopRunner:
    """Drive an :class:`AvfsController` against the simulator in a loop.

    Parameters
    ----------
    controller:
        The decision policy; its table also supplies the vth-floor /
        boost-cap clamps every disturbed operating point passes through.
    disturbances:
        :class:`~repro.avfs.loop.disturbance.DisturbanceModel` instances
        applied every iteration.
    variation:
        Optional Monte-Carlo model.  A
        :class:`~repro.simulation.variation.StateDependentVariation` is
        bound to each iteration's slot plane automatically (per-pattern
        sigma scales with the iteration's supply); the per-die noise
        stays keyed on the fixed global slot index, so delta splicing
        stays bit-identical.
    simulator:
        Explicit engine; default is the shared pooled engine for
        (circuit, config) — the same instance a
        :class:`~repro.avfs.explorer.DesignSpaceExplorer` of this
        circuit uses.
    service:
        A running :class:`~repro.service.SimulationService`; iterations
        are then submitted as service jobs (the service's own delta ring
        and result cache replace the local one) and the loop report
        carries a service-metrics snapshot.
    checkpoint_dir:
        Trajectory checkpoint directory (resumable); ``None`` disables
        checkpointing.
    backend:
        Compute-backend override for the loop's engine (``None`` defers
        to ``REPRO_BACKEND`` / auto-detection); ignored when an explicit
        ``simulator`` or ``service`` is supplied.
    """

    def __init__(
        self,
        circuit: Circuit,
        library: CellLibrary,
        kernel_table: DelayKernelTable,
        controller: AvfsController,
        config: LoopConfig,
        disturbances: Sequence[DisturbanceModel] = (),
        variation=None,
        simulator: Optional[GpuWaveSim] = None,
        service=None,
        checkpoint_dir=None,
        backend: Optional[str] = None,
    ) -> None:
        self.circuit = circuit
        self.library = library
        self.kernel_table = kernel_table
        self.controller = controller
        self.config = config
        self.disturbances = list(disturbances)
        self.variation = variation
        self.service = service
        self.checkpoint_dir = (Path(checkpoint_dir)
                               if checkpoint_dir is not None else None)

        self.sim_config = SimulationConfig(
            record_all_nets=config.record_energy, backend=backend)
        self._pool_hits_pending = 0
        if service is not None:
            self.simulator = None
            self._circuit_key = service.register_circuit(circuit, library)
            self._compiled = service.circuit(self._circuit_key)
        else:
            if simulator is None:
                pool_before = engine_pool_stats()["hits"]
                simulator = pooled_engine(circuit, library,
                                          config=self.sim_config)
                self._pool_hits_pending = (engine_pool_stats()["hits"]
                                           - pool_before)
            self.simulator = simulator
            self._compiled = simulator.compiled
        self._loads = (circuit.net_loads(library)
                       if config.record_energy else None)
        # Base-arena ring keyed by quantized supply — stimuli never
        # change across iterations, so one base per voltage is complete.
        self._bases: "OrderedDict[float, object]" = OrderedDict()
        # Measurement memo keyed the same way: a fully spliced iteration
        # is bit-identical to the base it spliced from, so its arrival /
        # activity extraction (python-side, all nets) is too — reuse it.
        self._measurements: dict = {}

    # -- voltage helpers ------------------------------------------------------

    def _quantize(self, voltage: float) -> float:
        step = self.config.regulator_step
        return round(round(voltage / step) * step, 9)

    def _effective_voltage(self, commanded: float, iteration: int,
                           activity: Optional[float]) -> float:
        offset = sum(d.voltage_offset(iteration, activity)
                     for d in self.disturbances)
        table = self.controller.table
        return self._quantize(table.clamp_voltage(commanded + offset))

    def _drift_scale(self, iteration: int) -> float:
        scale = 1.0
        for model in self.disturbances:
            scale *= model.delay_scale(iteration)
        return scale

    # -- simulation -----------------------------------------------------------

    def _bound_variation(self, plan: SlotPlan, global_slots: np.ndarray):
        variation = self.variation
        if variation is None:
            return None
        bound = getattr(variation, "bound", None)
        if bound is None:
            return variation
        return bound(plan.voltages, global_slots)

    def _simulate(self, pairs: Sequence[PatternPair], plan: SlotPlan,
                  voltage: float, global_slots: np.ndarray,
                  v1: np.ndarray, v2: np.ndarray):
        """One iteration's engine (or service) run.

        Returns ``(result, delta_used)``.
        """
        variation = self._bound_variation(plan, global_slots)
        if self.service is not None:
            handle = self.service.submit(
                self._circuit_key, pairs, plan=plan, config=self.sim_config,
                kernel_table=self.kernel_table, variation=variation)
            result = handle.result()
            stats = None
            spliced = getattr(result, "lanes_spliced", 0)
            return result, stats, bool(spliced)

        delta = None
        if self.config.use_delta:
            base = self._bases.get(voltage)
            if base is not None:
                # Exact revisit: stimuli and slot order never change
                # within a run, so the base captured at this supply maps
                # slot-for-slot with zero changed inputs — build the
                # full-splice plan directly instead of paying the
                # select_delta stimulus diff every settled iteration.
                self._bases.move_to_end(voltage)
                delta = DeltaPlan(
                    base, np.arange(plan.num_slots, dtype=np.int64),
                    np.zeros((plan.num_slots, v1.shape[1]), dtype=bool))
            elif self._bases:
                picked = select_delta(
                    list(self._bases.values()), v1, v2,
                    plan.pattern_indices, plan.voltages, global_slots,
                    variation, self.config.delta_threshold)
                if picked is not None:
                    delta = picked[0]
        capture = self.config.use_delta and voltage not in self._bases
        result = self.simulator.run(
            pairs, plan=plan, kernel_table=self.kernel_table,
            variation=variation, global_slots=global_slots,
            delta=delta, capture_base=capture)
        if capture and result.base_arena is not None:
            self._bases[voltage] = result.base_arena
            self._bases.move_to_end(voltage)
            while len(self._bases) > self.config.max_bases:
                self._bases.popitem(last=False)
        return result, self.simulator.last_stats, delta is not None

    # -- checkpointing --------------------------------------------------------

    def _fingerprint(self, pairs: Sequence[PatternPair]) -> str:
        fp = Fingerprinter()
        feed_compiled(fp, self._compiled)
        feed_stimuli(fp, pairs)
        feed_config(fp, self.sim_config)
        feed_kernel_table(fp, self.kernel_table)
        feed_variation(fp, self.variation)
        table = self.controller.table
        fp.feed_json("loop", {
            "period": self.config.period,
            "max_iterations": self.config.max_iterations,
            "settle_iterations": self.config.settle_iterations,
            "initial_voltage": self.config.initial_voltage,
            "regulator_step": self.config.regulator_step,
            "record_energy": self.config.record_energy,
            "aging_derate": self.controller.aging_derate,
            "table": [[p.voltage, p.critical_delay, p.guardband]
                      for p in table],
            "vth_floor": table.vth_floor,
            "boost_cap": table.boost_cap,
            "nominal_voltage": table.nominal_voltage,
            "disturbances": [d.describe() for d in self.disturbances],
        })
        return fp.hexdigest()

    def _step_path(self, iteration: int) -> Path:
        return self.checkpoint_dir / f"step_{iteration:05d}.json"

    def _atomic_write(self, path: Path, payload: bytes) -> None:
        handle, temp_name = tempfile.mkstemp(
            dir=str(self.checkpoint_dir), prefix=".step.", suffix=".tmp")
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(payload)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def _load_checkpoint(self, fingerprint: str) -> List[LoopStep]:
        """Restore the completed trajectory prefix (may be empty)."""
        store = self.checkpoint_dir
        manifest_path = store / LOOP_MANIFEST_NAME
        if not manifest_path.exists():
            store.mkdir(parents=True, exist_ok=True)
            self._atomic_write(manifest_path, json.dumps({
                "format_version": LOOP_FORMAT_VERSION,
                "fingerprint": fingerprint,
                "circuit": self.circuit.name,
            }, indent=2).encode("utf-8"))
            return []
        try:
            with open(manifest_path, "r", encoding="utf-8") as stream:
                manifest = json.load(stream)
        except (OSError, ValueError) as error:
            raise CheckpointError(
                f"unreadable loop manifest {manifest_path}: {error}"
            ) from error
        if manifest.get("format_version") != LOOP_FORMAT_VERSION:
            raise CheckpointError(
                f"loop manifest {manifest_path} has format version "
                f"{manifest.get('format_version')!r}, expected "
                f"{LOOP_FORMAT_VERSION}")
        if manifest.get("fingerprint") != fingerprint:
            raise CheckpointError(
                f"checkpoint directory {store} belongs to a different "
                "closed-loop campaign (fingerprint mismatch) — refusing "
                "to resume")
        steps: List[LoopStep] = []
        # A contiguous prefix only: a gap means a later step file was
        # lost, and the loop state past the gap cannot be trusted.
        for iteration in range(self.config.max_iterations):
            path = self._step_path(iteration)
            if not path.exists():
                break
            try:
                with open(path, "r", encoding="utf-8") as stream:
                    payload = json.load(stream)
                steps.append(LoopStep.from_dict(payload,
                                                from_checkpoint=True))
            except (OSError, ValueError, KeyError):
                # Corrupt step: drop it and everything after — those
                # iterations re-execute (degrade to recomputation, never
                # to a wrong trajectory).
                try:
                    os.unlink(path)
                except OSError:
                    pass
                break
        return steps

    def _save_step(self, step: LoopStep) -> None:
        if self.checkpoint_dir is None:
            return
        self._atomic_write(
            self._step_path(step.iteration),
            json.dumps(step.to_dict(), indent=2).encode("utf-8"))

    # -- the loop -------------------------------------------------------------

    def run(self, pairs: Sequence[PatternPair]) -> LoopReport:
        """Play the closed loop over ``pairs``; returns the trajectory."""
        pairs = list(pairs)
        if not pairs:
            raise ParameterError("need at least one pattern pair")
        table = self.controller.table
        space = self.kernel_table.space
        for point in table:
            if not space.v_min <= point.voltage <= space.v_max:
                raise ParameterError(
                    f"table point {point.voltage} V outside characterized "
                    f"kernel space [{space.v_min}, {space.v_max}]")

        started = _time.perf_counter()
        v1 = np.stack([p.v1 for p in pairs])
        v2 = np.stack([p.v2 for p in pairs])
        # One die trajectory stepping through time: the global slot of a
        # pattern is fixed across iterations, so Monte-Carlo factors —
        # and with them delta eligibility — repeat whenever a supply
        # level repeats.
        global_slots = np.arange(len(pairs), dtype=np.int64)

        voltage = self._quantize(table.clamp_voltage(
            self.config.initial_voltage
            if self.config.initial_voltage is not None
            else table.points[-1].voltage))

        steps: List[LoopStep] = []
        resumed = False
        if self.checkpoint_dir is not None:
            steps = self._load_checkpoint(self._fingerprint(pairs))
            resumed = bool(steps)
            if steps:
                voltage = self._quantize(
                    table.clamp_voltage(steps[-1].next_voltage))

        activity_per_pattern = (steps[-1].activity_per_pattern
                                if steps else None)
        settled, converged_at = self._replay_convergence(steps)

        chunks: List[ChunkReport] = [
            ChunkReport(index=s.iteration, num_slots=len(pairs),
                        from_checkpoint=True) for s in steps]
        plans_before = level_plan_cache_stats()
        pool_hits_before = engine_pool_stats()["hits"]
        gate_evaluations = lanes_skipped = lanes_spliced = 0
        phase_totals: dict = {}
        backend = ""

        for iteration in range(len(steps), self.config.max_iterations):
            if converged_at is not None:
                break
            faults.trip("loop.step")
            step_start = _time.perf_counter()
            v_eff = self._effective_voltage(voltage, iteration,
                                            activity_per_pattern)
            drift = self._drift_scale(iteration)
            plan = SlotPlan.uniform(len(pairs), v_eff)
            result, stats, delta_used = self._simulate(
                pairs, plan, v_eff, global_slots, v1, v2)

            # A fully spliced iteration reproduced the cached base
            # bit-for-bit (same stimuli, same supply, same Monte-Carlo
            # slots), so the arrival / activity extraction — a python
            # walk over every recorded waveform — is reproduced too.
            # Reuse the measurement instead of re-deriving it.
            full_splice = (stats is not None and delta_used
                           and int(stats.gate_evaluations) == 0)
            memo = self._measurements.get(v_eff) if full_splice else None
            if memo is None:
                arrivals = latest_arrivals(result, self.circuit, plan=plan)
                raw_arrival = arrivals.at(v_eff)
                if not math.isfinite(raw_arrival):
                    raw_arrival = 0.0
                energy = None
                if self.config.record_energy:
                    activity = switching_activity(result)
                    power = dynamic_power(activity, self._loads, v_eff,
                                          frequency=1.0 / self.config.period)
                    energy = power.energy_per_pattern
                    activity_per_pattern = (activity.total_toggles
                                            / activity.num_slots)
                self._measurements[v_eff] = (raw_arrival, energy,
                                             activity_per_pattern)
            else:
                raw_arrival, energy, activity_per_pattern = memo
            measured = raw_arrival * drift

            guardband = table.points[0].guardband
            slack = self.config.period - measured * (1.0 + guardband)
            violation = slack < 0
            # Decide from the *commanded* set-point: the measurement
            # already carries the disturbance, and stepping relative to
            # the drooped supply would re-command the level the droop
            # just invalidated (a persistent-violation livelock).
            next_voltage = self._quantize(self.controller.decide(
                voltage, measured, self.config.period))
            seconds = _time.perf_counter() - step_start

            step = LoopStep(
                iteration=iteration,
                commanded_voltage=voltage,
                effective_voltage=v_eff,
                frequency=table.clamp_frequency(1.0 / self.config.period),
                measured_arrival=measured,
                raw_arrival=raw_arrival,
                slack=slack,
                violation=violation,
                next_voltage=next_voltage,
                energy_per_pattern=energy,
                activity_per_pattern=activity_per_pattern,
                delta_used=delta_used,
                lanes_spliced=int(stats.lanes_spliced) if stats else 0,
                gate_evaluations=(int(stats.gate_evaluations)
                                  if stats else 0),
                seconds=seconds,
            )
            self._save_step(step)
            steps.append(step)

            engine_label = getattr(result, "engine", "service")
            chunks.append(ChunkReport(
                index=iteration, num_slots=plan.num_slots,
                attempts=[AttemptReport(
                    engine=engine_label,
                    waveform_capacity=(self.simulator.config
                                       .waveform_capacity
                                       if self.simulator else 0),
                    memory_budget=(self.simulator.memory_budget
                                   if self.simulator else 0),
                    seconds=seconds)]))
            if stats:
                gate_evaluations += int(stats.gate_evaluations)
                lanes_skipped += int(stats.lanes_skipped)
                lanes_spliced += int(stats.lanes_spliced)
                for name, value in stats.phase_seconds().items():
                    phase_totals[name] = phase_totals.get(name, 0) + value
            if self.simulator is not None:
                backend = self.simulator.backend.name

            settled, converged_at = self._advance_convergence(
                settled, converged_at, step)
            voltage = next_voltage

        wall = _time.perf_counter() - started
        plans_after = level_plan_cache_stats()
        run_report = RunReport(
            circuit_name=self.circuit.name,
            num_slots=len(pairs) * len(steps),
            chunk_slots=len(pairs),
            chunks=chunks,
            wall_seconds=wall,
            resumed=resumed,
            backend=backend,
            gate_evaluations=gate_evaluations,
            lanes_skipped=lanes_skipped,
            lanes_spliced=lanes_spliced,
            plan_cache_hits=(plans_after["hits"] - plans_before["hits"]
                             + engine_pool_stats()["hits"]
                             - pool_hits_before + self._pool_hits_pending),
            plan_cache_misses=(plans_after["misses"]
                               - plans_before["misses"]),
            phase_seconds=phase_totals,
        )
        self._pool_hits_pending = 0
        return LoopReport(
            circuit_name=self.circuit.name,
            period=self.config.period,
            steps=steps,
            converged_at=converged_at,
            resumed=resumed,
            wall_seconds=wall,
            backend=backend,
            run_report=run_report,
            service_metrics=(self.service.metrics().to_dict()
                             if self.service is not None else None),
        )

    # -- convergence ----------------------------------------------------------

    def _advance_convergence(self, settled: int, converged_at: Optional[int],
                             step: LoopStep):
        """Fold one step into the (settled counter, converged-at) state."""
        if converged_at is not None:
            return settled, converged_at
        stable = (not step.violation
                  and abs(step.next_voltage - step.commanded_voltage) < 1e-9)
        settled = settled + 1 if stable else 0
        if settled >= self.config.settle_iterations:
            converged_at = step.iteration
        return settled, converged_at

    def _replay_convergence(self, steps: Sequence[LoopStep]):
        """Recompute convergence state from a restored prefix."""
        settled, converged_at = 0, None
        for step in steps:
            settled, converged_at = self._advance_convergence(
                settled, converged_at, step)
        return settled, converged_at
