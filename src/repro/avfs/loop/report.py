"""Trajectory record of one closed-loop AVFS run.

Every iteration of :class:`repro.avfs.loop.ClosedLoopRunner` appends one
:class:`LoopStep` — the operating point that was simulated, what the
measurement said, what it cost in energy and engine work, and what the
controller commanded next.  The finished (or aborted) trajectory is a
:class:`LoopReport`, which also carries the aggregated
:class:`~repro.runtime.report.RunReport` of the underlying engine runs
so the loop's plan-cache and delta accounting lands in the same
structure every other driver uses.

Steps serialize to/from plain JSON dicts — that is the checkpoint format
of the runner's resumable trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.runtime.report import RunReport

__all__ = ["LoopStep", "LoopReport"]


@dataclass(frozen=True)
class LoopStep:
    """One closed-loop iteration.

    Attributes
    ----------
    iteration:
        0-based loop index.
    commanded_voltage:
        Supply the controller asked for (a table grid point).
    effective_voltage:
        Supply actually simulated after disturbances and regulator
        quantization.
    measured_arrival:
        Latest transition arrival the controller saw — simulated arrival
        at the effective voltage times the drift scale (seconds).
    raw_arrival:
        Undrifted simulated arrival (seconds).
    slack:
        ``period − guardbanded measured arrival`` (seconds; negative on
        a timing violation).
    violation:
        True when the guardbanded arrival misses the clock period.
    next_voltage:
        Supply the controller commanded for the next iteration.
    energy_per_pattern:
        Mean dynamic switching energy per pattern (joules); ``None``
        when the loop does not record activity.
    activity_per_pattern:
        Mean toggles per pattern — the droop models' load signal;
        ``None`` without activity recording.
    delta_used:
        True when this iteration spliced from a cached base arena
        instead of simulating the full plane.
    lanes_spliced / gate_evaluations:
        Engine lane accounting for the iteration.
    seconds:
        Wall time of the iteration's simulate+measure step.
    from_checkpoint:
        True when the step was restored from a trajectory checkpoint
        rather than executed in this run.
    """

    iteration: int
    commanded_voltage: float
    effective_voltage: float
    frequency: float
    measured_arrival: float
    raw_arrival: float
    slack: float
    violation: bool
    next_voltage: float
    energy_per_pattern: Optional[float] = None
    activity_per_pattern: Optional[float] = None
    delta_used: bool = False
    lanes_spliced: int = 0
    gate_evaluations: int = 0
    seconds: float = 0.0
    from_checkpoint: bool = False

    def to_dict(self) -> dict:
        return {
            "iteration": self.iteration,
            "commanded_voltage": self.commanded_voltage,
            "effective_voltage": self.effective_voltage,
            "frequency": self.frequency,
            "measured_arrival": self.measured_arrival,
            "raw_arrival": self.raw_arrival,
            "slack": self.slack,
            "violation": self.violation,
            "next_voltage": self.next_voltage,
            "energy_per_pattern": self.energy_per_pattern,
            "activity_per_pattern": self.activity_per_pattern,
            "delta_used": self.delta_used,
            "lanes_spliced": self.lanes_spliced,
            "gate_evaluations": self.gate_evaluations,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, payload: dict,
                  from_checkpoint: bool = False) -> "LoopStep":
        return cls(
            iteration=int(payload["iteration"]),
            commanded_voltage=float(payload["commanded_voltage"]),
            effective_voltage=float(payload["effective_voltage"]),
            frequency=float(payload["frequency"]),
            measured_arrival=float(payload["measured_arrival"]),
            raw_arrival=float(payload["raw_arrival"]),
            slack=float(payload["slack"]),
            violation=bool(payload["violation"]),
            next_voltage=float(payload["next_voltage"]),
            energy_per_pattern=payload.get("energy_per_pattern"),
            activity_per_pattern=payload.get("activity_per_pattern"),
            delta_used=bool(payload.get("delta_used", False)),
            lanes_spliced=int(payload.get("lanes_spliced", 0)),
            gate_evaluations=int(payload.get("gate_evaluations", 0)),
            seconds=float(payload.get("seconds", 0.0)),
            from_checkpoint=from_checkpoint,
        )


@dataclass
class LoopReport:
    """A closed-loop AVFS trajectory plus its engine accounting."""

    circuit_name: str
    period: float
    steps: List[LoopStep] = field(default_factory=list)
    #: Iteration at which the loop settled (``settle_iterations``
    #: consecutive stable, violation-free steps); ``None`` if it never
    #: converged within the iteration budget.
    converged_at: Optional[int] = None
    resumed: bool = False
    wall_seconds: float = 0.0
    backend: str = ""
    #: Aggregated engine accounting across every executed iteration.
    run_report: Optional[RunReport] = None
    #: Service metrics snapshot dict (service-backed mode only).
    service_metrics: Optional[dict] = None

    @property
    def num_iterations(self) -> int:
        return len(self.steps)

    @property
    def final_voltage(self) -> Optional[float]:
        return self.steps[-1].next_voltage if self.steps else None

    @property
    def violations(self) -> int:
        return sum(1 for s in self.steps if s.violation)

    @property
    def total_energy(self) -> Optional[float]:
        energies = [s.energy_per_pattern for s in self.steps
                    if s.energy_per_pattern is not None]
        return sum(energies) if energies else None

    @property
    def delta_reuse_fraction(self) -> float:
        """Share of all engine lanes served by splicing cached bases."""
        spliced = sum(s.lanes_spliced for s in self.steps)
        evaluated = sum(s.gate_evaluations for s in self.steps)
        total = spliced + evaluated
        return spliced / total if total else 0.0

    @property
    def delta_iterations(self) -> int:
        return sum(1 for s in self.steps if s.delta_used)

    def to_dict(self) -> dict:
        return {
            "circuit_name": self.circuit_name,
            "period": self.period,
            "num_iterations": self.num_iterations,
            "converged_at": self.converged_at,
            "final_voltage": self.final_voltage,
            "violations": self.violations,
            "total_energy": self.total_energy,
            "delta_reuse_fraction": self.delta_reuse_fraction,
            "delta_iterations": self.delta_iterations,
            "resumed": self.resumed,
            "wall_seconds": self.wall_seconds,
            "backend": self.backend,
            "steps": [s.to_dict() for s in self.steps],
            "run_report": (self.run_report.to_dict()
                           if self.run_report is not None else None),
            "service_metrics": self.service_metrics,
        }

    def summary(self) -> str:
        """Human-readable trajectory digest for the CLI."""
        lines = [
            f"closed loop {self.circuit_name}: {self.num_iterations} "
            f"iterations at period {self.period*1e9:.3f}ns"
            + (" (resumed)" if self.resumed else ""),
        ]
        if self.converged_at is not None:
            lines.append(f"  converged at iteration {self.converged_at}, "
                         f"final supply {self.final_voltage:.3f} V")
        elif self.steps:
            lines.append(f"  not converged, last commanded supply "
                         f"{self.final_voltage:.3f} V")
        lines.append(f"  violations {self.violations}, delta iterations "
                     f"{self.delta_iterations}, delta reuse "
                     f"{self.delta_reuse_fraction:.3f}")
        if self.total_energy is not None:
            lines.append(f"  energy {self.total_energy*1e12:.3f} pJ/pattern "
                         "summed over trajectory")
        lines.append(f"  wall time {self.wall_seconds:.3f}s"
                     + (f", backend {self.backend}" if self.backend else ""))
        for step in self.steps:
            mark = "!" if step.violation else (
                "~" if step.delta_used else " ")
            lines.append(
                f"  {mark} it{step.iteration:3d}: cmd {step.commanded_voltage:.3f} V"
                f" eff {step.effective_voltage:.3f} V"
                f" arrival {step.measured_arrival*1e9:.3f}ns"
                f" slack {step.slack*1e9:+.3f}ns"
                f" -> {step.next_voltage:.3f} V")
        return "\n".join(lines)
