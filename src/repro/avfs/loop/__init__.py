"""Closed-loop AVFS scenario engine.

Where :class:`~repro.avfs.explorer.DesignSpaceExplorer` sweeps a static
operating grid, this package *plays* an AVFS system against the
simulator: :class:`ClosedLoopRunner` iterates simulate → measure →
:meth:`~repro.avfs.controller.AvfsController.decide` → re-simulate under
pluggable supply/thermal disturbances
(:mod:`~repro.avfs.loop.disturbance`), with per-iteration energy
accounting and a resumable, fault-seamed trajectory checkpoint.  See
``docs/architecture.md`` §13 for the dataflow.
"""

from repro.avfs.loop.disturbance import (DisturbanceModel,
                                         TemperatureDrift, VoltageDroop)
from repro.avfs.loop.report import LoopReport, LoopStep
from repro.avfs.loop.runner import (ClosedLoopRunner, LoopConfig,
                                    LOOP_MANIFEST_NAME)

__all__ = [
    "ClosedLoopRunner",
    "DisturbanceModel",
    "LOOP_MANIFEST_NAME",
    "LoopConfig",
    "LoopReport",
    "LoopStep",
    "TemperatureDrift",
    "VoltageDroop",
]
