"""Disturbance models for the closed AVFS loop.

A real AVFS system never sees the clean characterized operating point:
the supply droops under switching load and delays drift with die
temperature.  The closed-loop runner threads a set of
:class:`DisturbanceModel` instances through every iteration; each model
contributes

* a **voltage offset** (volts, usually negative) added to the commanded
  supply before simulation — the supply the silicon actually sees, and
* a **delay scale** (unitless, usually >= 1) applied to the *measured*
  latest arrival before the controller decides.

The split is deliberate.  Droop changes the simulated operating point
(the engine evaluates delay kernels at the disturbed voltage), while
drift multiplies the measurement instead of perturbing per-gate delays:
the simulated waveforms at a given (voltage, stimuli, variation) triple
stay bit-identical across iterations, which is what lets the runner
splice cached base arenas when the trajectory revisits an operating
point.  A drift model that re-scaled delays inside the engine would
invalidate every cached base each iteration and with it the whole
incremental re-simulation path.

Determinism: any randomness is drawn from ``(seed, iteration)`` streams,
so a trajectory replays exactly under a fixed seed — the property the
checkpoint/resume tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ParameterError

__all__ = ["DisturbanceModel", "VoltageDroop", "TemperatureDrift"]


class DisturbanceModel:
    """Base class: a disturbance that perturbs the loop's plant.

    Subclasses override one (or both) hooks; the defaults are the
    identity disturbance.
    """

    def voltage_offset(self, iteration: int,
                       activity_per_pattern: Optional[float]) -> float:
        """Supply offset (volts) for this iteration.

        ``activity_per_pattern`` is the mean toggles-per-pattern observed
        in the *previous* iteration (``None`` on the first, or when the
        loop does not record activity).
        """
        return 0.0

    def delay_scale(self, iteration: int) -> float:
        """Multiplier applied to the measured latest arrival."""
        return 1.0

    def describe(self) -> dict:
        """JSON-serializable identity, fed into the loop fingerprint."""
        return {"kind": type(self).__name__}


@dataclass(frozen=True)
class VoltageDroop(DisturbanceModel):
    """Activity-correlated supply droop (IR drop).

    The droop is proportional to the previous iteration's switching
    activity — a busy circuit pulls the rail down harder::

        offset = -coupling * (activity / reference_activity) - jitter

    Attributes
    ----------
    coupling:
        Droop in volts at ``reference_activity`` toggles per pattern.
    reference_activity:
        Activity level that produces exactly ``coupling`` volts of
        droop.  When the loop has no activity measurement yet (first
        iteration, or energy recording off) the model assumes the
        reference level, i.e. a constant ``coupling`` droop.
    jitter:
        Sigma of an additional random droop component (volts); drawn
        half-normal (droop only deepens) from the ``(seed, iteration)``
        stream, so it is reproducible and checkpoint-safe.
    seed:
        Base seed for the jitter stream.
    """

    coupling: float
    reference_activity: float = 1.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.coupling < 0:
            raise ParameterError("droop coupling must be non-negative")
        if self.reference_activity <= 0:
            raise ParameterError("reference activity must be positive")
        if self.jitter < 0:
            raise ParameterError("droop jitter must be non-negative")

    def voltage_offset(self, iteration: int,
                       activity_per_pattern: Optional[float]) -> float:
        level = (activity_per_pattern / self.reference_activity
                 if activity_per_pattern is not None else 1.0)
        offset = -self.coupling * level
        if self.jitter > 0:
            rng = np.random.default_rng([self.seed, iteration])
            offset -= abs(float(rng.normal(0.0, self.jitter)))
        return offset

    def describe(self) -> dict:
        return {
            "kind": "VoltageDroop",
            "coupling": self.coupling,
            "reference_activity": self.reference_activity,
            "jitter": self.jitter,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class TemperatureDrift(DisturbanceModel):
    """Slow thermal delay drift: the die heats up as the loop runs.

    The measured arrival is scaled by ``1 + rate * iteration`` capped at
    ``1 + max_drift`` — a linear warm-up ramp into thermal steady state.
    Applied to the measurement (not the simulated delays) so cached base
    arenas stay valid; see the module docstring.

    Attributes
    ----------
    rate:
        Relative delay increase per iteration (e.g. ``0.01`` = +1%/iter).
    max_drift:
        Saturation ceiling for the total relative increase.
    """

    rate: float
    max_drift: float = 0.10

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ParameterError("drift rate must be non-negative")
        if self.max_drift < 0:
            raise ParameterError("max drift must be non-negative")

    def delay_scale(self, iteration: int) -> float:
        return 1.0 + min(self.rate * iteration, self.max_drift)

    def describe(self) -> dict:
        return {
            "kind": "TemperatureDrift",
            "rate": self.rate,
            "max_drift": self.max_drift,
        }
