"""Voltage–frequency operating tables with guardbands and constraints.

Beyond the characterized (voltage, delay) points themselves, a table can
carry the two physical limits real DVFS tables (lumos, ROADMAP item 4)
encode:

* a **vth floor** — the minimum supply the process sustains reliably
  (near-/sub-threshold operation is outside the characterized model), and
* a **frequency-boost cap** — turbo points may not exceed ``boost_cap``
  times the nominal-voltage frequency (default 1.3x, the lumos table
  ceiling).

Both are validated at construction with errors naming the offending
point, and :meth:`clamp_voltage` / :meth:`clamp_frequency` give
controllers one place to keep disturbed operating points legal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ParameterError

__all__ = ["DEFAULT_BOOST_CAP", "VoltageFrequencyPoint",
           "VoltageFrequencyTable"]

#: Frequency-boost ceiling relative to the nominal operating point —
#: turbo entries of the lumos DVFS tables top out at 1.3x nominal.
DEFAULT_BOOST_CAP = 1.3


@dataclass(frozen=True, order=True)
class VoltageFrequencyPoint:
    """One characterized operating point of an AVFS system.

    Attributes
    ----------
    voltage:
        Supply voltage in volts.
    critical_delay:
        Latest simulated transition arrival at this voltage (seconds).
    max_frequency:
        Highest safe clock frequency, i.e. ``1 / (critical_delay ·
        (1 + guardband))``.
    guardband:
        Relative timing margin applied on top of the simulated delay
        (process variation, aging, jitter).
    """

    voltage: float
    critical_delay: float
    max_frequency: float
    guardband: float


class VoltageFrequencyTable:
    """A sorted set of :class:`VoltageFrequencyPoint` entries.

    The table answers the two AVFS runtime questions:

    * :meth:`frequency_at` — how fast can the system clock at voltage v,
    * :meth:`voltage_for` — what is the minimum voltage sustaining a
      target frequency (the DVS energy-saving decision),

    subject to the construction-validated constraints:

    * ``vth_floor`` — no characterized point may sit below it, and
      :meth:`clamp_voltage` never returns a supply under it;
    * ``boost_cap`` — points above ``nominal_voltage`` may not clock
      faster than ``boost_cap`` times the nominal frequency
      (``nominal_voltage`` defaults to the highest characterized point,
      which makes the cap non-binding for floor-to-top tables).
    """

    def __init__(self, points: Sequence[VoltageFrequencyPoint],
                 vth_floor: float = 0.0,
                 boost_cap: float = DEFAULT_BOOST_CAP,
                 nominal_voltage: Optional[float] = None) -> None:
        if not points:
            raise ParameterError("voltage-frequency table needs at least one point")
        self.points: List[VoltageFrequencyPoint] = sorted(points)
        voltages = [p.voltage for p in self.points]
        if len(set(voltages)) != len(voltages):
            raise ParameterError("duplicate voltages in VF table")
        if vth_floor < 0:
            raise ParameterError("vth floor must be non-negative")
        if boost_cap < 1.0:
            raise ParameterError(
                f"frequency-boost cap must be >= 1.0 (got {boost_cap}); "
                "a cap below 1x would forbid the nominal point itself")
        below = [p.voltage for p in self.points if p.voltage < vth_floor]
        if below:
            raise ParameterError(
                f"operating point(s) {below} V below the {vth_floor} V "
                "vth floor — near-threshold points are outside the "
                "characterized delay model")
        self.vth_floor = float(vth_floor)
        self.boost_cap = float(boost_cap)
        if nominal_voltage is None:
            nominal_voltage = self.points[-1].voltage
        if not any(np.isclose(p.voltage, nominal_voltage)
                   for p in self.points):
            raise ParameterError(
                f"nominal voltage {nominal_voltage} V is not a "
                "characterized point")
        self.nominal_voltage = float(nominal_voltage)
        nominal = next(p for p in self.points
                       if np.isclose(p.voltage, nominal_voltage))
        limit = self.boost_cap * nominal.max_frequency
        over = [p for p in self.points
                if p.max_frequency > limit * (1.0 + 1e-12)]
        if over:
            worst = max(over, key=lambda p: p.max_frequency)
            raise ParameterError(
                f"boost point {worst.voltage} V clocks "
                f"{worst.max_frequency / nominal.max_frequency:.2f}x the "
                f"nominal {self.nominal_voltage} V frequency, above the "
                f"{self.boost_cap}x boost cap")
        self.max_boost_frequency = limit

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @classmethod
    def from_delays(
        cls,
        voltages: Sequence[float],
        delays: Sequence[float],
        guardband: float = 0.10,
        vth_floor: float = 0.0,
        boost_cap: float = DEFAULT_BOOST_CAP,
        nominal_voltage: Optional[float] = None,
    ) -> "VoltageFrequencyTable":
        """Build from simulated critical delays per voltage."""
        if len(voltages) != len(delays):
            raise ParameterError("voltages and delays must align")
        if guardband < 0:
            raise ParameterError("guardband must be non-negative")
        points = []
        for voltage, delay in zip(voltages, delays):
            if delay <= 0:
                raise ParameterError(f"non-positive delay at {voltage} V")
            points.append(
                VoltageFrequencyPoint(
                    voltage=float(voltage),
                    critical_delay=float(delay),
                    max_frequency=1.0 / (delay * (1.0 + guardband)),
                    guardband=guardband,
                )
            )
        return cls(points, vth_floor=vth_floor, boost_cap=boost_cap,
                   nominal_voltage=nominal_voltage)

    def frequency_at(self, voltage: float) -> float:
        """Safe frequency at ``voltage`` (linear interpolation, clamped).

        Interpolating between characterized points is conservative only
        between grid points; querying outside the table raises.
        """
        voltages = np.asarray([p.voltage for p in self.points])
        if not voltages[0] <= voltage <= voltages[-1]:
            raise ParameterError(
                f"{voltage} V outside characterized range "
                f"[{voltages[0]}, {voltages[-1]}]"
            )
        frequencies = np.asarray([p.max_frequency for p in self.points])
        return float(np.interp(voltage, voltages, frequencies))

    def voltage_for(self, frequency: float) -> float:
        """Minimum characterized voltage sustaining ``frequency``.

        Only characterized grid points are returned (an AVFS regulator
        steps through discrete levels).  Raises when even the highest
        voltage is too slow, or when the demand exceeds the boost cap.
        """
        if frequency > max(p.max_frequency for p in self.points):
            raise ParameterError(
                f"no characterized voltage reaches {frequency:.3e} Hz "
                f"(max {max(p.max_frequency for p in self.points):.3e} Hz)"
            )
        if frequency > self.max_boost_frequency:
            raise ParameterError(
                f"{frequency:.3e} Hz exceeds the {self.boost_cap}x boost "
                f"cap ({self.max_boost_frequency:.3e} Hz over the "
                f"{self.nominal_voltage} V nominal point)")
        for point in self.points:  # sorted ascending by voltage
            if point.max_frequency >= frequency:
                return point.voltage
        raise ParameterError(
            f"no characterized voltage reaches {frequency:.3e} Hz "
            f"(max {self.points[-1].max_frequency:.3e} Hz)"
        )

    # -- constraint clamps ----------------------------------------------------

    def clamp_voltage(self, voltage: float) -> float:
        """Nearest legal supply: at or above the vth floor, within the
        characterized range.  The one call site for keeping disturbed
        operating points (droop under the floor, overshoot past the top)
        inside the model."""
        low = max(self.vth_floor, self.points[0].voltage)
        high = self.points[-1].voltage
        return float(min(max(voltage, low), high))

    def clamp_frequency(self, frequency: float) -> float:
        """Demand limited to the boost cap (never below zero)."""
        return float(min(max(frequency, 0.0), self.max_boost_frequency))

    def grid_at_or_above(self, voltage: float) -> float:
        """Lowest characterized grid point at or above ``voltage`` (the
        discrete level a regulator actually switches to)."""
        for point in self.points:
            if point.voltage >= voltage - 1e-12:
                return point.voltage
        return self.points[-1].voltage

    def summary(self) -> str:
        lines = ["V [V]   delay      f_max"]
        for point in self.points:
            lines.append(
                f"{point.voltage:5.2f}  {point.critical_delay*1e12:8.1f}ps "
                f"{point.max_frequency/1e9:7.3f}GHz"
            )
        if self.vth_floor > 0:
            lines.append(f"vth floor {self.vth_floor:.2f} V, boost cap "
                         f"{self.boost_cap:.1f}x @ {self.nominal_voltage:.2f} V")
        return "\n".join(lines)
