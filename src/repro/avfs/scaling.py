"""Voltage–frequency operating tables with guardbands."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ParameterError

__all__ = ["VoltageFrequencyPoint", "VoltageFrequencyTable"]


@dataclass(frozen=True, order=True)
class VoltageFrequencyPoint:
    """One characterized operating point of an AVFS system.

    Attributes
    ----------
    voltage:
        Supply voltage in volts.
    critical_delay:
        Latest simulated transition arrival at this voltage (seconds).
    max_frequency:
        Highest safe clock frequency, i.e. ``1 / (critical_delay ·
        (1 + guardband))``.
    guardband:
        Relative timing margin applied on top of the simulated delay
        (process variation, aging, jitter).
    """

    voltage: float
    critical_delay: float
    max_frequency: float
    guardband: float


class VoltageFrequencyTable:
    """A sorted set of :class:`VoltageFrequencyPoint` entries.

    The table answers the two AVFS runtime questions:

    * :meth:`frequency_at` — how fast can the system clock at voltage v,
    * :meth:`voltage_for` — what is the minimum voltage sustaining a
      target frequency (the DVS energy-saving decision).
    """

    def __init__(self, points: Sequence[VoltageFrequencyPoint]) -> None:
        if not points:
            raise ParameterError("voltage-frequency table needs at least one point")
        self.points: List[VoltageFrequencyPoint] = sorted(points)
        voltages = [p.voltage for p in self.points]
        if len(set(voltages)) != len(voltages):
            raise ParameterError("duplicate voltages in VF table")

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @classmethod
    def from_delays(
        cls,
        voltages: Sequence[float],
        delays: Sequence[float],
        guardband: float = 0.10,
    ) -> "VoltageFrequencyTable":
        """Build from simulated critical delays per voltage."""
        if len(voltages) != len(delays):
            raise ParameterError("voltages and delays must align")
        if guardband < 0:
            raise ParameterError("guardband must be non-negative")
        points = []
        for voltage, delay in zip(voltages, delays):
            if delay <= 0:
                raise ParameterError(f"non-positive delay at {voltage} V")
            points.append(
                VoltageFrequencyPoint(
                    voltage=float(voltage),
                    critical_delay=float(delay),
                    max_frequency=1.0 / (delay * (1.0 + guardband)),
                    guardband=guardband,
                )
            )
        return cls(points)

    def frequency_at(self, voltage: float) -> float:
        """Safe frequency at ``voltage`` (linear interpolation, clamped).

        Interpolating between characterized points is conservative only
        between grid points; querying outside the table raises.
        """
        voltages = np.asarray([p.voltage for p in self.points])
        if not voltages[0] <= voltage <= voltages[-1]:
            raise ParameterError(
                f"{voltage} V outside characterized range "
                f"[{voltages[0]}, {voltages[-1]}]"
            )
        frequencies = np.asarray([p.max_frequency for p in self.points])
        return float(np.interp(voltage, voltages, frequencies))

    def voltage_for(self, frequency: float) -> float:
        """Minimum characterized voltage sustaining ``frequency``.

        Only characterized grid points are returned (an AVFS regulator
        steps through discrete levels).  Raises when even the highest
        voltage is too slow.
        """
        for point in self.points:  # sorted ascending by voltage
            if point.max_frequency >= frequency:
                return point.voltage
        raise ParameterError(
            f"no characterized voltage reaches {frequency:.3e} Hz "
            f"(max {self.points[-1].max_frequency:.3e} Hz)"
        )

    def summary(self) -> str:
        lines = ["V [V]   delay      f_max"]
        for point in self.points:
            lines.append(
                f"{point.voltage:5.2f}  {point.critical_delay*1e12:8.1f}ps "
                f"{point.max_frequency/1e9:7.3f}GHz"
            )
        return "\n".join(lines)
