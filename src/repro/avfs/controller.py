"""A closed-loop AVFS controller model.

The controller owns a characterized :class:`VoltageFrequencyTable` and
plays the runtime role of an adaptive voltage/frequency manager:

* :meth:`set_performance` picks the lowest voltage sustaining a demanded
  clock frequency (dynamic voltage scaling),
* :meth:`apply_aging` derates the table for accumulated performance
  degradation and re-decides — the self-adaptation loop the paper cites
  as AVFS motivation (refs. [4, 5]),
* :meth:`run_workload` steps through a demand trace and records the
  chosen operating points with an energy-proportionality estimate
  (E ∝ V² per cycle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.avfs.scaling import VoltageFrequencyTable
from repro.errors import ParameterError

__all__ = ["AvfsDecision", "AvfsController"]


@dataclass(frozen=True)
class AvfsDecision:
    """One operating-point decision of the controller."""

    demanded_frequency: float
    voltage: float
    frequency: float
    relative_energy: float  # per-cycle energy relative to the top point


@dataclass
class AvfsController:
    """Table-driven adaptive voltage and frequency scaling."""

    table: VoltageFrequencyTable
    aging_derate: float = 0.0  # accumulated delay degradation (fraction)
    history: List[AvfsDecision] = field(default_factory=list)

    def _derated(self) -> VoltageFrequencyTable:
        if self.aging_derate == 0.0:
            return self.table
        return VoltageFrequencyTable.from_delays(
            [p.voltage for p in self.table],
            [p.critical_delay * (1.0 + self.aging_derate) for p in self.table],
            guardband=self.table.points[0].guardband,
        )

    # -- runtime decisions ---------------------------------------------------------

    def set_performance(self, frequency: float) -> AvfsDecision:
        """Choose the minimum voltage sustaining ``frequency``."""
        if frequency <= 0:
            raise ParameterError("frequency must be positive")
        table = self._derated()
        voltage = table.voltage_for(frequency)
        top = table.points[-1].voltage
        decision = AvfsDecision(
            demanded_frequency=frequency,
            voltage=voltage,
            frequency=table.frequency_at(voltage),
            relative_energy=(voltage / top) ** 2,
        )
        self.history.append(decision)
        return decision

    def apply_aging(self, additional_derate: float) -> None:
        """Account for additional delay degradation (e.g. NBTI aging)."""
        if additional_derate < 0:
            raise ParameterError("derate must be non-negative")
        self.aging_derate += additional_derate

    def max_frequency(self) -> float:
        """Highest sustainable frequency in the current (aged) state."""
        return max(p.max_frequency for p in self._derated())

    def run_workload(self, demands: Sequence[float]) -> List[AvfsDecision]:
        """Serve a trace of frequency demands; returns the decisions."""
        return [self.set_performance(freq) for freq in demands]

    def energy_saving(self) -> float:
        """Average per-cycle energy saving vs always-max-voltage (0..1)."""
        if not self.history:
            return 0.0
        mean = sum(d.relative_energy for d in self.history) / len(self.history)
        return 1.0 - mean
