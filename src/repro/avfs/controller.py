"""A closed-loop AVFS controller model.

The controller owns a characterized :class:`VoltageFrequencyTable` and
plays the runtime role of an adaptive voltage/frequency manager:

* :meth:`set_performance` picks the lowest voltage sustaining a demanded
  clock frequency (dynamic voltage scaling), clamped to the table's
  vth-floor and frequency-boost constraints,
* :meth:`apply_aging` derates the table for accumulated performance
  degradation and re-decides — the self-adaptation loop the paper cites
  as AVFS motivation (refs. [4, 5]),
* :meth:`run_workload` steps through a demand trace and records the
  chosen operating points with an energy-proportionality estimate
  (E ∝ V² per cycle),
* :meth:`decide` closes the loop on *measured* timing: given the latest
  simulated arrival at the current supply, it steps the commanded
  voltage one regulator level up on a violation or down when the next
  level still meets the clock period — the per-iteration policy
  :class:`repro.avfs.loop.ClosedLoopRunner` drives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.avfs.scaling import VoltageFrequencyTable
from repro.errors import ParameterError

__all__ = ["AvfsDecision", "AvfsController"]


@dataclass(frozen=True)
class AvfsDecision:
    """One operating-point decision of the controller."""

    demanded_frequency: float
    voltage: float
    frequency: float
    relative_energy: float  # per-cycle energy relative to the top point
    #: True when the demand had to be clamped to the boost cap.
    boost_limited: bool = False


@dataclass
class AvfsController:
    """Table-driven adaptive voltage and frequency scaling."""

    table: VoltageFrequencyTable
    aging_derate: float = 0.0  # accumulated delay degradation (fraction)
    history: List[AvfsDecision] = field(default_factory=list)

    def _derated(self) -> VoltageFrequencyTable:
        if self.aging_derate == 0.0:
            return self.table
        return VoltageFrequencyTable.from_delays(
            [p.voltage for p in self.table],
            [p.critical_delay * (1.0 + self.aging_derate) for p in self.table],
            guardband=self.table.points[0].guardband,
            vth_floor=self.table.vth_floor,
            boost_cap=self.table.boost_cap,
            nominal_voltage=self.table.nominal_voltage,
        )

    # -- runtime decisions ---------------------------------------------------------

    def set_performance(self, frequency: float) -> AvfsDecision:
        """Choose the minimum voltage sustaining ``frequency``.

        Demands above the table's frequency-boost cap are clamped to it
        (and flagged ``boost_limited``); the chosen supply is clamped to
        the vth floor.
        """
        if frequency <= 0:
            raise ParameterError("frequency must be positive")
        table = self._derated()
        clamped = table.clamp_frequency(frequency)
        voltage = table.clamp_voltage(table.voltage_for(clamped))
        top = table.points[-1].voltage
        decision = AvfsDecision(
            demanded_frequency=frequency,
            voltage=voltage,
            frequency=table.frequency_at(voltage),
            relative_energy=(voltage / top) ** 2,
            boost_limited=clamped < frequency,
        )
        self.history.append(decision)
        return decision

    def decide(self, voltage: float, measured_arrival: float,
               period: float) -> float:
        """One closed-loop step: next commanded supply from measurement.

        ``measured_arrival`` is the latest simulated transition arrival
        observed at the current ``voltage`` (disturbances included);
        ``period`` the clock period the system must meet.  The policy is
        a discrete regulator walk over the (derated) table grid:

        * the guardbanded arrival misses the period → step one grid
          level **up** (stay at the top when already there);
        * otherwise, predict the next lower level's arrival by scaling
          its characterized delay with the measured/characterized ratio
          at the current level; step **down** only when the prediction
          still meets the period — measurement-driven, so droop and
          drift push the loop back up even when the static table says
          the level is safe.

        The returned voltage is always a characterized grid point at or
        above the vth floor.
        """
        if period <= 0:
            raise ParameterError("clock period must be positive")
        if measured_arrival < 0:
            raise ParameterError("measured arrival must be non-negative")
        table = self._derated()
        grid = table.points
        index = int(np.argmin([abs(p.voltage - voltage) for p in grid]))
        current = grid[index]
        guardband = current.guardband
        if measured_arrival * (1.0 + guardband) > period:
            index = min(index + 1, len(grid) - 1)
            return table.clamp_voltage(grid[index].voltage)
        if index > 0:
            lower = grid[index - 1]
            # Transfer the measured-vs-characterized ratio to the next
            # level: a drooped/drifted die that runs slow at this level
            # is assumed equally slow one level down.
            ratio = measured_arrival / current.critical_delay \
                if current.critical_delay > 0 else 1.0
            predicted = lower.critical_delay * max(ratio, 1.0)
            if predicted * (1.0 + guardband) <= period \
                    and lower.voltage >= table.vth_floor:
                return table.clamp_voltage(lower.voltage)
        return table.clamp_voltage(current.voltage)

    def apply_aging(self, additional_derate: float) -> None:
        """Account for additional delay degradation (e.g. NBTI aging)."""
        if additional_derate < 0:
            raise ParameterError("derate must be non-negative")
        self.aging_derate += additional_derate

    def max_frequency(self) -> float:
        """Highest sustainable frequency in the current (aged) state."""
        return max(p.max_frequency for p in self._derated())

    def run_workload(self, demands: Sequence[float]) -> List[AvfsDecision]:
        """Serve a trace of frequency demands; returns the decisions."""
        return [self.set_performance(freq) for freq in demands]

    def energy_saving(self) -> float:
        """Average per-cycle energy saving vs always-max-voltage (0..1)."""
        if not self.history:
            return 0.0
        mean = sum(d.relative_energy for d in self.history) / len(self.history)
        return 1.0 - mean
