"""Design-space exploration over operating points.

This is the headline application of the paper: sweeping many supply
voltages over many stimuli *in one simulation* by mapping both onto the
slot plane (Fig. 3), then extracting per-voltage timing, activity and
energy figures.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.activity import switching_activity
from repro.analysis.arrival import latest_arrivals
from repro.analysis.power import dynamic_power
from repro.cells.library import CellLibrary
from repro.core.delay_kernel import DelayKernelTable
from repro.errors import ParameterError
from repro.netlist.circuit import Circuit
from repro.runtime.report import (AttemptReport, ChunkReport, RunReport)
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.compiled import level_plan_cache_stats
from repro.simulation.gpu import GpuWaveSim
from repro.simulation.grid import SlotPlan
from repro.simulation.pool import engine_pool_stats, pooled_engine
from repro.avfs.scaling import VoltageFrequencyTable

__all__ = ["OperatingPointResult", "DesignSpaceExplorer"]


@dataclass(frozen=True)
class OperatingPointResult:
    """Exploration metrics for one supply voltage.

    Attributes
    ----------
    latest_arrival:
        Latest transition arrival over all patterns (seconds).
    max_frequency:
        ``1 / latest_arrival`` without guardband.
    energy_per_pattern:
        Mean dynamic switching energy per pattern pair (joules);
        ``None`` when activity was not recorded.
    glitch_ratio:
        Fraction of toggles that are glitches; ``None`` without activity.
    """

    voltage: float
    latest_arrival: float
    max_frequency: float
    energy_per_pattern: Optional[float]
    glitch_ratio: Optional[float]


class DesignSpaceExplorer:
    """Voltage-sweep exploration driver on top of :class:`GpuWaveSim`.

    The engine comes from the process-wide pool
    (:func:`repro.simulation.pool.pooled_engine`) unless an explicit
    ``simulator`` is passed: every explorer (and the closed-loop runner)
    working the same circuit under the same configuration shares one
    engine, so resolved level plans and pooled waveform arenas stay warm
    across sweeps.  Each sweep leaves a
    :class:`~repro.runtime.report.RunReport` on :attr:`last_report` with
    the engine accounting and the plan-cache/pool hits the sharing
    bought.
    """

    def __init__(
        self,
        circuit: Circuit,
        library: CellLibrary,
        kernel_table: DelayKernelTable,
        record_activity: bool = False,
        simulator: Optional[GpuWaveSim] = None,
    ) -> None:
        self.circuit = circuit
        self.library = library
        self.kernel_table = kernel_table
        self.record_activity = record_activity
        config = SimulationConfig(record_all_nets=record_activity)
        self._pool_hits_pending = 0
        if simulator is None:
            pool_before = engine_pool_stats()["hits"]
            simulator = pooled_engine(circuit, library, config=config)
            self._pool_hits_pending = (engine_pool_stats()["hits"]
                                       - pool_before)
        self.simulator = simulator
        self._loads = circuit.net_loads(library) if record_activity else None
        self.last_runtime: float = 0.0
        self.last_report: Optional[RunReport] = None

    def _run(self, pairs: Sequence[PatternPair], plan: SlotPlan):
        """One engine run wrapped in RunReport accounting."""
        plans_before = level_plan_cache_stats()
        pool_before = engine_pool_stats()["hits"]
        start = _time.perf_counter()
        result = self.simulator.run(pairs, plan=plan,
                                    kernel_table=self.kernel_table)
        self.last_runtime = _time.perf_counter() - start
        plans_after = level_plan_cache_stats()
        stats = self.simulator.last_stats
        report = RunReport(
            circuit_name=self.circuit.name,
            num_slots=plan.num_slots,
            chunk_slots=plan.num_slots,
            chunks=[ChunkReport(index=0, num_slots=plan.num_slots,
                                attempts=[AttemptReport(
                                    engine=result.engine,
                                    waveform_capacity=self.simulator.config
                                    .waveform_capacity,
                                    memory_budget=self.simulator
                                    .memory_budget,
                                    seconds=self.last_runtime)])],
            wall_seconds=self.last_runtime,
            backend=self.simulator.backend.name,
            gate_evaluations=int(stats.gate_evaluations) if stats else 0,
            lanes_skipped=int(stats.lanes_skipped) if stats else 0,
            lanes_spliced=int(stats.lanes_spliced) if stats else 0,
            phase_seconds=(dict(stats.phase_seconds()) if stats else {}),
            plan_cache_hits=(plans_after["hits"] - plans_before["hits"]
                             + engine_pool_stats()["hits"] - pool_before
                             + self._pool_hits_pending),
            plan_cache_misses=(plans_after["misses"]
                               - plans_before["misses"]),
        )
        self._pool_hits_pending = 0
        result.report = report
        self.last_report = report
        return result

    def sweep(
        self,
        pairs: Sequence[PatternPair],
        voltages: Sequence[float],
    ) -> List[OperatingPointResult]:
        """Evaluate every pattern under every voltage (full slot plane)."""
        if not voltages:
            raise ParameterError("need at least one voltage")
        space = self.kernel_table.space
        for voltage in voltages:
            if not space.v_min <= voltage <= space.v_max:
                raise ParameterError(
                    f"{voltage} V outside characterized space "
                    f"[{space.v_min}, {space.v_max}]"
                )
        plan = SlotPlan.cross(len(pairs), voltages)
        result = self._run(pairs, plan)
        arrivals = latest_arrivals(result, self.circuit, plan=plan)

        points: List[OperatingPointResult] = []
        for voltage in voltages:
            arrival = arrivals.at(voltage)
            energy = glitch_ratio = None
            if self.record_activity:
                slots = plan.slots_for_voltage(voltage)
                activity = switching_activity(result, slots=slots.tolist())
                report = dynamic_power(activity, self._loads, voltage)
                energy = report.energy_per_pattern
                glitch_ratio = activity.glitch_ratio
            points.append(
                OperatingPointResult(
                    voltage=float(voltage),
                    latest_arrival=arrival,
                    max_frequency=(1.0 / arrival) if arrival > 0 else float("inf"),
                    energy_per_pattern=energy,
                    glitch_ratio=glitch_ratio,
                )
            )
        return points

    def voltage_frequency_table(
        self,
        pairs: Sequence[PatternPair],
        voltages: Sequence[float],
        guardband: float = 0.10,
    ) -> VoltageFrequencyTable:
        """Characterize a VF operating table from a sweep."""
        points = self.sweep(pairs, voltages)
        return VoltageFrequencyTable.from_delays(
            [p.voltage for p in points],
            [p.latest_arrival for p in points],
            guardband=guardband,
        )

    def shmoo(
        self,
        pairs: Sequence[PatternPair],
        voltages: Sequence[float],
        periods: Sequence[float],
    ) -> Dict[float, Dict[float, bool]]:
        """Voltage × clock-period pass/fail matrix (a shmoo plot).

        An operating point passes when the latest transition arrival
        fits within the clock period.
        """
        points = self.sweep(pairs, voltages)
        return {
            point.voltage: {
                float(period): point.latest_arrival <= period
                for period in periods
            }
            for point in points
        }

    def pvt_sweep(
        self,
        pairs: Sequence[PatternPair],
        voltages: Sequence[float],
        corner_tables: Dict[str, DelayKernelTable],
    ) -> Dict[str, List[OperatingPointResult]]:
        """Sweep the voltage range under several PVT corners.

        ``corner_tables`` maps a corner label (``"slow@125C"`` …) to the
        kernel table characterized at that corner (see
        :meth:`repro.electrical.model.TransistorCorner.at_temperature`).
        Returns label → per-voltage results, e.g. for building the
        worst-case operating table ``min`` over corners.

        Note the delay kernels express *relative* voltage sensitivity:
        the absolute nominal delays still come from the circuit's SDF
        annotation.  For a fully corner-accurate absolute sweep,
        re-annotate the circuit with that corner's electrical model
        (``annotate_nominal(circuit, library, ElectricalModel(corner))``)
        when compiling — exactly as a signoff flow would swap SDF files.
        """
        if not corner_tables:
            raise ParameterError("need at least one corner table")
        original = self.kernel_table
        results: Dict[str, List[OperatingPointResult]] = {}
        try:
            for label, table in corner_tables.items():
                self.kernel_table = table
                results[label] = self.sweep(pairs, voltages)
        finally:
            self.kernel_table = original
        return results

    @staticmethod
    def worst_case_delays(
        pvt_results: Dict[str, List[OperatingPointResult]]
    ) -> List[OperatingPointResult]:
        """Per-voltage worst corner of a :meth:`pvt_sweep` result."""
        if not pvt_results:
            raise ParameterError("empty PVT results")
        per_corner = list(pvt_results.values())
        count = len(per_corner[0])
        if any(len(points) != count for points in per_corner):
            raise ParameterError("corner sweeps have mismatched lengths")
        worst: List[OperatingPointResult] = []
        for index in range(count):
            candidates = [points[index] for points in per_corner]
            worst.append(max(candidates, key=lambda p: p.latest_arrival))
        return worst

    def find_vmin(
        self,
        pairs: Sequence[PatternPair],
        voltages: Sequence[float],
        period: float,
        guardband: float = 0.10,
    ) -> Optional[float]:
        """Minimum swept voltage meeting the clock period (with margin).

        Returns ``None`` when no swept voltage is fast enough.
        """
        points = self.sweep(pairs, sorted(voltages))
        for point in points:  # ascending voltages
            if point.latest_arrival * (1.0 + guardband) <= period:
                return point.voltage
        return None
