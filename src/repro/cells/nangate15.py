"""A NanGate-15nm-*like* standard-cell library.

The paper synthesizes its benchmarks with the NanGate 15 nm Open Cell
Library.  That library's SPICE decks are not redistributable, so this
module builds a library with the same *structure*: the combinational
families the paper's Fig. 4 evaluates (AND, NAND, BUF, INV, OR, NOR — all
driving strengths) plus XOR/XNOR, AOI/OAI complex gates and a mux, each in
several drive strengths ``X1 … X16``.

Electrical parameters (logical efforts, parasitics, pin capacitances)
follow the standard logical-effort textbook values (Sutherland, Sproull,
Harris — the paper's ref. [29]) and scale with drive strength exactly like
a real library: an ``X2`` cell has twice the drive (half the load-driven
delay) and twice the input capacitance of the ``X1`` member.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.cells.cell import Cell, CellPin
from repro.cells.library import CellLibrary
from repro.units import FF

__all__ = ["make_nangate15_library", "FIG4_FAMILIES", "BASE_INPUT_CAP"]

#: Families evaluated in the paper's Fig. 4 error study.
FIG4_FAMILIES = ("AND2", "AND3", "AND4", "NAND2", "NAND3", "NAND4",
                 "BUF", "INV", "OR2", "OR3", "OR4", "NOR2", "NOR3", "NOR4")

#: Input capacitance of a unit-strength inverter pin (farads).  NanGate
#: 15 nm input pins are in the sub-femtofarad range.
BASE_INPUT_CAP = 0.45 * FF

# family -> (pin names, logical effort g, parasitic p, per-pin cap factor)
# Efforts/parasitics are the classic logical-effort values; AND/OR cells
# are modeled as the corresponding NAND/NOR plus an output inverter which
# adds parasitic delay and slightly increases effort.
_FAMILY_SPECS: Dict[str, Tuple[Tuple[str, ...], float, float, float]] = {
    "INV":   (("A",), 1.0, 1.0, 1.0),
    "BUF":   (("A",), 1.0, 2.0, 1.0),
    "NAND2": (("A1", "A2"), 4.0 / 3.0, 2.0, 4.0 / 3.0),
    "NAND3": (("A1", "A2", "A3"), 5.0 / 3.0, 3.0, 5.0 / 3.0),
    "NAND4": (("A1", "A2", "A3", "A4"), 2.0, 4.0, 2.0),
    "NOR2":  (("A1", "A2"), 5.0 / 3.0, 2.0, 5.0 / 3.0),
    "NOR3":  (("A1", "A2", "A3"), 7.0 / 3.0, 3.0, 7.0 / 3.0),
    "NOR4":  (("A1", "A2", "A3", "A4"), 3.0, 4.0, 3.0),
    "AND2":  (("A1", "A2"), 4.0 / 3.0, 3.0, 4.0 / 3.0),
    "AND3":  (("A1", "A2", "A3"), 5.0 / 3.0, 4.0, 5.0 / 3.0),
    "AND4":  (("A1", "A2", "A3", "A4"), 2.0, 5.0, 2.0),
    "OR2":   (("A1", "A2"), 5.0 / 3.0, 3.0, 5.0 / 3.0),
    "OR3":   (("A1", "A2", "A3"), 7.0 / 3.0, 4.0, 7.0 / 3.0),
    "OR4":   (("A1", "A2", "A3", "A4"), 3.0, 5.0, 3.0),
    "XOR2":  (("A", "B"), 4.0, 4.0, 2.0),
    "XNOR2": (("A", "B"), 4.0, 4.0, 2.0),
    "AOI21": (("A1", "A2", "B"), 2.0, 3.0, 5.0 / 3.0),
    "AOI22": (("A1", "A2", "B1", "B2"), 2.0, 4.0, 2.0),
    "OAI21": (("A1", "A2", "B"), 2.0, 3.0, 5.0 / 3.0),
    "OAI22": (("A1", "A2", "B1", "B2"), 2.0, 4.0, 2.0),
    "MUX2":  (("A", "B", "S"), 2.0, 4.0, 2.0),
}

#: Drive strengths per family.  Simple inverting cells come in the widest
#: range (like real libraries); complex gates stop at X4.
_STRENGTHS: Dict[str, Tuple[int, ...]] = {
    "INV": (1, 2, 4, 8, 16),
    "BUF": (1, 2, 4, 8, 16),
    "NAND2": (1, 2, 4, 8),
    "NOR2": (1, 2, 4, 8),
}
_DEFAULT_STRENGTHS: Tuple[int, ...] = (1, 2, 4)

#: Per-pin parasitic asymmetry: inner pins of a transistor stack see more
#: internal capacitance and are a few percent slower.
_STACK_SKEW = 0.06

#: Inverting families drive ``ZN`` in NanGate naming, the rest drive ``Z``.
_INVERTING_OUTPUT = "ZN"
_NONINVERTING_OUTPUT = "Z"


def _make_cell(family: str, strength: int) -> Cell:
    pin_names, effort, parasitic, cap_factor = _FAMILY_SPECS[family]
    pins: List[CellPin] = []
    for index, pin_name in enumerate(pin_names):
        # The select pin of a mux is lighter than its data pins.
        pin_cap_factor = cap_factor
        if family == "MUX2" and pin_name == "S":
            pin_cap_factor = 1.0
        pins.append(
            CellPin(
                name=pin_name,
                index=index,
                input_cap=BASE_INPUT_CAP * pin_cap_factor * strength,
                effort=effort,
                parasitic_weight=1.0 + _STACK_SKEW * index,
            )
        )
    from repro.cells.logic import get_function

    inverting = get_function(family).inverting
    return Cell(
        name=f"{family}_X{strength}",
        family=family,
        strength=float(strength),
        pins=tuple(pins),
        output=_INVERTING_OUTPUT if inverting else _NONINVERTING_OUTPUT,
        parasitic=parasitic,
    )


def make_nangate15_library(families: Sequence[str] = (), name: str = "nangate15") -> CellLibrary:
    """Build the library.

    Parameters
    ----------
    families:
        Optional subset of family names; empty means every family.
    """
    chosen = tuple(families) or tuple(_FAMILY_SPECS)
    unknown = set(chosen) - set(_FAMILY_SPECS)
    if unknown:
        raise ValueError(f"unknown cell families: {sorted(unknown)}")
    library = CellLibrary(name=name)
    for family in chosen:
        for strength in _STRENGTHS.get(family, _DEFAULT_STRENGTHS):
            library.add(_make_cell(family, strength))
    return library
