"""Standard-cell modeling: logic functions, cells and cell libraries."""

from repro.cells.logic import LogicFunction, get_function, FUNCTIONS
from repro.cells.cell import Cell, CellPin, DrivePolarity
from repro.cells.library import CellLibrary
from repro.cells.nangate15 import make_nangate15_library

__all__ = [
    "LogicFunction",
    "get_function",
    "FUNCTIONS",
    "Cell",
    "CellPin",
    "DrivePolarity",
    "CellLibrary",
    "make_nangate15_library",
]
