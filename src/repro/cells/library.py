"""Cell-library container with lookup and JSON (de)serialization."""

from __future__ import annotations

import json
from typing import Dict, Iterable, Iterator, List, Optional

from repro.cells.cell import Cell, CellPin
from repro.errors import LibraryError, UnknownCellError

__all__ = ["CellLibrary"]


class CellLibrary:
    """An ordered collection of :class:`Cell` objects.

    Cells are indexed by full name (``NAND2_X2``).  The library assigns a
    stable integer *type id* to each cell in insertion order; compiled
    delay-kernel tables (Sec. IV of the paper) are indexed by this id.
    """

    def __init__(self, name: str = "library", cells: Optional[Iterable[Cell]] = None) -> None:
        self.name = name
        self._cells: Dict[str, Cell] = {}
        self._type_ids: Dict[str, int] = {}
        if cells:
            for cell in cells:
                self.add(cell)

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self) -> Iterator[Cell]:
        return iter(self._cells.values())

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __getitem__(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise UnknownCellError(name) from None

    # -- construction --------------------------------------------------------

    def add(self, cell: Cell) -> Cell:
        """Add a cell; names must be unique."""
        if cell.name in self._cells:
            raise LibraryError(f"duplicate cell name: {cell.name!r}")
        self._type_ids[cell.name] = len(self._cells)
        self._cells[cell.name] = cell
        return cell

    # -- lookup ---------------------------------------------------------------

    def get(self, name: str) -> Optional[Cell]:
        return self._cells.get(name)

    def type_id(self, name: str) -> int:
        """Stable integer id of a cell type (kernel-table index)."""
        try:
            return self._type_ids[name]
        except KeyError:
            raise UnknownCellError(name) from None

    def cell_by_type_id(self, type_id: int) -> Cell:
        names = list(self._cells)
        if not 0 <= type_id < len(names):
            raise LibraryError(f"type id {type_id} out of range")
        return self._cells[names[type_id]]

    def names(self) -> List[str]:
        return list(self._cells)

    def families(self) -> List[str]:
        """Distinct cell families in insertion order."""
        seen: Dict[str, None] = {}
        for cell in self:
            seen.setdefault(cell.family, None)
        return list(seen)

    def members(self, family: str) -> List[Cell]:
        """All drive strengths of a family, weakest first."""
        cells = [cell for cell in self if cell.family == family]
        return sorted(cells, key=lambda c: c.strength)

    def select(self, families: Iterable[str]) -> "CellLibrary":
        """Sub-library restricted to the given families (Fig. 4 uses a subset)."""
        wanted = set(families)
        missing = wanted - set(self.families())
        if missing:
            raise LibraryError(f"families not in library: {sorted(missing)}")
        return CellLibrary(
            name=f"{self.name}-subset",
            cells=[cell for cell in self if cell.family in wanted],
        )

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "cells": [
                {
                    "name": cell.name,
                    "family": cell.family,
                    "strength": cell.strength,
                    "output": cell.output,
                    "parasitic": cell.parasitic,
                    "pins": [
                        {
                            "name": pin.name,
                            "index": pin.index,
                            "input_cap": pin.input_cap,
                            "effort": pin.effort,
                            "parasitic_weight": pin.parasitic_weight,
                        }
                        for pin in cell.pins
                    ],
                }
                for cell in self
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CellLibrary":
        library = cls(name=data.get("name", "library"))
        for entry in data["cells"]:
            pins = tuple(
                CellPin(
                    name=p["name"],
                    index=p["index"],
                    input_cap=p["input_cap"],
                    effort=p.get("effort", 1.0),
                    parasitic_weight=p.get("parasitic_weight", 1.0),
                )
                for p in entry["pins"]
            )
            library.add(
                Cell(
                    name=entry["name"],
                    family=entry["family"],
                    strength=entry["strength"],
                    pins=pins,
                    output=entry.get("output", "Z"),
                    parasitic=entry.get("parasitic", 1.0),
                )
            )
        return library

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CellLibrary":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "CellLibrary":
        with open(path, "r", encoding="utf-8") as stream:
            return cls.from_json(stream.read())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CellLibrary({self.name!r}, {len(self)} cells)"
