"""Cell and pin datatypes for standard-cell libraries."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.cells.logic import LogicFunction, get_function

__all__ = ["DrivePolarity", "CellPin", "Cell"]


class DrivePolarity(enum.IntEnum):
    """Output transition polarity, used to index pin-to-pin delays.

    The integer values are stable and used as array indices in compiled
    delay-kernel tables (Sec. III-D of the paper: one coefficient vector
    per input pin *and* transition polarity).
    """

    RISE = 0
    FALL = 1

    @property
    def symbol(self) -> str:
        return "r" if self is DrivePolarity.RISE else "f"


@dataclass(frozen=True)
class CellPin:
    """An input pin of a standard cell.

    Attributes
    ----------
    name:
        Pin name as it appears in netlists (``A1``, ``B``, ``S`` …).
    index:
        Position of the pin in the cell's logic-function argument list.
    input_cap:
        Pin input capacitance in farads.  Used to derive net load
        capacitances (the ``c`` axis of the operating-point space).
    effort:
        Logical effort ``g`` of the pin (Sutherland et al., paper Eq. 2).
        Scales the load-driven component of the propagation delay.
    parasitic_weight:
        Relative weight of this pin's contribution to the parasitic delay
        term ``p``; models the pin-position asymmetry of stacked
        transistors (inner pins of a NAND stack are slower).
    """

    name: str
    index: int
    input_cap: float
    effort: float = 1.0
    parasitic_weight: float = 1.0


@dataclass(frozen=True)
class Cell:
    """A combinational standard cell (one family member at one strength).

    A *cell type* such as ``NAND2_X2`` combines a logic *family*
    (``NAND2``) with a *drive strength* (``X2``).  All strengths of a
    family share the same logic function; the strength scales drive
    capability and input capacitance.

    Attributes
    ----------
    name:
        Full library name, e.g. ``"NAND2_X2"``.
    family:
        Function family, e.g. ``"NAND2"`` (also the logic-function name).
    strength:
        Drive strength multiplier (1, 2, 4, …) — the ``X`` number.
    pins:
        Input pins in logic-function argument order.
    output:
        Output pin name (``Z`` or ``ZN`` in NanGate style).
    parasitic:
        Parasitic delay ``p`` in units of the process time constant τ
        (paper Eq. 2); dimensionless, typically around the pin count.
    """

    name: str
    family: str
    strength: float
    pins: Tuple[CellPin, ...]
    output: str = "Z"
    parasitic: float = 1.0

    def __post_init__(self) -> None:
        function = get_function(self.family)
        if function.arity != len(self.pins):
            raise ValueError(
                f"cell {self.name}: function {self.family} has arity "
                f"{function.arity} but {len(self.pins)} pins are defined"
            )
        indices = sorted(pin.index for pin in self.pins)
        if indices != list(range(len(self.pins))):
            raise ValueError(f"cell {self.name}: pin indices must be 0..n-1")

    @property
    def function(self) -> LogicFunction:
        """The cell's logic function object."""
        return get_function(self.family)

    @property
    def num_inputs(self) -> int:
        return len(self.pins)

    @property
    def is_inverting(self) -> bool:
        return self.function.inverting

    def pin(self, name: str) -> CellPin:
        """Look up an input pin by name."""
        for pin in self.pins:
            if pin.name == name:
                return pin
        raise KeyError(f"cell {self.name} has no input pin {name!r}")

    def pin_names(self) -> Tuple[str, ...]:
        return tuple(pin.name for pin in sorted(self.pins, key=lambda p: p.index))

    def evaluate(self, inputs, mask=1):
        """Evaluate the cell's logic function (see :meth:`LogicFunction.evaluate`)."""
        return self.function.evaluate(inputs, mask=mask)
