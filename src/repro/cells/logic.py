"""Boolean functions of standard cells.

Every combinational cell computes a single-output boolean function of its
input pins.  The functions here are written with bitwise operators only so
that the *same* callable evaluates

* plain Python ``int`` scalars (0/1) — used by the event-driven simulator,
* NumPy ``uint8``/``bool`` arrays — used by the vectorized GPU-style
  engine, where one call evaluates an entire slot plane at once, and
* bit-packed 64-bit words — used by the zero-delay pattern simulator.

The registry maps a *function name* (``NAND2``, ``AOI21``, …) to a
:class:`LogicFunction`.  Cell types reference functions by name so several
drive strengths share one function object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Dict, Sequence, Tuple

__all__ = ["LogicFunction", "FUNCTIONS", "get_function", "register_function"]


@dataclass(frozen=True)
class LogicFunction:
    """A named boolean function with a fixed number of inputs.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"NAND2"``.
    arity:
        Number of input operands.
    func:
        Bitwise implementation ``f(a, b, …) -> value``.  Must use only
        ``& | ^ ~`` so it works on ints, words and arrays.  The result of
        ``~`` is masked by the caller via :meth:`evaluate`.
    inverting:
        True when every input-to-output path is inverting (NAND, NOR, INV,
        AOI, OAI).  Used by delay modeling for output polarity mapping.
    """

    name: str
    arity: int
    func: Callable[..., object] = field(repr=False)
    inverting: bool = False

    def evaluate(self, inputs: Sequence[object], mask: object = 1):
        """Evaluate the function on ``inputs``.

        ``mask`` bounds the result of bitwise NOT: pass ``1`` for scalar
        0/1 logic (default), ``(1 << 64) - 1`` for packed words, or an
        array of ones for array evaluation.
        """
        if len(inputs) != self.arity:
            raise ValueError(
                f"{self.name} expects {self.arity} inputs, got {len(inputs)}"
            )
        return self.func(*inputs) & mask

    def truth_table(self) -> Tuple[int, ...]:
        """Output column of the truth table, input bits in MSB-first order.

        >>> get_function('AND2').truth_table()
        (0, 0, 0, 1)
        """
        rows = []
        for bits in product((0, 1), repeat=self.arity):
            rows.append(int(self.evaluate(bits)) & 1)
        return tuple(rows)

    def unateness(self, pin_index: int) -> str:
        """Return ``'positive'``, ``'negative'`` or ``'binate'`` for a pin.

        A pin is positive-unate when raising it can only raise (or keep)
        the output for every setting of the other pins.
        """
        rising_only = falling_only = True
        others = self.arity - 1
        for bits in product((0, 1), repeat=others):
            low = list(bits[:pin_index]) + [0] + list(bits[pin_index:])
            high = list(bits[:pin_index]) + [1] + list(bits[pin_index:])
            out_low = int(self.evaluate(low)) & 1
            out_high = int(self.evaluate(high)) & 1
            if out_high < out_low:
                rising_only = False
            if out_high > out_low:
                falling_only = False
        if rising_only and not falling_only:
            return "positive"
        if falling_only and not rising_only:
            return "negative"
        if rising_only and falling_only:
            # Output independent of the pin (degenerate); report positive.
            return "positive"
        return "binate"


FUNCTIONS: Dict[str, LogicFunction] = {}


def register_function(name: str, arity: int, func: Callable[..., object],
                      inverting: bool = False) -> LogicFunction:
    """Register ``func`` under ``name`` and return the wrapper object."""
    if name in FUNCTIONS:
        raise ValueError(f"logic function {name!r} already registered")
    logic = LogicFunction(name=name, arity=arity, func=func, inverting=inverting)
    FUNCTIONS[name] = logic
    return logic


def get_function(name: str) -> LogicFunction:
    """Look up a registered logic function by name."""
    try:
        return FUNCTIONS[name]
    except KeyError:
        raise KeyError(f"unknown logic function: {name!r}") from None


# ---------------------------------------------------------------------------
# Standard function set
# ---------------------------------------------------------------------------

register_function("BUF", 1, lambda a: a)
register_function("INV", 1, lambda a: ~a, inverting=True)

register_function("AND2", 2, lambda a, b: a & b)
register_function("AND3", 3, lambda a, b, c: a & b & c)
register_function("AND4", 4, lambda a, b, c, d: a & b & c & d)

register_function("OR2", 2, lambda a, b: a | b)
register_function("OR3", 3, lambda a, b, c: a | b | c)
register_function("OR4", 4, lambda a, b, c, d: a | b | c | d)

register_function("NAND2", 2, lambda a, b: ~(a & b), inverting=True)
register_function("NAND3", 3, lambda a, b, c: ~(a & b & c), inverting=True)
register_function("NAND4", 4, lambda a, b, c, d: ~(a & b & c & d), inverting=True)

register_function("NOR2", 2, lambda a, b: ~(a | b), inverting=True)
register_function("NOR3", 3, lambda a, b, c: ~(a | b | c), inverting=True)
register_function("NOR4", 4, lambda a, b, c, d: ~(a | b | c | d), inverting=True)

register_function("XOR2", 2, lambda a, b: a ^ b)
register_function("XNOR2", 2, lambda a, b: ~(a ^ b), inverting=False)

# And-Or-Invert / Or-And-Invert complex gates (NanGate style pin order):
# AOI21: ZN = !((A1 & A2) | B)     pins A1, A2, B
register_function("AOI21", 3, lambda a1, a2, b: ~((a1 & a2) | b), inverting=True)
# AOI22: ZN = !((A1 & A2) | (B1 & B2))
register_function("AOI22", 4, lambda a1, a2, b1, b2: ~((a1 & a2) | (b1 & b2)),
                  inverting=True)
# OAI21: ZN = !((A1 | A2) & B)
register_function("OAI21", 3, lambda a1, a2, b: ~((a1 | a2) & b), inverting=True)
# OAI22: ZN = !((A1 | A2) & (B1 | B2))
register_function("OAI22", 4, lambda a1, a2, b1, b2: ~((a1 | a2) & (b1 | b2)),
                  inverting=True)

# MUX2: Z = S ? B : A   (pins A, B, S)
register_function("MUX2", 3, lambda a, b, s: (a & ~s) | (b & s))
