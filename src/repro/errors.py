"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate between subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class LibraryError(ReproError):
    """Problems with standard-cell library definitions or lookups."""


class UnknownCellError(LibraryError):
    """A referenced cell type does not exist in the library."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown cell type: {name!r}")
        self.name = name


class CharacterizationError(ReproError):
    """Failures in the offline cell characterization flow (Fig. 1)."""


class RegressionError(CharacterizationError):
    """The least-squares regression could not produce coefficients."""


class ParameterError(ReproError):
    """An operating point or parameter space is invalid or out of range."""


class NetlistError(ReproError):
    """Structural problems in a circuit netlist."""


class ParseError(ReproError):
    """A design-exchange file (.bench, Verilog, SDF, SPEF, …) is malformed."""

    def __init__(self, message: str, *, filename: str = "<string>", line: int = 0) -> None:
        location = f"{filename}:{line}: " if line else f"{filename}: "
        super().__init__(location + message)
        self.filename = filename
        self.line = line


class SimulationError(ReproError):
    """Errors during time simulation."""


class WaveformOverflowError(SimulationError):
    """A packed waveform exceeded its transition capacity.

    The GPU engine mirrors the paper's fixed per-slot waveform memory; when
    a waveform produces more transitions than the configured capacity the
    engine either grows the capacity (default) or raises this error when
    growth is disabled.
    """


class TimingError(ReproError):
    """Errors in static timing analysis or path enumeration."""


class AtpgError(ReproError):
    """Errors in test pattern generation."""
