"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate between subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class LibraryError(ReproError):
    """Problems with standard-cell library definitions or lookups."""


class UnknownCellError(LibraryError):
    """A referenced cell type does not exist in the library."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown cell type: {name!r}")
        self.name = name


class CharacterizationError(ReproError):
    """Failures in the offline cell characterization flow (Fig. 1)."""


class RegressionError(CharacterizationError):
    """The least-squares regression could not produce coefficients."""


class ParameterError(ReproError):
    """An operating point or parameter space is invalid or out of range."""


class NetlistError(ReproError):
    """Structural problems in a circuit netlist."""


class ParseError(ReproError):
    """A design-exchange file (.bench, Verilog, SDF, SPEF, …) is malformed."""

    def __init__(self, message: str, *, filename: str = "<string>", line: int = 0) -> None:
        location = f"{filename}:{line}: " if line else f"{filename}: "
        super().__init__(location + message)
        self.filename = filename
        self.line = line


class SimulationError(ReproError):
    """Errors during time simulation."""


class WaveformOverflowError(SimulationError):
    """A packed waveform exceeded its transition capacity.

    The GPU engine mirrors the paper's fixed per-slot waveform memory; when
    a waveform produces more transitions than the configured capacity the
    engine either grows the capacity (default) or raises this error when
    growth is disabled.
    """


class InjectedFaultError(SimulationError):
    """A deterministic fault injected by an active fault plan.

    Raised by :func:`repro.faults.trip` when a ``raise``-kind rule fires
    at an instrumented site.  Carries the site name so recovery paths and
    tests can tell injected faults from organic ones.
    """

    def __init__(self, site: str, detail: str = "") -> None:
        suffix = f" ({detail})" if detail else ""
        super().__init__(f"injected fault at {site}{suffix}")
        self.site = site


class CampaignError(ReproError):
    """Errors in the fault-tolerant campaign runtime."""


class PreflightError(CampaignError):
    """A campaign failed validation before any worker was spawned."""


class CheckpointError(CampaignError):
    """A campaign checkpoint directory is missing, corrupt or mismatched."""


class ChunkExecutionError(CampaignError):
    """A slot-plane chunk failed after exhausting every retry and
    degradation level.

    ``attempts`` carries the per-attempt diagnostics (engine, capacity,
    error) recorded by the runner up to the final failure.
    """

    def __init__(self, chunk_index: int, message: str, attempts=()) -> None:
        super().__init__(f"chunk {chunk_index}: {message}")
        self.chunk_index = chunk_index
        self.attempts = list(attempts)


class ServiceError(ReproError):
    """Errors in the simulation service layer."""


class AdmissionError(ServiceError):
    """The service refused a job because its queue is full.

    ``retry_after_seconds`` is the service's estimate of when capacity
    will be available again (inference-server-style backpressure hint);
    callers should wait at least that long before resubmitting.
    """

    def __init__(self, message: str, retry_after_seconds: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds


class ServiceClosedError(ServiceError):
    """A job was submitted to (or was pending in) a closed service."""


class JobDeadlineError(ServiceError):
    """A job missed its submission deadline and was cancelled.

    The service fails the job's future with this error instead of
    letting the caller wait indefinitely; the batch the job rode in (if
    any) continues for its surviving neighbours.
    """

    def __init__(self, message: str, deadline_ms: float = 0.0) -> None:
        super().__init__(message)
        self.deadline_ms = deadline_ms


class JobCancelledError(ServiceError):
    """A job was cancelled by its caller before it produced a result."""


class CircuitOpenError(AdmissionError):
    """The compatibility group's circuit breaker is open.

    Subclasses :class:`AdmissionError` so transports that already
    surface ``retry_after_seconds`` as a backpressure hint handle
    breaker rejections for free: after repeated dispatch failures the
    service refuses new work for the failing group until a half-open
    probe succeeds.
    """


class WorkerLostError(ServiceError):
    """An engine worker died or hung while executing a batch.

    Raised on the batch's jobs only after the supervisor's single
    re-queue attempt also failed (or the batch had already been
    re-queued once).
    """


class ShardError(ServiceError):
    """A shard worker process failed outside normal job execution.

    Covers spawn failures (after the router's single retry), protocol
    violations on the control pipe, and shard-side exceptions whose
    original type cannot be reconstructed in the parent — the message
    carries the shard-side type name and text.
    """


class TimingError(ReproError):
    """Errors in static timing analysis or path enumeration."""


class AtpgError(ReproError):
    """Errors in test pattern generation."""
