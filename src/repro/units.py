"""Engineering-notation units used throughout the library.

Internally the library uses plain SI floats everywhere:

* time in **seconds**,
* capacitance in **farads**,
* voltage in **volts**.

The paper reports times in picoseconds/nanoseconds and loads in
femtofarads; the helpers here convert and pretty-print values in the same
style as the paper's tables (e.g. ``145.3p``, ``2.234n``).
"""

from __future__ import annotations

import math

# Convenience scale constants -------------------------------------------------

FS = 1e-15
PS = 1e-12
NS = 1e-9
US = 1e-6
MS = 1e-3

FF = 1e-15  # femtofarad
PF = 1e-12  # picofarad

#: SI prefixes by exponent of 10**3.
_SI_PREFIXES = {
    -6: "a",
    -5: "f",
    -4: "p",
    -3: "n",
    -2: "u",
    -1: "m",
    0: "",
    1: "k",
    2: "M",
    3: "G",
}


def si_format(value: float, digits: int = 4, unit: str = "") -> str:
    """Format ``value`` with an SI prefix, paper style.

    >>> si_format(145.3e-12)
    '145.3p'
    >>> si_format(2.234e-9, unit='s')
    '2.234ns'
    """
    if value == 0:
        return f"0{unit}"
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return ("-inf" if value < 0 else "inf") + unit
    sign = "-" if value < 0 else ""
    mag = abs(value)
    exp3 = int(math.floor(math.log10(mag) / 3.0))
    exp3 = max(min(exp3, max(_SI_PREFIXES)), min(_SI_PREFIXES))
    scaled = mag / 10.0 ** (3 * exp3)
    # Keep `digits` significant digits like the paper (145.3p, 2.234n).
    if scaled >= 100:
        text = f"{scaled:.{max(digits - 3, 0)}f}"
    elif scaled >= 10:
        text = f"{scaled:.{max(digits - 2, 0)}f}"
    else:
        text = f"{scaled:.{max(digits - 1, 0)}f}"
    return f"{sign}{text}{_SI_PREFIXES[exp3]}{unit}"


def si_parse(text: str) -> float:
    """Parse an SI-suffixed number such as ``'145.3p'`` or ``'0.5f'``.

    An optional trailing unit letter (``s``, ``F``, ``V``) is ignored.

    >>> si_parse('145.3p')
    1.453e-10
    """
    text = text.strip()
    if not text:
        raise ValueError("empty SI literal")
    for unit in ("s", "F", "V", "Hz"):
        if text.endswith(unit) and len(text) > len(unit):
            text = text[: -len(unit)]
            break
    multiplier = 1.0
    prefixes = {"a": 1e-18, "f": 1e-15, "p": 1e-12, "n": 1e-9, "u": 1e-6,
                "m": 1e-3, "k": 1e3, "M": 1e6, "G": 1e9}
    if text and text[-1] in prefixes:
        multiplier = prefixes[text[-1]]
        text = text[:-1]
    return float(text) * multiplier


def format_runtime(seconds: float) -> str:
    """Format a runtime the way Table I does (``5ms``, ``16.31s``, ``2:20m``, ``0:49h``).

    >>> format_runtime(0.005)
    '5ms'
    >>> format_runtime(140)
    '2:20m'
    """
    if seconds < 0:
        raise ValueError("runtime must be non-negative")
    if seconds < 1.0:
        return f"{seconds * 1e3:.0f}ms"
    if seconds < 100.0:
        return f"{seconds:.2f}s"
    if seconds < 600.0:
        minutes = int(seconds // 60)
        rest = int(round(seconds - 60 * minutes))
        return f"{minutes}:{rest:02d}m"
    hours = int(seconds // 3600)
    minutes = int(round((seconds - 3600 * hours) / 60.0))
    return f"{hours}:{minutes:02d}h"


def meps(node_count: int, pattern_count: int, runtime_seconds: float) -> float:
    """Throughput in *million node evaluations per second* (Table I metric).

    One evaluation of every node for every pattern pair counts as
    ``node_count * pattern_count`` node evaluations.
    """
    if runtime_seconds <= 0:
        raise ValueError("runtime must be positive")
    return node_count * pattern_count / runtime_seconds / 1e6
