"""Waveform analysis: switching activity, glitches, power, responses."""

from repro.analysis.activity import ActivityReport, switching_activity
from repro.analysis.power import PowerReport, dynamic_power
from repro.analysis.responses import ResponseReport, capture_responses, compare_responses
from repro.analysis.arrival import ArrivalReport, latest_arrivals
from repro.analysis.compare import (
    ComparisonReport,
    WaveformMismatch,
    arrival_shifts,
    compare_results,
)

__all__ = [
    "ActivityReport",
    "switching_activity",
    "PowerReport",
    "dynamic_power",
    "ResponseReport",
    "capture_responses",
    "compare_responses",
    "ArrivalReport",
    "latest_arrivals",
    "ComparisonReport",
    "WaveformMismatch",
    "arrival_shifts",
    "compare_results",
]
