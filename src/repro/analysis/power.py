"""Dynamic power estimation from glitch-accurate switching activity.

Dynamic switching energy per toggle of a net is ``½ · C_net · V_DD²``;
summing toggles over the simulated patterns gives per-pattern energy, and
dividing by the clock period (or multiplying by frequency) gives power.
Because the activity comes from glitch-accurate waveforms, the estimate
includes hazard power that zero-delay activity misses — one of the
paper's motivating applications (ref. [15]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.activity import ActivityReport
from repro.errors import SimulationError

__all__ = ["PowerReport", "dynamic_power"]


@dataclass(frozen=True)
class PowerReport:
    """Dynamic switching power/energy estimate.

    Attributes
    ----------
    voltage:
        Supply voltage the energy is evaluated at.
    energy_per_pattern:
        Average switching energy per pattern pair (joules).
    glitch_energy_per_pattern:
        Portion attributable to glitch transitions.
    power:
        Average power at the given clock frequency (watts); ``None``
        when no frequency was supplied.
    frequency:
        Clock frequency used for the power figure.
    """

    voltage: float
    energy_per_pattern: float
    glitch_energy_per_pattern: float
    frequency: Optional[float]
    power: Optional[float]

    @property
    def glitch_fraction(self) -> float:
        """Share of dynamic energy wasted in glitches."""
        if self.energy_per_pattern == 0:
            return 0.0
        return self.glitch_energy_per_pattern / self.energy_per_pattern


def dynamic_power(
    activity: ActivityReport,
    loads: Dict[str, float],
    voltage: float,
    frequency: Optional[float] = None,
) -> PowerReport:
    """Estimate dynamic power from an activity report.

    Parameters
    ----------
    loads:
        Net → load capacitance in farads (from
        :meth:`repro.netlist.circuit.Circuit.net_loads` or a SPEF file).
    voltage:
        Supply voltage in volts.
    frequency:
        Optional clock frequency in hertz for the power figure.
    """
    if voltage <= 0:
        raise SimulationError("voltage must be positive")
    energy = 0.0
    glitch_energy = 0.0
    factor = 0.5 * voltage * voltage
    for net, toggles in activity.toggles.items():
        cap = loads.get(net)
        if cap is None:
            continue
        energy += factor * cap * toggles
        glitch_energy += factor * cap * activity.glitches.get(net, 0)
    per_pattern = energy / activity.num_slots
    glitch_per_pattern = glitch_energy / activity.num_slots
    power = per_pattern * frequency if frequency else None
    return PowerReport(
        voltage=voltage,
        energy_per_pattern=per_pattern,
        glitch_energy_per_pattern=glitch_per_pattern,
        frequency=frequency,
        power=power,
    )
