"""Glitch-accurate switching activity (the paper's Sec. I motivation).

The waveform representation keeps every toggle, so activity analysis can
separate *functional* transitions (the final-value change a zero-delay
model would predict: 0 or 1 per net per pattern) from *glitch*
transitions (everything beyond that).  Glitch activity is exactly what
static/zero-delay models miss and what matters for small-delay fault
testing and power estimation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import SimulationError
from repro.simulation.base import SimulationResult

__all__ = ["ActivityReport", "switching_activity"]


@dataclass(frozen=True)
class ActivityReport:
    """Per-net switching activity aggregated over slots.

    Attributes
    ----------
    toggles:
        Total toggle count per net (summed over the selected slots).
    functional:
        Toggles any zero-delay model would predict (final value differs
        from initial value): at most one per net per slot.
    glitches:
        ``toggles − functional`` — the hazard activity only a
        glitch-accurate time simulation reveals.
    """

    num_slots: int
    toggles: Dict[str, int]
    functional: Dict[str, int]
    glitches: Dict[str, int]

    @property
    def total_toggles(self) -> int:
        return sum(self.toggles.values())

    @property
    def total_glitches(self) -> int:
        return sum(self.glitches.values())

    @property
    def glitch_ratio(self) -> float:
        """Fraction of all toggles that are glitches."""
        total = self.total_toggles
        return self.total_glitches / total if total else 0.0

    def hotspots(self, count: int = 10) -> List[str]:
        """Nets with the most glitch transitions, worst first."""
        ranked = sorted(self.glitches, key=self.glitches.get, reverse=True)
        return [net for net in ranked[:count] if self.glitches[net] > 0]


def switching_activity(
    result: SimulationResult,
    slots: Optional[Sequence[int]] = None,
) -> ActivityReport:
    """Aggregate switching activity from a simulation result.

    The result must have been produced with ``record_all_nets=True`` (or
    at least contain every net of interest).
    """
    chosen = list(slots) if slots is not None else list(range(result.num_slots))
    if not chosen:
        raise SimulationError("no slots selected")
    toggles: Dict[str, int] = {}
    functional: Dict[str, int] = {}
    for slot in chosen:
        for net, waveform in result.waveforms[slot].items():
            count = waveform.num_transitions
            toggles[net] = toggles.get(net, 0) + count
            if waveform.final_value != waveform.initial:
                functional[net] = functional.get(net, 0) + 1
            else:
                functional.setdefault(net, 0)
    glitches = {
        net: toggles[net] - functional.get(net, 0) for net in toggles
    }
    return ActivityReport(
        num_slots=len(chosen),
        toggles=toggles,
        functional=functional,
        glitches=glitches,
    )
