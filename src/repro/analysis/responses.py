"""Test-response capture and comparison (Fig. 2 step 4 outputs)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.simulation.base import SimulationResult

__all__ = ["ResponseReport", "capture_responses", "compare_responses"]


@dataclass(frozen=True)
class ResponseReport:
    """Comparison of captured vs expected output responses.

    ``mismatches[slot]`` lists the output nets whose settled values
    disagree; an empty report means the device under simulation behaves
    functionally correctly.
    """

    num_slots: int
    num_outputs: int
    mismatches: List[List[str]]

    @property
    def failing_slots(self) -> List[int]:
        return [slot for slot, bad in enumerate(self.mismatches) if bad]

    @property
    def passed(self) -> bool:
        return not any(self.mismatches)


def capture_responses(result: SimulationResult, circuit: Circuit) -> np.ndarray:
    """Settled output values, shape ``(slots, outputs)``.

    For a time simulation with a finite capture window this corresponds
    to strobing the outputs after the last transition has settled.
    """
    return np.stack(
        [result.final_values(slot, circuit.outputs)
         for slot in range(result.num_slots)]
    )


def compare_responses(
    result: SimulationResult,
    circuit: Circuit,
    expected: np.ndarray,
    slots: Optional[Sequence[int]] = None,
) -> ResponseReport:
    """Compare captured responses against an expectation matrix.

    ``expected`` has shape ``(slots, outputs)`` (e.g. produced by the
    zero-delay simulator on the second vectors).
    """
    expected = np.asarray(expected, dtype=np.uint8)
    chosen = list(slots) if slots is not None else list(range(result.num_slots))
    if expected.shape != (len(chosen), len(circuit.outputs)):
        raise SimulationError(
            f"expected matrix shape {expected.shape} != "
            f"({len(chosen)}, {len(circuit.outputs)})"
        )
    mismatches: List[List[str]] = []
    for row, slot in enumerate(chosen):
        captured = result.final_values(slot, circuit.outputs)
        bad = [
            net for position, net in enumerate(circuit.outputs)
            if captured[position] != expected[row, position]
        ]
        mismatches.append(bad)
    return ResponseReport(
        num_slots=len(chosen),
        num_outputs=len(circuit.outputs),
        mismatches=mismatches,
    )
