"""Waveform-level comparison of two simulation results.

Regression tooling for simulator development and model evaluation: given
two :class:`~repro.simulation.base.SimulationResult` objects over the
same circuit and slot plane (e.g. static vs parametric delays, two
polynomial orders, two engines), report where and how their switching
histories differ — per net, per slot, split into *shape* differences
(different toggle counts or settled values) and *timing* shifts
(identical shapes, shifted toggle times).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.simulation.base import SimulationResult

__all__ = ["WaveformMismatch", "ComparisonReport", "compare_results",
           "arrival_shifts"]


@dataclass(frozen=True)
class WaveformMismatch:
    """One (slot, net) pair where the two results disagree.

    ``kind`` is ``"initial"`` (different settled start value),
    ``"shape"`` (different toggle count) or ``"timing"`` (same toggles,
    time shift beyond the tolerance; ``max_shift`` in seconds).
    """

    slot: int
    net: str
    kind: str
    max_shift: float = 0.0


@dataclass
class ComparisonReport:
    """Aggregate outcome of :func:`compare_results`."""

    num_slots: int
    num_waveforms: int
    mismatches: List[WaveformMismatch] = field(default_factory=list)
    max_time_shift: float = 0.0

    @property
    def identical(self) -> bool:
        return not self.mismatches and self.max_time_shift == 0.0

    @property
    def shape_clean(self) -> bool:
        """True when only timing shifts (no shape/value changes) exist."""
        return all(m.kind == "timing" for m in self.mismatches)

    def worst(self, count: int = 5) -> List[WaveformMismatch]:
        return sorted(self.mismatches, key=lambda m: -m.max_shift)[:count]

    def summary(self) -> str:
        kinds: Dict[str, int] = {}
        for mismatch in self.mismatches:
            kinds[mismatch.kind] = kinds.get(mismatch.kind, 0) + 1
        return (
            f"{self.num_waveforms} waveforms over {self.num_slots} slots: "
            f"{len(self.mismatches)} mismatches {kinds or ''}, "
            f"max time shift {self.max_time_shift:.3e}s"
        )


def compare_results(
    a: SimulationResult,
    b: SimulationResult,
    nets: Optional[Sequence[str]] = None,
    time_tolerance: float = 0.0,
) -> ComparisonReport:
    """Compare two results waveform by waveform.

    ``time_tolerance`` is the acceptable per-toggle shift; shape and
    value differences are always reported.
    """
    if a.num_slots != b.num_slots:
        raise SimulationError(
            f"slot counts differ: {a.num_slots} vs {b.num_slots}"
        )
    report = ComparisonReport(num_slots=a.num_slots, num_waveforms=0)
    for slot in range(a.num_slots):
        chosen = nets if nets is not None else list(a.waveforms[slot])
        for net in chosen:
            wave_a = a.waveform(slot, net)
            wave_b = b.waveform(slot, net)
            report.num_waveforms += 1
            if wave_a.initial != wave_b.initial:
                report.mismatches.append(
                    WaveformMismatch(slot, net, "initial"))
                continue
            if wave_a.num_transitions != wave_b.num_transitions:
                report.mismatches.append(
                    WaveformMismatch(slot, net, "shape"))
                continue
            if wave_a.num_transitions == 0:
                continue
            shift = float(np.max(np.abs(wave_a.times - wave_b.times)))
            report.max_time_shift = max(report.max_time_shift, shift)
            if shift > time_tolerance:
                report.mismatches.append(
                    WaveformMismatch(slot, net, "timing", max_shift=shift))
    return report


def arrival_shifts(
    a: SimulationResult,
    b: SimulationResult,
    nets: Sequence[str],
) -> np.ndarray:
    """Per-slot latest-arrival differences ``b − a`` in seconds.

    The summary statistic model-accuracy studies want: e.g. comparing a
    parametric nominal run against a static run gives the distribution
    behind Table II's "vs static" column.
    """
    if a.num_slots != b.num_slots:
        raise SimulationError("slot counts differ")
    return np.asarray([
        b.latest_arrival(slot, nets) - a.latest_arrival(slot, nets)
        for slot in range(a.num_slots)
    ])
