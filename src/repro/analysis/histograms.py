"""Distribution statistics over waveform populations.

Reporting helpers for the quantities AVFS exploration and test-quality
studies look at as *distributions* rather than single numbers:

* :func:`arrival_histogram` — latest-transition arrival times across
  slots (e.g. Monte-Carlo die samples or pattern populations),
* :func:`pulse_width_histogram` — widths of all pulses in a result (the
  glitch-energy spectrum; inertial filtering guarantees a lower cutoff),
* :func:`toggles_per_level` — switching activity by logic depth (where
  in the circuit the glitching amplifies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.simulation.base import SimulationResult

__all__ = ["Histogram", "arrival_histogram", "pulse_width_histogram",
           "toggles_per_level"]


@dataclass(frozen=True)
class Histogram:
    """A binned distribution with its summary statistics.

    ``edges`` has one more entry than ``counts``; all values are in the
    unit of the measured quantity (seconds for times).
    """

    edges: np.ndarray
    counts: np.ndarray
    mean: float
    std: float
    minimum: float
    maximum: float
    samples: int

    def percentile(self, q: float) -> float:
        """Approximate percentile from the binned data (0..100)."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.samples == 0:
            raise SimulationError("empty histogram")
        cumulative = np.cumsum(self.counts)
        target = q / 100.0 * cumulative[-1]
        index = int(np.searchsorted(cumulative, target))
        index = min(index, len(self.counts) - 1)
        return float(0.5 * (self.edges[index] + self.edges[index + 1]))

    def format(self, width: int = 40, unit_scale: float = 1e12,
               unit: str = "ps") -> str:
        """ASCII bar rendering for terminal reports."""
        lines = []
        peak = max(int(self.counts.max()), 1)
        for position, count in enumerate(self.counts):
            bar = "#" * int(round(width * count / peak))
            lines.append(
                f"{self.edges[position]*unit_scale:9.1f}-"
                f"{self.edges[position+1]*unit_scale:9.1f} {unit} |"
                f"{bar} {int(count)}"
            )
        return "\n".join(lines)


def _build(values: np.ndarray, bins: int) -> Histogram:
    if values.size == 0:
        raise SimulationError("no samples to histogram")
    counts, edges = np.histogram(values, bins=bins)
    return Histogram(
        edges=edges,
        counts=counts,
        mean=float(values.mean()),
        std=float(values.std()),
        minimum=float(values.min()),
        maximum=float(values.max()),
        samples=int(values.size),
    )


def arrival_histogram(
    result: SimulationResult,
    nets: Sequence[str],
    slots: Optional[Sequence[int]] = None,
    bins: int = 20,
) -> Histogram:
    """Latest-transition arrival times, one sample per selected slot.

    Slots whose watched nets never toggle are skipped (no arrival).
    """
    chosen = list(slots) if slots is not None else range(result.num_slots)
    samples = []
    for slot in chosen:
        arrival = result.latest_arrival(slot, nets)
        if np.isfinite(arrival):
            samples.append(arrival)
    return _build(np.asarray(samples), bins)


def pulse_width_histogram(
    result: SimulationResult,
    slots: Optional[Sequence[int]] = None,
    bins: int = 20,
) -> Histogram:
    """Widths of every pulse of every recorded waveform."""
    chosen = list(slots) if slots is not None else range(result.num_slots)
    widths: List[np.ndarray] = []
    for slot in chosen:
        for waveform in result.waveforms[slot].values():
            pulse = waveform.pulse_widths()
            if pulse.size:
                widths.append(pulse)
    if not widths:
        raise SimulationError("no pulses in the selected slots")
    return _build(np.concatenate(widths), bins)


def toggles_per_level(
    result: SimulationResult,
    circuit: Circuit,
    slots: Optional[Sequence[int]] = None,
) -> Dict[int, int]:
    """Total toggle count per logic level (PIs are level 0).

    Requires a result recorded with ``record_all_nets=True``.  Rising
    glitch activity toward deeper levels is the signature of hazard
    amplification through reconvergent logic.
    """
    level_of_net: Dict[str, int] = {net: 0 for net in circuit.inputs}
    for level_index, bucket in enumerate(circuit.levelize(), start=1):
        for gate_index in bucket:
            level_of_net[circuit.gates[gate_index].output] = level_index
    chosen = list(slots) if slots is not None else range(result.num_slots)
    totals: Dict[int, int] = {}
    for slot in chosen:
        for net, waveform in result.waveforms[slot].items():
            level = level_of_net.get(net)
            if level is None:
                continue
            totals[level] = totals.get(level, 0) + waveform.num_transitions
    return dict(sorted(totals.items()))
