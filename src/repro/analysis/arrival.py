"""Latest-transition arrival extraction (Table II columns 3–8).

For each operating point of a slot plane, the *latest transition arrival
time* is the time of the last output toggle observed across all patterns
— the quantity Table II sweeps over supply voltages and compares against
the STA longest path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.netlist.circuit import Circuit
from repro.simulation.base import SimulationResult
from repro.simulation.grid import SlotPlan

__all__ = ["ArrivalReport", "latest_arrivals"]


@dataclass(frozen=True)
class ArrivalReport:
    """Latest transition arrival per operating point.

    Attributes
    ----------
    by_voltage:
        Voltage → latest arrival (seconds) over all patterns; ``-inf``
        when nothing toggled.
    critical_slot:
        Voltage → slot index where the latest transition occurred.
    """

    circuit_name: str
    by_voltage: Dict[float, float]
    critical_slot: Dict[float, int]

    def at(self, voltage: float) -> float:
        for key, value in self.by_voltage.items():
            if np.isclose(key, voltage):
                return value
        raise KeyError(f"voltage {voltage} not in report")

    def voltages(self) -> List[float]:
        return sorted(self.by_voltage)

    def relative_to(self, reference: float, voltage: float) -> float:
        """Relative deviation of ``at(voltage)`` w.r.t. a reference time."""
        return self.at(voltage) / reference - 1.0


def latest_arrivals(
    result: SimulationResult,
    circuit: Circuit,
    plan: Optional[SlotPlan] = None,
    nets: Optional[Sequence[str]] = None,
) -> ArrivalReport:
    """Extract the Table II metric from a simulation result.

    ``plan`` recovers the voltage of each slot; when omitted the slot
    labels stored in the result are used.  ``nets`` defaults to the
    primary outputs.
    """
    watch = list(nets) if nets is not None else list(circuit.outputs)
    voltages = (
        plan.voltages if plan is not None
        else np.asarray([v for _, v in result.slot_labels])
    )
    by_voltage: Dict[float, float] = {}
    critical: Dict[float, int] = {}
    for slot in range(result.num_slots):
        voltage = float(voltages[slot])
        arrival = result.latest_arrival(slot, watch)
        if arrival > by_voltage.get(voltage, float("-inf")):
            by_voltage[voltage] = arrival
            critical[voltage] = slot
    return ArrivalReport(
        circuit_name=getattr(result, "circuit_name", circuit.name),
        by_voltage=by_voltage,
        critical_slot=critical,
    )
