"""repro — voltage-aware parallel gate-level time simulation.

A faithful, pure-Python reproduction of *"GPU-accelerated Time
Simulation of Systems with Adaptive Voltage and Frequency Scaling"*
(Schneider & Wunderlich, DATE 2020): polynomial voltage-dependent delay
kernels learned offline by regression, evaluated online inside a
massively parallel (NumPy-SIMT) glitch-accurate waveform simulator that
exploits gate-, stimuli- and operating-point parallelism simultaneously.

Quickstart::

    from repro import (
        make_nangate15_library, characterize_library,
        random_circuit, random_pattern_set, GpuWaveSim, SlotPlan,
    )

    library = make_nangate15_library()
    kernels = characterize_library(library, n=3).compile()
    circuit = random_circuit("demo", num_inputs=16, num_gates=500, seed=1)
    patterns = random_pattern_set(circuit, 32, seed=2)

    sim = GpuWaveSim(circuit, library)
    plan = SlotPlan.cross(len(patterns), [0.55, 0.8, 1.1])
    result = sim.run(patterns.pairs, plan=plan, kernel_table=kernels)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.cells import (
    Cell,
    CellLibrary,
    CellPin,
    DrivePolarity,
    make_nangate15_library,
)
from repro.core import (
    DelayKernelTable,
    FitResult,
    OperatingPoint,
    ParameterSpace,
    SurfacePolynomial,
    characterize_cell,
    characterize_library,
    characterize_pin,
    fit_polynomial,
)
from repro.electrical import AnalyticalSpice, ElectricalModel, TransistorCorner
from repro.netlist import (
    BENCHMARK_SUITE,
    Circuit,
    Gate,
    build_suite_circuit,
    c17,
    circuit_stats,
    parse_bench,
    parse_spef,
    parse_sdf,
    parse_verilog,
    random_circuit,
    write_bench,
    write_sdf,
    write_spef,
    write_verilog,
)
from repro.waveform import PackedWaveforms, Waveform
from repro.simulation import (
    EventDrivenSimulator,
    GpuWaveSim,
    MultiDeviceWaveSim,
    PatternPair,
    ProcessVariation,
    SimulationConfig,
    SimulationResult,
    SlotPlan,
    ZeroDelaySimulator,
)
from repro.timing import StaticTimingAnalysis, k_longest_paths
from repro.atpg import (
    FaultSimulator,
    PatternSet,
    TransitionFault,
    generate_path_patterns,
    generate_transition_patterns,
    random_pattern_set,
)
from repro.analysis import (
    dynamic_power,
    latest_arrivals,
    switching_activity,
)
from repro.avfs import AvfsController, DesignSpaceExplorer, VoltageFrequencyTable
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    # cells
    "Cell", "CellLibrary", "CellPin", "DrivePolarity", "make_nangate15_library",
    # core
    "DelayKernelTable", "FitResult", "OperatingPoint", "ParameterSpace",
    "SurfacePolynomial", "characterize_cell", "characterize_library",
    "characterize_pin", "fit_polynomial",
    # electrical
    "AnalyticalSpice", "ElectricalModel", "TransistorCorner",
    # netlist
    "BENCHMARK_SUITE", "Circuit", "Gate", "build_suite_circuit", "c17",
    "circuit_stats", "parse_bench", "parse_sdf", "parse_spef", "parse_verilog",
    "random_circuit", "write_bench", "write_sdf", "write_spef", "write_verilog",
    # waveforms
    "PackedWaveforms", "Waveform",
    # simulation
    "EventDrivenSimulator", "GpuWaveSim", "MultiDeviceWaveSim",
    "PatternPair", "ProcessVariation", "SimulationConfig",
    "SimulationResult", "SlotPlan", "ZeroDelaySimulator",
    # timing
    "StaticTimingAnalysis", "k_longest_paths",
    # atpg
    "FaultSimulator", "PatternSet", "TransitionFault",
    "generate_path_patterns", "generate_transition_patterns",
    "random_pattern_set",
    # analysis
    "dynamic_power", "latest_arrivals", "switching_activity",
    # avfs
    "AvfsController", "DesignSpaceExplorer", "VoltageFrequencyTable",
    # errors
    "ReproError",
    "__version__",
]
