"""Performance tracking: benchmark recording and regression checks.

:mod:`repro.perf.record` runs the kernel micro-benchmarks and
end-to-end circuit benchmarks across the available compute backends,
writes ``BENCH_kernels.json`` and compares against a previous record —
the repository's perf trajectory (``make bench`` / ``repro bench`` /
``benchmarks/record.py``).
"""

from repro.perf.record import (
    compare_reports,
    load_report,
    run_suite,
    write_report,
)

__all__ = ["compare_reports", "load_report", "run_suite", "write_report"]
